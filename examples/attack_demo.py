"""The adversary's afternoon: every attack from the paper's threat model,
run against the configurations that fall to it and the ones that stop it.

1. **Pattern analysis** (§3.4 "Advantage") — XOM's direct encryption
   preserves memory's value-repetition structure; OTP erases it.
2. **The constant-seed counter leak** (§3.4 "Disadvantage") — without
   sequence numbers, a counter in memory can be read through the
   encryption; with them, the attack collapses.
3. **Splicing** — relocated ciphertext decrypts to garbage under OTP
   (corruption without control) and is *detected* with MACs.
4. **Replay** — defeats per-line MACs (stale line + stale MAC verify),
   caught by the hash-tree root on chip (the Gassend extension the paper
   points to in §2.2).

Run:  python examples/attack_demo.py
"""

from repro.attacks import (
    MemoryAdversary,
    analyze_blocks,
    recover_counter_steps,
    xor_leak,
)
from repro.crypto.des import DES
from repro.crypto.modes import otp_transform
from repro.errors import ReplayDetected, TamperDetected
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure import (
    HashTreeIntegrity,
    MACIntegrity,
    OTPEngine,
    SequenceNumberCache,
    SNCConfig,
    XOMEngine,
)

KEY = bytes.fromhex("0123456789ABCDEF")
# A believable memory image: mostly zeroed pages plus repeated records.
REPETITIVE = [bytes(128)] * 20 + [b"RECORD:ALICE:42!" * 8] * 6


def fresh_otp(integrity=None):
    dram = DRAM(line_bytes=128, latency=100)
    engine = OTPEngine(
        dram, DES(KEY),
        snc=SequenceNumberCache(SNCConfig(size_bytes=256, entry_bytes=2)),
        integrity=integrity,
    )
    return engine, MemoryAdversary(dram)


def pattern_analysis() -> None:
    print("== 1. pattern analysis of the memory image ==")
    xom = XOMEngine(DRAM(line_bytes=128), DES(KEY))
    otp, _ = fresh_otp()
    for index, line in enumerate(REPETITIVE):
        xom.write_line(index * 128, line)
        otp.write_line(index * 128, line)
    size = 128 * len(REPETITIVE)
    for name, engine in (("XOM (direct)", xom), ("OTP (this paper)", otp)):
        report = analyze_blocks(engine.dram.peek(0, size), block_size=8)
        print(f"  {name:<18} repeated-block fraction: "
              f"{report.repetition_fraction:6.1%}   "
              f"entropy {report.entropy_bits_per_block:5.2f} bits/block")


def counter_leak() -> None:
    print("\n== 2. reading a counter through the encryption ==")
    cipher = DES(KEY)
    # A broken design: pad seed fixed per address (no sequence numbers).
    snapshots = []
    for count in (500, 501, 502, 503):
        line = count.to_bytes(4, "big") + bytes(124)
        snapshots.append(otp_transform(cipher, 0xDEAD, line))
    result = recover_counter_steps(snapshots)
    print(f"  constant seeds : counter steps recovered = {result.steps} "
          f"(consistent={result.consistent})")
    leaked = xor_leak(snapshots[0], snapshots[1])
    print(f"  xor of snapshots 0,1 -> plaintext xor = "
          f"{int.from_bytes(leaked[:4], 'big')} (should be 500^501="
          f"{500 ^ 501})")

    # The real engine: sequence numbers mutate the pad each writeback.
    engine, adversary = fresh_otp()
    snapshots = []
    for count in (500, 501, 502, 503):
        engine.write_line(0, count.to_bytes(4, "big") + bytes(124))
        snapshots.append(adversary.read(0, 128))
    result = recover_counter_steps(snapshots)
    print(f"  mutating seeds : consistent={result.consistent} "
          "(attack collapses)")


def splicing() -> None:
    print("\n== 3. splicing ciphertext between addresses ==")
    engine, adversary = fresh_otp()
    engine.write_line(0, b"A" * 128)
    engine.write_line(128, b"B" * 128)
    adversary.splice(0, 128)
    data, _ = engine.read_line(128, LineKind.DATA)
    print(f"  OTP only  : spliced line decrypts to garbage "
          f"({data[:8].hex()}...), silently")
    mac_engine, mac_adversary = fresh_otp(integrity=MACIntegrity(b"mac-key"))
    mac_engine.write_line(0, b"A" * 128)
    mac_engine.write_line(128, b"B" * 128)
    mac_adversary.splice(0, 128)
    try:
        mac_engine.read_line(128, LineKind.DATA)
    except TamperDetected as exc:
        print(f"  with MACs : {exc}")


def replay() -> None:
    print("\n== 4. replaying stale memory ==")
    mac = MACIntegrity(b"mac-key")
    engine, adversary = fresh_otp(integrity=mac)
    engine.write_line(0, b"balance=1000....".ljust(128, b"."))
    stale_tags = dict(mac.tag_table)
    adversary.record(0)
    engine.write_line(0, b"balance=0001....".ljust(128, b"."))
    adversary.replay(0)
    mac.tag_table.clear()
    mac.tag_table.update(stale_tags)
    engine.read_line(0, LineKind.DATA)  # verifies! replay undetected
    print("  per-line MACs : stale line + stale MAC verified fine "
          "(replay NOT detected)")

    tree = HashTreeIntegrity(base_addr=0, n_lines=16)
    engine, adversary = fresh_otp(integrity=tree)
    engine.write_line(0, b"balance=1000....".ljust(128, b"."))
    stale_nodes = dict(tree.node_store)
    adversary.record(0)
    engine.write_line(0, b"balance=0001....".ljust(128, b"."))
    adversary.replay(0)
    tree.node_store.clear()
    tree.node_store.update(stale_nodes)
    try:
        engine.read_line(0, LineKind.DATA)
    except ReplayDetected as exc:
        print(f"  hash tree     : {exc}")


if __name__ == "__main__":
    pattern_analysis()
    counter_leak()
    splicing()
    replay()

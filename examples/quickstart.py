"""Quickstart: run an encrypted program on the one-time-pad processor.

The whole pipeline in one page:

1. write a small SRP-32 program and assemble it;
2. the *vendor* encrypts it for one specific processor (one-time-pad
   seeds derived from virtual addresses, symmetric key wrapped under the
   processor's public RSA key — paper §2.1 / §3.4.1);
3. the processor unwraps the key once and executes the ciphertext image,
   decrypting lines on the fly with pads that overlap memory latency;
4. we check that the program worked, that only ciphertext ever reached
   memory, and what the protection cost in cycles.

Run:  python examples/quickstart.py
"""

from repro.cpu import assemble
from repro.secure import EngineKind, SecureProcessor, package_program

SOURCE = """
# Sum the 10 words in `table`, print the total.
main:
    la   t0, table
    li   t1, 10
    li   s0, 0
loop:
    lw   t2, 0(t0)
    add  s0, s0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bne  t1, zero, loop
    mov  a0, s0
    li   v0, 1          # syscall: print integer
    syscall
    halt
    .data
table:
    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3
"""


def main() -> None:
    # The customer's processor: its private key never leaves the "die".
    cpu = SecureProcessor(key_seed="quickstart-cpu",
                          engine_kind=EngineKind.OTP)

    # The vendor targets that processor's public key.
    program = assemble(SOURCE, name="sum10")
    protected = package_program(program, cpu.public_key,
                                vendor_seed="quickstart-vendor")

    report = cpu.run(protected)

    print(f"program output : {report.output!r}  (expected '39')")
    print(f"instructions   : {report.result.steps}")
    print(f"approx cycles  : {report.cycles}")

    # The anti-tamper evidence: the text segment in untrusted memory is
    # ciphertext, not the code we wrote.
    text = next(s for s in protected.segments if s.name == "text")
    in_memory = report.engine.dram.peek(text.base, 16)
    plain_text = next(s for s in program.segments if s.name == "text")
    print(f"code in memory : {in_memory.hex()} ...")
    print(f"code as written: {plain_text.data[:16].hex()} ...")
    assert in_memory != plain_text.data[:16]
    assert report.output == "39"
    print("ok: correct output, and memory never saw plaintext code")


if __name__ == "__main__":
    main()

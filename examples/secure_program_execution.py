"""The full vendor -> customer story, on all three processors.

A vector-dot-product "application" is:

1. packaged by the vendor for a specific customer processor, in both the
   XOM (direct-encryption) and OTP image formats;
2. executed on the insecure baseline, the XOM processor, and the OTP
   processor — same output everywhere, very different cycle bills;
3. pirated: a second processor with a different die key tries to run the
   same image and fails at key unwrap (§2.1);
4. interrupted mid-run by a "malicious OS" that tries to read the task's
   registers and gets a trap, then a ciphertext frame (§2.3).

Run:  python examples/secure_program_execution.py
"""

from repro.cpu import assemble
from repro.crypto.des import DES
from repro.errors import CompartmentViolation, KeyExchangeError
from repro.secure import (
    CompartmentManager,
    EngineKind,
    ProtectionScheme,
    SecureProcessor,
    TaggedRegisterFile,
    package_program,
)

SOURCE = """
# Fill two 2048-word vectors, then run two dot-product passes over them.
# The vectors (16KB) exceed the demo L2 (4KB), so the compute passes
# re-read lines that were encrypted on their way out — the paper's case.
main:
    la   t0, vec_a
    la   t1, vec_b
    li   t2, 2048
    li   t3, 0
fill:
    sw   t3, 0(t0)
    li   t4, 2
    sw   t4, 0(t1)
    addi t0, t0, 4
    addi t1, t1, 4
    addi t3, t3, 1
    addi t2, t2, -1
    bne  t2, zero, fill
    li   s1, 2            # dot-product passes
pass:
    la   t0, vec_a
    la   t1, vec_b
    li   t2, 2048
    li   s0, 0
dot:
    lw   t3, 0(t0)
    lw   t4, 0(t1)
    mul  t5, t3, t4
    add  s0, s0, t5
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bne  t2, zero, dot
    addi s1, s1, -1
    bne  s1, zero, pass
    mov  a0, s0
    li   v0, 1
    syscall
    halt
    .data
vec_a: .space 8192
vec_b: .space 8192
"""

_EXPECTED = str(2047 * 2048)  # 2 * sum(0..2047)


def _demo_processor(kind):
    """Small caches so a 16KB working set actually exercises memory."""
    from repro.memory.cache import CacheConfig
    return SecureProcessor(
        key_seed="customer-cpu", engine_kind=kind,
        l1i_config=CacheConfig(1024, 4, 32, name="L1I"),
        l1d_config=CacheConfig(1024, 4, 32, name="L1D"),
        l2_config=CacheConfig(4096, 4, 128, name="L2"),
    )


def run_everywhere() -> None:
    program = assemble(SOURCE, name="dotprod")
    print("== one program, three processors ==")

    baseline = _demo_processor(EngineKind.BASELINE).run_plain(program)
    print(f"baseline : output={baseline.output:>8}  "
          f"cycles={baseline.cycles:>8}")

    xom_cpu = _demo_processor(EngineKind.XOM)
    xom_image = package_program(
        program, xom_cpu.public_key, scheme=ProtectionScheme.DIRECT
    )
    xom = xom_cpu.run(xom_image)
    print(f"XOM      : output={xom.output:>8}  cycles={xom.cycles:>8}  "
          f"(+{100 * (xom.cycles / baseline.cycles - 1):.1f}%)")

    otp_cpu = _demo_processor(EngineKind.OTP)
    otp_image = package_program(
        program, otp_cpu.public_key, scheme=ProtectionScheme.OTP
    )
    otp = otp_cpu.run(otp_image)
    print(f"OTP+SNC  : output={otp.output:>8}  cycles={otp.cycles:>8}  "
          f"(+{100 * (otp.cycles / baseline.cycles - 1):.1f}%)")

    assert baseline.output == xom.output == otp.output == _EXPECTED
    assert xom.cycles > otp.cycles > baseline.cycles

    print("\n== piracy attempt ==")
    pirate = SecureProcessor(key_seed="pirate-cpu",
                             engine_kind=EngineKind.OTP)
    try:
        pirate.run(otp_image)
    except KeyExchangeError as exc:
        print(f"pirate processor rejected the image: {exc}")


def malicious_os_demo() -> None:
    print("\n== malicious OS at an interrupt (§2.3) ==")
    manager = CompartmentManager()
    task = manager.create(DES(b"task-key"))
    registers = TaggedRegisterFile(manager)

    manager.enter(task.xom_id)
    registers.write(8, 0x5EC12E7)  # the task's secret register value
    frame = registers.interrupt_save()
    manager.exit()  # the OS now runs, outside any compartment

    print(f"OS sees ciphertext frame: {frame.ciphertext[:16].hex()}...")
    try:
        manager.enter(task.xom_id)
        registers.interrupt_restore(frame)
        manager.exit()
        # A second compartment (the 'OS helper task') tries to peek.
        snoop = manager.create(DES(b"os-snoop"))
        manager.enter(snoop.xom_id)
        registers.read(8)
    except CompartmentViolation as exc:
        print(f"register snoop trapped: {exc}")


if __name__ == "__main__":
    run_everywhere()
    malicious_os_demo()

"""The paper's evaluation in miniature: sweep the SNC design space.

Runs the trace-driven pipeline on three representative workloads at a
reduced scale and prints Figure 5/6/7-style tables, plus the Figure 8
area-equivalence check — a taste of what ``pytest benchmarks/`` does at
full scale.

Run:  python examples/snc_design_space.py
"""

from repro.area import figure8_area_check, l2_area, snc_area
from repro.eval.experiments import PAPER_LATENCIES
from repro.eval.pipeline import SimulationScale, simulate_benchmark
from repro.timing.model import (
    baseline_cycles,
    otp_cycles,
    slowdown_pct,
    xom_cycles,
)
from repro.workloads.spec import BY_NAME

SCALE = SimulationScale(warmup_refs=100_000, measure_refs=120_000)
WORKLOADS = ("equake", "mcf", "gcc")  # fits / too big / poisons-NoRepl


def main() -> None:
    lat = PAPER_LATENCIES
    print(f"{'workload':<10} {'XOM':>8} {'NoRepl':>8} {'LRU-32K':>8} "
          f"{'LRU-64K':>8} {'LRU-128K':>9} {'32-way':>8}   [slowdown %]")
    print("-" * 72)
    for name in WORKLOADS:
        events = simulate_benchmark(BY_NAME[name], scale=SCALE)
        base = baseline_cycles(events.trace_events(), lat)
        row = [slowdown_pct(xom_cycles(events.trace_events(), lat), base)]
        for key in ("norepl64", "lru32", "lru64", "lru128", "lru64_32way"):
            row.append(
                slowdown_pct(otp_cycles(events.trace_events(key), lat), base)
            )
        print(f"{name:<10} " + " ".join(f"{value:8.2f}" for value in row))

    print("\nFigure 8 fairness check (CACTI-style area units):")
    check = figure8_area_check()
    print(f"  256KB 4-way L2 + 64KB 32-way SNC : {check.l2_plus_snc:12.0f}")
    print(f"  320KB 5-way L2                   : {check.l2_320k_5way:12.0f}")
    print(f"  384KB 6-way L2                   : {check.l2_384k_6way:12.0f}")
    print(f"  L2+SNC sits between the two      : {check.holds}")
    print("\n(the full 11-benchmark, full-scale sweep: "
          "pytest benchmarks/ --benchmark-only)")


if __name__ == "__main__":
    main()

"""The paper's evaluation in miniature: sweep the SNC design space.

Declares one :class:`~repro.eval.jobs.ExperimentJob` per representative
workload — the same job API ``python -m repro.eval`` schedules — runs them
through the experiment scheduler at a reduced scale, and prints Figure
5/6/7-style tables, plus the Figure 8 area-equivalence check — a taste of
what ``pytest benchmarks/`` does at full scale.

Run:  python examples/snc_design_space.py [--jobs N]
"""

import argparse

from repro.area import figure8_area_check
from repro.eval.experiments import PAPER_LATENCIES
from repro.eval.jobs import ExperimentJob, standard_snc_specs
from repro.eval.pipeline import SimulationScale
from repro.eval.scheduler import run_jobs
from repro.timing.model import (
    baseline_cycles,
    otp_cycles,
    slowdown_pct,
    xom_cycles,
)

SCALE = SimulationScale(warmup_refs=100_000, measure_refs=120_000)
WORKLOADS = ("equake", "mcf", "gcc")  # fits / too big / poisons-NoRepl


def design_space_jobs() -> list[ExperimentJob]:
    """One job per workload, sweeping all five standard SNC geometries."""
    all_specs = tuple(standard_snc_specs().values())
    return [
        ExperimentJob(
            figure="design-space", engine="xom+otp", workload=name,
            snc_configs=all_specs, scale=SCALE, seed=1,
        )
        for name in WORKLOADS
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep (default 1)")
    args = parser.parse_args()

    lat = PAPER_LATENCIES
    all_events = run_jobs(design_space_jobs(), n_jobs=args.jobs)
    print(f"{'workload':<10} {'XOM':>8} {'NoRepl':>8} {'LRU-32K':>8} "
          f"{'LRU-64K':>8} {'LRU-128K':>9} {'32-way':>8}   [slowdown %]")
    print("-" * 72)
    for name in WORKLOADS:
        events = all_events[name]
        base = baseline_cycles(events.trace_events(), lat)
        row = [slowdown_pct(xom_cycles(events.trace_events(), lat), base)]
        for key in ("norepl64", "lru32", "lru64", "lru128", "lru64_32way"):
            row.append(
                slowdown_pct(otp_cycles(events.trace_events(key), lat), base)
            )
        print(f"{name:<10} " + " ".join(f"{value:8.2f}" for value in row))

    print("\nFigure 8 fairness check (CACTI-style area units):")
    check = figure8_area_check()
    print(f"  256KB 4-way L2 + 64KB 32-way SNC : {check.l2_plus_snc:12.0f}")
    print(f"  320KB 5-way L2                   : {check.l2_320k_5way:12.0f}")
    print(f"  384KB 6-way L2                   : {check.l2_384k_6way:12.0f}")
    print(f"  L2+SNC sits between the two      : {check.holds}")
    print("\n(the full 11-benchmark, full-scale sweep: "
          "pytest benchmarks/ --benchmark-only)")


if __name__ == "__main__":
    main()

"""The paper's evaluation in miniature: sweep the SNC design space.

Declares one :class:`~repro.eval.jobs.ExperimentJob` per representative
workload — the same job API ``python -m repro.eval`` schedules — runs them
through the experiment scheduler at a reduced scale, and prints:

* the Figure 5/6/7-style SNC geometry sweep;
* a **scheme design-space table** enumerating every protection scheme in
  the registry (:mod:`repro.secure.schemes`) at the paper's default 64KB
  SNC — including the §4.2 ``otp_split`` variant, whose spec registered
  itself from one file;
* the Figure 8 area-equivalence check;
* with ``--scenario``, the §4.3 multi-programmed design space instead: a
  two-task interleave priced under every (switch strategy x SNC
  geometry x scheme) combination, resolved through cached scenario jobs;
* with ``--integrity``, the integrity design space instead: every
  registered integrity provider (:mod:`repro.secure.integrity`) priced
  on top of the paper's scheme, sweeping the trusted node-cache size —
  the Gassend et al. piece the paper defers (§2.2).

The figure sweep runs through the replay backend with a trace store, so
``--jobs N`` exercises the scheduler's lane sharding: three recordings
fan across the workers and, when workers remain, a recording's
configuration lanes split further (progress lines on stderr show the
``... in S shards batch-priced`` passes; the printed tables are
byte-identical at any ``--jobs``).

Run:  python examples/snc_design_space.py [--jobs N] [--scenario]
                                          [--integrity]
"""

import argparse
import sys

from repro.area import figure8_area_check
from repro.eval.api import (
    ExperimentJob,
    PAPER_LATENCIES,
    ResultCache,
    SCENARIO_SCHEMES,
    SCENARIO_STRATEGIES,
    SimulationScale,
    SNCSpec,
    TraceStore,
    format_integrity_table,
    run_integrity_sweep,
    run_jobs,
    run_scenarios,
    scenario_jobs,
    scenario_slowdowns,
    standard_snc_specs,
)
from repro.secure.integrity import all_integrities
from repro.secure.schemes import all_schemes, get_scheme
from repro.timing.model import slowdown_pct

SCALE = SimulationScale(warmup_refs=100_000, measure_refs=120_000)
WORKLOADS = ("equake", "mcf", "gcc")  # fits / too big / poisons-NoRepl

#: The --scenario mode's mix and geometry sweep: art+vpr fit the larger
#: SNCs together but straddle the 32KB one, so the strategy x geometry
#: grid shows both arms of the §4.3 trade-off.
SCENARIO_MIX = ("art", "vpr")
SCENARIO_SNC_KEYS = ("lru32", "lru64", "lru128")

#: Every registered scheme that runs an SNC state machine gets a 64KB
#: design-space column; the paper's own scheme keeps the standard
#: "lru64" pricing key, variants get "<scheme>64".
SNC_SCHEMES = tuple(spec.key for spec in all_schemes() if spec.uses_snc)


def scheme_snc_key(scheme_key: str) -> str:
    """The pricing key a scheme's 64KB design-space column uses."""
    return "lru64" if scheme_key == "otp" else f"{scheme_key}64"


def design_space_specs() -> tuple[SNCSpec, ...]:
    """The five standard geometries plus one 64KB spec per SNC scheme."""
    specs = dict(standard_snc_specs())
    for scheme_key in SNC_SCHEMES:
        key = scheme_snc_key(scheme_key)
        if key not in specs:
            specs[key] = SNCSpec(key=key, scheme=scheme_key)
    return tuple(specs.values())


def design_space_jobs() -> list[ExperimentJob]:
    """One job per workload, sweeping every geometry and scheme."""
    schemes = tuple(
        spec.key for spec in all_schemes() if spec.protection is not None
    )
    return [
        ExperimentJob(
            figure="design-space", schemes=schemes, workload=name,
            snc_configs=design_space_specs(), scale=SCALE, seed=1,
        )
        for name in WORKLOADS
    ]


def print_geometry_table(all_events) -> None:
    """Figure 5/6/7 in one table: the OTP scheme across SNC geometries."""
    lat = PAPER_LATENCIES
    base_price = get_scheme("baseline").price
    xom_price = get_scheme("xom").price
    otp_price = get_scheme("otp").price
    print(f"{'workload':<10} {'XOM':>8} {'NoRepl':>8} {'LRU-32K':>8} "
          f"{'LRU-64K':>8} {'LRU-128K':>9} {'32-way':>8}   [slowdown %]")
    print("-" * 72)
    for name in WORKLOADS:
        events = all_events[name]
        base = base_price(events.trace_events(), lat)
        row = [slowdown_pct(xom_price(events.trace_events(), lat), base)]
        for key in ("norepl64", "lru32", "lru64", "lru128", "lru64_32way"):
            row.append(
                slowdown_pct(otp_price(events.trace_events(key), lat), base)
            )
        print(f"{name:<10} " + " ".join(f"{value:8.2f}" for value in row))


def print_scheme_table(all_events) -> None:
    """Every registered scheme at the default 64KB SNC, one column each."""
    lat = PAPER_LATENCIES
    base_price = get_scheme("baseline").price
    columns = [
        spec for spec in all_schemes() if spec.protection is not None
    ]
    header = f"{'workload':<10}" + "".join(
        f" {spec.key:>10}" for spec in columns
    )
    print(header + "   [slowdown %, 64KB SNC]")
    print("-" * (len(header) + 4))
    for name in WORKLOADS:
        events = all_events[name]
        base = base_price(events.trace_events(), lat)
        row = []
        for spec in columns:
            snc_key = scheme_snc_key(spec.key) if spec.uses_snc else None
            cycles = spec.price(events.trace_events(snc_key), lat)
            row.append(slowdown_pct(cycles, base))
        print(f"{name:<10}" + "".join(f" {value:10.2f}" for value in row))


def print_scenario_tables(n_jobs: int) -> None:
    """The §4.3 strategy x geometry x scheme slowdown grid.

    Jobs resolve through the on-disk result cache, so re-runs (and any
    scenario the bench script already simulated at this scale) price
    instantly from cached events."""
    jobs = scenario_jobs(SCENARIO_MIX, quantum=2000,
                         snc_keys=SCENARIO_SNC_KEYS, scale=SCALE)
    results = run_scenarios(jobs, n_jobs=n_jobs, cache=ResultCache())
    label = jobs[0].source.label
    header = f"{'strategy':<9} {'scheme':<10}" + "".join(
        f" {key:>10}" for key in SCENARIO_SNC_KEYS
    )
    print(f"context-switch design space: {label}   [slowdown %]")
    print(header)
    print("-" * len(header))
    for strategy in SCENARIO_STRATEGIES:
        events = results[(label, strategy)]
        for scheme in SCENARIO_SCHEMES:
            row = f"{strategy:<9} {scheme:<10}"
            for key in SCENARIO_SNC_KEYS:
                value = scenario_slowdowns(events, (scheme,), key)[scheme]
                row += f" {value:>10.2f}"
            print(row)


def print_integrity_table(n_jobs: int) -> None:
    """The integrity design space: every provider's cost over OTP+SNC.

    Jobs resolve through the on-disk result cache like the scenario
    mode, so re-runs price instantly from cached events."""
    names = ", ".join(spec.key for spec in all_integrities())
    print(f"registered integrity providers: {names}\n")
    events = run_integrity_sweep(WORKLOADS, scale=SCALE, n_jobs=n_jobs,
                                 cache=ResultCache())
    print(format_integrity_table(events))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep (default 1)")
    parser.add_argument("--trace-cache-dir", default=None, metavar="DIR",
                        help="recorded-stream store for the figure sweep "
                             "(default: the user-level trace cache)")
    parser.add_argument("--scenario", action="store_true",
                        help="print the §4.3 multi-programmed strategy x "
                             "SNC-config table instead of the figure "
                             "sweep")
    parser.add_argument("--integrity", action="store_true",
                        help="print the integrity design space (every "
                             "registered provider over OTP+SNC, node-"
                             "cache sweep) instead of the figure sweep")
    args = parser.parse_args()

    if args.integrity:
        print_integrity_table(args.jobs)
        return

    names = ", ".join(spec.key for spec in all_schemes())
    print(f"registered protection schemes: {names}\n")

    if args.scenario:
        print_scenario_tables(args.jobs)
        return

    all_events = run_jobs(
        design_space_jobs(), n_jobs=args.jobs, backend="replay",
        trace_store=TraceStore(args.trace_cache_dir),
        progress=lambda line: print(f"  {line}", file=sys.stderr),
    )
    print_geometry_table(all_events)
    print("\nscheme design space (every registered scheme, priced "
          "through the registry):")
    print_scheme_table(all_events)

    print("\nFigure 8 fairness check (CACTI-style area units):")
    check = figure8_area_check()
    print(f"  256KB 4-way L2 + 64KB 32-way SNC : {check.l2_plus_snc:12.0f}")
    print(f"  320KB 5-way L2                   : {check.l2_320k_5way:12.0f}")
    print(f"  384KB 6-way L2                   : {check.l2_384k_6way:12.0f}")
    print(f"  L2+SNC sits between the two      : {check.holds}")
    print("\n(the full 11-benchmark, full-scale sweep: "
          "pytest benchmarks/ --benchmark-only)")


if __name__ == "__main__":
    main()

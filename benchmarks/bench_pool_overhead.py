"""Benchmark the persistent worker pool against per-run spawn pools.

Three questions, answered with wall-clock numbers in ``BENCH_pool.json``:

* **Cold vs warm pool** — a multi-figure sweep run as F separate
  invocations at ``--jobs 4`` (the shape of F CLI runs, or F requests
  to the future eval service).  ``pool="spawn"`` pays pool creation and
  a cold :mod:`repro` import per worker *per invocation*;
  ``pool="persistent"`` pays them once, on the first invocation.  The
  headline field is ``warm_pool_speedup`` (spawn sweep seconds over
  warm-persistent sweep seconds); CI asserts it stays ≥ 1.2x.
* **Shm vs pipe shipping** — the same sweep with shared-memory
  shipping on (default) and forced off (``REPRO_POOL_NO_SHM=1``):
  how many recording bytes crossed each transport, and the wall time
  of each mode.  CI asserts shm moves at least the recording payload
  bytes out of the pickle pipe.
* **Recordings stay warm** — all runs share one pre-warmed trace
  store, so the numbers isolate execution-engine overhead, not
  recording time.

Run as a script to (re)produce ``BENCH_pool.json``::

    PYTHONPATH=src python benchmarks/bench_pool_overhead.py
    PYTHONPATH=src python benchmarks/bench_pool_overhead.py \\
        --refs 30000:50000 --figures 5 10 --jobs 4

or under pytest (with the repo's benchmark config) for the invariant
checks and a tracked timing::

    PYTHONPATH=src python -m pytest benchmarks/bench_pool_overhead.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import tempfile
import time
from pathlib import Path

from repro.eval.api import (
    QUICK_SCALE,
    SimulationScale,
    TraceStore,
    parse_scale,
    pool_stats,
    reset_pool_stats,
    run_figures,
    shutdown_worker_pool,
)

DEFAULT_FIGURES = ("5", "10")
DEFAULT_JOBS = 4


# ------------------------------------------------------------------ timing


def _sweep(figures, scale: SimulationScale, n_jobs: int, pool: str,
           trace_store: TraceStore) -> float:
    """One multi-figure sweep as len(figures) separate invocations —
    the per-run pool cost is exactly what's being measured — returning
    total wall seconds.  No result cache: every run replays for real."""
    started = time.perf_counter()
    for figure in figures:
        run_figures([figure], scale=scale, n_jobs=n_jobs,
                    backend="replay", trace_store=trace_store, pool=pool)
    return time.perf_counter() - started


def warm_trace_store(figures, scale: SimulationScale,
                     root: Path) -> TraceStore:
    """Record every stream the sweep needs, once, inline — the bench
    then measures pure execution-engine overhead on warm recordings."""
    store = TraceStore(root)
    run_figures(figures, scale=scale, n_jobs=1, backend="replay",
                trace_store=store)
    return store


def time_pool_modes(figures, scale: SimulationScale, n_jobs: int,
                    trace_store: TraceStore, repeats: int = 3) -> dict:
    """Spawn-per-run vs persistent cold vs persistent warm, same sweep.

    ``warm_pool_speedup`` is the tentpole number: how much faster the
    multi-figure sweep runs once the workers already exist and have
    imported :mod:`repro`.  Spawn and warm repeats are *interleaved*
    and reduced to medians, so a box-wide load blip hits both modes
    instead of biasing whichever ran during it."""
    shutdown_worker_pool()  # the first persistent run is the cold one
    cold_seconds = _sweep(figures, scale, n_jobs, "persistent",
                          trace_store)
    spawn_runs, warm_runs = [], []
    for _ in range(repeats):
        spawn_runs.append(
            _sweep(figures, scale, n_jobs, "spawn", trace_store))
        warm_runs.append(
            _sweep(figures, scale, n_jobs, "persistent", trace_store))
    spawn_seconds = statistics.median(spawn_runs)
    warm_seconds = statistics.median(warm_runs)
    return {
        "figures": list(figures),
        "n_jobs": n_jobs,
        "repeats": repeats,
        "spawn_seconds": round(spawn_seconds, 3),
        "persistent_cold_seconds": round(cold_seconds, 3),
        "persistent_warm_seconds": round(warm_seconds, 3),
        "warm_pool_speedup": round(spawn_seconds / warm_seconds, 3),
        "cold_start_seconds": round(cold_seconds - warm_seconds, 3),
        "spawn_runs": [round(s, 3) for s in spawn_runs],
        "warm_runs": [round(s, 3) for s in warm_runs],
    }


def time_shipping_modes(figures, scale: SimulationScale, n_jobs: int,
                        trace_store: TraceStore) -> dict:
    """One warm sweep with shm shipping, one with the pipe fallback
    forced — bytes moved over each transport plus wall time, and the
    gzip payload bytes the pipe would otherwise carry."""
    payload_bytes = sum(
        path.stat().st_size
        for path in Path(trace_store.root).glob("*.trace")
    )
    shutdown_worker_pool()
    reset_pool_stats()
    shm_seconds = _sweep(figures, scale, n_jobs, "persistent",
                         trace_store)
    stats = pool_stats()
    shm = {"seconds": round(shm_seconds, 3),
           "shipments": stats.shm_shipments,
           "bytes": stats.shm_bytes,
           "pipe_bytes": stats.pipe_bytes}
    shutdown_worker_pool()  # workers must spawn with the override set
    os.environ["REPRO_POOL_NO_SHM"] = "1"
    try:
        reset_pool_stats()
        pipe_seconds = _sweep(figures, scale, n_jobs, "persistent",
                              trace_store)
        stats = pool_stats()
        pipe = {"seconds": round(pipe_seconds, 3),
                "shipments": stats.pipe_shipments,
                "bytes": stats.pipe_bytes,
                "shm_bytes": stats.shm_bytes}
    finally:
        del os.environ["REPRO_POOL_NO_SHM"]
        shutdown_worker_pool()
    return {"payload_bytes": payload_bytes, "shm": shm, "pipe": pipe}


def bench_pool(figures=DEFAULT_FIGURES, scale: SimulationScale = None,
               n_jobs: int = DEFAULT_JOBS, trace_dir: Path = None,
               ) -> dict:
    """The whole payload: warm the store, time the pool modes, time the
    shipping modes."""
    scale = scale or QUICK_SCALE
    if trace_dir is None:
        with tempfile.TemporaryDirectory(prefix="bench-pool-") as tmp:
            return bench_pool(figures, scale, n_jobs, Path(tmp))
    store = warm_trace_store(figures, scale, trace_dir)
    modes = time_pool_modes(figures, scale, n_jobs, store)
    shipping = time_shipping_modes(figures, scale, n_jobs, store)
    shutdown_worker_pool()
    return {**modes, "shipping": shipping}


# ------------------------------------------------------------------ pytest


def test_warm_pool_beats_spawn_per_run(tmp_path):
    """The acceptance bar: reusing warm workers across a multi-figure
    --jobs 4 sweep must beat building a spawn pool per run by ≥ 1.2x
    (the avoided cost is pool creation + per-worker repro imports)."""
    scale = SimulationScale(warmup_refs=30_000, measure_refs=50_000)
    result = bench_pool(DEFAULT_FIGURES, scale, DEFAULT_JOBS, tmp_path)
    assert result["warm_pool_speedup"] >= 1.2
    assert result["persistent_warm_seconds"] < result["spawn_seconds"]


def test_shm_shipping_moves_the_payload_out_of_the_pipe(tmp_path):
    """Zero-copy accounting: with shm on, the segments must carry at
    least the recording payload bytes and the pipe must carry none of
    them; with shm forced off, the payloads ride the pipe instead."""
    scale = SimulationScale(warmup_refs=30_000, measure_refs=50_000)
    figures = DEFAULT_FIGURES[:1]
    store = warm_trace_store(figures, scale, tmp_path)
    shipping = time_shipping_modes(figures, scale, DEFAULT_JOBS, store)
    assert shipping["payload_bytes"] > 0
    assert shipping["shm"]["bytes"] >= shipping["payload_bytes"]
    assert shipping["shm"]["pipe_bytes"] == 0
    assert shipping["pipe"]["shm_bytes"] == 0
    assert shipping["pipe"]["bytes"] >= shipping["payload_bytes"]


def test_bench_payload_shape(tmp_path):
    """The JSON fields CI's asserts and the perf ledger rely on."""
    scale = SimulationScale(warmup_refs=30_000, measure_refs=50_000)
    result = bench_pool(("5",), scale, 2, tmp_path)
    for field in ("spawn_seconds", "persistent_cold_seconds",
                  "persistent_warm_seconds", "warm_pool_speedup",
                  "cold_start_seconds", "shipping"):
        assert field in result
    assert result["shipping"]["shm"]["shipments"] >= 1


# ------------------------------------------------------------------ script


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=parse_scale, default=QUICK_SCALE,
                        help="'full', 'quick' (default) or "
                             "'warmup:measure' reference counts")
    parser.add_argument("--figures", nargs="+", default=list(DEFAULT_FIGURES),
                        help=f"figures to sweep (default "
                             f"{' '.join(DEFAULT_FIGURES)})")
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                        help=f"workers per run (default {DEFAULT_JOBS})")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_pool.json"),
                        help="result file (default ./BENCH_pool.json)")
    args = parser.parse_args()

    print(f"pool overhead: figures {' '.join(args.figures)} at "
          f"{args.refs.warmup_refs}+{args.refs.measure_refs} refs, "
          f"--jobs {args.jobs}, warm trace store")
    result = bench_pool(tuple(args.figures), args.refs, args.jobs)
    print(f"  spawn-per-run   {result['spawn_seconds']:7.2f}s")
    print(f"  persistent cold {result['persistent_cold_seconds']:7.2f}s")
    print(f"  persistent warm {result['persistent_warm_seconds']:7.2f}s "
          f"({result['warm_pool_speedup']:.2f}x over spawn)")
    shipping = result["shipping"]
    print(f"  shipping: {shipping['shm']['shipments']} shm shipments "
          f"{shipping['shm']['bytes'] / 1e6:.1f} MB "
          f"({shipping['shm']['seconds']:.2f}s sweep) vs pipe "
          f"{shipping['pipe']['bytes'] / 1e6:.1f} MB "
          f"({shipping['pipe']['seconds']:.2f}s sweep)")

    payload = {
        "benchmark": "pool_overhead",
        **result,
        "scale": {"warmup_refs": args.refs.warmup_refs,
                  "measure_refs": args.refs.measure_refs},
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"warm pool speedup {result['warm_pool_speedup']:.2f}x "
          f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark the persistent worker pool against per-run spawn pools.

Three questions, answered with wall-clock numbers in ``BENCH_pool.json``:

* **Cold vs warm pool** — a multi-figure sweep run as F separate
  invocations at ``--jobs 4`` (the shape of F CLI runs, or F requests
  to the future eval service).  ``pool="spawn"`` pays pool creation and
  a cold :mod:`repro` import per worker *per invocation*;
  ``pool="persistent"`` pays them once, on the first invocation.  The
  headline field is ``warm_pool_speedup`` (spawn sweep seconds over
  warm-persistent sweep seconds); CI asserts it stays ≥ 1.2x.
* **Shm vs pipe shipping** — the same sweep with shared-memory
  shipping on (default) and forced off (``REPRO_POOL_NO_SHM=1``):
  how many recording bytes crossed each transport, and the wall time
  of each mode.  CI asserts shm moves at least the recording payload
  bytes out of the pickle pipe.
* **Recordings stay warm** — all runs share one pre-warmed trace
  store, so the numbers isolate execution-engine overhead, not
  recording time.
* **Lane sharding** — the worst case for recording-level parallelism:
  ONE workload swept across 16 SNC configurations at ``--jobs 4``.
  Unsharded (``REPRO_LANE_SHARDS=off``) that is one batch pass on one
  process no matter the job count; sharded (the default) the
  scheduler splits the pass into per-worker lane shards over the same
  shipped recording.  The headline field is ``shard_warm_speedup``
  (unsharded warm seconds over sharded warm seconds); CI asserts it
  stays ≥ 1.5x on its multi-core runners (the payload's ``cpus`` field
  says what the box could do — a 1-CPU host can't run shards
  concurrently).

Run as a script to (re)produce ``BENCH_pool.json``::

    PYTHONPATH=src python benchmarks/bench_pool_overhead.py
    PYTHONPATH=src python benchmarks/bench_pool_overhead.py \\
        --refs 30000:50000 --figures 5 10 --jobs 4

or under pytest (with the repo's benchmark config) for the invariant
checks and a tracked timing::

    PYTHONPATH=src python -m pytest benchmarks/bench_pool_overhead.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import tempfile
import time
from pathlib import Path

from repro.eval.api import (
    ExperimentJob,
    QUICK_SCALE,
    SNCSpec,
    SimulationScale,
    TraceStore,
    events_to_dict,
    merge_jobs,
    parse_scale,
    pool_stats,
    reset_pool_stats,
    run_figures,
    run_tasks,
    shutdown_worker_pool,
)

DEFAULT_FIGURES = ("5", "10")
DEFAULT_JOBS = 4

#: The shard sweep's shape: ONE workload, many SNC configurations —
#: after merge_jobs that is a single task (one recording), so without
#: lane sharding no job count can parallelize it.
SHARD_WORKLOAD = "equake"
SHARD_CONFIGS = 16


# ------------------------------------------------------------------ timing


def _sweep(figures, scale: SimulationScale, n_jobs: int, pool: str,
           trace_store: TraceStore) -> float:
    """One multi-figure sweep as len(figures) separate invocations —
    the per-run pool cost is exactly what's being measured — returning
    total wall seconds.  No result cache: every run replays for real."""
    started = time.perf_counter()
    for figure in figures:
        run_figures([figure], scale=scale, n_jobs=n_jobs,
                    backend="replay", trace_store=trace_store, pool=pool)
    return time.perf_counter() - started


def warm_trace_store(figures, scale: SimulationScale,
                     root: Path) -> TraceStore:
    """Record every stream the sweep needs, once, inline — the bench
    then measures pure execution-engine overhead on warm recordings."""
    store = TraceStore(root)
    run_figures(figures, scale=scale, n_jobs=1, backend="replay",
                trace_store=store)
    return store


def time_pool_modes(figures, scale: SimulationScale, n_jobs: int,
                    trace_store: TraceStore, repeats: int = 3) -> dict:
    """Spawn-per-run vs persistent cold vs persistent warm, same sweep.

    ``warm_pool_speedup`` is the tentpole number: how much faster the
    multi-figure sweep runs once the workers already exist and have
    imported :mod:`repro`.  Spawn and warm repeats are *interleaved*
    and reduced to medians, so a box-wide load blip hits both modes
    instead of biasing whichever ran during it."""
    shutdown_worker_pool()  # the first persistent run is the cold one
    cold_seconds = _sweep(figures, scale, n_jobs, "persistent",
                          trace_store)
    spawn_runs, warm_runs = [], []
    for _ in range(repeats):
        spawn_runs.append(
            _sweep(figures, scale, n_jobs, "spawn", trace_store))
        warm_runs.append(
            _sweep(figures, scale, n_jobs, "persistent", trace_store))
    spawn_seconds = statistics.median(spawn_runs)
    warm_seconds = statistics.median(warm_runs)
    return {
        "figures": list(figures),
        "n_jobs": n_jobs,
        "repeats": repeats,
        "spawn_seconds": round(spawn_seconds, 3),
        "persistent_cold_seconds": round(cold_seconds, 3),
        "persistent_warm_seconds": round(warm_seconds, 3),
        "warm_pool_speedup": round(spawn_seconds / warm_seconds, 3),
        "cold_start_seconds": round(cold_seconds - warm_seconds, 3),
        "spawn_runs": [round(s, 3) for s in spawn_runs],
        "warm_runs": [round(s, 3) for s in warm_runs],
    }


def time_shipping_modes(figures, scale: SimulationScale, n_jobs: int,
                        trace_store: TraceStore) -> dict:
    """One warm sweep with shm shipping, one with the pipe fallback
    forced — bytes moved over each transport plus wall time, and the
    gzip payload bytes the pipe would otherwise carry."""
    payload_bytes = sum(
        path.stat().st_size
        for path in Path(trace_store.root).glob("*.trace")
    )
    shutdown_worker_pool()
    reset_pool_stats()
    shm_seconds = _sweep(figures, scale, n_jobs, "persistent",
                         trace_store)
    stats = pool_stats()
    shm = {"seconds": round(shm_seconds, 3),
           "shipments": stats.shm_shipments,
           "bytes": stats.shm_bytes,
           "pipe_bytes": stats.pipe_bytes}
    shutdown_worker_pool()  # workers must spawn with the override set
    os.environ["REPRO_POOL_NO_SHM"] = "1"
    try:
        reset_pool_stats()
        pipe_seconds = _sweep(figures, scale, n_jobs, "persistent",
                              trace_store)
        stats = pool_stats()
        pipe = {"seconds": round(pipe_seconds, 3),
                "shipments": stats.pipe_shipments,
                "bytes": stats.pipe_bytes,
                "shm_bytes": stats.shm_bytes}
    finally:
        del os.environ["REPRO_POOL_NO_SHM"]
        shutdown_worker_pool()
    return {"payload_bytes": payload_bytes, "shm": shm, "pipe": pipe}


def shard_sweep_tasks(scale: SimulationScale,
                      n_configs: int = SHARD_CONFIGS):
    """One merged task sweeping ``n_configs`` distinct SNC geometries on
    a single workload.  Sizes x entry widths keep every entry count a
    power of two (an SNC invariant)."""
    specs = tuple(
        SNCSpec(key=f"lru{kb}e{entry_bytes}", size_bytes=kb * 1024,
                entry_bytes=entry_bytes)
        for kb in (4, 8, 16, 32, 64, 128, 256, 512)
        for entry_bytes in (2, 4)
    )[:n_configs]
    job = ExperimentJob(figure="shard-sweep", schemes=("otp",),
                        workload=SHARD_WORKLOAD, snc_configs=specs,
                        scale=scale)
    return merge_jobs([job])


def _shard_run(tasks, n_jobs: int, pool: str,
               trace_store: TraceStore) -> tuple[float, str]:
    """One uncached run of the merged sweep task; wall seconds plus a
    canonical serialization of the results (the parity fingerprint)."""
    started = time.perf_counter()
    results = run_tasks(tasks, n_jobs=n_jobs, backend="replay",
                        trace_store=trace_store, pool=pool)
    seconds = time.perf_counter() - started
    digest = json.dumps([events_to_dict(r.events) for r in results])
    return seconds, digest


def time_shard_modes(scale: SimulationScale, n_jobs: int,
                     trace_store: TraceStore, repeats: int = 3,
                     n_configs: int = SHARD_CONFIGS) -> dict:
    """Lane sharding on the worst case for recording-level parallelism.

    The sweep is one workload x ``n_configs`` configurations — a single
    merged task, a single recording.  Unsharded
    (``REPRO_LANE_SHARDS=off``) that batch pass runs on one process no
    matter ``n_jobs``; sharded (the default) the scheduler deals the
    configuration lanes across the warm pool.  Runs are interleaved and
    reduced to medians like :func:`time_pool_modes`;
    ``shard_warm_speedup`` is unsharded-warm over sharded-warm seconds
    on the same warm pool.  Every mode's results are checked
    byte-identical before any number is reported.

    The speedup is compute parallelism, so it needs cores: the payload
    carries ``cpus`` and CI only enforces the 1.5x bar on multi-core
    runners (a 1-CPU box still gains ~1.2x — the sharded path skips
    the parent-side recording decode — but can't run shards
    concurrently)."""
    tasks = shard_sweep_tasks(scale, n_configs)
    # Warm the recording inline, then the pool (untimed), so the timed
    # runs measure pure pricing.
    _, baseline = _shard_run(tasks, 1, "persistent", trace_store)
    shutdown_worker_pool()
    _shard_run(tasks, n_jobs, "persistent", trace_store)
    unsharded_runs, sharded_runs, spawn_runs = [], [], []
    try:
        for _ in range(repeats):
            os.environ["REPRO_LANE_SHARDS"] = "off"
            seconds, digest = _shard_run(tasks, n_jobs, "persistent",
                                         trace_store)
            assert digest == baseline, "unsharded warm diverged"
            unsharded_runs.append(seconds)
            os.environ.pop("REPRO_LANE_SHARDS", None)
            seconds, digest = _shard_run(tasks, n_jobs, "persistent",
                                         trace_store)
            assert digest == baseline, "sharded warm diverged"
            sharded_runs.append(seconds)
            seconds, digest = _shard_run(tasks, n_jobs, "spawn",
                                         trace_store)
            assert digest == baseline, "sharded spawn diverged"
            spawn_runs.append(seconds)
    finally:
        os.environ.pop("REPRO_LANE_SHARDS", None)
    unsharded_seconds = statistics.median(unsharded_runs)
    sharded_seconds = statistics.median(sharded_runs)
    spawn_seconds = statistics.median(spawn_runs)
    return {
        "workload": SHARD_WORKLOAD,
        "n_configs": n_configs,
        "n_jobs": n_jobs,
        "cpus": os.cpu_count() or 1,
        "repeats": repeats,
        "unsharded_warm_seconds": round(unsharded_seconds, 3),
        "sharded_warm_seconds": round(sharded_seconds, 3),
        "sharded_spawn_seconds": round(spawn_seconds, 3),
        "shard_warm_speedup": round(unsharded_seconds / sharded_seconds,
                                    3),
        "unsharded_runs": [round(s, 3) for s in unsharded_runs],
        "sharded_runs": [round(s, 3) for s in sharded_runs],
        "spawn_runs": [round(s, 3) for s in spawn_runs],
    }


def bench_pool(figures=DEFAULT_FIGURES, scale: SimulationScale = None,
               n_jobs: int = DEFAULT_JOBS, trace_dir: Path = None,
               ) -> dict:
    """The whole payload: warm the store, time the pool modes, time the
    shipping modes."""
    scale = scale or QUICK_SCALE
    if trace_dir is None:
        with tempfile.TemporaryDirectory(prefix="bench-pool-") as tmp:
            return bench_pool(figures, scale, n_jobs, Path(tmp))
    store = warm_trace_store(figures, scale, trace_dir)
    modes = time_pool_modes(figures, scale, n_jobs, store)
    shipping = time_shipping_modes(figures, scale, n_jobs, store)
    shard = time_shard_modes(scale, n_jobs, store)
    shutdown_worker_pool()
    return {**modes, "shipping": shipping, "shard_sweep": shard,
            "shard_warm_speedup": shard["shard_warm_speedup"]}


# ------------------------------------------------------------------ pytest


def test_warm_pool_beats_spawn_per_run(tmp_path):
    """The acceptance bar: reusing warm workers across a multi-figure
    --jobs 4 sweep must beat building a spawn pool per run by ≥ 1.2x
    (the avoided cost is pool creation + per-worker repro imports)."""
    scale = SimulationScale(warmup_refs=30_000, measure_refs=50_000)
    result = bench_pool(DEFAULT_FIGURES, scale, DEFAULT_JOBS, tmp_path)
    assert result["warm_pool_speedup"] >= 1.2
    assert result["persistent_warm_seconds"] < result["spawn_seconds"]


def test_shm_shipping_moves_the_payload_out_of_the_pipe(tmp_path):
    """Zero-copy accounting: with shm on, the segments must carry at
    least the recording payload bytes and the pipe must carry none of
    them; with shm forced off, the payloads ride the pipe instead."""
    scale = SimulationScale(warmup_refs=30_000, measure_refs=50_000)
    figures = DEFAULT_FIGURES[:1]
    store = warm_trace_store(figures, scale, tmp_path)
    shipping = time_shipping_modes(figures, scale, DEFAULT_JOBS, store)
    assert shipping["payload_bytes"] > 0
    assert shipping["shm"]["bytes"] >= shipping["payload_bytes"]
    assert shipping["shm"]["pipe_bytes"] == 0
    assert shipping["pipe"]["shm_bytes"] == 0
    assert shipping["pipe"]["bytes"] >= shipping["payload_bytes"]


def test_lane_sharding_engages_and_matches(tmp_path):
    """The shard sweep's invariants without timing bars: the 16-config
    single-task sweep at --jobs 4 must actually split into lane shards
    on the warm pool, and the sharded results must serialize
    byte-identically to the inline single-process run."""
    scale = SimulationScale(warmup_refs=30_000, measure_refs=50_000)
    store = TraceStore(tmp_path)
    tasks = shard_sweep_tasks(scale)
    _, baseline = _shard_run(tasks, 1, "persistent", store)
    shutdown_worker_pool()
    reset_pool_stats()
    _, digest = _shard_run(tasks, DEFAULT_JOBS, "persistent", store)
    assert digest == baseline
    assert pool_stats().lane_shards >= DEFAULT_JOBS
    shutdown_worker_pool()


def test_bench_payload_shape(tmp_path):
    """The JSON fields CI's asserts and the perf ledger rely on."""
    scale = SimulationScale(warmup_refs=30_000, measure_refs=50_000)
    result = bench_pool(("5",), scale, 2, tmp_path)
    for field in ("spawn_seconds", "persistent_cold_seconds",
                  "persistent_warm_seconds", "warm_pool_speedup",
                  "cold_start_seconds", "shipping", "shard_sweep",
                  "shard_warm_speedup"):
        assert field in result
    assert result["shipping"]["shm"]["shipments"] >= 1
    shard = result["shard_sweep"]
    for field in ("unsharded_warm_seconds", "sharded_warm_seconds",
                  "sharded_spawn_seconds", "shard_warm_speedup"):
        assert field in shard
    assert shard["n_configs"] == SHARD_CONFIGS


# ------------------------------------------------------------------ script


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=parse_scale, default=QUICK_SCALE,
                        help="'full', 'quick' (default) or "
                             "'warmup:measure' reference counts")
    parser.add_argument("--figures", nargs="+", default=list(DEFAULT_FIGURES),
                        help=f"figures to sweep (default "
                             f"{' '.join(DEFAULT_FIGURES)})")
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                        help=f"workers per run (default {DEFAULT_JOBS})")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_pool.json"),
                        help="result file (default ./BENCH_pool.json)")
    args = parser.parse_args()

    print(f"pool overhead: figures {' '.join(args.figures)} at "
          f"{args.refs.warmup_refs}+{args.refs.measure_refs} refs, "
          f"--jobs {args.jobs}, warm trace store")
    result = bench_pool(tuple(args.figures), args.refs, args.jobs)
    print(f"  spawn-per-run   {result['spawn_seconds']:7.2f}s")
    print(f"  persistent cold {result['persistent_cold_seconds']:7.2f}s")
    print(f"  persistent warm {result['persistent_warm_seconds']:7.2f}s "
          f"({result['warm_pool_speedup']:.2f}x over spawn)")
    shipping = result["shipping"]
    print(f"  shipping: {shipping['shm']['shipments']} shm shipments "
          f"{shipping['shm']['bytes'] / 1e6:.1f} MB "
          f"({shipping['shm']['seconds']:.2f}s sweep) vs pipe "
          f"{shipping['pipe']['bytes'] / 1e6:.1f} MB "
          f"({shipping['pipe']['seconds']:.2f}s sweep)")
    shard = result["shard_sweep"]
    print(f"  shard sweep ({shard['workload']} x {shard['n_configs']} "
          f"configs, 1 task, --jobs {shard['n_jobs']}):")
    print(f"    unsharded warm {shard['unsharded_warm_seconds']:7.2f}s")
    print(f"    sharded warm   {shard['sharded_warm_seconds']:7.2f}s "
          f"({shard['shard_warm_speedup']:.2f}x)")
    print(f"    sharded spawn  {shard['sharded_spawn_seconds']:7.2f}s")

    payload = {
        "benchmark": "pool_overhead",
        **result,
        "scale": {"warmup_refs": args.refs.warmup_refs,
                  "measure_refs": args.refs.measure_refs},
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"warm pool speedup {result['warm_pool_speedup']:.2f}x, "
          f"shard warm speedup {result['shard_warm_speedup']:.2f}x "
          f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

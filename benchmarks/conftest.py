"""Shared fixtures for the figure-regeneration benchmarks.

The trace simulation runs once per pytest session (it feeds every figure);
each bench file prices its own figure from the shared events, registers the
paper-vs-measured table, and benchmarks a representative piece of the
pipeline.  All registered tables print in the terminal summary, and are
also written to ``benchmarks/results/`` so a plain file records the run.

Scale control: set ``REPRO_BENCH_REFS=warmup:measure`` (e.g. ``30000:50000``)
to shrink the trace for a quick pass; the default is the full scale used
for EXPERIMENTS.md.  Set ``REPRO_BENCH_JOBS=N`` (or ``auto`` for one
worker per CPU) to fan the per-benchmark simulations over N worker
processes (the same scheduler ``python -m repro.eval --jobs N`` uses),
``REPRO_BENCH_POOL=persistent|spawn`` to pick how those workers are
hosted (default persistent — the warm process-wide pool),
``REPRO_BENCH_CACHE=1`` to reuse the on-disk result cache across
benchmark sessions, and ``REPRO_BENCH_BACKEND=replay`` to produce the
events through the record/replay engine (with the on-disk trace store;
results are byte-identical to the default fused path).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.api import (
    BACKENDS,
    POOLS,
    ResultCache,
    SimulationScale,
    TraceStore,
    plan_jobs,
    run_jobs,
)

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TABLES: dict[str, str] = {}


def _scale_from_env() -> SimulationScale:
    raw = os.environ.get("REPRO_BENCH_REFS")
    if not raw:
        return SimulationScale()
    warmup, measure = (int(part) for part in raw.split(":"))
    return SimulationScale(warmup_refs=warmup, measure_refs=measure)


@pytest.fixture(scope="session")
def bench_events():
    """All 11 benchmarks simulated once; every figure prices these.

    Declares every figure's jobs and runs them through the experiment
    scheduler, honoring the REPRO_BENCH_* environment knobs above.
    """
    jobs = plan_jobs(scale=_scale_from_env())
    raw_jobs = os.environ.get("REPRO_BENCH_JOBS", "1")
    if raw_jobs == "auto":
        n_jobs = os.cpu_count() or 1
    else:
        try:
            n_jobs = int(raw_jobs)
            if n_jobs < 1:
                raise ValueError
        except ValueError:
            raise pytest.UsageError(
                "REPRO_BENCH_JOBS must be a positive integer or "
                f"'auto', got {raw_jobs!r}"
            ) from None
    cache = None
    if os.environ.get("REPRO_BENCH_CACHE") == "1":
        cache = ResultCache()
    backend = os.environ.get("REPRO_BENCH_BACKEND", "fused")
    if backend not in BACKENDS:
        raise pytest.UsageError(
            f"REPRO_BENCH_BACKEND must be one of {BACKENDS}, "
            f"got {backend!r}"
        )
    pool = os.environ.get("REPRO_BENCH_POOL", "persistent")
    if pool not in POOLS:
        raise pytest.UsageError(
            f"REPRO_BENCH_POOL must be one of {POOLS}, got {pool!r}"
        )
    trace_store = TraceStore() if backend == "replay" else None
    return run_jobs(jobs, n_jobs=n_jobs, cache=cache, backend=backend,
                    trace_store=trace_store, pool=pool)


@pytest.fixture(scope="session")
def record_figure():
    """Register a rendered figure table for the terminal summary."""

    def _record(figure_id: str, table: str) -> None:
        _TABLES[figure_id] = table
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{figure_id}.txt").write_text(table + "\n")

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.section("reproduced figures (paper vs measured)")
    for figure_id in sorted(_TABLES):
        terminalreporter.write_line(_TABLES[figure_id])
        terminalreporter.write_line("")

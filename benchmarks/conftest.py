"""Shared fixtures for the figure-regeneration benchmarks.

The trace simulation runs once per pytest session (it feeds every figure);
each bench file prices its own figure from the shared events, registers the
paper-vs-measured table, and benchmarks a representative piece of the
pipeline.  All registered tables print in the terminal summary, and are
also written to ``benchmarks/results/`` so a plain file records the run.

Scale control: set ``REPRO_BENCH_REFS=warmup:measure`` (e.g. ``30000:50000``)
to shrink the trace for a quick pass; the default is the full scale used
for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.experiments import run_all_benchmarks
from repro.eval.pipeline import SimulationScale

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TABLES: dict[str, str] = {}


def _scale_from_env() -> SimulationScale:
    raw = os.environ.get("REPRO_BENCH_REFS")
    if not raw:
        return SimulationScale()
    warmup, measure = (int(part) for part in raw.split(":"))
    return SimulationScale(warmup_refs=warmup, measure_refs=measure)


@pytest.fixture(scope="session")
def bench_events():
    """All 11 benchmarks simulated once; every figure prices these."""
    return run_all_benchmarks(scale=_scale_from_env())


@pytest.fixture(scope="session")
def record_figure():
    """Register a rendered figure table for the terminal summary."""

    def _record(figure_id: str, table: str) -> None:
        _TABLES[figure_id] = table
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{figure_id}.txt").write_text(table + "\n")

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.section("reproduced figures (paper vs measured)")
    for figure_id in sorted(_TABLES):
        terminalreporter.write_line(_TABLES[figure_id])
        terminalreporter.write_line("")

"""Figure 8: equal-area comparison — give XOM a 384KB 6-way L2 (same area
as 256KB L2 + the SNC, per the CACTI model) and it still loses to OTP.

Also asserts the §5.4 area-equivalence claim itself via the area model.
"""

import pytest

from repro.area.cacti import figure8_area_check
from repro.eval.api import figure8, format_figure


def test_figure8_shape(bench_events, record_figure, benchmark):
    result = benchmark(figure8, bench_events)
    record_figure("figure8", format_figure(result))

    xom256 = result.series_by_label("XOM-256KL2")
    xom384 = result.series_by_label("XOM-384KL2")
    snc = result.series_by_label("SNC-32way-LRU-256KL2")

    # The paper's conclusion: spending the area on an SNC beats spending
    # it on more L2 capacity.
    assert snc.measured_avg < xom384.measured_avg < xom256.measured_avg
    assert snc.measured_avg == pytest.approx(1.02, abs=0.05)

    # gcc/vortex: working sets that fit 384KB make XOM-384K *faster than
    # the 256KB baseline* — the paper's 0.96/0.93 speedups.
    assert xom384.measured["gcc"] < 1.0
    # art/equake: streaming footprints get nothing from a bigger L2.
    for name in ("art", "equake"):
        assert xom384.measured[name] == pytest.approx(
            xom256.measured[name], abs=0.02
        )


def test_area_equivalence_holds(benchmark):
    check = benchmark(figure8_area_check)
    assert check.holds, (
        "the Figure 8 comparison is only fair if 256KB L2 + SNC sits "
        "between the 320KB and 384KB L2s in area"
    )

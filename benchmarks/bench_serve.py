"""Benchmark evaluation-as-a-service against cold CLI invocations.

Three questions, answered with wall-clock numbers in
``BENCH_serve.json``:

* **Warm daemon vs cold CLI** — the same figure sweep requested from a
  long-lived ``repro.eval serve`` daemon (caches hot after the first
  request) versus fresh ``python -m repro.eval`` subprocesses that pay
  interpreter start, :mod:`repro` imports, trace recording and pricing
  every time.  The headline field is ``serve_warm_speedup`` (cold CLI
  median over warm request median); CI asserts it stays ≥ 1.5x.
* **First-request cost** — what the daemon's *first* client pays (the
  one real execution everyone afterwards shares), reported as
  ``daemon_first_request_seconds``.
* **Concurrent fan-out** — ``--clients`` threads requesting the same
  sweep from the warm daemon at once: every reply must serialize
  byte-identically, and the payload reports the aggregate
  ``requests_per_second`` plus the daemon's own stats counters.

Run as a script to (re)produce ``BENCH_serve.json``::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py \\
        --refs 30000:50000 --figures 5 10 --reps 3 --clients 4

or under pytest (with the repo's benchmark config) for the invariant
checks and a tracked timing::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.eval.api import (
    QUICK_SCALE,
    EvalClient,
    ResultCache,
    SimulationScale,
    TraceStore,
    events_to_dict,
    merge_jobs,
    parse_scale,
    plan_jobs,
    start_server_thread,
)

DEFAULT_FIGURES = ("5", "10")
DEFAULT_JOBS = 2
DEFAULT_REPS = 3
DEFAULT_CLIENTS = 4

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


# ------------------------------------------------------------------ cold CLI


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def time_cold_cli(figures, scale: SimulationScale, n_jobs: int,
                  reps: int) -> dict:
    """Fresh ``python -m repro.eval`` subprocess per rep, fresh trace
    dir, no result cache: the full cost a scripted sweep pays without
    the daemon."""
    runs = []
    env = _cli_env()
    for _ in range(reps):
        with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
            started = time.perf_counter()
            subprocess.run(
                [sys.executable, "-m", "repro.eval",
                 "--figures", *figures,
                 "--scale",
                 f"{scale.warmup_refs}:{scale.measure_refs}",
                 "--jobs", str(n_jobs), "--no-cache",
                 "--trace-cache-dir", str(tmp)],
                env=env, check=True, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            runs.append(time.perf_counter() - started)
    return {"runs": [round(s, 3) for s in runs],
            "seconds": round(statistics.median(runs), 3)}


# ------------------------------------------------------------------ daemon


def sweep_tasks(figures, scale: SimulationScale):
    figure_ids = [fig if fig.startswith("figure") else f"figure{fig}"
                  for fig in figures]
    return merge_jobs(plan_jobs(figure_ids, scale=scale))


def _digest(results) -> str:
    return json.dumps([events_to_dict(r.events) for r in results])


def time_warm_daemon(handle, tasks, reps: int) -> dict:
    """First request executes for real; the timed reps after it must be
    pure hot-LRU serving (``executed == 0``)."""
    with EvalClient(handle.address) as client:
        started = time.perf_counter()
        baseline = _digest(client.run_tasks(tasks))
        first_seconds = time.perf_counter() - started
        runs = []
        for _ in range(reps):
            started = time.perf_counter()
            results = client.run_tasks(tasks)
            runs.append(time.perf_counter() - started)
            counts = client.last_request["counts"]
            assert counts["executed"] == 0, counts
            assert _digest(results) == baseline, "warm refetch diverged"
    return {
        "first_request_seconds": round(first_seconds, 3),
        "runs": [round(s, 4) for s in runs],
        "seconds": round(statistics.median(runs), 4),
        "digest": baseline,
    }


def time_concurrent_clients(handle, tasks, n_clients: int,
                            baseline: str) -> dict:
    """``n_clients`` threads, each its own connection, all asking for
    the full warm sweep at once."""
    digests: list[str | None] = [None] * n_clients
    errors: list[Exception] = []

    def one_client(slot: int) -> None:
        try:
            with EvalClient(handle.address) as client:
                digests[slot] = _digest(client.run_tasks(tasks))
        except Exception as err:  # surfaced by the assert below
            errors.append(err)

    threads = [threading.Thread(target=one_client, args=(slot,))
               for slot in range(n_clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    assert not errors, errors
    assert all(digest == baseline for digest in digests), (
        "concurrent replies diverged"
    )
    return {
        "clients": n_clients,
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(n_clients / wall, 2),
        "identical_replies": True,
    }


def bench_serve(figures=DEFAULT_FIGURES, scale: SimulationScale = None,
                n_jobs: int = DEFAULT_JOBS, reps: int = DEFAULT_REPS,
                n_clients: int = DEFAULT_CLIENTS,
                work_dir: Path = None) -> dict:
    """The whole payload: cold CLI reps, then one daemon serving the
    warm reps and the concurrent fan-out."""
    scale = scale or QUICK_SCALE
    if work_dir is None:
        with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
            return bench_serve(figures, scale, n_jobs, reps, n_clients,
                               Path(tmp))
    tasks = sweep_tasks(figures, scale)
    cold = time_cold_cli(figures, scale, n_jobs, reps)
    with start_server_thread(
        n_jobs=n_jobs, backend="replay",
        cache=ResultCache(work_dir / "cache"),
        trace_store=TraceStore(work_dir / "traces"),
    ) as handle:
        warm = time_warm_daemon(handle, tasks, reps)
        concurrent = time_concurrent_clients(handle, tasks, n_clients,
                                             warm.pop("digest"))
        with EvalClient(handle.address) as client:
            server_stats = client.stats()
    server_stats.pop("worker_pids", None)
    return {
        "figures": list(figures),
        "n_jobs": n_jobs,
        "reps": reps,
        "n_tasks": len(tasks),
        "cold_cli_seconds": cold["seconds"],
        "cold_cli_runs": cold["runs"],
        "daemon_first_request_seconds": warm["first_request_seconds"],
        "serve_warm_seconds": warm["seconds"],
        "serve_warm_runs": warm["runs"],
        "serve_warm_speedup": round(
            cold["seconds"] / max(warm["seconds"], 1e-9), 3
        ),
        "concurrent": concurrent,
        "server_stats": server_stats,
    }


# ------------------------------------------------------------------ pytest


def test_warm_daemon_beats_cold_cli(tmp_path):
    """The acceptance bar: a warm daemon request (hot LRU, zero
    executions) must beat a cold CLI subprocess by ≥ 1.5x — the avoided
    cost is interpreter start, imports, recording and pricing, so the
    real margin is orders of magnitude."""
    result = bench_serve(("5",), QUICK_SCALE, 1, reps=1, n_clients=2,
                         work_dir=tmp_path)
    assert result["serve_warm_speedup"] >= 1.5
    assert result["serve_warm_seconds"] < result["cold_cli_seconds"]


def test_concurrent_replies_identical(tmp_path):
    """Every concurrent subscriber gets byte-identical events."""
    tasks = sweep_tasks(("5",), QUICK_SCALE)
    with start_server_thread(
        n_jobs=1, backend="replay",
        trace_store=TraceStore(tmp_path / "traces"),
    ) as handle:
        warm = time_warm_daemon(handle, tasks, reps=1)
        concurrent = time_concurrent_clients(handle, tasks, 3,
                                             warm.pop("digest"))
    assert concurrent["identical_replies"] is True
    assert concurrent["clients"] == 3


def test_bench_payload_shape(tmp_path):
    """The JSON fields CI's asserts and the perf ledger rely on."""
    result = bench_serve(("5",), QUICK_SCALE, 1, reps=1, n_clients=2,
                         work_dir=tmp_path)
    for field in ("cold_cli_seconds", "daemon_first_request_seconds",
                  "serve_warm_seconds", "serve_warm_speedup",
                  "concurrent", "server_stats"):
        assert field in result
    stats = result["server_stats"]
    assert stats["tasks_executed"] == result["n_tasks"]
    assert stats["tasks_hot"] >= result["n_tasks"]
    assert result["concurrent"]["requests_per_second"] > 0


# ------------------------------------------------------------------ script


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refs", type=parse_scale, default=QUICK_SCALE,
                        help="'full', 'quick' (default) or "
                             "'warmup:measure' reference counts")
    parser.add_argument("--figures", nargs="+",
                        default=list(DEFAULT_FIGURES),
                        help=f"figures to sweep (default "
                             f"{' '.join(DEFAULT_FIGURES)})")
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                        help=f"daemon/CLI workers (default "
                             f"{DEFAULT_JOBS})")
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS,
                        help=f"timed repetitions per mode (default "
                             f"{DEFAULT_REPS})")
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS,
                        help=f"concurrent clients (default "
                             f"{DEFAULT_CLIENTS})")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_serve.json"),
                        help="result file (default ./BENCH_serve.json)")
    args = parser.parse_args()

    print(f"serve overhead: figures {' '.join(args.figures)} at "
          f"{args.refs.warmup_refs}+{args.refs.measure_refs} refs, "
          f"--jobs {args.jobs}, {args.reps} reps, "
          f"{args.clients} clients")
    result = bench_serve(tuple(args.figures), args.refs, args.jobs,
                         args.reps, args.clients)
    print(f"  cold CLI        {result['cold_cli_seconds']:7.2f}s")
    print(f"  daemon first    "
          f"{result['daemon_first_request_seconds']:7.2f}s")
    print(f"  daemon warm     {result['serve_warm_seconds']:7.3f}s "
          f"({result['serve_warm_speedup']:.1f}x over cold CLI)")
    concurrent = result["concurrent"]
    print(f"  {concurrent['clients']} concurrent clients: "
          f"{concurrent['wall_seconds']:.3f}s wall, "
          f"{concurrent['requests_per_second']:.1f} req/s, "
          f"identical replies")

    payload = {
        "benchmark": "serve",
        **result,
        "scale": {"warmup_refs": args.refs.warmup_refs,
                  "measure_refs": args.refs.measure_refs},
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"serve warm speedup {result['serve_warm_speedup']:.1f}x "
          f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

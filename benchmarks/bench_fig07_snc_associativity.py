"""Figure 7: fully associative vs 32-way set associative 64KB SNC.

The paper's conclusion: 32-way serves as well as fully associative for
every benchmark except ammp, whose power-of-two-aligned arrays collapse
into a quarter of the sets.
"""

import pytest

from repro.eval.api import figure7, format_figure


def test_figure7_shape(bench_events, record_figure, benchmark):
    result = benchmark(figure7, bench_events)
    record_figure("figure7", format_figure(result))

    fully = result.series_by_label("fully-assoc")
    set_assoc = result.series_by_label("32-way")

    # ammp is the outlier: 32-way at least triples its slowdown
    # (2.76% -> 9.62% in the paper).
    assert set_assoc.measured["ammp"] > 3 * fully.measured["ammp"]
    assert set_assoc.measured["ammp"] == pytest.approx(9.62, abs=3.5)

    # Everyone else is equivalent under either organisation.
    for name in fully.measured:
        if name == "ammp":
            continue
        assert set_assoc.measured[name] == pytest.approx(
            fully.measured[name], abs=0.35
        )

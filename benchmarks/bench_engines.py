"""Functional engine path costs: baseline vs XOM vs OTP, read and write.

Not a paper figure — these measure the *simulator's* per-line costs, and
document the simulation-time ratio between the engines (the paper's cycle
ratios are modelled, not wall-clock).
"""

import itertools

import pytest

from repro.crypto.des import DES
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure.engine import BaselineEngine
from repro.secure.otp_engine import OTPEngine
from repro.secure.snc import SequenceNumberCache, SNCConfig
from repro.secure.xom_engine import XOMEngine

_LINE = bytes(range(128))
_KEY = bytes.fromhex("133457799BBCDFF1")


def _dram():
    return DRAM(line_bytes=128, latency=100)


@pytest.fixture
def baseline():
    return BaselineEngine(_dram())


@pytest.fixture
def xom():
    return XOMEngine(_dram(), DES(_KEY))


@pytest.fixture
def otp():
    return OTPEngine(
        _dram(), DES(_KEY),
        snc=SequenceNumberCache(SNCConfig(size_bytes=2048, entry_bytes=2)),
    )


def test_baseline_write_read(benchmark, baseline):
    addresses = itertools.cycle(range(0, 128 * 64, 128))

    def op():
        addr = next(addresses)
        baseline.write_line(addr, _LINE)
        baseline.read_line(addr, LineKind.DATA)

    benchmark(op)


def test_xom_write_read(benchmark, xom):
    addresses = itertools.cycle(range(0, 128 * 64, 128))

    def op():
        addr = next(addresses)
        xom.write_line(addr, _LINE)
        xom.read_line(addr, LineKind.DATA)

    benchmark(op)


def test_otp_write_read_snc_hit(benchmark, otp):
    addresses = itertools.cycle(range(0, 128 * 64, 128))

    def op():
        addr = next(addresses)
        otp.write_line(addr, _LINE)
        otp.read_line(addr, LineKind.DATA)

    benchmark(op)


def test_snc_query_update(benchmark):
    """The SNC data structure alone: millions of these run per figure."""
    snc = SequenceNumberCache(SNCConfig())
    lines = itertools.cycle(range(40_000))

    def op():
        line = next(lines)
        if snc.update(line) is None:
            snc.insert(line, 1)
        snc.query(line)

    benchmark(op)

"""Trace-simulation throughput microbench: refs/second through the
pipeline hot loop.

The trace loop in :func:`repro.eval.pipeline.simulate_benchmark` is where
the full figure sweep spends its wall-clock (11 benchmarks x 450K refs x
5 SNC state machines), so its throughput *is* the evaluation's speed.
This script times the exact configuration the figure sweep runs — the
five standard SNC configs plus the Figure 8 alternate L2 — and emits
``BENCH_trace.json`` so the perf trajectory has data: CI uploads the file
as an artifact, and any hot-loop change shows up as a refs/sec delta.

Run:  python benchmarks/bench_trace_throughput.py [--scale quick]
      python benchmarks/bench_trace_throughput.py --scale 20000:30000 \\
          --workloads equake art --output BENCH_trace.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.eval.pipeline import (
    QUICK_SCALE,
    SimulationScale,
    simulate_benchmark,
    standard_snc_configs,
)
from repro.eval.runner import parse_scale
from repro.workloads.spec import BY_NAME

DEFAULT_WORKLOADS = ("equake", "mcf", "gcc")


def time_workload(name: str, scale: SimulationScale,
                  repeats: int) -> dict:
    """Best-of-N timing of one benchmark's full simulation pass."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        simulate_benchmark(
            BY_NAME[name], scale=scale,
            snc_configs=standard_snc_configs(),
            simulate_alt_l2=True,
        )
        best = min(best, time.perf_counter() - started)
    return {
        "seconds": round(best, 4),
        "refs_per_sec": round(scale.total_refs / best, 1),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=parse_scale, default=QUICK_SCALE,
                        help="'full', 'quick' (default) or "
                             "'warmup:measure' reference counts")
    parser.add_argument("--workloads", nargs="+",
                        default=list(DEFAULT_WORKLOADS),
                        choices=sorted(BY_NAME),
                        help=f"workloads to time (default "
                             f"{' '.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per workload, best kept "
                             "(default 1)")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_trace.json"),
                        help="result file (default ./BENCH_trace.json)")
    args = parser.parse_args()

    scale = args.scale
    per_workload = {}
    total_refs = 0
    total_seconds = 0.0
    print(f"trace throughput: {scale.warmup_refs}+{scale.measure_refs} "
          f"refs, 5 SNC configs + alternate L2, "
          f"best of {args.repeats}")
    for name in args.workloads:
        result = time_workload(name, scale, args.repeats)
        per_workload[name] = result
        total_refs += scale.total_refs
        total_seconds += result["seconds"]
        print(f"  {name:<10} {result['seconds']:8.2f}s "
              f"{result['refs_per_sec']:12,.0f} refs/s")

    overall = round(total_refs / total_seconds, 1)
    payload = {
        "benchmark": "trace_throughput",
        "refs_per_sec": overall,
        "per_workload": per_workload,
        "scale": {"warmup_refs": scale.warmup_refs,
                  "measure_refs": scale.measure_refs},
        "snc_configs": sorted(standard_snc_configs()),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"overall: {overall:,.0f} refs/s -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

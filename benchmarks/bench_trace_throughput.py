"""Trace-simulation throughput microbench: refs/second through the
pipeline hot loop, and the record/replay engine's speedup over it.

The trace loop in :func:`repro.eval.pipeline.simulate_benchmark` is where
the full figure sweep spends its wall-clock (11 benchmarks x 450K refs x
5 SNC state machines), so its throughput *is* the evaluation's speed.
This script times two things and emits ``BENCH_trace.json`` so the perf
trajectory has data (CI uploads the file as an artifact):

* the fused hot loop in the exact configuration the figure sweep runs —
  the five standard SNC configs plus the Figure 8 alternate L2;
* record-once-replay-K vs fused-K on a K-config SNC geometry sweep
  (default: the Figure 6 lru32/lru64/lru128 sweep): the fused path pays
  workload generation + L2 simulation on every run, the replay backend
  (:mod:`repro.eval.record`) pays it once at record time and then
  replays only the compacted events.  ``speedup.warm`` is the headline —
  what a sweep costs once the trace store is warm;
* batch-priced vs per-event replay of one warm recording across a wide
  (>= 8 configuration) geometry sweep: the per-event reference loop
  walks the columns once per configuration, the batch pricer
  (:mod:`repro.timing.batch`) walks them once total.
  ``batch_replay.batch_warm_speedup`` tracks that second-generation
  speedup on top of ``record_replay.warm_speedup``;
* the block-columnar record pass vs the per-reference reference
  recorder (``record_source`` vs ``record_source_reference``, identical
  recordings asserted): ``record_block.speedup`` is what every *cold*
  sweep and fingerprint invalidation saves, CI floor >= 1.5x.

Under pytest it asserts the replay invariants: identical events, and
strictly fewer simulated operations than the fused pass (replay skips
the per-reference loop entirely — its work is per-event only).

Run:  python benchmarks/bench_trace_throughput.py [--scale quick]
      python benchmarks/bench_trace_throughput.py --scale 20000:30000 \\
          --workloads equake art --output BENCH_trace.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.eval.api import (
    QUICK_SCALE,
    ReplayRequest,
    SimulationScale,
    parse_scale,
    record_source,
    record_source_reference,
    simulate_benchmark,
    standard_snc_configs,
)
from repro.memory.cache import TagOnlyCache
from repro.secure.snc import SNCConfig
from repro.workloads.sources import SingleBenchmark
from repro.workloads.spec import BY_NAME

DEFAULT_WORKLOADS = ("equake", "mcf", "gcc")

#: The replay comparison's K-config sweep: Figure 6's geometry ladder.
SWEEP_SNC_KEYS = ("lru32", "lru64", "lru128")

#: The batch-vs-per-event sweep: the five standard configurations plus
#: three more geometries, so the event-major pass is measured against
#: a realistic wide (8-configuration) design-space sweep.
_KB = 1024
BATCH_SWEEP_EXTRA = {
    "lru16": SNCConfig(size_bytes=16 * _KB),
    "lru16_8way": SNCConfig(size_bytes=16 * _KB, assoc=8),
    "lru64_8way": SNCConfig(size_bytes=64 * _KB, assoc=8),
}


def batch_sweep_snc_configs() -> dict:
    """The >= 8 configurations the batch pricer comparison sweeps."""
    configs = dict(standard_snc_configs())
    configs.update(BATCH_SWEEP_EXTRA)
    return configs


def time_workload(name: str, scale: SimulationScale,
                  repeats: int) -> dict:
    """Best-of-N timing of one benchmark's full simulation pass."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        simulate_benchmark(
            BY_NAME[name], scale=scale,
            snc_configs=standard_snc_configs(),
            simulate_alt_l2=True,
        )
        best = min(best, time.perf_counter() - started)
    return {
        "seconds": round(best, 4),
        "refs_per_sec": round(scale.total_refs / best, 1),
    }


def sweep_snc_configs() -> dict:
    """The K configurations the record/replay comparison sweeps."""
    standard = standard_snc_configs()
    return {key: standard[key] for key in SWEEP_SNC_KEYS}


def time_record_replay(name: str, scale: SimulationScale,
                       repeats: int) -> dict:
    """Fused-K vs record-once-replay-K on one workload.

    Both sides produce the same :class:`~repro.eval.pipeline.
    BenchmarkEvents` (asserted); the timings separate the one-off record
    cost from the per-replay cost, so ``warm`` is the steady-state
    speedup a sweep sees once the trace store holds the recording.
    """
    configs = sweep_snc_configs()
    bench = BY_NAME[name]

    fused_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fused_events = simulate_benchmark(
            bench, scale=scale, snc_configs=configs,
            simulate_alt_l2=False,
        )
        fused_best = min(fused_best, time.perf_counter() - started)

    record_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        # No alternate L2: the fused side above skips it too, so the
        # cold speedup compares like with like (the production record
        # path does include it for benchmark sources — once ever).
        recording = record_source(SingleBenchmark(bench), scale=scale,
                                  include_alt_l2=False)
        record_best = min(record_best, time.perf_counter() - started)

    replay_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        replay_events = recording.replay(configs)
        replay_best = min(replay_best, time.perf_counter() - started)

    assert replay_events == fused_events, (
        f"{name}: replay events diverged from the fused reference"
    )
    n_configs = len(configs)
    return {
        "fused_seconds": round(fused_best, 4),
        "record_seconds": round(record_best, 4),
        "replay_seconds": round(replay_best, 4),
        "event_count": recording.event_count,
        "events_per_ref": round(
            recording.event_count / scale.total_refs, 4
        ),
        # Simulated operations: the fused pass walks every reference
        # through the generator + L2 and fans each event to the K sims;
        # warm replay never touches a reference — per-event work only.
        "fused_ops": scale.total_refs + n_configs * recording.event_count,
        "replay_ops": n_configs * recording.event_count,
        "speedup": {
            "warm": round(fused_best / replay_best, 3),
            "cold": round(fused_best / (record_best + replay_best), 3),
        },
    }


def time_batch_vs_perevent(name: str, scale: SimulationScale,
                           repeats: int) -> dict:
    """Batch-priced vs per-event replay of one recording across the
    wide sweep.

    Both replay the *same* recording through the *same* configurations;
    the per-event side walks the columns once per configuration through
    the reference loop, the batch side walks them once total while every
    configuration's state machines consume events in lock-step.  Events
    are asserted identical — this is a pure pricing-throughput race.
    """
    configs = batch_sweep_snc_configs()
    recording = record_source(SingleBenchmark(BY_NAME[name]),
                              scale=scale, include_alt_l2=False)

    perevent_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        perevent_events = recording.replay(configs)
        perevent_best = min(perevent_best,
                            time.perf_counter() - started)

    batch_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        batch_events = recording.replay_batch(
            [ReplayRequest(snc_configs=configs)]
        )[0]
        batch_best = min(batch_best, time.perf_counter() - started)

    assert batch_events == perevent_events, (
        f"{name}: batch events diverged from the per-event reference"
    )
    return {
        "perevent_seconds": round(perevent_best, 4),
        "batch_seconds": round(batch_best, 4),
        "event_count": recording.event_count,
        "n_configs": len(configs),
        "speedup": round(perevent_best / batch_best, 3),
    }


def _same_recording(block, reference) -> bool:
    """Column-for-column and counter-for-counter equality of two
    recordings (the block recorder's parity contract)."""
    return (
        block.kinds == reference.kinds
        and block.lines == reference.lines
        and block.aux == reference.aux
        and block.read_misses == reference.read_misses
        and block.allocate_misses == reference.allocate_misses
        and block.writebacks == reference.writebacks
        and block.read_misses_big_l2 == reference.read_misses_big_l2
        and block.allocate_misses_big_l2
        == reference.allocate_misses_big_l2
        and block.task_read_misses == reference.task_read_misses
    )


def time_record_block(name: str, scale: SimulationScale,
                      repeats: int) -> dict:
    """Block-columnar record pass vs the per-reference reference
    recorder on one workload — the phase-1 twin of the batch-vs-perevent
    race.  Both record the full production pass (alternate L2 included)
    and must produce identical recordings (asserted); the speedup is
    what every cold sweep and every fingerprint invalidation saves.
    """
    source = SingleBenchmark(BY_NAME[name])

    reference_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        reference = record_source_reference(source, scale=scale,
                                            include_alt_l2=True)
        reference_best = min(reference_best,
                             time.perf_counter() - started)

    block_best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        block = record_source(source, scale=scale, include_alt_l2=True)
        block_best = min(block_best, time.perf_counter() - started)

    assert _same_recording(block, reference), (
        f"{name}: block recording diverged from the per-ref reference"
    )
    return {
        "reference_seconds": round(reference_best, 4),
        "block_seconds": round(block_best, 4),
        "refs_per_sec_reference": round(
            scale.total_refs / reference_best, 1
        ),
        "refs_per_sec_block": round(scale.total_refs / block_best, 1),
        "event_count": reference.event_count,
        "speedup": round(reference_best / block_best, 3),
    }


# ------------------------------------------------------------------ pytest


def test_replay_matches_and_skips_the_per_ref_loop():
    """Warm replay must simulate strictly fewer per-ref operations than
    the fused path — *measured*, not recomputed: every per-reference
    operation goes through ``TagOnlyCache.access``, so count real calls
    during a fused pass and during a warm replay.  If the replay engine
    ever regressed to walking references, this counts it."""
    scale = SimulationScale(warmup_refs=20_000, measure_refs=30_000)
    configs = sweep_snc_configs()
    bench = BY_NAME["equake"]
    calls = {"n": 0}
    original_access = TagOnlyCache.access

    def counted_access(self, line_index, is_write):
        calls["n"] += 1
        return original_access(self, line_index, is_write)

    TagOnlyCache.access = counted_access
    try:
        fused_events = simulate_benchmark(bench, scale=scale,
                                          snc_configs=configs,
                                          simulate_alt_l2=False)
        fused_ref_ops = calls["n"]
        recording = record_source(SingleBenchmark(bench), scale=scale,
                                  include_alt_l2=False)
        calls["n"] = 0
        replay_events = recording.replay(configs)
        replay_ref_ops = calls["n"]
    finally:
        TagOnlyCache.access = original_access

    assert replay_events == fused_events
    assert fused_ref_ops == scale.total_refs
    assert replay_ref_ops == 0, "warm replay must touch no references"
    assert replay_ref_ops < fused_ref_ops


def test_recorded_stream_is_compact_for_cache_friendly_workloads():
    """The premise of the engine: misses + writebacks are a fraction of
    the references for workloads the L2 serves well, so the recording is
    much smaller than the trace it summarizes (gzip: ~0.4 events/ref
    even with the cold-start warmup events included)."""
    scale = SimulationScale(warmup_refs=20_000, measure_refs=30_000)
    recording = record_source(SingleBenchmark(BY_NAME["gzip"]),
                              scale=scale)
    assert recording.event_count < scale.total_refs / 2


def test_batch_replay_matches_perevent_and_wins_wide_sweeps():
    """The batch pricer must price the 8-config sweep byte-identically
    to the per-event reference (asserted inside the timing helper) and
    faster — it sheds the per-configuration Python frames entirely, so
    even one timing repeat on a short trace shows the win."""
    scale = SimulationScale(warmup_refs=20_000, measure_refs=30_000)
    result = time_batch_vs_perevent("equake", scale, repeats=2)
    assert result["n_configs"] >= 8
    assert result["speedup"] > 1.0


def test_block_record_matches_reference_and_wins():
    """The block recorder must produce the reference recorder's exact
    columns and counters (asserted inside the timing helper) and beat it
    — it sheds the per-reference Python frames from generator to column,
    so even one repeat on a short trace shows the win."""
    scale = SimulationScale(warmup_refs=20_000, measure_refs=30_000)
    result = time_record_block("equake", scale, repeats=2)
    assert result["speedup"] > 1.0


def test_bench_speedup_payload(benchmark):
    """Benchmark one workload's record/replay comparison end to end (the
    JSON payload the script emits) and sanity-check the speedup shape:
    warm replay must beat one fused pass — it does strictly less work."""
    scale = SimulationScale(warmup_refs=20_000, measure_refs=30_000)
    result = benchmark.pedantic(
        lambda: time_record_replay("equake", scale, repeats=1),
        rounds=2, iterations=1,
    )
    assert result["speedup"]["warm"] > 1.0


# ------------------------------------------------------------------ script


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=parse_scale, default=QUICK_SCALE,
                        help="'full', 'quick' (default) or "
                             "'warmup:measure' reference counts")
    parser.add_argument("--workloads", nargs="+",
                        default=list(DEFAULT_WORKLOADS),
                        choices=sorted(BY_NAME),
                        help=f"workloads to time (default "
                             f"{' '.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per workload, best kept "
                             "(default 1)")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_trace.json"),
                        help="result file (default ./BENCH_trace.json)")
    args = parser.parse_args()

    scale = args.scale
    per_workload = {}
    total_refs = 0
    total_seconds = 0.0
    print(f"trace throughput: {scale.warmup_refs}+{scale.measure_refs} "
          f"refs, 5 SNC configs + alternate L2, "
          f"best of {args.repeats}")
    for name in args.workloads:
        result = time_workload(name, scale, args.repeats)
        per_workload[name] = result
        total_refs += scale.total_refs
        total_seconds += result["seconds"]
        print(f"  {name:<10} {result['seconds']:8.2f}s "
              f"{result['refs_per_sec']:12,.0f} refs/s")
    overall = round(total_refs / total_seconds, 1)

    print(f"record-once-replay-K vs fused-K "
          f"({len(SWEEP_SNC_KEYS)}-config sweep "
          f"{'/'.join(SWEEP_SNC_KEYS)}):")
    replay = {}
    fused_total = replay_total = 0.0
    for name in args.workloads:
        result = time_record_replay(name, scale, args.repeats)
        replay[name] = result
        fused_total += result["fused_seconds"]
        replay_total += result["replay_seconds"]
        print(f"  {name:<10} fused {result['fused_seconds']:6.2f}s  "
              f"record {result['record_seconds']:6.2f}s  "
              f"replay {result['replay_seconds']:6.2f}s  "
              f"warm {result['speedup']['warm']:5.2f}x")
    warm_speedup = round(fused_total / replay_total, 3)

    batch_keys = sorted(batch_sweep_snc_configs())
    print(f"batch vs per-event replay "
          f"({len(batch_keys)}-config sweep, warm recording):")
    batch = {}
    perevent_total = batch_total = 0.0
    for name in args.workloads:
        result = time_batch_vs_perevent(name, scale, args.repeats)
        batch[name] = result
        perevent_total += result["perevent_seconds"]
        batch_total += result["batch_seconds"]
        print(f"  {name:<10} per-event {result['perevent_seconds']:6.2f}s"
              f"  batch {result['batch_seconds']:6.2f}s  "
              f"{result['speedup']:5.2f}x")
    batch_warm_speedup = round(perevent_total / batch_total, 3)

    print("block vs per-ref reference record pass (alt L2 included):")
    record_block = {}
    reference_total = block_total = 0.0
    for name in args.workloads:
        result = time_record_block(name, scale, args.repeats)
        record_block[name] = result
        reference_total += result["reference_seconds"]
        block_total += result["block_seconds"]
        print(f"  {name:<10} reference {result['reference_seconds']:6.2f}s"
              f"  block {result['block_seconds']:6.2f}s  "
              f"{result['speedup']:5.2f}x")
    record_block_speedup = round(reference_total / block_total, 3)

    payload = {
        "benchmark": "trace_throughput",
        "refs_per_sec": overall,
        "per_workload": per_workload,
        "record_replay": {
            "sweep_snc_keys": list(SWEEP_SNC_KEYS),
            "per_workload": replay,
            "warm_speedup": warm_speedup,
        },
        "batch_replay": {
            "sweep_snc_keys": batch_keys,
            "per_workload": batch,
            "batch_warm_speedup": batch_warm_speedup,
        },
        "record_block": {
            "per_workload": record_block,
            "speedup": record_block_speedup,
        },
        "scale": {"warmup_refs": scale.warmup_refs,
                  "measure_refs": scale.measure_refs},
        "snc_configs": sorted(standard_snc_configs()),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"overall: {overall:,.0f} refs/s; "
          f"warm replay speedup {warm_speedup:.2f}x; "
          f"batch over per-event {batch_warm_speedup:.2f}x; "
          f"block record {record_block_speedup:.2f}x "
          f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

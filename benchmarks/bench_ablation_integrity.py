"""Ablation: the integrity extension's verification cost (§2.2 deferred).

The paper defers integrity to Gassend et al.'s cached hash trees.  Since
integrity became a registry axis, this bench answers the deferred
question through the real evaluation stack: integrity jobs (MAC, the
uncached Merkle tree, cached trees across a node-cache sweep, all over
the paper's OTP+SNC scheme) merged, scheduled, cached and priced exactly
like figure jobs, with each provider's byte-free timing model riding the
same trace pass.

As a script it emits ``BENCH_integrity.json`` (slowdowns, hashes per
verification, node-cache hit rates, and the measured speedup of the
leaf-path memoization in the functional hash tree; CI uploads it
alongside ``BENCH_trace.json``)::

    python benchmarks/bench_ablation_integrity.py \\
        --scale 20000:30000 --jobs 2 --output BENCH_integrity.json

Under pytest it benchmarks one integrity sweep and asserts the
invariants: the cached tree hits its node cache (the uncached tree never
does) and is strictly cheaper in priced cycles, and per-line MACs verify
a replayed (line, tag) pair — the blindness that motivates the tree.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.eval.api import (
    INTEGRITY_NODE_CACHE_SIZES,
    INTEGRITY_WORKLOADS,
    QUICK_SCALE,
    ResultCache,
    default_cache_dir,
    format_integrity_table,
    integrity_slowdowns,
    integrity_table_keys,
    parse_scale,
    run_integrity_sweep,
)
from repro.secure.integrity import HashTreeIntegrity, MACIntegrity

_LINE = bytes(range(128))


def run_sweep(workloads=INTEGRITY_WORKLOADS, scale=None, n_jobs=1,
              cache=None, seed=1, progress=None):
    """Integrity jobs -> scheduler -> {workload: events}."""
    return run_integrity_sweep(
        workloads, scale=scale or QUICK_SCALE, n_jobs=n_jobs,
        cache=cache, seed=seed, progress=progress,
    )


def measure_path_memoization(verify_lines: int = 128,
                             verify_rounds: int = 2,
                             path_lines: int = 2048,
                             path_rounds: int = 16) -> dict[str, dict]:
    """Measure the leaf-path memoization two ways.

    ``path_arithmetic`` times the memoized piece in isolation — the
    leaf-address -> ancestor-index chain of a full-depth tree — which is
    where the memoization's real speedup lives.  ``verify`` times the
    whole functional ``verify_line`` on a small filled tree for the
    end-to-end number; there the pure-Python SHA-256 dominates (about
    1.5 ms per node), so expect that speedup to sit near 1.0x — the
    honest denominator the JSON records alongside the arithmetic win.
    """
    results: dict[str, dict] = {}

    timings: dict[str, float] = {}
    for label, memoize in (("unmemoized", False), ("memoized", True)):
        tree = HashTreeIntegrity(base_addr=0, n_lines=1 << 19,
                                 memoize_paths=memoize)
        path = tree._path
        addrs = [line * 128 for line in range(path_lines)]
        started = time.perf_counter()
        for _ in range(path_rounds):
            for addr in addrs:
                path(addr)
        timings[label] = time.perf_counter() - started
    timings["speedup"] = timings["unmemoized"] / timings["memoized"]
    results["path_arithmetic"] = timings

    trees = {}
    timings = {"unmemoized": 0.0, "memoized": 0.0}
    for label, memoize in (("unmemoized", False), ("memoized", True)):
        tree = HashTreeIntegrity(base_addr=0, n_lines=verify_lines,
                                 memoize_paths=memoize)
        for line in range(verify_lines):
            tree.record_line(line * 128, _LINE)
        trees[label] = tree
    # Interleave the rounds so clock drift and GC hit both variants
    # equally — the absolute numbers are SHA-256-bound either way.
    for _ in range(verify_rounds):
        for label, tree in trees.items():
            verify = tree.verify_line
            started = time.perf_counter()
            for line in range(verify_lines):
                verify(line * 128, _LINE)
            timings[label] += time.perf_counter() - started
    timings["speedup"] = timings["unmemoized"] / timings["memoized"]
    results["verify"] = timings
    return results


# ------------------------------------------------------------------ pytest


def test_node_cache_cuts_hash_work(benchmark, record_figure):
    """The Gassend trade, measured through the job pipeline: the cached
    tree stops verification walks at trusted ancestors, so it hits its
    node cache (the uncached tree cannot), computes fewer verify hashes,
    and is strictly cheaper in priced cycles for every workload."""
    events = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record_figure("ablation_integrity", format_integrity_table(events))

    for name, bench_events in events.items():
        uncached = bench_events.integrity["tree"]
        cached = bench_events.integrity[
            f"tree_nc{max(INTEGRITY_NODE_CACHE_SIZES)}"
        ]
        assert uncached.node_cache_hits == 0
        assert cached.node_cache_hits > uncached.node_cache_hits, name
        assert cached.verify_hashes < uncached.verify_hashes, name
        slowdowns = integrity_slowdowns(bench_events)
        for entries in INTEGRITY_NODE_CACHE_SIZES:
            assert slowdowns[f"tree_nc{entries}"] < slowdowns["tree"], name
        # The axis orders as the threat model says it must: free "none",
        # flat-cost MAC, then trees.
        assert slowdowns["none"] < slowdowns["mac"] < slowdowns["tree"]


def test_mac_replay_blindness():
    """A stale (line, tag) pair is authentic: per-line MACs verify the
    replay that the root-anchored tree rejects — the documented reason
    ``detects`` excludes ``replay`` for the MAC spec."""
    mac = MACIntegrity(b"bench-key")
    mac.record_line(0, _LINE)
    stale_tag = mac.tag_table[0]
    fresh = bytes(reversed(_LINE))
    mac.record_line(0, fresh)
    mac.tag_table[0] = stale_tag  # adversary rolls tag and line back
    mac.verify_line(0, _LINE)  # no exception: replay undetected
    assert mac.stats.failures == 0


def test_path_memoization_is_count_transparent():
    """Memoizing the leaf->root index arithmetic must not change a
    single counter or verdict — only the wall clock."""
    trees = [
        HashTreeIntegrity(base_addr=0, n_lines=64, node_cache_entries=16,
                          memoize_paths=memoize)
        for memoize in (False, True)
    ]
    for tree in trees:
        for line in range(64):
            tree.record_line(line * 128, _LINE)
        for line in range(64):
            tree.verify_line(line * 128, _LINE)
    assert trees[0].stats == trees[1].stats
    assert trees[0].node_store == trees[1].node_store


def test_memoized_verify_throughput(benchmark):
    tree = HashTreeIntegrity(base_addr=0, n_lines=256)
    for line in range(256):
        tree.record_line(line * 128, _LINE)
    benchmark(tree.verify_line, 0, _LINE)


# ------------------------------------------------------------------ script


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=parse_scale, default=QUICK_SCALE,
                        help="'full', 'quick' (default) or "
                             "'warmup:measure' reference counts")
    parser.add_argument("--workloads", nargs="+",
                        default=list(INTEGRITY_WORKLOADS),
                        help="benchmark names "
                             f"(default: {' '.join(INTEGRITY_WORKLOADS)})")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the on-disk result cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help=f"result cache location "
                             f"(default {default_cache_dir()})")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_integrity.json"),
                        help="result file (default ./BENCH_integrity.json)")
    args = parser.parse_args()

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    started = time.time()
    events = run_sweep(
        tuple(args.workloads), scale=args.scale, n_jobs=args.jobs,
        cache=cache, seed=args.seed,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
    )
    print(f"(wall {time.time() - started:.1f}s)", file=sys.stderr)

    print(format_integrity_table(events))

    configs = {}
    for name, bench_events in sorted(events.items()):
        slowdowns = integrity_slowdowns(bench_events)
        per_config = {}
        for key in integrity_table_keys():
            entry = {"slowdown_pct": round(slowdowns[key], 4)}
            counts = bench_events.integrity.get(key)
            if counts is not None and counts.verifications:
                entry["hashes_per_verify"] = round(
                    counts.verify_hashes / counts.verifications, 4
                )
                entry["node_cache_hit_rate"] = round(
                    counts.node_cache_hits / counts.verifications, 4
                )
            per_config[key] = entry
        configs[name] = per_config

    memoization = measure_path_memoization()
    arithmetic = memoization["path_arithmetic"]
    verify = memoization["verify"]
    print(
        f"leaf-path memoization: arithmetic "
        f"{arithmetic['unmemoized']:.3f}s -> "
        f"{arithmetic['memoized']:.3f}s "
        f"({arithmetic['speedup']:.1f}x); full verify "
        f"{verify['unmemoized']:.3f}s -> {verify['memoized']:.3f}s "
        f"({verify['speedup']:.2f}x, hash-dominated)",
        file=sys.stderr,
    )

    payload = {
        "benchmark": "integrity_ablation",
        "workloads": configs,
        "node_cache_sizes": list(INTEGRITY_NODE_CACHE_SIZES),
        "path_memoization": {
            block: {key: round(value, 4) for key, value in values.items()}
            for block, values in memoization.items()
        },
        "scale": {"warmup_refs": args.scale.warmup_refs,
                  "measure_refs": args.scale.measure_refs},
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"-> {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: the integrity extension's verification cost.

The paper defers integrity to Gassend et al.'s cached hash trees (§2.2).
This bench quantifies the deferred piece on our substrate: per-line MACs
vs a Merkle tree, and the effect of the trusted on-chip node cache that is
Gassend's contribution.
"""

from repro.secure.integrity import HashTreeIntegrity, MACIntegrity

_LINE = bytes(range(128))
_N_LINES = 256


def _filled_tree(cache_entries):
    tree = HashTreeIntegrity(
        base_addr=0, n_lines=_N_LINES, node_cache_entries=cache_entries
    )
    for line in range(_N_LINES):
        tree.record_line(line * 128, _LINE)
    return tree


def test_mac_verify(benchmark):
    mac = MACIntegrity(b"bench-key")
    for line in range(_N_LINES):
        mac.record_line(line * 128, _LINE)
    benchmark(mac.verify_line, 0, _LINE)


def test_hash_tree_verify_uncached(benchmark):
    tree = _filled_tree(cache_entries=0)
    benchmark(tree.verify_line, 0, _LINE)


def test_hash_tree_verify_with_node_cache(benchmark, record_figure):
    """The Gassend optimisation: verification stops at a trusted cached
    ancestor instead of walking to the root."""
    cold = _filled_tree(cache_entries=0)
    warm = _filled_tree(cache_entries=1024)
    for tree in (cold, warm):
        tree.stats.hashes_computed = 0
        for line in range(_N_LINES):
            tree.verify_line(line * 128, _LINE)
    table = "\n".join([
        "ablation: hash-tree node cache (Gassend-style, section 2.2)",
        f"{'configuration':<28} {'hashes/verify':>14}",
        "-" * 44,
        f"{'no node cache':<28} "
        f"{cold.stats.hashes_computed / _N_LINES:>14.2f}",
        f"{'1024-entry node cache':<28} "
        f"{warm.stats.hashes_computed / _N_LINES:>14.2f}",
    ])
    record_figure("ablation_integrity", table)
    assert warm.stats.hashes_computed < cold.stats.hashes_computed / 2

    benchmark(warm.verify_line, 0, _LINE)


def test_hash_tree_update(benchmark):
    tree = _filled_tree(cache_entries=0)
    benchmark(tree.record_line, 0, _LINE)

"""Ablation: SNC handling across context switches (§4.3).

The paper names two strategies — flush-with-encryption vs XOM-ID tagging —
and leaves their cost "currently open".  This bench runs the multi-task
round-robin model and reports the trade-off: FLUSH pays spill writes at
every switch and cold-start query misses after; TAG pays nothing at switch
time but shares capacity.
"""


from repro.secure.context import (
    MultiTaskSNCModel,
    SwitchStrategy,
    TaskStream,
)
from repro.secure.snc import SNCConfig


def make_tasks(n_tasks=4, lines_per_task=6000, repeats=6):
    """Tasks with disjoint working sets, each re-read several times."""
    tasks = []
    for task_number in range(n_tasks):
        base = task_number * 100_000
        refs = [(base + line, True) for line in range(lines_per_task)]
        for _ in range(repeats):
            refs.extend((base + line, False) for line in range(lines_per_task))
        tasks.append(TaskStream(task_number + 1, refs))
    return tasks


def run_strategy(strategy, quantum=2000):
    model = MultiTaskSNCModel(SNCConfig(), strategy)
    return model.run(make_tasks(), quantum=quantum)


def test_flush_strategy(benchmark, record_figure):
    report = benchmark.pedantic(
        lambda: run_strategy(SwitchStrategy.FLUSH), rounds=2, iterations=1
    )
    tag_report = run_strategy(SwitchStrategy.TAG)
    table = "\n".join([
        "ablation: SNC context-switch strategy (section 4.3, left open)",
        f"{'metric':<28} {'FLUSH':>12} {'TAG':>12}",
        "-" * 54,
        f"{'switches':<28} {report.switches:>12} {tag_report.switches:>12}",
        f"{'flush spill writes':<28} {report.flush_spills:>12} "
        f"{tag_report.flush_spills:>12}",
        f"{'query hit rate':<28} {report.query_hit_rate:>12.3f} "
        f"{tag_report.query_hit_rate:>12.3f}",
        f"{'evictions':<28} {report.evictions:>12} "
        f"{tag_report.evictions:>12}",
    ])
    record_figure("ablation_context_switch", table)

    # FLUSH pays at every switch; TAG never spills at switch time.
    assert report.flush_spills > 0
    assert tag_report.flush_spills == 0
    # TAG keeps warm state across quanta: strictly better hit rate here
    # (disjoint working sets that fit the SNC together).
    assert tag_report.query_hit_rate > report.query_hit_rate


def test_tag_strategy_capacity_pressure(benchmark):
    """With working sets that together exceed the SNC, TAG loses its edge:
    tasks evict each other (the trade-off's other arm)."""

    def run():
        model = MultiTaskSNCModel(SNCConfig(), SwitchStrategy.TAG)
        return model.run(
            make_tasks(n_tasks=4, lines_per_task=12_000), quantum=2000
        )

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.evictions > 0

"""Ablation: SNC handling across context switches (§4.3).

The paper names two strategies — flush-with-encryption vs XOM-ID tagging —
and leaves their cost "currently open".  This bench answers it through the
real evaluation stack: scenario jobs (strategy x scheme x SNC geometry
over a multi-task interleave) merged, scheduled, cached and priced exactly
like figure jobs, with the registered schemes' own state machines handling
the switches.  FLUSH pays spill writes at every switch and cold-start
query misses after; TAG pays nothing at switch time but shares capacity.

As a script it emits ``BENCH_scenarios.json`` (CI uploads it alongside
``BENCH_trace.json``)::

    python benchmarks/bench_ablation_context_switch.py \\
        --scale 20000:30000 --quantum 1000 --jobs 2 \\
        --output BENCH_scenarios.json

Under pytest it benchmarks one scenario pass and asserts the §4.3
invariants.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.eval.api import (
    BACKENDS,
    QUICK_SCALE,
    ResultCache,
    SCENARIO_SCHEMES,
    TraceStore,
    default_cache_dir,
    format_run_stats,
    format_scenario_table,
    index_scenario_results,
    parse_scale,
    run_scenario_tasks,
    scenario_jobs,
    scenario_slowdowns,
    scheme_config_key,
)

#: Two mixes, one per arm of the trade-off: art+vpr fit the 64KB SNC
#: together (TAG keeps everything warm), equake+mcf overflow it (TAG
#: tasks evict each other).
MIX_FITS = ("art", "vpr")
MIX_CONTENDS = ("equake", "mcf")


def run_mix(workloads, quantum=2000, scale=None, n_jobs=1, cache=None,
            seed=1, progress=None, backend="fused", trace_store=None):
    """Scenario jobs -> scheduler -> {(label, strategy): events}.

    The replay backend shows the engine's best case here: the FLUSH and
    TAG tasks of one mix share a single record pass (the L2 stream does
    not depend on the switch strategy), so two tasks cost one recording.
    """
    jobs = scenario_jobs(workloads, quantum=quantum,
                         scale=scale or QUICK_SCALE, seed=seed)
    results = run_scenario_tasks(jobs, n_jobs=n_jobs, cache=cache,
                                 progress=progress, backend=backend,
                                 trace_store=trace_store)
    return index_scenario_results(results), results


# ------------------------------------------------------------------ pytest


def test_flush_vs_tag_when_working_sets_fit(benchmark, record_figure):
    """art+vpr fit the SNC together: TAG stays warm across quanta, FLUSH
    re-pays the table on every quantum."""
    events, _ = benchmark.pedantic(
        lambda: run_mix(MIX_FITS), rounds=2, iterations=1
    )
    label = next(iter(events))[0]
    flush = events[(label, "flush")].snc[scheme_config_key("otp")]
    tag = events[(label, "tag")].snc[scheme_config_key("otp")]

    record_figure(
        "ablation_context_switch",
        format_scenario_table(events),
    )

    # FLUSH pays at every switch; TAG never spills at switch time.
    assert flush.switches > 0 and flush.switch_spills > 0
    assert tag.switches > 0 and tag.switch_spills == 0
    # TAG keeps warm state across quanta: more overlapped reads, and a
    # strictly lower priced slowdown, for every registered scheme.
    assert tag.overlapped_reads > flush.overlapped_reads
    flush_slow = scenario_slowdowns(events[(label, "flush")])
    tag_slow = scenario_slowdowns(events[(label, "tag")])
    for scheme in SCENARIO_SCHEMES:
        assert tag_slow[scheme] < flush_slow[scheme]


def test_tag_capacity_pressure(benchmark):
    """equake+mcf together exceed the SNC: TAG loses its edge — tasks
    evict each other and the warm fraction collapses (the trade-off's
    other arm)."""
    events, _ = benchmark.pedantic(
        lambda: run_mix(MIX_CONTENDS), rounds=2, iterations=1
    )
    label = next(iter(events))[0]
    tag = events[(label, "tag")].snc[scheme_config_key("otp")]
    assert tag.switch_spills == 0
    # Cross-task evictions show up as ordinary table spills under TAG.
    assert tag.table_spills > 0
    assert tag.overlapped_reads < tag.reads * 0.5


# ------------------------------------------------------------------ script


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=parse_scale, default=QUICK_SCALE,
                        help="'full', 'quick' (default) or "
                             "'warmup:measure' reference counts")
    parser.add_argument("--quantum", type=int, default=2000,
                        help="references per scheduling quantum "
                             "(default 2000)")
    parser.add_argument("--workloads", nargs="+", default=None,
                        help="one mix of benchmark names (default: both "
                             "canonical mixes)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the on-disk result cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help=f"result cache location "
                             f"(default {default_cache_dir()})")
    parser.add_argument("--backend", choices=BACKENDS, default="fused",
                        help="event production backend (default fused; "
                             "'replay' records each mix once and replays "
                             "it for both strategies)")
    parser.add_argument("--trace-cache-dir", type=Path, default=None,
                        help="recorded-stream store for the replay "
                             "backend (default: the user trace cache)")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_scenarios.json"),
                        help="result file (default ./BENCH_scenarios.json)")
    args = parser.parse_args()

    mixes = [tuple(args.workloads)] if args.workloads else [
        MIX_FITS, MIX_CONTENDS,
    ]
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    trace_store = None
    if args.backend == "replay":
        trace_store = TraceStore(args.trace_cache_dir)
    all_events = {}
    all_results = []
    started = time.time()
    for mix in mixes:
        events, results = run_mix(
            mix, quantum=args.quantum, scale=args.scale,
            n_jobs=args.jobs, cache=cache, seed=args.seed,
            progress=lambda line: print(f"  {line}", file=sys.stderr),
            backend=args.backend, trace_store=trace_store,
        )
        all_events.update(events)
        all_results.extend(results)
    print(
        f"{format_run_stats(all_results)} "
        f"(wall {time.time() - started:.1f}s)",
        file=sys.stderr,
    )

    print(format_scenario_table(all_events))

    scenarios = {}
    for (label, strategy), events in sorted(all_events.items()):
        counts = events.snc[scheme_config_key("otp")]
        scenarios[f"{label}/{strategy}"] = {
            "slowdown_pct": {
                scheme: round(value, 4)
                for scheme, value in scenario_slowdowns(events).items()
            },
            "switches": counts.switches,
            "switch_spills": counts.switch_spills,
            "overlapped_reads": counts.overlapped_reads,
            "seqnum_miss_reads": counts.seqnum_miss_reads,
            "task_read_misses": events.task_read_misses,
        }
    payload = {
        "benchmark": "context_switch_scenarios",
        "scenarios": scenarios,
        "quantum": args.quantum,
        "scale": {"warmup_refs": args.scale.warmup_refs,
                  "measure_refs": args.scale.measure_refs},
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"-> {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 10: swap the 50-cycle crypto unit for a 102-cycle one.

The paper's conclusion — and the one-time pad's raison d'etre: XOM's loss
roughly doubles (16.7% -> 34.2%) while the LRU SNC barely moves, because
its fast path costs MAX(memory, crypto) + 1 rather than memory + crypto.

Note (EXPERIMENTS.md): our SNC-LRU degrades slightly more than the paper's
because Algorithm 1's query-miss path (fetch + decrypt the sequence number,
then generate the pad) scales with crypto latency in our faithful pricing;
the paper's LRU numbers are nearly identical across both latencies.
"""

import pytest

from repro.eval.api import figure5, figure10, format_figure


def test_figure10_shape(bench_events, record_figure, benchmark):
    result = benchmark(figure10, bench_events)
    record_figure("figure10", format_figure(result))
    fig5 = figure5(bench_events)

    xom_50 = fig5.series_by_label("XOM")
    xom_102 = result.series_by_label("XOM")
    lru_50 = fig5.series_by_label("SNC-LRU")
    lru_102 = result.series_by_label("SNC-LRU")

    # XOM degrades linearly with crypto latency: 102/50 = 2.04x.
    assert xom_102.measured_avg == pytest.approx(
        xom_50.measured_avg * 102 / 50, rel=0.02
    )
    assert xom_102.measured_avg == pytest.approx(34.20, abs=0.3)

    # The OTP fast path is latency-insensitive while crypto < memory+xor:
    # per-benchmark, SNC-resident workloads move by at most ~2 cycles/miss.
    for name in ("art", "equake", "vpr", "gcc"):
        assert lru_102.measured[name] < lru_50.measured[name] + 2.5

    # And the headline gap survives: LRU remains an order of magnitude
    # below XOM at the longer latency.
    assert lru_102.measured_avg < xom_102.measured_avg / 8

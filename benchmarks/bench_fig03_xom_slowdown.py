"""Figure 3: XOM slowdown per benchmark (the paper's motivation).

The XOM column is the calibration anchor (DESIGN.md §5), so the measured
values must match the paper essentially exactly — this bench doubles as
the calibration's self-test.  The timed portion is one full benchmark
simulation at reduced scale: the cost of adding one workload to the sweep.
"""

import pytest

from repro.eval.api import (
    QUICK_SCALE,
    figure3,
    format_figure,
    simulate_benchmark,
)
from repro.workloads.spec import BY_NAME


def test_figure3_matches_paper(bench_events, record_figure, benchmark):
    result = figure3(bench_events)
    record_figure("figure3", format_figure(result))
    series = result.series_by_label("XOM")
    for name, paper_value in series.paper.items():
        assert series.measured[name] == pytest.approx(paper_value, abs=0.05)
    assert series.measured_avg == pytest.approx(series.paper_avg, abs=0.05)

    benchmark(simulate_benchmark, BY_NAME["gcc"], scale=QUICK_SCALE)

"""Figure 9: SNC-induced extra memory traffic (64KB LRU SNC).

The paper's conclusion: replacement traffic is negligible — well under 2%
of L2<->memory traffic for every benchmark, exactly zero for those whose
footprint fits the SNC.
"""

import pytest

from repro.eval.api import figure9, format_figure


def test_figure9_shape(bench_events, record_figure, benchmark):
    result = benchmark(figure9, bench_events)
    record_figure("figure9", format_figure(result))

    traffic = result.series_by_label("traffic")

    # Negligible everywhere (the paper's average is 0.31%).
    assert traffic.measured_avg < 1.0
    for name, value in traffic.measured.items():
        assert value < 2.0, f"{name} traffic {value}%"

    # Exactly zero for SNC-resident benchmarks (no replacements happen).
    for name in ("art", "equake", "vpr"):
        assert traffic.measured[name] == pytest.approx(0.0, abs=0.01)

    # The write-streaming benchmarks are the biggest producers, as in the
    # paper (gzip 1.03%, mesa 0.90%).
    assert traffic.measured["gzip"] > traffic.measured["vpr"]
    assert traffic.measured["mesa"] > traffic.measured["vpr"]

"""Ablation: a finer SNC capacity sweep than the paper's three points.

Figure 6 samples 32/64/128KB; this extension sweeps 16KB-256KB on the two
capacity-sensitive benchmarks (equake: a sharp fit cliff; mcf: a gradual
locality gradient) and reports where each one's knee falls — the data a
designer sizing an SNC actually wants.
"""

import pytest

from repro.eval.api import (
    PAPER_LATENCIES,
    SimulationScale,
    simulate_benchmark,
)
from repro.secure.snc import SNCConfig
from repro.timing.model import baseline_cycles, otp_cycles, slowdown_pct
from repro.workloads.spec import BY_NAME

_SIZES_KB = (16, 32, 64, 128, 256)
_SCALE = SimulationScale(warmup_refs=120_000, measure_refs=150_000)


def sweep(bench_name: str) -> dict[int, float]:
    configs = {
        f"{kb}kb": SNCConfig(size_bytes=kb * 1024) for kb in _SIZES_KB
    }
    events = simulate_benchmark(
        BY_NAME[bench_name], scale=_SCALE, snc_configs=configs
    )
    base = baseline_cycles(events.trace_events(), PAPER_LATENCIES)
    return {
        kb: slowdown_pct(
            otp_cycles(events.trace_events(f"{kb}kb"), PAPER_LATENCIES),
            base,
        )
        for kb in _SIZES_KB
    }


@pytest.fixture(scope="module")
def sweeps():
    return {name: sweep(name) for name in ("equake", "mcf")}


def test_snc_capacity_sweep(sweeps, record_figure, benchmark):
    lines = [
        "ablation: SNC capacity sweep, slowdown [%] (extension of Fig 6)",
        f"{'SNC size':<10}" + "".join(f"{kb:>9}KB" for kb in _SIZES_KB),
        "-" * (10 + 11 * len(_SIZES_KB)),
    ]
    for name, curve in sweeps.items():
        lines.append(
            f"{name:<10}"
            + "".join(f"{curve[kb]:>11.2f}" for kb in _SIZES_KB)
        )
    record_figure("ablation_snc_sweep", "\n".join(lines))

    equake, mcf = sweeps["equake"], sweeps["mcf"]
    # equake: a cliff — thrashing at 16/32KB, floor from 64KB up.
    assert equake[32] > 5 * equake[64]
    assert equake[64] == pytest.approx(equake[256], abs=0.3)
    # mcf: a gradient — monotone improvement across the whole sweep.
    values = [mcf[kb] for kb in _SIZES_KB]
    assert all(a >= b - 0.2 for a, b in zip(values, values[1:]))
    assert mcf[16] > 3 * mcf[128]

    # Timed portion: one equake sweep point at reduced scale.
    benchmark(
        simulate_benchmark,
        BY_NAME["equake"],
        scale=SimulationScale(warmup_refs=30_000, measure_refs=30_000),
        snc_configs={"64kb": SNCConfig()},
    )

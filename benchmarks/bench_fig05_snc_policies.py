"""Figure 5: XOM vs SNC-NoRepl vs SNC-LRU — the headline result.

Shape assertions encode the paper's conclusions: the LRU SNC recovers
almost all of XOM's loss, no-replacement sits in between, and the per-
benchmark stories (gcc's poisoned no-replacement SNC, mcf's capacity
pressure) reproduce.  The timed portion prices the whole figure from the
event sets — the marginal cost of re-running the experiment.
"""

import pytest

from repro.eval.api import figure5, format_figure


def test_figure5_shape(bench_events, record_figure, benchmark):
    result = benchmark(figure5, bench_events)
    record_figure("figure5", format_figure(result))

    xom = result.series_by_label("XOM")
    norepl = result.series_by_label("SNC-NoRepl")
    lru = result.series_by_label("SNC-LRU")

    # The paper's ordering: LRU < NoRepl < XOM on average.
    assert lru.measured_avg < norepl.measured_avg < xom.measured_avg

    # The headline: LRU recovers the bulk of the 16.7% average loss.
    assert xom.measured_avg == pytest.approx(16.76, abs=0.1)
    assert lru.measured_avg < 2.5

    # Per-benchmark stories.
    # gcc: a no-replacement SNC is poisoned by initialization — barely
    # better than XOM — while LRU recovers (18.07 vs 1.40 in the paper).
    assert norepl.measured["gcc"] > 0.8 * xom.measured["gcc"]
    assert lru.measured["gcc"] < 0.2 * norepl.measured["gcc"]
    # art/equake/vpr: footprints fit the SNC -> near-floor slowdowns.
    for name in ("art", "equake", "vpr"):
        assert lru.measured[name] < 1.0
    # mcf: bigger than any SNC, still several-percent slowdown under LRU.
    assert 3.0 < lru.measured["mcf"] < 12.0
    # Every benchmark: LRU never loses to XOM.
    for name in lru.measured:
        assert lru.measured[name] <= xom.measured[name] + 0.01

"""Figure 6: SNC capacity sweep (32KB / 64KB / 128KB, LRU).

The paper's conclusion: 64KB is the sweet spot — 32KB visibly hurts the
straddling benchmarks (equake, mcf), 128KB helps little beyond 64KB.
"""

import pytest

from repro.eval.api import figure6, format_figure


def test_figure6_shape(bench_events, record_figure, benchmark):
    result = benchmark(figure6, bench_events)
    record_figure("figure6", format_figure(result))

    snc32 = result.series_by_label("32KB")
    snc64 = result.series_by_label("64KB")
    snc128 = result.series_by_label("128KB")

    # Monotone on average: more SNC never hurts.
    assert snc32.measured_avg > snc64.measured_avg >= snc128.measured_avg

    # equake is the 32KB poster child: its footprint fits 64KB but
    # thrashes 16K entries (7.58% vs 0.06% in the paper).
    assert snc32.measured["equake"] > 10 * snc64.measured["equake"]
    assert snc32.measured["equake"] == pytest.approx(7.58, abs=2.5)

    # mcf's tiers make its slowdown fall steeply with capacity.
    assert snc32.measured["mcf"] > snc64.measured["mcf"] > (
        snc128.measured["mcf"]
    )

    # Benchmarks that fit everywhere are flat across sizes.
    for name in ("art", "vpr"):
        assert snc32.measured[name] == pytest.approx(
            snc128.measured[name], abs=0.15
        )

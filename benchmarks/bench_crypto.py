"""Throughput of the from-scratch crypto substrate.

Not a paper figure — these pin the cost of the functional path (the
simulator's DES is the bottleneck when examples run encrypted programs)
and catch performance regressions in the primitives.
"""

from repro.crypto.aes import AES
from repro.crypto.des import DES, TripleDES
from repro.crypto.modes import otp_transform
from repro.crypto.otp import pad_for_seed
from repro.crypto.sha import sha256

_DES = DES(bytes.fromhex("133457799BBCDFF1"))
_AES = AES(bytes(16))
_3DES = TripleDES(bytes(range(24)))
_BLOCK8 = bytes(8)
_BLOCK16 = bytes(16)
_LINE = bytes(range(128))


def test_des_block_encrypt(benchmark):
    benchmark(_DES.encrypt_block, _BLOCK8)


def test_3des_block_encrypt(benchmark):
    benchmark(_3DES.encrypt_block, _BLOCK8)


def test_aes_block_encrypt(benchmark):
    benchmark(_AES.encrypt_block, _BLOCK16)


def test_sha256_line(benchmark):
    benchmark(sha256, _LINE)


def test_otp_pad_for_line(benchmark):
    """One cache line's worth of pad: 16 DES blocks."""
    benchmark(pad_for_seed, _DES, 12345, 128)


def test_otp_line_transform(benchmark):
    """Full line encryption via pad + XOR (what every writeback does)."""
    benchmark(otp_transform, _DES, 12345, _LINE)

"""Pattern-analysis attacks: XOM's ECB leak vs OTP's de-correlation."""

import pytest

from repro.attacks.pattern import analyze_blocks, matching_lines
from repro.crypto.des import DES
from repro.memory.dram import DRAM
from repro.secure.otp_engine import OTPEngine
from repro.secure.snc import SequenceNumberCache, SNCConfig
from repro.secure.xom_engine import XOMEngine

_KEY = bytes.fromhex("0123456789ABCDEF")
# A memory image with heavy value repetition: mostly zero lines, some
# repeated structure — the "frequent value" memory the paper describes.
_REPETITIVE_LINES = [bytes(128)] * 24 + [bytes(range(128))] * 8


def _write_image(engine, lines):
    for index, line in enumerate(lines):
        engine.write_line(index * 128, line)
    return engine.dram.peek(0, 128 * len(lines))


class TestXOMLeaksPatterns:
    def test_direct_encryption_preserves_repetition(self):
        engine = XOMEngine(DRAM(line_bytes=128), DES(_KEY))
        image = _write_image(engine, _REPETITIVE_LINES)
        report = analyze_blocks(image, block_size=8)
        # The zero lines alone make >70% of blocks non-unique.
        assert report.repetition_fraction > 0.7
        assert not report.looks_random

    def test_equal_lines_are_visible(self):
        engine = XOMEngine(DRAM(line_bytes=128), DES(_KEY))
        image = _write_image(engine, _REPETITIVE_LINES)
        halves = [image[i * 128 : (i + 1) * 128] for i in range(24)]
        assert len(set(halves)) == 1  # all zero lines identical


class TestOTPDestroysPatterns:
    def _otp_engine(self):
        dram = DRAM(line_bytes=128)
        return OTPEngine(
            dram, DES(_KEY),
            snc=SequenceNumberCache(SNCConfig(size_bytes=256, entry_bytes=2)),
        )

    def test_otp_image_looks_random(self):
        engine = self._otp_engine()
        image = _write_image(engine, _REPETITIVE_LINES)
        report = analyze_blocks(image, block_size=8)
        assert report.looks_random
        assert report.repetition_fraction < 0.01

    def test_entropy_gap(self):
        """The quantitative version: OTP ciphertext of a repetitive image
        has near-maximal block entropy; ECB's collapses."""
        xom = XOMEngine(DRAM(line_bytes=128), DES(_KEY))
        xom_report = analyze_blocks(
            _write_image(xom, _REPETITIVE_LINES), block_size=8
        )
        otp_report = analyze_blocks(
            _write_image(self._otp_engine(), _REPETITIVE_LINES), block_size=8
        )
        assert otp_report.entropy_bits_per_block > (
            xom_report.entropy_bits_per_block + 4
        )

    def test_rewriting_same_value_changes_image(self):
        engine = self._otp_engine()
        first = _write_image(engine, _REPETITIVE_LINES)
        second = _write_image(engine, _REPETITIVE_LINES)
        assert matching_lines(first, second) == 0


class TestAnalyzeBlocksValidation:
    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            analyze_blocks(bytes(13), block_size=8)

    def test_matching_lines_requires_equal_length(self):
        with pytest.raises(ValueError):
            matching_lines(bytes(128), bytes(256))

    def test_empty_image(self):
        report = analyze_blocks(b"", block_size=8)
        assert report.total_blocks == 0

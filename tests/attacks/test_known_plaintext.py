"""The §3.4 constant-seed leak: works without sequence numbers, dies with
them."""

from repro.attacks.known_plaintext import recover_counter_steps, xor_leak
from repro.crypto.des import DES
from repro.crypto.modes import otp_transform
from repro.memory.dram import DRAM
from repro.secure.otp_engine import OTPEngine
from repro.secure.snc import SequenceNumberCache, SNCConfig

_KEY = b"leakkey!"


def constant_seed_snapshots(values, seed=424242):
    """What a *broken* engine (no sequence numbers) would put in memory."""
    cipher = DES(_KEY)
    snapshots = []
    for value in values:
        line = value.to_bytes(4, "big") + bytes(124)
        snapshots.append(otp_transform(cipher, seed, line))
    return snapshots


def otp_engine_snapshots(values):
    """What the real engine (mutating sequence numbers) puts in memory."""
    dram = DRAM(line_bytes=128)
    engine = OTPEngine(
        dram, DES(_KEY),
        snc=SequenceNumberCache(SNCConfig(size_bytes=64, entry_bytes=2)),
    )
    snapshots = []
    for value in values:
        engine.write_line(0, value.to_bytes(4, "big") + bytes(124))
        snapshots.append(dram.read_line(0))
    return snapshots


class TestXorLeak:
    def test_constant_pad_leaks_plaintext_xor(self):
        snaps = constant_seed_snapshots([7, 12])
        leaked = xor_leak(snaps[0], snaps[1])
        assert int.from_bytes(leaked[:4], "big") == 7 ^ 12
        assert leaked[4:] == bytes(124)  # identical tails cancel to zero

    def test_sequence_numbers_stop_the_leak(self):
        snaps = otp_engine_snapshots([7, 12])
        leaked = xor_leak(snaps[0], snaps[1])
        assert int.from_bytes(leaked[:4], "big") != 7 ^ 12
        # The pads differ everywhere, so nothing cancels.
        assert leaked[4:] != bytes(124)


class TestCounterRecovery:
    def test_reads_a_counter_through_constant_pads(self):
        """The paper's exact example: 0, 1, 2, ... at one address."""
        snaps = constant_seed_snapshots([100, 101, 102, 103, 104])
        result = recover_counter_steps(snaps)
        assert result.consistent
        assert result.steps == [1, 1, 1, 1]

    def test_reads_stride_two_counter(self):
        snaps = constant_seed_snapshots([40, 42, 44, 46])
        result = recover_counter_steps(snaps)
        assert result.consistent
        assert result.steps == [2, 2, 2]

    def test_fails_against_the_real_engine(self):
        snaps = otp_engine_snapshots([100, 101, 102, 103, 104])
        result = recover_counter_steps(snaps)
        assert not result.consistent

    def test_requires_two_snapshots(self):
        import pytest
        with pytest.raises(ValueError):
            recover_counter_steps([bytes(128)])

"""End-to-end tamper detection: the three XOM active attacks mounted by
a :class:`~repro.attacks.adversary.MemoryAdversary` against every
registered integrity spec, through ``SecureProcessor.run``.

Each spec's ``detects`` set is the contract: the attack must raise
:class:`~repro.errors.TamperDetected` (replay: its
:class:`~repro.errors.ReplayDetected` subclass) when listed, and must
*not* be flagged when absent — MAC's replay blindness is asserted as
behaviour, not just documented.  The adversary mounts through the
untrusted-loader hook (``on_install``) and, for replay, through a
reactive bus tap that rolls memory and the untrusted metadata back
mid-run, after observing the victim line's writeback.
"""

import pytest

from repro.attacks.adversary import MemoryAdversary
from repro.cpu.assembler import assemble
from repro.errors import ReproError, TamperDetected
from repro.memory.cache import CacheConfig
from repro.secure.integrity import (
    IntegrityConfig,
    all_integrities,
    get_integrity,
)
from repro.secure.processor import SecureProcessor
from repro.secure.software import SegmentKind, package_program

#: Store a sentinel into ``buffer``, spill 16 distinct lines through the
#: (deliberately tiny) L2 so the dirty buffer line is evicted and its
#: writeback force-drained from the 8-entry write buffer, then read the
#: sentinel back — the replay window is between that writeback and the
#: final load.
_SOURCE = """
main:
    la   t1, buffer
    li   t2, 111
    sw   t2, 0(t1)
    li   t3, 16
    la   t4, filler
spill:
    sw   t3, 0(t4)
    addi t4, t4, 128
    addi t3, t3, -1
    bne  t3, zero, spill
    lw   t5, 0(t1)
    mov  a0, t5
    li   v0, 1
    syscall
    halt
    .data
buffer: .space 128
filler: .space 2048
"""

_ALL_KEYS = [spec.key for spec in all_integrities()]
_SPOOF_KEYS = [
    spec.key for spec in all_integrities() if "spoof" in spec.detects
]
_BLIND_SPOOF_KEYS = [
    spec.key for spec in all_integrities() if "spoof" not in spec.detects
]
_REPLAY_KEYS = [
    spec.key for spec in all_integrities() if "replay" in spec.detects
]


def _plain():
    return assemble(_SOURCE, name="integrity-e2e")


def _tiny_l2() -> CacheConfig:
    """Two 128-byte lines: every spill iteration evicts — the smallest
    hierarchy that still satisfies L2 lines >= L1 lines."""
    return CacheConfig(size_bytes=256, assoc=1, line_bytes=128, name="L2")


def _processor(integrity_key=None, integrity_factory=None):
    return SecureProcessor(
        key_seed="e2e", l2_config=_tiny_l2(),
        **(
            {"integrity_factory": integrity_factory}
            if integrity_factory else
            {"integrity": integrity_key or "none"}
        ),
    )


def _package(cpu):
    return package_program(_plain(), cpu.public_key, vendor_seed="e2e")


def _segment_base(program, kind: SegmentKind) -> int:
    return next(
        segment.base for segment in program.segments
        if segment.kind is kind
    )


class TestHonestBaseline:
    @pytest.mark.parametrize("key", _ALL_KEYS)
    def test_untampered_run_succeeds(self, key):
        cpu = _processor(key)
        report = cpu.run(_package(cpu))
        assert report.output == "111"
        if key != "none":
            assert report.integrity.stats.verifications > 0
            assert report.integrity.stats.failures == 0


class TestSpoofing:
    @pytest.mark.parametrize("key", _SPOOF_KEYS)
    def test_corrupted_image_detected(self, key):
        cpu = _processor(key)
        program = _package(cpu)
        code_base = _segment_base(program, SegmentKind.CODE)

        def attack(dram, bus):
            MemoryAdversary(dram).corrupt(code_base)

        with pytest.raises(TamperDetected):
            cpu.run(program, on_install=attack)

    @pytest.mark.parametrize("key", _BLIND_SPOOF_KEYS)
    def test_unprotected_run_is_corrupted_silently(self, key):
        """Without detection the spoofed line executes as garbage —
        privacy is not integrity (paper §2.2)."""
        cpu = _processor(key)
        program = _package(cpu)
        code_base = _segment_base(program, SegmentKind.CODE)

        def attack(dram, bus):
            # Flip the low bit of the ``li t2, 111`` immediate (third
            # instruction, last byte): under the XOR pad the flip lands
            # in the decrypted word too, so the undetected corruption
            # deterministically changes the printed sentinel.
            MemoryAdversary(dram).corrupt(code_base, byte_offset=11)

        try:
            report = cpu.run(program, on_install=attack)
        except TamperDetected:  # pragma: no cover - the failure we assert
            pytest.fail(f"{key} should not detect spoofing")
        except ReproError:
            return  # garbled instruction stream crashed: corruption won
        assert report.output != "111"  # ...or silently computed garbage


class TestSplicing:
    @pytest.mark.parametrize("key", _SPOOF_KEYS)
    def test_relocated_line_detected(self, key):
        """Splicing detection for every spec that claims it (the specs
        detecting splice are exactly those detecting spoof)."""
        assert "splice" in get_integrity(key).detects
        cpu = _processor(key)
        program = _package(cpu)
        code_base = _segment_base(program, SegmentKind.CODE)
        data_base = _segment_base(program, SegmentKind.DATA)

        def attack(dram, bus):
            # Relocate the (valid) code line over the buffer line the
            # program is about to fetch: both lines are authentic, the
            # *binding to the address* is what must fail.
            MemoryAdversary(dram).splice(code_base, data_base)

        with pytest.raises(TamperDetected):
            cpu.run(program, on_install=attack)


class _ReplayAdversary:
    """Record the victim line at install; after observing its writeback
    on the bus, roll DRAM and the provider's *untrusted* metadata back to
    the recorded state on the next bus transaction (the engine's own
    DRAM write completes between the two)."""

    def __init__(self, target_addr, provider):
        self.target = target_addr
        self.provider = provider
        self.armed = False
        self.done = False
        self.adversary = None
        self.stale_metadata = None

    def install(self, dram, bus) -> None:
        self.adversary = MemoryAdversary(dram)
        self.adversary.record(self.target)
        if self.provider is not None:
            if hasattr(self.provider, "tag_table"):
                self.stale_metadata = dict(self.provider.tag_table)
            else:
                self.stale_metadata = dict(self.provider.node_store)
        bus.attach(self.on_transaction)

    def on_transaction(self, transaction) -> None:
        if self.done:
            return
        if self.armed and transaction.addr != self.target:
            self.adversary.replay(self.target)
            if self.provider is not None:
                if hasattr(self.provider, "tag_table"):
                    table = self.provider.tag_table
                else:
                    table = self.provider.node_store
                table.clear()
                table.update(self.stale_metadata)
            self.done = True
            return
        if transaction.is_write and transaction.addr == self.target:
            self.armed = True


def _run_replay(key):
    # 16384 lines cover the data segment at 0x100000 (line 8192+).
    config = IntegrityConfig(base_addr=0, n_lines=16384)
    spec = get_integrity(key)
    provider = spec.build_provider(b"replay-e2e", config)
    cpu = _processor(integrity_factory=lambda: provider) if provider \
        else _processor("none")
    program = _package(cpu)
    replayer = _ReplayAdversary(
        _segment_base(program, SegmentKind.DATA), provider
    )
    report = cpu.run(program, on_install=replayer.install)
    assert replayer.done, "the replay window never opened"
    return report


class TestReplay:
    @pytest.mark.parametrize("key", _REPLAY_KEYS)
    def test_root_anchored_trees_detect_replay(self, key):
        """The on-chip root outlives the rollback: restoring stale nodes
        (and stale ciphertext) cannot reproduce the current root."""
        with pytest.raises(TamperDetected):
            _run_replay(key)

    def test_mac_is_replay_blind(self):
        """The stale (line, tag) pair verifies — the program silently
        reads rolled-back memory.  This is MAC's documented limitation
        and the hash tree's reason to exist."""
        report = _run_replay("mac")
        assert report.integrity.stats.failures == 0
        assert report.output != "111"  # stale data reached the CPU

    def test_unprotected_replay_also_succeeds(self):
        report = _run_replay("none")
        assert report.output != "111"

    def test_detects_sets_match_threat_matrix(self):
        """The registry's contract table, pinned."""
        expected = {
            "none": frozenset(),
            "mac": frozenset({"spoof", "splice"}),
            "hash_tree": frozenset({"spoof", "splice", "replay"}),
            "hash_tree_cached": frozenset({"spoof", "splice", "replay"}),
        }
        for key, detects in expected.items():
            assert get_integrity(key).detects == detects, key

"""Active attacks — splicing, replay, spoofing — against each defence
configuration.  Each test says who wins, matching the paper's threat
matrix: OTP alone garbles spliced data (but can't *detect*), per-line MACs
catch spoofing/splicing but fall to replay, the hash tree catches all
three."""

import pytest

from repro.attacks.adversary import BusTap, MemoryAdversary
from repro.crypto.des import DES
from repro.errors import ReplayDetected, TamperDetected
from repro.memory.bus import MemoryBus
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure.integrity import HashTreeIntegrity, MACIntegrity
from repro.secure.otp_engine import OTPEngine
from repro.secure.snc import SequenceNumberCache, SNCConfig

_KEY = b"attack!!"
_LINE_A = bytes([0xAA]) * 128
_LINE_B = bytes([0xBB]) * 128


def make_engine(integrity=None):
    dram = DRAM(line_bytes=128, latency=100)
    engine = OTPEngine(
        dram, DES(_KEY),
        snc=SequenceNumberCache(SNCConfig(size_bytes=64, entry_bytes=2)),
        integrity=integrity,
    )
    return engine, MemoryAdversary(dram)


class TestSplicing:
    def test_otp_alone_garbles_spliced_lines(self):
        """Address-derived seeds mean relocated ciphertext decrypts to
        noise — the adversary can corrupt but not *control* (§3.4)."""
        engine, adversary = make_engine()
        engine.write_line(0, _LINE_A)
        engine.write_line(128, _LINE_B)
        adversary.splice(0, 128)
        data, _ = engine.read_line(128, LineKind.DATA)
        assert data != _LINE_A  # the spliced content does not appear
        assert data != _LINE_B

    def test_mac_detects_splicing(self):
        mac = MACIntegrity(b"mac-key")
        engine, adversary = make_engine(integrity=mac)
        engine.write_line(0, _LINE_A)
        engine.write_line(128, _LINE_B)
        adversary.splice(0, 128)
        with pytest.raises(TamperDetected):
            engine.read_line(128, LineKind.DATA)

    def test_hash_tree_detects_splicing(self):
        tree = HashTreeIntegrity(base_addr=0, n_lines=16)
        engine, adversary = make_engine(integrity=tree)
        engine.write_line(0, _LINE_A)
        engine.write_line(128, _LINE_B)
        adversary.splice(0, 128)
        with pytest.raises((TamperDetected, ReplayDetected)):
            engine.read_line(128, LineKind.DATA)


class TestSpoofing:
    def test_otp_alone_returns_garbage_silently(self):
        engine, adversary = make_engine()
        engine.write_line(0, _LINE_A)
        adversary.corrupt(0, byte_offset=5)
        data, _ = engine.read_line(0, LineKind.DATA)
        assert data != _LINE_A  # corrupted, undetected: privacy != integrity

    def test_mac_detects_spoofing(self):
        mac = MACIntegrity(b"mac-key")
        engine, adversary = make_engine(integrity=mac)
        engine.write_line(0, _LINE_A)
        adversary.corrupt(0)
        with pytest.raises(TamperDetected):
            engine.read_line(0, LineKind.DATA)


class TestReplay:
    def test_replay_defeats_per_line_macs(self):
        """The stale line and its stale MAC are both authentic — per-line
        MACs cannot tell 'old' from 'current'.  This is why the paper
        defers to hash trees for integrity (§2.2)."""
        mac = MACIntegrity(b"mac-key")
        engine, adversary = make_engine(integrity=mac)
        engine.write_line(0, _LINE_A)
        stale_tag = dict(mac.tag_table)
        adversary.record(0)
        engine.write_line(0, _LINE_B)  # the program moves on
        adversary.replay(0)  # adversary rolls back line...
        mac.tag_table.clear()
        mac.tag_table.update(stale_tag)  # ...and the MAC table with it
        data, _ = engine.read_line(0, LineKind.DATA)
        # Verification passed and the CPU got stale-but-wrong data: under
        # OTP the seq number moved on, so the stale line decrypts wrongly,
        # but crucially NO exception fired — the replay went undetected.
        assert data != _LINE_B

    def test_hash_tree_detects_replay(self):
        tree = HashTreeIntegrity(base_addr=0, n_lines=16)
        engine, adversary = make_engine(integrity=tree)
        engine.write_line(0, _LINE_A)
        stale_nodes = dict(tree.node_store)
        adversary.record(0)
        engine.write_line(0, _LINE_B)
        adversary.replay(0)
        tree.node_store.clear()
        tree.node_store.update(stale_nodes)
        with pytest.raises(ReplayDetected):
            engine.read_line(0, LineKind.DATA)


class TestBusTap:
    def test_tap_sees_only_ciphertext_from_otp(self):
        dram = DRAM(line_bytes=128, latency=100)
        bus = MemoryBus()
        tap = BusTap(bus)
        engine = OTPEngine(
            dram, DES(_KEY),
            snc=SequenceNumberCache(SNCConfig(size_bytes=64, entry_bytes=2)),
            bus=bus,
        )
        secret = b"TOP-SECRET-VALUE" * 8
        engine.write_line(0, secret)
        engine.read_line(0, LineKind.DATA)
        assert not tap.contains(b"TOP-SECRET-VALUE")

    def test_tap_sees_rewrite_freshness(self):
        """Two writes of the same plaintext produce different bus payloads
        (sequence numbers mutate the pad)."""
        dram = DRAM(line_bytes=128, latency=100)
        bus = MemoryBus()
        tap = BusTap(bus)
        engine = OTPEngine(
            dram, DES(_KEY),
            snc=SequenceNumberCache(SNCConfig(size_bytes=64, entry_bytes=2)),
            bus=bus,
        )
        engine.write_line(0, _LINE_A)
        engine.write_line(0, _LINE_A)
        first, second = tap.writes_to(0)
        assert first != second

    def test_repeated_payload_detector(self):
        bus = MemoryBus()
        tap = BusTap(bus)
        from repro.memory.bus import TransactionKind
        bus.record(TransactionKind.DATA_WRITE, 0, b"same")
        bus.record(TransactionKind.DATA_WRITE, 128, b"same")
        assert tap.repeated_payloads() == {b"same": 2}

"""Tests for the simplified CACTI area model (§5.4)."""

import pytest

from repro.area.cacti import (
    CacheGeometry,
    cache_area,
    figure8_area_check,
    l2_area,
    l2_area_overhead_for_vas,
    snc_area,
)
from repro.errors import ConfigurationError


class TestGeometry:
    def test_l2_baseline(self):
        geometry = CacheGeometry(256 * 1024, 4, 128)
        assert geometry.n_lines == 2048
        assert geometry.n_sets == 512
        # 48 - 9 index - 7 offset + 2 status
        assert geometry.tag_bits_per_line == 34

    def test_rejects_indivisible(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(100, 3, 32)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(0, 1, 32)


class TestAreaModel:
    def test_area_grows_with_size(self):
        # 384KB needs 6 ways to keep a power-of-two set count — which is
        # exactly why the paper's Figure 8 uses a 6-way 384KB L2.
        assert l2_area(384 * 1024, 6) > l2_area(256 * 1024, 4)
        assert l2_area(512 * 1024, 4) > l2_area(256 * 1024, 4)

    def test_area_grows_with_associativity(self):
        assert l2_area(256 * 1024, 8) > l2_area(256 * 1024, 4)

    def test_paper_section54_datapoint(self):
        """The §5.4 claim: 256KB 4-way L2 + 64KB 32-way SNC lands between a
        320KB 5-way and a 384KB 6-way L2."""
        check = figure8_area_check()
        assert check.l2_320k_5way < check.l2_plus_snc < check.l2_384k_6way
        assert check.holds

    def test_snc_tags_shared_across_entry_groups(self):
        """Per-entry tags would dwarf the data; grouped tags must keep the
        tag overhead below the data array."""
        grouped = snc_area(entries_per_tag=32)
        data_only = 64 * 1024 * 8  # bits
        assert grouped < 2.2 * data_only

    def test_fully_associative_snc_is_expensive(self):
        """The §4 motivation for evaluating 32-way: full associativity at
        32K entries costs far more area."""
        fully = cache_area(CacheGeometry(64 * 1024, 1024, 64))
        practical = snc_area(assoc=32)
        assert fully > 1.5 * practical


class TestVAOverhead:
    def test_paper_four_percent_claim(self):
        """§4: storing 40 VA bits per 128B L2 line grows the L2 by ~4%."""
        overhead = l2_area_overhead_for_vas()
        assert overhead == pytest.approx(3.9, abs=0.2)

"""Tests for the functional L1/L2 hierarchy over a recording engine."""

import pytest

from repro.errors import MemoryFault
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import LineKind, MemoryHierarchy


class RecordingEngine:
    """A fake line engine backed by a flat dict, recording every call."""

    def __init__(self, line_bytes=128, read_cost=100):
        self.line_bytes = line_bytes
        self.read_cost = read_cost
        self.backing: dict[int, bytes] = {}
        self.reads: list[tuple[int, LineKind]] = []
        self.writes: list[int] = []

    def read_line(self, line_addr, kind):
        self.reads.append((line_addr, kind))
        data = self.backing.get(line_addr, bytes(self.line_bytes))
        return data, self.read_cost

    def write_line(self, line_addr, plaintext):
        self.writes.append(line_addr)
        self.backing[line_addr] = bytes(plaintext)
        return 0


def tiny_hierarchy(engine=None, wb_capacity=4):
    """A miniature hierarchy (tiny caches) so evictions are easy to force."""
    engine = engine or RecordingEngine()
    return MemoryHierarchy(
        engine,
        l1i_config=CacheConfig(size_bytes=256, assoc=2, line_bytes=32, name="L1I"),
        l1d_config=CacheConfig(size_bytes=256, assoc=2, line_bytes=32, name="L1D"),
        l2_config=CacheConfig(size_bytes=1024, assoc=2, line_bytes=128, name="L2"),
        write_buffer_capacity=wb_capacity,
    ), engine


class TestReadPath:
    def test_load_miss_goes_to_engine_once(self):
        hierarchy, engine = tiny_hierarchy()
        hierarchy.load(0x100, 4)
        hierarchy.load(0x104, 4)  # same L1 line: no second engine read
        assert len(engine.reads) == 1
        assert engine.reads[0] == (0x100, LineKind.DATA)

    def test_fetch_uses_instruction_kind(self):
        hierarchy, engine = tiny_hierarchy()
        hierarchy.fetch(0x200, 4)
        assert engine.reads[0] == (0x200, LineKind.INSTRUCTION)

    def test_load_returns_engine_data(self):
        hierarchy, engine = tiny_hierarchy()
        engine.backing[0x000] = bytes(range(128))
        assert hierarchy.load(0x010, 4) == bytes([16, 17, 18, 19])

    def test_l2_hit_after_l1_eviction(self):
        hierarchy, engine = tiny_hierarchy()
        hierarchy.load(0x000, 4)
        # Touch enough lines mapping to the same L1 set to evict 0x000 from
        # L1 (L1: 4 sets of 2 ways, 32B lines -> same set every 128 bytes).
        hierarchy.load(0x080, 4)
        hierarchy.load(0x100, 4)
        reads_before = len(engine.reads)
        hierarchy.load(0x000, 4)  # L1 miss, but L2 still holds the line
        assert len(engine.reads) == reads_before

    def test_cross_line_access_rejected(self):
        hierarchy, _ = tiny_hierarchy()
        with pytest.raises(MemoryFault):
            hierarchy.load(0x1E, 4)  # crosses the 32-byte L1 line


class TestWritePath:
    def test_store_dirties_and_writes_back_on_pressure(self):
        hierarchy, engine = tiny_hierarchy()
        hierarchy.store(0x000, b"\xaa\xbb\xcc\xdd")
        # Force the L2 set containing 0x000 to evict: L2 has 4 sets of 2,
        # 128B lines -> same set every 512 bytes.
        hierarchy.load(0x200, 4)
        hierarchy.load(0x400, 4)  # evicts L2 line 0x000 (dirty) to buffer
        hierarchy.write_buffer.drain_all()
        assert 0x000 in engine.writes
        assert engine.backing[0x000][:4] == b"\xaa\xbb\xcc\xdd"

    def test_flush_pushes_all_dirty_data_down(self):
        hierarchy, engine = tiny_hierarchy()
        hierarchy.store(0x000, b"\x01\x02\x03\x04")
        hierarchy.store(0x234, b"\x05\x06")
        hierarchy.flush()
        assert engine.backing[0x000][:4] == b"\x01\x02\x03\x04"
        assert engine.backing[0x200][0x34:0x36] == b"\x05\x06"

    def test_value_survives_full_eviction_round_trip(self):
        hierarchy, engine = tiny_hierarchy()
        hierarchy.store(0x000, b"\xfe\xed")
        hierarchy.flush()
        hierarchy2 = MemoryHierarchy(
            engine,
            l1i_config=hierarchy.l1i.config,
            l1d_config=hierarchy.l1d.config,
            l2_config=hierarchy.l2.config,
        )
        assert hierarchy2.load(0x000, 2) == b"\xfe\xed"

    def test_write_buffer_forwarding_preserves_newest_data(self):
        """A read racing a pending writeback must see the buffered copy."""
        hierarchy, engine = tiny_hierarchy(wb_capacity=8)
        hierarchy.store(0x000, b"\x99")
        hierarchy.load(0x200, 4)
        hierarchy.load(0x400, 4)  # dirty 0x000 now parked in write buffer
        assert hierarchy.write_buffer.forward(0x000) is not None
        # Evict 0x200/0x400 pressure aside; read 0x000 again before drain.
        assert hierarchy.load(0x000, 1) == b"\x99"


class TestCycleAccounting:
    def test_miss_costs_engine_latency(self):
        hierarchy, _ = tiny_hierarchy()
        before = hierarchy.stats.stall_cycles
        hierarchy.load(0x000, 4)
        delta = hierarchy.stats.stall_cycles - before
        # 1 (L1 hit path) + 100 (engine read on L2 miss)
        assert delta == 1 + 100

    def test_l1_hit_is_cheap(self):
        hierarchy, _ = tiny_hierarchy()
        hierarchy.load(0x000, 4)
        before = hierarchy.stats.stall_cycles
        hierarchy.load(0x000, 4)
        assert hierarchy.stats.stall_cycles - before == 1

    def test_counters(self):
        hierarchy, _ = tiny_hierarchy()
        hierarchy.load(0x0, 4)
        hierarchy.store(0x4, b"\x00")
        hierarchy.fetch(0x100, 4)
        assert hierarchy.stats.loads == 1
        assert hierarchy.stats.stores == 1
        assert hierarchy.stats.fetches == 1

"""Model-based testing: the full cache hierarchy over every engine must be
observationally equivalent to a flat byte-addressable memory.

Hypothesis drives random load/store/fetch/flush sequences; a plain dict is
the reference model.  If any layer — L1, L2, write buffer, inclusion
handling, engine encryption, SNC versioning — loses or corrupts a byte,
this test finds it.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.des import DES
from repro.memory.cache import CacheConfig
from repro.memory.dram import DRAM
from repro.memory.hierarchy import MemoryHierarchy
from repro.secure.engine import BaselineEngine
from repro.secure.otp_engine import OTPEngine
from repro.secure.snc import SequenceNumberCache, SNCConfig, SNCPolicy
from repro.secure.xom_engine import XOMEngine

# A tiny hierarchy so random traffic constantly evicts at both levels.
_L1 = dict(size_bytes=128, assoc=2, line_bytes=32)
_L2 = dict(size_bytes=512, assoc=2, line_bytes=128)
_ADDRESS_SPACE = 4096  # lines 0..31: forces heavy reuse


def build_hierarchy(engine_name: str) -> MemoryHierarchy:
    dram = DRAM(line_bytes=128, latency=100)
    if engine_name == "baseline":
        engine = BaselineEngine(dram)
    elif engine_name == "xom":
        engine = XOMEngine(dram, DES(b"modelkey"))
    elif engine_name == "otp-lru":
        engine = OTPEngine(
            dram, DES(b"modelkey"),
            snc=SequenceNumberCache(SNCConfig(size_bytes=16, entry_bytes=2)),
        )
    else:  # otp-norepl
        engine = OTPEngine(
            dram, DES(b"modelkey"),
            snc=SequenceNumberCache(
                SNCConfig(size_bytes=16, entry_bytes=2,
                          policy=SNCPolicy.NO_REPLACEMENT)
            ),
        )
    return MemoryHierarchy(
        engine,
        l1i_config=CacheConfig(**_L1, name="L1I"),
        l1d_config=CacheConfig(**_L1, name="L1D"),
        l2_config=CacheConfig(**_L2, name="L2"),
        write_buffer_capacity=2,
    )


# Operations: (op, address, value)
_operations = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "flush"]),
        st.integers(0, _ADDRESS_SPACE // 4 - 1).map(lambda w: w * 4),
        st.integers(0, 0xFFFFFFFF),
    ),
    min_size=1,
    max_size=150,
)


@pytest.mark.parametrize(
    "engine_name", ["baseline", "xom", "otp-lru", "otp-norepl"]
)
class TestHierarchyAgainstFlatModel:
    @given(operations=_operations)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_equivalent_to_flat_memory(self, engine_name, operations):
        hierarchy = build_hierarchy(engine_name)
        reference: dict[int, bytes] = {}
        for op, addr, value in operations:
            if op == "store":
                blob = value.to_bytes(4, "big")
                hierarchy.store(addr, blob)
                reference[addr] = blob
            elif op == "flush":
                hierarchy.flush()
            else:
                got = hierarchy.load(addr, 4)
                if addr in reference:
                    assert got == reference[addr], (
                        f"{engine_name}: {addr:#x} returned {got.hex()}"
                    )
        # Final flush plus cold re-read of everything ever written.
        hierarchy.flush()
        for addr, expected in reference.items():
            assert hierarchy.load(addr, 4) == expected

    @given(operations=_operations)
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_protected_engines_never_store_plaintext(self, engine_name,
                                                     operations):
        if engine_name == "baseline":
            return
        hierarchy = build_hierarchy(engine_name)
        marker = 0xDEADBEEF
        wrote_marker = False
        for op, addr, value in operations:
            if op == "store":
                hierarchy.store(addr, marker.to_bytes(4, "big"))
                wrote_marker = True
        hierarchy.flush()
        if wrote_marker:
            image = hierarchy.engine.dram.peek(0, _ADDRESS_SPACE)
            assert marker.to_bytes(4, "big") not in image

"""Tests for the untrusted main-memory model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.dram import DRAM


class TestLineAccess:
    def test_read_uninitialized_returns_fill(self):
        dram = DRAM(line_bytes=64, fill_byte=0xAB)
        assert dram.read_line(0) == b"\xab" * 64

    def test_write_then_read(self):
        dram = DRAM(line_bytes=64)
        data = bytes(range(64))
        dram.write_line(128, data)
        assert dram.read_line(128) == data

    def test_lines_are_independent(self):
        dram = DRAM(line_bytes=64)
        dram.write_line(0, b"\x11" * 64)
        dram.write_line(64, b"\x22" * 64)
        assert dram.read_line(0) == b"\x11" * 64
        assert dram.read_line(64) == b"\x22" * 64

    def test_unaligned_read_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAM(line_bytes=64).read_line(3)

    def test_wrong_size_write_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAM(line_bytes=64).write_line(0, bytes(32))

    def test_stats_count_transactions(self):
        dram = DRAM(line_bytes=64)
        dram.write_line(0, bytes(64))
        dram.read_line(0)
        dram.read_line(64)
        assert dram.stats.writes == 1
        assert dram.stats.reads == 2
        assert dram.stats.total == 3


class TestRawAccess:
    def test_poke_then_peek_across_lines(self):
        dram = DRAM(line_bytes=64)
        blob = bytes(range(200))
        dram.poke(30, blob)
        assert dram.peek(30, 200) == blob

    def test_peek_does_not_touch_stats(self):
        dram = DRAM(line_bytes=64)
        dram.poke(0, b"hello")
        dram.peek(0, 5)
        assert dram.stats.total == 0

    def test_poke_preserves_neighbors(self):
        dram = DRAM(line_bytes=64)
        dram.write_line(0, b"\xff" * 64)
        dram.poke(10, b"\x00\x00")
        line = dram.read_line(0)
        assert line[9] == 0xFF
        assert line[10:12] == b"\x00\x00"
        assert line[12] == 0xFF

    @given(st.integers(0, 10_000), st.binary(min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_poke_peek_round_trip(self, addr, blob):
        dram = DRAM(line_bytes=128)
        dram.poke(addr, blob)
        assert dram.peek(addr, len(blob)) == blob

    def test_resident_lines_is_sparse(self):
        dram = DRAM(line_bytes=128)
        dram.write_line(0, bytes(128))
        dram.write_line(1 << 30, bytes(128))  # 1 GB away
        assert dram.resident_lines == 2


class TestConfig:
    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ConfigurationError):
            DRAM(line_bytes=100)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            DRAM(latency=-1)

"""Tests for the set-associative cache — LRU behaviour and the fast
tag-only variant used by the evaluation harness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.cache import (
    CacheConfig,
    SetAssociativeCache,
    TagOnlyCache,
)


def small_cache(assoc=2, sets=4, line=32):
    config = CacheConfig(
        size_bytes=assoc * sets * line, assoc=assoc, line_bytes=line
    )
    return SetAssociativeCache(config)


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(size_bytes=256 * 1024, assoc=4, line_bytes=128)
        assert config.n_lines == 2048
        assert config.n_sets == 512
        assert config.offset_bits == 7

    def test_paper_baseline_geometries_are_valid(self):
        CacheConfig(size_bytes=32 * 1024, assoc=4, line_bytes=32, name="L1")
        CacheConfig(size_bytes=256 * 1024, assoc=4, line_bytes=128, name="L2")

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=100, assoc=2, line_bytes=32)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=64, assoc=128, line_bytes=32)


class TestLookupFill:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0x100) is None
        cache.fill(0x100, bytearray(32))
        assert cache.lookup(0x100) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_offset_masked(self):
        cache = small_cache()
        cache.fill(0x100, bytearray(32))
        assert cache.lookup(0x11F) is not None  # same 32B line
        assert cache.lookup(0x120) is None  # next line

    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1)
        cache.fill(0x000, bytearray(32))
        cache.fill(0x020, bytearray(32))
        cache.lookup(0x000)  # promote: now 0x020 is LRU
        victim = cache.fill(0x040, bytearray(32))
        assert victim.line_addr == 0x020

    def test_fill_returns_none_when_room(self):
        cache = small_cache()
        assert cache.fill(0, bytearray(32)) is None

    def test_dirty_eviction_counted(self):
        cache = small_cache(assoc=1, sets=1)
        cache.fill(0x000, bytearray(32), dirty=True)
        victim = cache.fill(0x020, bytearray(32))
        assert victim.dirty
        assert cache.stats.dirty_evictions == 1

    def test_meta_preserved(self):
        cache = small_cache()
        cache.fill(0x100, bytearray(32), meta={"va": 0xABC000})
        assert cache.probe(0x100).meta["va"] == 0xABC000


class TestInvalidateAndDrain:
    def test_invalidate_removes(self):
        cache = small_cache()
        cache.fill(0x100, bytearray(32))
        assert cache.invalidate(0x100) is not None
        assert cache.probe(0x100) is None

    def test_invalidate_missing_returns_none(self):
        assert small_cache().invalidate(0x100) is None

    def test_drain_dirty_removes_only_dirty(self):
        cache = small_cache()
        cache.fill(0x000, bytearray(32), dirty=True)
        cache.fill(0x020, bytearray(32), dirty=False)
        drained = cache.drain_dirty()
        assert [line.line_addr for line in drained] == [0x000]
        assert len(cache) == 1


class TestLRUProperty:
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_resident_set_matches_reference_lru(self, accesses):
        """Model-based test against a reference LRU implementation."""
        assoc, sets, line = 4, 2, 32
        cache = small_cache(assoc=assoc, sets=sets, line=line)
        reference: list[list[int]] = [[] for _ in range(sets)]
        for line_number in accesses:
            addr = line_number * line
            set_index = line_number % sets
            ref_set = reference[set_index]
            if cache.lookup(addr) is None:
                cache.fill(addr, bytearray(line))
            if line_number in ref_set:
                ref_set.remove(line_number)
            elif len(ref_set) >= assoc:
                ref_set.pop(0)
            ref_set.append(line_number)
        for set_index, ref_set in enumerate(reference):
            resident = {
                line.line_addr // line_size
                for line_size in [line]
                for line in cache._sets[set_index]
            }
            assert resident == set(ref_set)


class TestTagOnlyCache:
    def test_basic_hit_miss(self):
        cache = TagOnlyCache(n_lines=8, assoc=2)
        hit, victim = cache.access(5, False)
        assert (hit, victim) == (False, None)
        assert cache.misses == 1
        hit, _ = cache.access(5, False)
        assert hit
        assert cache.hits == 1

    def test_dirty_writeback_on_eviction(self):
        cache = TagOnlyCache(n_lines=2, assoc=2)  # single set of 2
        cache.access(0, True)
        cache.access(2, False)
        _, victim = cache.access(4, False)  # evicts line 0, which is dirty
        assert victim == 0
        assert cache.writebacks == 1

    def test_clean_eviction_returns_none(self):
        cache = TagOnlyCache(n_lines=2, assoc=2)
        cache.access(0, False)
        cache.access(2, False)
        assert cache.access(4, False) == (False, None)
        assert cache.evictions == 1

    def test_write_hit_marks_dirty(self):
        cache = TagOnlyCache(n_lines=2, assoc=2)
        cache.access(0, False)
        cache.access(0, True)  # hit, marks dirty
        cache.access(2, False)
        _, victim = cache.access(4, False)
        assert victim == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            TagOnlyCache(n_lines=3, assoc=1)
        with pytest.raises(ConfigurationError):
            TagOnlyCache(n_lines=8, assoc=3)

    @given(st.lists(st.tuples(st.integers(0, 31), st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_full_cache(self, accesses):
        """The fast tag-only cache must be behaviourally identical to the
        reference set-associative cache."""
        line = 32
        full = small_cache(assoc=4, sets=4, line=line)
        fast = TagOnlyCache(n_lines=16, assoc=4)
        for line_number, is_write in accesses:
            fast_hit, fast_victim = fast.access(line_number, is_write)
            resident = full.lookup(line_number * line)
            full_victim = None
            if resident is None:
                victim = full.fill(line_number * line, dirty=is_write)
                if victim is not None and victim.dirty:
                    full_victim = victim.line_addr // line
            elif is_write:
                resident.dirty = True
            assert fast_hit == (resident is not None)
            assert fast_victim == full_victim
        assert fast.hits == full.stats.hits
        assert fast.misses == full.stats.misses

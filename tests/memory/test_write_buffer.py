"""Tests for the write buffer between L2 and memory."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.write_buffer import WriteBuffer


def make_buffer(capacity=4):
    drained: list[tuple[int, bytes]] = []
    buffer = WriteBuffer(capacity, lambda addr, data: drained.append((addr, data)))
    return buffer, drained


class TestBasicOperation:
    def test_push_and_drain_fifo_order(self):
        buffer, drained = make_buffer()
        buffer.push(0x000, b"a")
        buffer.push(0x080, b"b")
        buffer.drain_all()
        assert drained == [(0x000, b"a"), (0x080, b"b")]

    def test_drain_one_returns_false_when_empty(self):
        buffer, _ = make_buffer()
        assert buffer.drain_one() is False

    def test_capacity_forces_drain(self):
        buffer, drained = make_buffer(capacity=2)
        buffer.push(0, b"a")
        buffer.push(128, b"b")
        buffer.push(256, b"c")  # exceeds capacity: oldest drains
        assert drained == [(0, b"a")]
        assert buffer.stats.forced_drains == 1
        assert len(buffer) == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            WriteBuffer(0, lambda a, d: None)


class TestCoalescingAndForwarding:
    def test_same_line_coalesces(self):
        buffer, drained = make_buffer()
        buffer.push(0x100, b"old")
        buffer.push(0x100, b"new")
        buffer.drain_all()
        assert drained == [(0x100, b"new")]

    def test_forward_returns_pending_data(self):
        buffer, _ = make_buffer()
        buffer.push(0x100, b"pending")
        assert buffer.forward(0x100) == b"pending"
        assert buffer.stats.forwarded_reads == 1

    def test_forward_misses_return_none(self):
        buffer, _ = make_buffer()
        assert buffer.forward(0x500) is None
        assert buffer.stats.forwarded_reads == 0

    def test_coalesced_push_refreshes_fifo_position(self):
        buffer, drained = make_buffer(capacity=2)
        buffer.push(0x000, b"a1")
        buffer.push(0x080, b"b")
        buffer.push(0x000, b"a2")  # coalesce: moves to back, no overflow
        assert len(buffer) == 2
        buffer.push(0x100, b"c")  # forces drain of oldest = 0x080
        assert drained == [(0x080, b"b")]

    def test_stats_track_enqueues_and_drains(self):
        buffer, _ = make_buffer()
        buffer.push(0, b"a")
        buffer.push(128, b"b")
        buffer.drain_all()
        assert buffer.stats.enqueued == 2
        assert buffer.stats.drained == 2

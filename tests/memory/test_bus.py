"""Tests for bus traffic accounting and the adversary tap point."""

from repro.memory.bus import BusTransaction, MemoryBus, TransactionKind


class TestAccounting:
    def test_counts_by_kind(self):
        bus = MemoryBus()
        bus.record(TransactionKind.DATA_READ, 0, bytes(128))
        bus.record(TransactionKind.DATA_READ, 128, bytes(128))
        bus.record(TransactionKind.DATA_WRITE, 0, bytes(128))
        assert bus.counts[TransactionKind.DATA_READ] == 2
        assert bus.counts[TransactionKind.DATA_WRITE] == 1
        assert bus.bytes_moved[TransactionKind.DATA_READ] == 256

    def test_figure9_ratio_components(self):
        bus = MemoryBus()
        for _ in range(100):
            bus.record(TransactionKind.DATA_READ, 0, bytes(128))
        bus.record(TransactionKind.SEQNUM_WRITE, 0, bytes(128))
        bus.record(TransactionKind.SEQNUM_READ, 0, bytes(128))
        assert bus.program_transactions == 100
        assert bus.seqnum_transactions == 2
        assert bus.total_transactions == 102

    def test_instruction_reads_count_as_program_traffic(self):
        bus = MemoryBus()
        bus.record(TransactionKind.INSTRUCTION_READ, 0, bytes(128))
        assert bus.program_transactions == 1


class TestObservers:
    def test_observer_sees_transactions(self):
        bus = MemoryBus()
        seen: list[BusTransaction] = []
        bus.attach(seen.append)
        bus.record(TransactionKind.DATA_WRITE, 0x1000, b"\xde\xad")
        assert len(seen) == 1
        assert seen[0].addr == 0x1000
        assert seen[0].payload == b"\xde\xad"
        assert seen[0].is_write

    def test_detach_stops_delivery(self):
        bus = MemoryBus()
        seen: list[BusTransaction] = []
        bus.attach(seen.append)
        bus.detach(seen.append)
        bus.record(TransactionKind.DATA_READ, 0, b"")
        assert not seen

    def test_multiple_observers(self):
        bus = MemoryBus()
        a: list[BusTransaction] = []
        b: list[BusTransaction] = []
        bus.attach(a.append)
        bus.attach(b.append)
        bus.record(TransactionKind.SEQNUM_READ, 4, b"x")
        assert len(a) == len(b) == 1

    def test_read_kinds_are_not_writes(self):
        transaction = BusTransaction(TransactionKind.MAC_READ, 0, b"")
        assert not transaction.is_write

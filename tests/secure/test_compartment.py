"""Tests for XOM compartments: register tagging and the malicious-OS
interrupt boundary."""

import pytest

from repro.crypto.des import DES
from repro.errors import CompartmentViolation, ConfigurationError
from repro.secure.compartment import (
    SHARED_ID,
    CompartmentManager,
    TaggedRegisterFile,
)


def make_world():
    manager = CompartmentManager()
    task_a = manager.create(DES(b"task-A-k"))
    task_b = manager.create(DES(b"task-B-k"))
    registers = TaggedRegisterFile(manager, n_registers=8)
    return manager, task_a, task_b, registers


class TestTagging:
    def test_same_compartment_round_trip(self):
        manager, task_a, _, registers = make_world()
        manager.enter(task_a.xom_id)
        registers.write(1, 0xBEEF)
        assert registers.read(1) == 0xBEEF

    def test_foreign_read_traps(self):
        manager, task_a, task_b, registers = make_world()
        manager.enter(task_a.xom_id)
        registers.write(1, 0x5EC)
        manager.enter(task_b.xom_id)
        with pytest.raises(CompartmentViolation):
            registers.read(1)

    def test_shared_data_readable_by_all(self):
        manager, task_a, _, registers = make_world()
        registers.write(2, 42)  # written from the shared world
        manager.enter(task_a.xom_id)
        assert registers.read(2) == 42

    def test_write_retags(self):
        manager, task_a, task_b, registers = make_world()
        manager.enter(task_a.xom_id)
        registers.write(1, 1)
        manager.enter(task_b.xom_id)
        registers.write(1, 2)  # overwrite is allowed; reading was not
        assert registers.read(1) == 2
        assert registers.owner_of(1) == task_b.xom_id

    def test_os_cannot_read_task_register(self):
        manager, task_a, _, registers = make_world()
        manager.enter(task_a.xom_id)
        registers.write(3, 0xCAFE)
        manager.exit()  # interrupt: OS takes over, shared compartment
        with pytest.raises(CompartmentViolation):
            registers.read(3)

    def test_bad_register_index(self):
        _, _, _, registers = make_world()
        with pytest.raises(ConfigurationError):
            registers.read(99)


class TestManager:
    def test_ids_are_unique_and_nonzero(self):
        manager = CompartmentManager()
        a = manager.create(DES(bytes(8)))
        b = manager.create(DES(bytes(8)))
        assert a.xom_id != b.xom_id
        assert SHARED_ID not in (a.xom_id, b.xom_id)

    def test_enter_unknown_compartment(self):
        with pytest.raises(ConfigurationError):
            CompartmentManager().enter(7)

    def test_exit_returns_to_shared(self):
        manager, task_a, _, _ = make_world()
        manager.enter(task_a.xom_id)
        manager.exit()
        assert manager.active_id == SHARED_ID


class TestInterruptProtection:
    def test_save_scrubs_registers(self):
        manager, task_a, _, registers = make_world()
        manager.enter(task_a.xom_id)
        registers.write(1, 0xDEAD)
        registers.interrupt_save()
        manager.exit()
        # The OS sees zeroed shared registers, not task state.
        assert registers.read(1) == 0

    def test_save_restore_round_trip(self):
        manager, task_a, _, registers = make_world()
        manager.enter(task_a.xom_id)
        for index in range(8):
            registers.write(index, index * 1111)
        frame = registers.interrupt_save()
        manager.exit()  # OS runs...
        manager.enter(task_a.xom_id)
        registers.interrupt_restore(frame)
        for index in range(8):
            assert registers.read(index) == index * 1111

    def test_frames_mutate_across_interrupts(self):
        """Identical register state must never produce identical ciphertext
        (the mutating value of §3.4 / XOM's interrupt handling)."""
        manager, task_a, _, registers = make_world()
        manager.enter(task_a.xom_id)
        registers.write(1, 0x77)
        frame1 = registers.interrupt_save()
        registers.interrupt_restore(frame1)
        frame2 = registers.interrupt_save()
        assert frame1.ciphertext != frame2.ciphertext

    def test_replayed_frame_rejected(self):
        manager, task_a, _, registers = make_world()
        manager.enter(task_a.xom_id)
        registers.write(1, 1)
        stale = registers.interrupt_save()
        registers.interrupt_restore(stale)
        registers.write(1, 2)
        registers.interrupt_save()  # fresh frame, bumps the counter
        with pytest.raises(CompartmentViolation):
            registers.interrupt_restore(stale)

    def test_forged_frame_rejected(self):
        manager, task_a, _, registers = make_world()
        manager.enter(task_a.xom_id)
        frame = registers.interrupt_save()
        forged = type(frame)(
            frame.xom_id, frame.counter,
            bytes(len(frame.ciphertext)), frame.tag,
        )
        with pytest.raises(CompartmentViolation):
            registers.interrupt_restore(forged)

    def test_save_outside_compartment_rejected(self):
        _, _, _, registers = make_world()
        with pytest.raises(ConfigurationError):
            registers.interrupt_save()

"""Tests for the Sequence Number Cache data structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.secure.snc import (
    SequenceNumberCache,
    SNCConfig,
    SNCPolicy,
)


def tiny_snc(entries=4, assoc=None, policy=SNCPolicy.LRU):
    config = SNCConfig(
        size_bytes=entries * 2, entry_bytes=2, assoc=assoc, policy=policy
    )
    return SequenceNumberCache(config)


class TestConfig:
    def test_paper_default_geometry(self):
        config = SNCConfig()
        assert config.n_entries == 32 * 1024  # 64KB / 2B: covers 4MB
        assert config.coverage_bytes == 4 * 1024 * 1024
        assert config.n_sets == 1  # fully associative

    def test_32way_geometry(self):
        config = SNCConfig(assoc=32)
        assert config.n_sets == 1024
        assert config.ways == 32

    def test_figure6_sizes(self):
        for size_kb, coverage_mb in ((32, 2), (64, 4), (128, 8)):
            config = SNCConfig(size_bytes=size_kb * 1024)
            assert config.coverage_bytes == coverage_mb * 1024 * 1024

    def test_rejects_bad_associativity(self):
        with pytest.raises(ConfigurationError):
            SNCConfig(size_bytes=64, entry_bytes=2, assoc=7)

    def test_rejects_non_power_of_two_entries(self):
        with pytest.raises(ConfigurationError):
            SNCConfig(size_bytes=24, entry_bytes=2)


class TestQueryUpdate:
    def test_query_miss_on_empty(self):
        snc = tiny_snc()
        assert snc.query(5) is None
        assert snc.stats.query_misses == 1

    def test_insert_then_query_hit(self):
        snc = tiny_snc()
        snc.insert(5, 7)
        assert snc.query(5) == 7
        assert snc.stats.query_hits == 1

    def test_update_bumps_sequence_number(self):
        snc = tiny_snc()
        snc.insert(5, 7)
        assert snc.update(5) == 8
        assert snc.peek(5) == 8

    def test_update_miss_returns_none(self):
        snc = tiny_snc()
        assert snc.update(9) is None
        assert snc.stats.update_misses == 1

    def test_repeated_updates_count(self):
        snc = tiny_snc()
        snc.insert(1, 0)
        for expected in range(1, 6):
            assert snc.update(1) == expected


class TestLRUReplacement:
    def test_eviction_returns_victim(self):
        snc = tiny_snc(entries=2)
        snc.insert(1, 10)
        snc.insert(2, 20)
        victim = snc.insert(3, 30)
        assert victim is not None
        assert (victim.line_index, victim.seq) == (1, 10)

    def test_query_refreshes_lru(self):
        snc = tiny_snc(entries=2)
        snc.insert(1, 10)
        snc.insert(2, 20)
        snc.query(1)
        victim = snc.insert(3, 30)
        assert victim.line_index == 2

    def test_update_refreshes_lru(self):
        snc = tiny_snc(entries=2)
        snc.insert(1, 10)
        snc.insert(2, 20)
        snc.update(1)
        victim = snc.insert(3, 30)
        assert victim.line_index == 2

    def test_reinsert_refreshes_value_without_eviction(self):
        snc = tiny_snc(entries=2)
        snc.insert(1, 10)
        snc.insert(2, 20)
        assert snc.insert(1, 99) is None
        assert snc.peek(1) == 99
        assert len(snc) == 2


class TestNoReplacement:
    def test_rejects_insert_when_full(self):
        snc = tiny_snc(entries=2, policy=SNCPolicy.NO_REPLACEMENT)
        snc.insert(1, 1)
        snc.insert(2, 1)
        assert not snc.can_insert(3)
        with pytest.raises(ConfigurationError):
            snc.insert(3, 1)

    def test_can_insert_while_room(self):
        snc = tiny_snc(entries=2, policy=SNCPolicy.NO_REPLACEMENT)
        assert snc.can_insert(1)
        snc.insert(1, 1)
        assert snc.can_insert(2)

    def test_rejection_counter(self):
        snc = tiny_snc(entries=1, policy=SNCPolicy.NO_REPLACEMENT)
        snc.note_rejection()
        assert snc.stats.rejected == 1

    def test_resident_entries_still_hit(self):
        snc = tiny_snc(entries=2, policy=SNCPolicy.NO_REPLACEMENT)
        snc.insert(1, 5)
        snc.insert(2, 6)
        assert snc.query(1) == 5
        assert snc.update(2) == 7


class TestSetAssociativity:
    def test_conflict_in_one_set(self):
        # 8 entries, 2-way: 4 sets.  Lines 0, 4, 8 all map to set 0.
        snc = tiny_snc(entries=8, assoc=2)
        snc.insert(0, 1)
        snc.insert(4, 2)
        victim = snc.insert(8, 3)
        assert victim.line_index == 0  # conflict eviction despite room

    def test_different_sets_do_not_conflict(self):
        snc = tiny_snc(entries=8, assoc=2)
        snc.insert(0, 1)
        snc.insert(1, 2)
        snc.insert(2, 3)
        assert len(snc) == 3

    def test_fully_associative_uses_whole_capacity(self):
        snc = tiny_snc(entries=8)
        for line in range(8):
            assert snc.insert(line * 4, line) is None
        assert snc.is_full


class TestXomIdTagging:
    def test_ids_are_isolated(self):
        snc = tiny_snc()
        snc.insert(5, 7, xom_id=1)
        assert snc.query(5, xom_id=2) is None
        assert snc.query(5, xom_id=1) == 7

    def test_drop_task_spills_only_that_task(self):
        snc = tiny_snc()
        snc.insert(1, 10, xom_id=1)
        snc.insert(2, 20, xom_id=2)
        spilled = snc.drop_task(1)
        assert [(e.line_index, e.seq) for e in spilled] == [(1, 10)]
        assert snc.peek(2, xom_id=2) == 20

    def test_flush_spills_everything(self):
        snc = tiny_snc()
        snc.insert(1, 10, xom_id=1)
        snc.insert(2, 20, xom_id=2)
        spilled = snc.flush()
        assert len(spilled) == 2
        assert len(snc) == 0


class TestStatsAndInvariants:
    def test_hit_rate(self):
        snc = tiny_snc()
        snc.insert(1, 0)
        snc.query(1)
        snc.query(2)
        assert snc.stats.query_hit_rate == 0.5

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.booleans()),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_capacity_never_exceeded(self, operations):
        snc = tiny_snc(entries=4)
        shadow: dict[int, int] = {}
        for line, is_write in operations:
            if is_write:
                seq = snc.update(line)
                if seq is None:
                    seq = shadow.get(line, 0) + 1
                    snc.insert(line, seq)
                shadow[line] = seq
            else:
                seq = snc.query(line)
                if seq is not None:
                    # A hit must agree with the shadow model.
                    assert seq == shadow.get(line, seq)
            assert len(snc) <= 4

    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=100)
    )
    @settings(max_examples=30, deadline=None)
    def test_sequence_numbers_monotone_per_line(self, lines):
        """Sequence numbers must never decrease — pad-uniqueness depends
        on it (until the documented epoch wrap)."""
        snc = tiny_snc(entries=16)
        last: dict[int, int] = {}
        for line in lines:
            seq = snc.update(line)
            if seq is None:
                seq = last.get(line, 0) + 1
                snc.insert(line, seq)
            assert seq > last.get(line, 0) - 1
            if line in last:
                assert seq == last[line] + 1
            last[line] = seq

"""Tests for the integrity extension: MAC vs hash tree against the three
XOM attacks (spoofing, splicing, replay)."""

import pytest

from repro.errors import ConfigurationError, ReplayDetected, TamperDetected
from repro.secure.integrity import HashTreeIntegrity, MACIntegrity

_LINE_A = bytes(range(128))
_LINE_B = bytes(reversed(range(128)))


class TestMACIntegrity:
    def make(self):
        return MACIntegrity(key=b"integrity-key")

    def test_honest_round_trip(self):
        mac = self.make()
        mac.record_line(0, _LINE_A)
        mac.verify_line(0, _LINE_A)  # no exception

    def test_detects_spoofing(self):
        mac = self.make()
        mac.record_line(0, _LINE_A)
        with pytest.raises(TamperDetected):
            mac.verify_line(0, _LINE_B)

    def test_detects_splicing(self):
        """Moving a valid line to another address changes the MAC input."""
        mac = self.make()
        mac.record_line(0, _LINE_A)
        mac.record_line(128, _LINE_B)
        # Adversary splices line A's data AND its tag to address 128.
        mac.tag_table[128] = mac.tag_table[0]
        with pytest.raises(TamperDetected):
            mac.verify_line(128, _LINE_A)

    def test_replay_is_NOT_detected(self):
        """The documented limitation: a stale (line, tag) pair verifies.
        This is exactly why the hash tree exists."""
        mac = self.make()
        mac.record_line(0, _LINE_A)
        stale_tag = mac.tag_table[0]
        mac.record_line(0, _LINE_B)  # program overwrites the line
        # Adversary restores the old data and the old tag together.
        mac.tag_table[0] = stale_tag
        mac.verify_line(0, _LINE_A)  # passes: replay succeeds

    def test_unrecorded_lines_pass(self):
        self.make().verify_line(0x5000, _LINE_A)

    def test_covers_everything(self):
        assert self.make().covers(0)
        assert self.make().covers(1 << 40)

    def test_rejects_bad_tag_length(self):
        with pytest.raises(ConfigurationError):
            MACIntegrity(b"k", tag_bytes=2)


class TestHashTreeIntegrity:
    def make(self, cache_entries=0):
        return HashTreeIntegrity(
            base_addr=0, n_lines=16, line_bytes=128,
            node_cache_entries=cache_entries,
        )

    def test_honest_round_trip(self):
        tree = self.make()
        tree.record_line(0, _LINE_A)
        tree.record_line(128, _LINE_B)
        tree.verify_line(0, _LINE_A)
        tree.verify_line(128, _LINE_B)

    def test_detects_spoofing(self):
        tree = self.make()
        tree.record_line(0, _LINE_A)
        with pytest.raises((TamperDetected, ReplayDetected)):
            tree.verify_line(0, _LINE_B)

    def test_detects_splicing(self):
        tree = self.make()
        tree.record_line(0, _LINE_A)
        tree.record_line(128, _LINE_B)
        with pytest.raises((TamperDetected, ReplayDetected)):
            tree.verify_line(128, _LINE_A)

    def test_detects_replay(self):
        """The improvement over per-line MACs: the on-chip root pins the
        freshest state, so restoring stale nodes cannot help."""
        tree = self.make()
        tree.record_line(0, _LINE_A)
        stale_nodes = dict(tree.node_store)
        tree.record_line(0, _LINE_B)
        tree.node_store.clear()
        tree.node_store.update(stale_nodes)  # full metadata rollback
        with pytest.raises(ReplayDetected):
            tree.verify_line(0, _LINE_A)

    def test_covers_only_protected_range(self):
        tree = self.make()
        assert tree.covers(0)
        assert tree.covers(15 * 128)
        assert not tree.covers(16 * 128)
        assert not tree.covers(1 << 30)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().verify_line(16 * 128, _LINE_A)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            HashTreeIntegrity(base_addr=0, n_lines=12)

    def test_node_cache_reduces_hash_work(self):
        """The Gassend-style optimisation: verification stops at a trusted
        cached ancestor."""
        cold = self.make(cache_entries=0)
        warm = self.make(cache_entries=64)
        for tree in (cold, warm):
            for line in range(16):
                tree.record_line(line * 128, _LINE_A)
        cold.stats.hashes_computed = 0
        warm.stats.hashes_computed = 0
        for line in range(16):
            cold.verify_line(line * 128, _LINE_A)
            warm.verify_line(line * 128, _LINE_A)
        assert warm.stats.hashes_computed < cold.stats.hashes_computed
        assert warm.stats.node_cache_hits > 0

    def test_tampered_node_detected_with_cache(self):
        tree = self.make(cache_entries=64)
        for line in range(4):
            tree.record_line(line * 128, _LINE_A)
        with pytest.raises((TamperDetected, ReplayDetected)):
            tree.verify_line(0, _LINE_B)

    def test_stats_track_failures(self):
        tree = self.make()
        tree.record_line(0, _LINE_A)
        with pytest.raises((TamperDetected, ReplayDetected)):
            tree.verify_line(0, _LINE_B)
        assert tree.stats.failures == 1

"""Tests for the vendor packaging / processor installation flow (§2.1)."""

import pytest

from repro.crypto.keys import CipherSuite
from repro.crypto.modes import otp_transform
from repro.crypto.rsa import RSAKeyPair
from repro.errors import ConfigurationError, KeyExchangeError
from repro.memory.dram import DRAM
from repro.secure.seeds import SeedScheme
from repro.secure.software import (
    PlainProgram,
    Segment,
    SegmentKind,
    install_image,
    package_program,
    unwrap_program_key,
)

_PROCESSOR = RSAKeyPair.generate(bits=512, seed="test-cpu")
_PIRATE = RSAKeyPair.generate(bits=512, seed="pirate-cpu")


def simple_program():
    code = bytes(range(256))
    data = b"initialized-data".ljust(128, b"\x00")
    inputs = b"user input arrives in plaintext".ljust(128, b"\x00")
    return PlainProgram(
        segments=(
            Segment(0x1000, code, SegmentKind.CODE, "text"),
            Segment(0x2000, data, SegmentKind.DATA, "data"),
            Segment(0x3000, inputs, SegmentKind.PLAINTEXT, "inputs"),
        ),
        entry_point=0x1000,
        name="toy",
    )


class TestPackaging:
    def test_code_and_data_are_encrypted(self):
        secure = package_program(simple_program(), _PROCESSOR.public)
        by_name = {s.name: s for s in secure.segments}
        assert by_name["text"].data != simple_program().segments[0].data
        assert by_name["data"].data != simple_program().segments[1].data

    def test_plaintext_segment_untouched(self):
        secure = package_program(simple_program(), _PROCESSOR.public)
        by_name = {s.name: s for s in secure.segments}
        assert by_name["inputs"].data == simple_program().segments[2].data

    def test_code_uses_virtual_address_seeds(self):
        """§3.4.1: the customer's processor only needs the VA to rebuild
        the pad — verify by decrypting with the scheme directly."""
        secure = package_program(
            simple_program(), _PROCESSOR.public, vendor_seed="v1"
        )
        key = unwrap_program_key(secure, _PROCESSOR.private)
        cipher = key.new_cipher()
        scheme = SeedScheme(line_bytes=128, block_bytes=cipher.block_size)
        text = next(s for s in secure.segments if s.name == "text")
        first_line = text.data[:128]
        seed = scheme.instruction_seed(text.base)
        assert otp_transform(cipher, seed, first_line) == bytes(range(128))

    def test_unaligned_segment_is_line_padded(self):
        program = PlainProgram(
            segments=(Segment(0x1010, b"\xaa" * 10, SegmentKind.DATA, "odd"),),
            entry_point=0x1010,
        )
        secure = package_program(program, _PROCESSOR.public)
        segment = secure.segments[0]
        assert segment.base == 0x1000
        assert len(segment.data) == 128

    def test_deterministic_given_seed(self):
        a = package_program(simple_program(), _PROCESSOR.public, vendor_seed=1)
        b = package_program(simple_program(), _PROCESSOR.public, vendor_seed=1)
        assert a.segments == b.segments
        assert a.wrapped_key == b.wrapped_key

    def test_plaintext_regions_map(self):
        secure = package_program(simple_program(), _PROCESSOR.public)
        regions = secure.plaintext_regions()
        assert regions.is_plaintext(0x3000)
        assert not regions.is_plaintext(0x1000)


class TestKeyExchange:
    def test_target_processor_unwraps(self):
        secure = package_program(simple_program(), _PROCESSOR.public)
        key = unwrap_program_key(secure, _PROCESSOR.private)
        assert key.suite is CipherSuite.DES
        assert len(key.material) == 8

    def test_pirate_processor_cannot_unwrap(self):
        """The anti-piracy core: same ciphertext, wrong die, no key."""
        secure = package_program(simple_program(), _PROCESSOR.public)
        with pytest.raises(KeyExchangeError):
            unwrap_program_key(secure, _PIRATE.private)

    def test_aes_suite(self):
        secure = package_program(
            simple_program(), _PROCESSOR.public, suite=CipherSuite.AES128
        )
        key = unwrap_program_key(secure, _PROCESSOR.private)
        assert len(key.material) == 16


class TestInstallation:
    def test_image_lands_in_memory(self):
        secure = package_program(simple_program(), _PROCESSOR.public)
        dram = DRAM(line_bytes=128)
        install_image(secure, dram)
        text = next(s for s in secure.segments if s.name == "text")
        assert dram.peek(text.base, len(text.data)) == text.data

    def test_install_records_integrity(self):
        from repro.secure.integrity import MACIntegrity
        secure = package_program(simple_program(), _PROCESSOR.public)
        dram = DRAM(line_bytes=128)
        mac = MACIntegrity(b"k")
        install_image(secure, dram, integrity=mac)
        # text (2 lines) + data (1 line), but not the plaintext inputs.
        assert len(mac.tag_table) == 3

    def test_empty_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            Segment(0, b"", SegmentKind.CODE)

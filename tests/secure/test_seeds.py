"""Tests for seed construction — uniqueness is the whole security story."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.secure.seeds import SeedScheme

_SCHEME = SeedScheme(line_bytes=128, block_bytes=8, seq_bits=16)


class TestGeometry:
    def test_paper_configuration(self):
        assert _SCHEME.chunks_per_line == 16
        assert _SCHEME.chunk_bits == 4
        assert _SCHEME.max_seq == 0xFFFF

    def test_aes_configuration(self):
        scheme = SeedScheme(line_bytes=128, block_bytes=16)
        assert scheme.chunks_per_line == 8
        assert scheme.chunk_bits == 3

    def test_rejects_indivisible_line(self):
        with pytest.raises(ConfigurationError):
            SeedScheme(line_bytes=100, block_bytes=8)

    def test_rejects_unaligned_address(self):
        with pytest.raises(ConfigurationError):
            _SCHEME.data_seed(130, 0)

    def test_rejects_out_of_range_seq(self):
        with pytest.raises(ConfigurationError):
            _SCHEME.data_seed(0, 1 << 16)


class TestUniqueness:
    def test_instruction_seed_equals_version_zero(self):
        """The vendor encrypts with 'the virtual addresses' — i.e. version 0
        (§3.4.1), which is also what an untouched data line decrypts with."""
        assert _SCHEME.instruction_seed(0x1000) == _SCHEME.data_seed(0x1000, 0)

    def test_adjacent_lines_leave_chunk_room(self):
        """Seeds of adjacent lines must differ by more than a line's worth
        of chunk counters, or pads would overlap."""
        gap = _SCHEME.data_seed(128, 0) - _SCHEME.data_seed(0, 0)
        assert gap >= _SCHEME.chunks_per_line

    def test_versions_leave_chunk_room(self):
        gap = _SCHEME.data_seed(0, 1) - _SCHEME.data_seed(0, 0)
        assert gap >= _SCHEME.chunks_per_line

    @given(
        st.tuples(st.integers(0, 2**20), st.integers(0, 0xFFFF)),
        st.tuples(st.integers(0, 2**20), st.integers(0, 0xFFFF)),
    )
    @settings(max_examples=100, deadline=None)
    def test_no_pad_block_collisions(self, a, b):
        """The critical invariant: for distinct (line, version) pairs, the
        per-chunk counter ranges [seed, seed+chunks) never intersect."""
        if a == b:
            return
        seed_a = _SCHEME.data_seed(a[0] * 128, a[1])
        seed_b = _SCHEME.data_seed(b[0] * 128, b[1])
        chunks = _SCHEME.chunks_per_line
        overlap = (
            seed_a < seed_b + chunks and seed_b < seed_a + chunks
        )
        assert not overlap

    def test_line_index(self):
        assert _SCHEME.line_index(0) == 0
        assert _SCHEME.line_index(128) == 1
        assert _SCHEME.line_index(0x10000) == 512

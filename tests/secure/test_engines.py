"""Functional tests for the three memory-encryption engines.

These check the *functional* contract (what bytes appear where) and the
*timing* contract (what each operation charges to the critical path),
which together are the paper's whole story.
"""

import pytest

from repro.crypto.des import DES
from repro.errors import TamperDetected
from repro.memory.bus import MemoryBus, TransactionKind
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure.engine import BaselineEngine, LatencyParams
from repro.secure.otp_engine import OTPEngine
from repro.secure.regions import Region, RegionMap
from repro.secure.snc import SequenceNumberCache, SNCConfig, SNCPolicy
from repro.secure.xom_engine import XOMEngine

_KEY = bytes.fromhex("133457799BBCDFF1")
_LINE = bytes(range(128))


def make_dram():
    return DRAM(line_bytes=128, latency=100)


def make_otp(policy=SNCPolicy.LRU, entries=8, dram=None, bus=None,
             latencies=None, regions=None):
    dram = dram or make_dram()
    snc = SequenceNumberCache(
        SNCConfig(size_bytes=entries * 2, entry_bytes=2, policy=policy)
    )
    engine = OTPEngine(
        dram, DES(_KEY), snc=snc, bus=bus or MemoryBus(),
        latencies=latencies, regions=regions,
    )
    return engine, dram


class TestLatencyParams:
    def test_paper_values(self):
        lat = LatencyParams(memory=100, crypto=50, xor=1)
        assert lat.baseline_read == 100
        assert lat.serial_read == 150
        assert lat.overlapped_read == 101  # MAX(100, 50) + 1 (§3.2)
        assert lat.seqnum_miss_read == 201

    def test_figure10_values(self):
        lat = LatencyParams(memory=100, crypto=102, xor=1)
        assert lat.serial_read == 202
        assert lat.overlapped_read == 103  # MAX(100, 102) + 1
        assert lat.seqnum_miss_read == 305


class TestBaselineEngine:
    def test_round_trip_plaintext_on_bus(self):
        dram = make_dram()
        bus = MemoryBus()
        engine = BaselineEngine(dram, bus)
        engine.write_line(0, _LINE)
        data, cycles = engine.read_line(0, LineKind.DATA)
        assert data == _LINE
        assert cycles == 100
        # The attack surface: plaintext visible in DRAM.
        assert dram.peek(0, 128) == _LINE

    def test_write_off_critical_path(self):
        engine = BaselineEngine(make_dram())
        assert engine.write_line(0, _LINE) == 0


class TestXOMEngine:
    def test_round_trip(self):
        dram = make_dram()
        engine = XOMEngine(dram, DES(_KEY))
        engine.write_line(0, _LINE)
        data, cycles = engine.read_line(0, LineKind.DATA)
        assert data == _LINE
        assert cycles == 150  # memory + crypto, serial (§2.2)

    def test_memory_holds_ciphertext(self):
        dram = make_dram()
        engine = XOMEngine(dram, DES(_KEY))
        engine.write_line(0, _LINE)
        assert dram.peek(0, 128) != _LINE

    def test_equal_lines_produce_equal_ciphertext(self):
        """The §3.4 pattern-leak the OTP scheme fixes."""
        dram = make_dram()
        engine = XOMEngine(dram, DES(_KEY))
        engine.write_line(0, _LINE)
        engine.write_line(128, _LINE)
        assert dram.peek(0, 128) == dram.peek(128, 128)

    def test_plaintext_region_bypasses_crypto(self):
        regions = RegionMap()
        regions.add(Region(0, 256, "shared-lib"))
        dram = make_dram()
        engine = XOMEngine(dram, DES(_KEY), regions=regions)
        engine.write_line(0, _LINE)
        assert dram.peek(0, 128) == _LINE
        data, cycles = engine.read_line(0, LineKind.DATA)
        assert data == _LINE
        assert cycles == 100  # no crypto charged


class TestOTPEngineReadPaths:
    def test_snc_hit_is_overlapped(self):
        engine, _ = make_otp()
        engine.write_line(0, _LINE)  # installs seq 1 in the SNC
        data, cycles = engine.read_line(0, LineKind.DATA)
        assert data == _LINE
        assert cycles == 101  # MAX(100,50)+1
        assert engine.stats.overlapped_reads == 1

    def test_lru_query_miss_costs_seqnum_fetch(self):
        engine, _ = make_otp(entries=2)
        # Write lines 0..2: line 0's seqnum gets evicted from the tiny SNC.
        for line in range(3):
            engine.write_line(line * 128, _LINE)
        assert engine.snc.peek(0) is None
        data, cycles = engine.read_line(0, LineKind.DATA)
        assert data == _LINE
        assert cycles == 201  # fetch+decrypt seqnum, then pad, then XOR
        assert engine.stats.seqnum_miss_reads == 1

    def test_instruction_read_is_always_overlapped(self):
        engine, dram = make_otp()
        # Simulate a vendor-encrypted code line: version-0 pad.
        from repro.crypto.modes import otp_transform
        seed = engine.seed_scheme.instruction_seed(0x1000)
        dram.poke(0x1000, otp_transform(engine.cipher, seed, _LINE))
        data, cycles = engine.read_line(0x1000, LineKind.INSTRUCTION)
        assert data == _LINE
        assert cycles == 101
        assert engine.snc.stats.queries == 0  # instructions skip the SNC

    def test_untouched_vendor_data_reads_at_version_zero(self):
        engine, dram = make_otp()
        from repro.crypto.modes import otp_transform
        seed = engine.seed_scheme.data_seed(0x2000, 0)
        dram.poke(0x2000, otp_transform(engine.cipher, seed, _LINE))
        data, cycles = engine.read_line(0x2000, LineKind.DATA)
        assert data == _LINE
        assert cycles == 201  # query miss -> table read returns version 0

    def test_plaintext_region(self):
        regions = RegionMap()
        regions.add(Region(0x4000, 0x4100, "inputs"))
        engine, dram = make_otp(regions=regions)
        dram.poke(0x4000, _LINE)
        data, cycles = engine.read_line(0x4000, LineKind.DATA)
        assert data == _LINE
        assert cycles == 100


class TestOTPEngineWritePaths:
    def test_memory_holds_ciphertext(self):
        engine, dram = make_otp()
        engine.write_line(0, _LINE)
        assert dram.peek(0, 128) != _LINE

    def test_writes_off_critical_path(self):
        engine, _ = make_otp()
        assert engine.write_line(0, _LINE) == 0

    def test_rewrite_same_line_changes_ciphertext(self):
        """The sequence number mutates the pad on every writeback — the fix
        for the §3.4 constant-seed leak."""
        engine, dram = make_otp()
        engine.write_line(0, _LINE)
        first = dram.peek(0, 128)
        engine.write_line(0, _LINE)
        second = dram.peek(0, 128)
        assert first != second
        data, _ = engine.read_line(0, LineKind.DATA)
        assert data == _LINE

    def test_equal_lines_produce_different_ciphertext(self):
        engine, dram = make_otp()
        engine.write_line(0, _LINE)
        engine.write_line(128, _LINE)
        assert dram.peek(0, 128) != dram.peek(128, 128)

    def test_many_rewrites_round_trip(self):
        engine, _ = make_otp()
        for value in range(20):
            line = bytes([value]) * 128
            engine.write_line(0, line)
        data, _ = engine.read_line(0, LineKind.DATA)
        assert data == bytes([19]) * 128


class TestNoReplacementPolicy:
    def test_overflow_lines_fall_back_to_direct_encryption(self):
        engine, dram = make_otp(policy=SNCPolicy.NO_REPLACEMENT, entries=2)
        for line in range(3):
            engine.write_line(line * 128, _LINE)
        assert engine.snc.stats.rejected == 1
        # Line 2 took the XOM path: serial read latency.
        data, cycles = engine.read_line(2 * 128, LineKind.DATA)
        assert data == _LINE
        assert cycles == 150
        assert engine.stats.serial_reads == 1

    def test_covered_lines_stay_overlapped(self):
        engine, _ = make_otp(policy=SNCPolicy.NO_REPLACEMENT, entries=2)
        for line in range(3):
            engine.write_line(line * 128, _LINE)
        data, cycles = engine.read_line(0, LineKind.DATA)
        assert data == _LINE
        assert cycles == 101

    def test_direct_line_can_regain_otp_after_room_frees(self):
        engine, _ = make_otp(policy=SNCPolicy.NO_REPLACEMENT, entries=2)
        for line in range(3):
            engine.write_line(line * 128, _LINE)
        # SNC stays full forever under no-replacement, but the same line
        # rewritten still takes the direct path and round-trips.
        engine.write_line(2 * 128, bytes([7]) * 128)
        data, _ = engine.read_line(2 * 128, LineKind.DATA)
        assert data == bytes([7]) * 128


class TestSeqnumTable:
    def test_spilled_numbers_are_encrypted_in_memory(self):
        engine, dram = make_otp(entries=2)
        for line in range(3):
            engine.write_line(line * 128, _LINE)
        # The victim's table entry must not store the seq in the clear.
        table_raw = dram.peek(engine._table_addr(0), 8)
        assert table_raw != (1).to_bytes(8, "big")
        assert table_raw != bytes(8)

    def test_spliced_table_entry_detected(self):
        engine, dram = make_otp(entries=2)
        for line in range(4):
            engine.write_line(line * 128, _LINE)
        # Splice: copy line 1's table entry over line 0's.
        entry_1 = dram.peek(engine._table_addr(1), 8)
        dram.poke(engine._table_addr(0), entry_1)
        with pytest.raises(TamperDetected):
            engine.read_line(0, LineKind.DATA)

    def test_bus_records_seqnum_traffic(self):
        bus = MemoryBus()
        engine, _ = make_otp(entries=2, bus=bus)
        for line in range(3):
            engine.write_line(line * 128, _LINE)
        assert bus.counts[TransactionKind.SEQNUM_WRITE] >= 1
        engine.read_line(0, LineKind.DATA)
        assert bus.counts[TransactionKind.SEQNUM_READ] >= 1

    def test_flush_snc_spills_everything(self):
        engine, _ = make_otp(entries=4)
        for line in range(3):
            engine.write_line(line * 128, _LINE)
        spilled = engine.flush_snc()
        assert spilled == 3
        assert len(engine.snc) == 0
        # All lines still decrypt after the flush (query misses).
        for line in range(3):
            data, cycles = engine.read_line(line * 128, LineKind.DATA)
            assert data == _LINE
            assert cycles == 201


class TestSequenceOverflow:
    def test_overflow_wraps_and_counts(self):
        engine, _ = make_otp()
        scheme = engine.seed_scheme
        engine.snc.insert(0, scheme.max_seq)  # one writeback from overflow
        engine.write_line(0, _LINE)
        assert engine.stats.seq_overflows == 1
        data, _ = engine.read_line(0, LineKind.DATA)
        assert data == _LINE


class TestFigure10Insensitivity:
    """§5.6: OTP latency barely moves when crypto slows from 50 to 102."""

    def test_otp_hit_cost_tracks_max(self):
        slow = LatencyParams(memory=100, crypto=102)
        engine, _ = make_otp(latencies=slow)
        engine.write_line(0, _LINE)
        _, cycles = engine.read_line(0, LineKind.DATA)
        assert cycles == 103  # vs 202 for XOM

    def test_xom_cost_degrades_linearly(self):
        dram = make_dram()
        engine = XOMEngine(
            dram, DES(_KEY), latencies=LatencyParams(memory=100, crypto=102)
        )
        engine.write_line(0, _LINE)
        _, cycles = engine.read_line(0, LineKind.DATA)
        assert cycles == 202

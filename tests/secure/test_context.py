"""Tests for §4.3 context switching: the SNCPolicyCore switch hooks and
the TaskContexts coordinator."""

import pytest

from repro.errors import ConfigurationError
from repro.secure.context import SwitchStrategy, TaskContexts
from repro.secure.snc import Evicted, SequenceNumberCache, SNCConfig, SNCPolicy
from repro.secure.snc_policy import SNCPolicyCore


def small_config():
    return SNCConfig(size_bytes=32, entry_bytes=2)  # 16 entries


class SpillTable:
    """The timing-sim style backing store: per-owner dict + counters."""

    def __init__(self):
        self.entries: dict[tuple[int, int], int] = {}
        self.fetches = 0
        self.spills = 0

    def fetch(self, xom_id: int, line_index: int) -> int:
        self.fetches += 1
        return self.entries.get((xom_id, line_index), 0)

    def spill(self, victim: Evicted) -> None:
        self.spills += 1
        self.entries[(victim.xom_id, victim.line_index)] = victim.seq


def make_contexts(strategy, config=None, core_factory=None):
    table = SpillTable()
    contexts = TaskContexts(
        SequenceNumberCache(config or small_config()),
        core_factory=core_factory,
        strategy=strategy,
        fetch_entry=table.fetch,
        spill_entry=table.spill,
    )
    return contexts, table


class TestFlushStrategy:
    def test_switch_out_spills_everything_and_empties_the_snc(self):
        contexts, table = make_contexts(SwitchStrategy.FLUSH)
        core = contexts.core_for(0)
        for line in range(4):
            core.write(line)
        assert len(contexts.snc) == 4
        spilled = contexts.switch_to(1)
        # FLUSH leaves the SNC empty; every entry went to the table.
        assert spilled == 4
        assert len(contexts.snc) == 0
        assert table.spills == 4
        assert table.entries == {(0, line): 1 for line in range(4)}

    def test_returning_task_takes_query_misses(self):
        contexts, table = make_contexts(SwitchStrategy.FLUSH)
        contexts.core_for(0).write(5)
        contexts.switch_to(1)
        contexts.switch_to(0)
        fetches_before = table.fetches
        decision = contexts.core_for(0).read(5)
        # Cold SNC: the spilled number comes back via a table fetch.
        assert decision.seq == 1
        assert table.fetches == fetches_before + 1

    def test_sequence_numbers_resume_after_flush(self):
        """A flushed-then-rewritten line must never reuse a pad."""
        contexts, table = make_contexts(SwitchStrategy.FLUSH)
        core = contexts.core_for(0)
        core.write(5)  # seq 1
        contexts.switch_to(1)
        contexts.switch_to(0)
        assert contexts.snc.peek(5) is None
        decision = core.write(5)  # update miss: fetch + increment
        assert decision.seq == 2

    def test_flush_requires_lru_policy(self):
        config = SNCConfig(
            size_bytes=32, entry_bytes=2, policy=SNCPolicy.NO_REPLACEMENT
        )
        with pytest.raises(ConfigurationError):
            make_contexts(SwitchStrategy.FLUSH, config)


class TestTagStrategy:
    def test_never_spills_at_switch_time(self):
        contexts, table = make_contexts(SwitchStrategy.TAG)
        for line in range(4):
            contexts.core_for(0).write(line)
        spilled = contexts.switch_to(1)
        assert spilled == 0
        assert table.spills == 0
        assert len(contexts.snc) == 4

    def test_entries_survive_and_hit_on_return(self):
        contexts, table = make_contexts(SwitchStrategy.TAG)
        contexts.core_for(0).write(5)
        contexts.switch_to(1)
        contexts.switch_to(0)
        fetches_before = table.fetches
        decision = contexts.core_for(0).read(5)
        assert decision.seq == 1
        # Resident under the owner tag: no table round trip for the read.
        assert table.fetches == fetches_before

    def test_same_lines_do_not_alias_across_tasks(self):
        """Two tasks touching the same line indices keep separate
        sequence numbers (the §4.3 synonym discipline: owner tags)."""
        contexts, table = make_contexts(SwitchStrategy.TAG)
        contexts.core_for(1).write(5)
        contexts.core_for(2).write(5)
        contexts.core_for(2).write(5)
        assert contexts.snc.peek(5, xom_id=1) == 1
        assert contexts.snc.peek(5, xom_id=2) == 2

    def test_capacity_contention_evicts_across_tasks(self):
        config = SNCConfig(size_bytes=8, entry_bytes=2)  # 4 entries
        contexts, table = make_contexts(SwitchStrategy.TAG, config)
        for line in range(4):
            contexts.core_for(0).write(line)
        contexts.switch_to(1)
        for line in range(4):
            contexts.core_for(1).write(line + 100)
        # Task 1's traffic pushed task 0's entries out to the table.
        assert table.spills == 4
        assert all(owner == 0 for owner, _ in table.entries)


class TestTaskContexts:
    def test_cores_are_per_task_and_lazy(self):
        contexts, _ = make_contexts(SwitchStrategy.TAG)
        assert contexts.task_ids == (0,)
        core1 = contexts.core_for(1)
        assert contexts.core_for(1) is core1
        assert core1.xom_id == 1
        assert contexts.task_ids == (0, 1)

    def test_begin_selects_without_side_effects(self):
        contexts, table = make_contexts(SwitchStrategy.FLUSH)
        contexts.core_for(0).write(3)
        contexts.begin(2)
        # begin() is not a switch: nothing spilled, entry still resident.
        assert table.spills == 0
        assert contexts.current.xom_id == 2
        assert contexts.snc.peek(3) == 1

    def test_custom_core_factory_is_used_per_task(self):
        class Probe(SNCPolicyCore):
            pass

        contexts, _ = make_contexts(
            SwitchStrategy.TAG, core_factory=Probe
        )
        assert isinstance(contexts.core_for(7), Probe)

    def test_fallback_state_is_private_per_task(self):
        """direct_lines must not leak between tasks: line 9 retired for
        task 0 stays pad-encrypted for task 1."""
        config = SNCConfig(
            size_bytes=8, entry_bytes=2, policy=SNCPolicy.NO_REPLACEMENT
        )
        contexts, _ = make_contexts(SwitchStrategy.TAG, config)
        core0 = contexts.core_for(0)
        for line in range(4):
            core0.write(line)
        core0.write(9)  # set full: rejected, retired to direct
        assert 9 in core0.direct_lines
        assert 9 not in contexts.core_for(1).direct_lines

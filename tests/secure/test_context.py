"""Tests for the multi-task SNC context-switch model (§4.3)."""

import pytest

from repro.secure.context import (
    MultiTaskSNCModel,
    SwitchStrategy,
    TaskStream,
)
from repro.secure.snc import SNCConfig, SNCPolicy


def stream(xom_id, lines, writes_first=True):
    """A task that writes each line once then reads it repeatedly."""
    refs = []
    if writes_first:
        refs.extend((line, True) for line in lines)
    refs.extend((line, False) for line in lines)
    refs.extend((line, False) for line in lines)
    return TaskStream(xom_id, refs)


def small_config():
    return SNCConfig(size_bytes=32, entry_bytes=2)  # 16 entries


class TestFlushStrategy:
    def test_flush_spills_at_every_switch(self):
        model = MultiTaskSNCModel(small_config(), SwitchStrategy.FLUSH)
        tasks = [stream(1, range(4)), stream(2, range(100, 104))]
        report = model.run(tasks, quantum=4)
        assert report.switches > 0
        assert report.flush_spills > 0

    def test_flushed_task_takes_query_misses_on_return(self):
        model = MultiTaskSNCModel(small_config(), SwitchStrategy.FLUSH)
        tasks = [stream(1, range(4)), stream(2, range(100, 104))]
        report = model.run(tasks, quantum=4)
        # Task 1's reads after the switch all miss (cold SNC).
        assert report.query_misses > 0

    def test_correct_seq_recovered_after_flush(self):
        model = MultiTaskSNCModel(small_config(), SwitchStrategy.FLUSH)
        model._reference(1, 5, True)  # seq 1
        model._switch_out(1)
        assert model.snc.peek(5) is None
        model._reference(1, 5, True)  # update miss; must resume at seq 2
        assert model._table[(1, 5)] == 2


class TestTagStrategy:
    def test_no_flush_cost(self):
        model = MultiTaskSNCModel(small_config(), SwitchStrategy.TAG)
        tasks = [stream(1, range(4)), stream(2, range(100, 104))]
        report = model.run(tasks, quantum=4)
        assert report.flush_spills == 0

    def test_entries_survive_switches(self):
        model = MultiTaskSNCModel(small_config(), SwitchStrategy.TAG)
        tasks = [stream(1, range(4)), stream(2, range(100, 104))]
        report = model.run(tasks, quantum=4)
        flush_report = MultiTaskSNCModel(
            small_config(), SwitchStrategy.FLUSH
        ).run(tasks, quantum=4)
        assert report.query_hit_rate > flush_report.query_hit_rate

    def test_tasks_with_same_lines_do_not_alias(self):
        """Two tasks touching the same virtual line indices must keep
        separate sequence numbers (the synonym discipline)."""
        model = MultiTaskSNCModel(small_config(), SwitchStrategy.TAG)
        model._reference(1, 5, True)
        model._reference(2, 5, True)
        model._reference(2, 5, True)
        assert model._table[(1, 5)] == 1
        assert model._table[(2, 5)] == 2

    def test_capacity_contention_evicts_across_tasks(self):
        config = SNCConfig(size_bytes=8, entry_bytes=2)  # 4 entries
        model = MultiTaskSNCModel(config, SwitchStrategy.TAG)
        tasks = [stream(1, range(4)), stream(2, range(100, 104))]
        report = model.run(tasks, quantum=4)
        assert report.evictions > 0


class TestValidation:
    def test_requires_lru_policy(self):
        config = SNCConfig(
            size_bytes=32, entry_bytes=2, policy=SNCPolicy.NO_REPLACEMENT
        )
        with pytest.raises(ValueError):
            MultiTaskSNCModel(config, SwitchStrategy.TAG)

    def test_quantum_larger_than_stream_terminates(self):
        model = MultiTaskSNCModel(small_config(), SwitchStrategy.TAG)
        report = model.run([stream(1, range(2))], quantum=1000)
        assert report.query_hits + report.query_misses > 0

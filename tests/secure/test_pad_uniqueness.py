"""The one-time-pad's cardinal invariant, checked end to end: the engine
must never encrypt two outbound line images under the same pad seed.

A recording wrapper around the seed scheme captures every (line, version)
seed the engine consumes on its write path; Hypothesis drives arbitrary
read/write traffic — including SNC evictions, spills, re-fetches and the
no-replacement direct fallback — and the audit asserts no write seed is
ever consumed twice.  A companion test pins the cipher-domain separation
between pad counters and the encrypted sequence-number table.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import DES
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure.otp_engine import OTPEngine
from repro.secure.seeds import SeedScheme
from repro.secure.snc import SequenceNumberCache, SNCConfig, SNCPolicy


class RecordingSeedScheme:
    """Duck-typed SeedScheme that logs every data seed it hands out."""

    def __init__(self, inner: SeedScheme):
        self._inner = inner
        self.write_seeds: Counter[int] = Counter()
        self.recording = False

    def data_seed(self, line_va: int, seq: int) -> int:
        seed = self._inner.data_seed(line_va, seq)
        if self.recording:
            self.write_seeds[seed] += 1
        return seed

    def __getattr__(self, name):
        return getattr(self._inner, name)


def audited_engine(policy):
    scheme = RecordingSeedScheme(SeedScheme(line_bytes=128, block_bytes=8))
    engine = OTPEngine(
        DRAM(line_bytes=128, latency=100),
        DES(b"padaudit"),
        snc=SequenceNumberCache(
            SNCConfig(size_bytes=8, entry_bytes=2, policy=policy)
        ),
        seed_scheme=scheme,
    )
    return engine, scheme


_traffic = st.lists(
    st.tuples(st.integers(0, 11), st.booleans()),
    min_size=10,
    max_size=250,
)


def drive(engine, scheme, traffic):
    for line, is_write in traffic:
        if is_write:
            scheme.recording = True
            engine.write_line(line * 128, bytes([line]) * 128)
            scheme.recording = False
        else:
            engine.read_line(line * 128, LineKind.DATA)


class TestWritePadUniqueness:
    @given(traffic=_traffic)
    @settings(max_examples=30, deadline=None)
    def test_lru_engine_never_reuses_a_write_seed(self, traffic):
        engine, scheme = audited_engine(SNCPolicy.LRU)
        drive(engine, scheme, traffic)
        repeated = {
            seed: count
            for seed, count in scheme.write_seeds.items()
            if count > 1
        }
        assert not repeated, f"write pad seeds consumed twice: {repeated}"

    @given(traffic=_traffic)
    @settings(max_examples=30, deadline=None)
    def test_norepl_engine_never_reuses_a_write_seed(self, traffic):
        """No-replacement must hold the invariant too — its direct-
        encryption fallback exists precisely so it never has to guess a
        sequence number."""
        engine, scheme = audited_engine(SNCPolicy.NO_REPLACEMENT)
        drive(engine, scheme, traffic)
        repeated = {
            seed: count
            for seed, count in scheme.write_seeds.items()
            if count > 1
        }
        assert not repeated, f"write pad seeds consumed twice: {repeated}"

    @given(traffic=_traffic)
    @settings(max_examples=15, deadline=None)
    def test_round_trip_correctness_under_churn(self, traffic):
        """With heavy SNC churn, every read returns the latest write."""
        engine, _ = audited_engine(SNCPolicy.LRU)
        latest: dict[int, bytes] = {}
        counter = 0
        for line, is_write in traffic:
            if is_write:
                counter += 1
                payload = counter.to_bytes(4, "big") * 32
                engine.write_line(line * 128, payload)
                latest[line] = payload
            else:
                data, _ = engine.read_line(line * 128, LineKind.DATA)
                if line in latest:
                    assert data == latest[line]


class TestCipherDomainSeparation:
    def test_table_entries_cannot_collide_with_pad_counters(self):
        """The encrypted sequence-number table sets a tweak bit (2^62 for
        DES blocks) that no pad counter can reach: pad seeds top out at
        VA bit 61.  Without this, E_K(table entry) could equal a pad
        block and leak plaintext XOR."""
        engine, _ = audited_engine(SNCPolicy.LRU)
        tweak = engine._table_tweak()
        scheme = SeedScheme(line_bytes=128, block_bytes=8)
        # The largest legal pad counter: max line index of a 48-bit VA.
        max_line_va = ((1 << 48) - 128)
        top_seed = scheme.data_seed(max_line_va, scheme.max_seq)
        top_counter = top_seed + scheme.chunks_per_line - 1
        assert top_counter < tweak

    def test_forged_untagged_table_entry_rejected(self):
        from repro.errors import TamperDetected
        import pytest
        engine, _ = audited_engine(SNCPolicy.LRU)
        # Overflow the 4-entry SNC so line 0 spills, then replace its
        # table slot with an encryption that lacks the domain tag.
        for line in range(5):
            engine.write_line(line * 128, bytes(128))
        forged = engine.cipher.encrypt_block((0).to_bytes(8, "big"))
        engine.dram.poke(engine._table_addr(0), forged)
        with pytest.raises(TamperDetected):
            engine.read_line(0, LineKind.DATA)

"""Tests for the protection-scheme registry and the ``otp_split`` scheme.

The registry is the single point the functional, timing and evaluation
layers resolve schemes through; these tests pin its API, prove every
registered scheme runs a program end-to-end (the same check CI runs via
``python -m repro.secure.schemes``), and exercise the split-counter
scheme's overflow-to-direct-encryption behaviour functionally.
"""

import pytest

from repro.crypto.blockcipher import IdentityCipher
from repro.errors import ConfigurationError
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure.otp_engine import OTPEngine
from repro.secure.processor import EngineKind, SecureProcessor
from repro.secure.schemes import (
    all_schemes,
    get_scheme,
    register,
    scheme_keys,
)
from repro.secure.schemes.__main__ import run_registry_check
from repro.secure.schemes.otp_split import SplitSequenceCore
from repro.secure.snc import SequenceNumberCache, SNCConfig
from repro.secure.software import ProtectionScheme
from repro.timing.model import SNCTimingSim


class TestRegistry:
    def test_builtin_schemes_registered(self):
        assert set(scheme_keys()) >= {"baseline", "xom", "otp", "otp_split"}

    def test_get_scheme_unknown_key_names_the_known_ones(self):
        with pytest.raises(KeyError, match="otp_split"):
            get_scheme("nosuchscheme")

    def test_duplicate_registration_rejected(self):
        spec = get_scheme("otp")
        with pytest.raises(ConfigurationError, match="already registered"):
            register(spec)

    def test_engine_kind_enum_tracks_the_registry(self):
        for spec in all_schemes():
            assert EngineKind(spec.key).value == spec.key
        assert EngineKind.OTP_SPLIT.value == "otp_split"

    def test_packaging_bindings(self):
        assert get_scheme("baseline").protection is None
        assert get_scheme("xom").protection is ProtectionScheme.DIRECT
        assert get_scheme("otp").protection is ProtectionScheme.OTP
        assert get_scheme("otp_split").protection is ProtectionScheme.OTP

    def test_snc_usage_declarations(self):
        assert not get_scheme("baseline").uses_snc
        assert not get_scheme("xom").uses_snc
        assert get_scheme("otp").uses_snc
        assert get_scheme("otp_split").uses_snc

    def test_every_scheme_runs_a_program_end_to_end(self):
        """The CI completeness check: one tiny program through each
        registered scheme's full SecureProcessor path."""
        assert run_registry_check(verbose=False) == []

    def test_processor_accepts_key_strings_and_enum_members(self):
        by_string = SecureProcessor(engine_kind="otp_split")
        by_member = SecureProcessor(engine_kind=EngineKind.OTP_SPLIT)
        assert by_string.scheme is by_member.scheme
        assert by_string.engine_kind is EngineKind.OTP_SPLIT


def _split_engine(n_entries=32, counter_bits=2):
    """A tiny split-counter engine: 8-byte lines, no-op cipher, counters
    that overflow after 2**counter_bits writebacks."""
    config = SNCConfig(size_bytes=2 * n_entries, entry_bytes=2)
    return OTPEngine(
        DRAM(line_bytes=8, latency=100), IdentityCipher(8),
        snc=SequenceNumberCache(config),
        core_factory=lambda snc, **kwargs: SplitSequenceCore(
            snc, counter_bits=counter_bits, **kwargs
        ),
    )


class TestSplitSequenceScheme:
    def test_reads_stay_correct_across_overflow(self):
        """A hot line keeps decrypting to what was last written, before
        and after its counter overflows to direct encryption."""
        engine = _split_engine(counter_bits=2)  # overflow after seq 3
        for round_number in range(10):
            payload = bytes([round_number] * 8)
            engine.write_line(0, payload)
            data, _ = engine.read_line(0, LineKind.DATA)
            assert data == payload, round_number

    def test_overflow_retires_line_to_direct_path(self):
        engine = _split_engine(counter_bits=2)
        for i in range(3):  # seq 1..3: still pad-encrypted
            engine.write_line(0, bytes([i] * 8))
        assert 0 not in engine.core.direct_lines
        engine.write_line(0, bytes(8))  # seq would be 4 > 3: overflow
        assert 0 in engine.core.direct_lines
        assert engine.snc.peek(0) is None  # stale entry removed
        before = engine.stats.serial_reads
        engine.read_line(0, LineKind.DATA)
        assert engine.stats.serial_reads == before + 1

    def test_cold_lines_unaffected_by_hot_line_overflow(self):
        engine = _split_engine(counter_bits=2)
        engine.write_line(8, bytes([7] * 8))  # a cold neighbour
        for i in range(8):
            engine.write_line(0, bytes([i] * 8))
        data, _ = engine.read_line(8, LineKind.DATA)
        assert data == bytes([7] * 8)
        assert 1 not in engine.core.direct_lines
        assert 0 in engine.core.direct_lines

    def test_rejects_nonpositive_counter_width(self):
        with pytest.raises(ConfigurationError):
            SplitSequenceCore(SequenceNumberCache(), counter_bits=0)

    def test_timing_sim_factory_uses_the_split_core(self):
        sim = get_scheme("otp_split").build_timing_sim(SNCConfig())
        assert isinstance(sim, SNCTimingSim)
        assert isinstance(sim.core, SplitSequenceCore)

    def test_end_to_end_protected_run(self):
        """The tentpole acceptance: otp_split runs a protected program
        through SecureProcessor.run with its spec in one file."""
        from repro.cpu.assembler import assemble
        from repro.secure.software import package_program

        source = """
        main:
            li   s0, 0
            li   t0, 5
            la   t1, buffer
        loop:
            sw   t0, 0(t1)
            lw   t2, 0(t1)
            add  s0, s0, t2
            addi t0, t0, -1
            bne  t0, zero, loop
            mov  a0, s0
            li   v0, 1
            syscall
            halt
            .data
        buffer: .space 8
        """
        plain = assemble(source, name="split-e2e")
        cpu = SecureProcessor(
            key_seed="split-e2e", engine_kind="otp_split",
        )
        program = package_program(
            plain, cpu.public_key, vendor_seed="split-e2e",
            scheme=ProtectionScheme.OTP,
        )
        report = cpu.run(program)
        assert report.output == "15"
        assert report.scheme.key == "otp_split"
        assert report.engine_kind is EngineKind.OTP_SPLIT
"""End-to-end tests: vendor-encrypted programs executing on the secure
processor, with an adversary tapping the bus the whole time.

This is the paper's full story in one test file: the same program runs
identically on the baseline, XOM, and OTP processors; the protected runs
never put a plaintext instruction on the bus; the protected runs cost more
cycles than baseline, and OTP costs less than XOM; and software packaged
for one processor will not run on another.
"""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.isa import Op, Instruction
from repro.errors import KeyExchangeError
from repro.secure.processor import EngineKind, SecureProcessor
from repro.secure.snc import SNCConfig, SNCPolicy
from repro.secure.software import ProtectionScheme, package_program

_SOURCE = """
main:
    li   s0, 0            # checksum
    li   t0, 16           # outer iterations
    la   t1, buffer
outer:
    li   t2, 8            # write 8 words
    mov  t3, t1
fill:
    mul  t4, t0, t2
    sw   t4, 0(t3)
    addi t3, t3, 4
    addi t2, t2, -1
    bne  t2, zero, fill
    li   t2, 8            # read them back
    mov  t3, t1
drain:
    lw   t4, 0(t3)
    add  s0, s0, t4
    addi t3, t3, 4
    addi t2, t2, -1
    bne  t2, zero, drain
    addi t0, t0, -1
    bne  t0, zero, outer
    mov  a0, s0
    li   v0, 1
    syscall
    halt
    .data
buffer: .space 64
"""

_EXPECTED_OUTPUT = str(sum(i * j for i in range(1, 17) for j in range(1, 9)))


@pytest.fixture(scope="module")
def plain_program():
    return assemble(_SOURCE, name="checksum")


@pytest.fixture(scope="module")
def processor_factory():
    def make(kind, **kwargs):
        return SecureProcessor(
            key_seed="integration-cpu", engine_kind=kind, **kwargs
        )
    return make


def package_for(processor, plain):
    scheme = (
        ProtectionScheme.DIRECT
        if processor.engine_kind is EngineKind.XOM
        else ProtectionScheme.OTP
    )
    return package_program(
        plain, processor.public_key, vendor_seed="itest", scheme=scheme
    )


class TestFunctionalEquivalence:
    def test_baseline_output(self, plain_program, processor_factory):
        report = processor_factory(EngineKind.BASELINE).run_plain(plain_program)
        assert report.output == _EXPECTED_OUTPUT

    def test_xom_output_matches(self, plain_program, processor_factory):
        cpu = processor_factory(EngineKind.XOM)
        report = cpu.run(package_for(cpu, plain_program))
        assert report.output == _EXPECTED_OUTPUT

    def test_otp_output_matches(self, plain_program, processor_factory):
        cpu = processor_factory(EngineKind.OTP)
        report = cpu.run(package_for(cpu, plain_program))
        assert report.output == _EXPECTED_OUTPUT

    def test_otp_no_replacement_output_matches(self, plain_program,
                                               processor_factory):
        cpu = processor_factory(
            EngineKind.OTP,
            snc_config=SNCConfig(
                size_bytes=8, entry_bytes=2,
                policy=SNCPolicy.NO_REPLACEMENT,
            ),
        )
        report = cpu.run(package_for(cpu, plain_program))
        assert report.output == _EXPECTED_OUTPUT

    def test_otp_tiny_lru_snc_output_matches(self, plain_program,
                                             processor_factory):
        """Correctness must not depend on SNC capacity — only speed may."""
        cpu = processor_factory(
            EngineKind.OTP,
            snc_config=SNCConfig(size_bytes=4, entry_bytes=2),
        )
        report = cpu.run(package_for(cpu, plain_program))
        assert report.output == _EXPECTED_OUTPUT


class TestBusPrivacy:
    def _halt_word(self):
        return Instruction(Op.HALT).encode().to_bytes(4, "big")

    def test_baseline_leaks_instructions(self, plain_program,
                                         processor_factory):
        report = processor_factory(EngineKind.BASELINE).run_plain(plain_program)
        seen = b"".join(
            t.payload for t in _tap(report)
        )
        assert self._halt_word() in seen

    def test_protected_runs_never_show_plaintext_code(self, plain_program,
                                                      processor_factory):
        for kind in (EngineKind.XOM, EngineKind.OTP):
            cpu = processor_factory(kind)
            program = package_for(cpu, plain_program)
            transactions = []
            # Re-run with a tap attached from the start.
            report = cpu.run(program)
            # The DRAM retains everything that crossed the bus; inspect the
            # text segment region instead of a live tap for simplicity.
            text = next(s for s in program.segments if s.name == "text")
            image = report.engine.dram.peek(text.base, len(text.data))
            plain_text_segment = next(
                s for s in plain_program.segments if s.name == "text"
            )
            assert self._halt_word() not in image
            assert image != plain_text_segment.data

    def test_otp_memory_data_is_ciphertext(self, plain_program,
                                           processor_factory):
        cpu = processor_factory(EngineKind.OTP)
        report = cpu.run(package_for(cpu, plain_program))
        # buffer at the data base; final plaintext words are i*j products.
        data_image = report.engine.dram.peek(0x0010_0000, 64)
        final_words = [
            (1 * j).to_bytes(4, "big") for j in range(8, 0, -1)
        ]
        assert b"".join(final_words) != data_image


def _tap(report):
    """All write transactions retained by the bus counters don't keep
    payloads; re-derive from DRAM in the tests above.  Here we only need
    the baseline's read traffic, which equals the resident image."""
    from repro.memory.bus import BusTransaction, TransactionKind
    dram = report.engine.dram
    transactions = []
    for index in list(dram._lines):
        transactions.append(
            BusTransaction(
                TransactionKind.DATA_READ,
                index * dram.line_bytes,
                dram.read_line(index * dram.line_bytes),
            )
        )
    return transactions


@pytest.mark.slow
class TestPerformanceOrdering:
    """The paper's headline inequality, reproduced functionally.

    Needs a workload whose data is written back and re-read through
    memory, so the processors get deliberately tiny caches (512B L1s,
    4KB L2) and the program streams over a 16KB buffer."""

    _STREAM_SOURCE = """
    main:
        li   s1, 4             # passes over the buffer
        li   s0, 0
    pass_loop:
        la   t1, buffer
        li   t2, 4096          # 4096 words = 16KB
    touch:
        lw   t4, 0(t1)
        add  s0, s0, t4
        addi t4, t4, 1
        sw   t4, 0(t1)
        addi t1, t1, 4
        addi t2, t2, -1
        bne  t2, zero, touch
        addi s1, s1, -1
        bne  s1, zero, pass_loop
        mov  a0, s0
        li   v0, 1
        syscall
        halt
        .data
    buffer: .space 16384
    """

    @staticmethod
    def _tiny_cache_processor(kind):
        from repro.memory.cache import CacheConfig
        return SecureProcessor(
            key_seed="perf-cpu", engine_kind=kind,
            l1i_config=CacheConfig(512, 4, 32, name="L1I"),
            l1d_config=CacheConfig(512, 4, 32, name="L1D"),
            l2_config=CacheConfig(4096, 4, 128, name="L2"),
        )

    def test_xom_slower_than_baseline_and_otp_in_between(self):
        program = assemble(self._STREAM_SOURCE, name="stream")
        baseline = self._tiny_cache_processor(
            EngineKind.BASELINE
        ).run_plain(program, max_steps=300_000)
        xom_cpu = self._tiny_cache_processor(EngineKind.XOM)
        xom = xom_cpu.run(
            package_for(xom_cpu, program), max_steps=300_000
        )
        otp_cpu = self._tiny_cache_processor(EngineKind.OTP)
        otp = otp_cpu.run(
            package_for(otp_cpu, program), max_steps=300_000
        )
        assert baseline.output == xom.output == otp.output
        assert xom.cycles > otp.cycles > baseline.cycles
        # And the magnitudes should look like the paper's story: the OTP
        # overhead is a small fraction of XOM's.
        xom_overhead = xom.cycles - baseline.cycles
        otp_overhead = otp.cycles - baseline.cycles
        assert otp_overhead < 0.5 * xom_overhead

    def test_identical_instruction_counts(self, plain_program,
                                          processor_factory):
        """Protection changes cycles, never the executed instructions."""
        baseline = processor_factory(EngineKind.BASELINE).run_plain(
            plain_program
        )
        otp_cpu = processor_factory(EngineKind.OTP)
        otp = otp_cpu.run(package_for(otp_cpu, plain_program))
        assert baseline.result.steps == otp.result.steps


class TestAntiPiracy:
    def test_program_bound_to_processor(self, plain_program):
        vendor_target = SecureProcessor(key_seed="honest-buyer")
        pirate = SecureProcessor(key_seed="pirate-box")
        program = package_program(
            plain_program, vendor_target.public_key, vendor_seed="itest"
        )
        with pytest.raises(KeyExchangeError):
            pirate.run(program)

    def test_same_processor_reruns_fine(self, plain_program):
        cpu = SecureProcessor(key_seed="honest-buyer")
        program = package_program(
            plain_program, cpu.public_key, vendor_seed="itest"
        )
        assert cpu.run(program).output == _EXPECTED_OUTPUT
        assert cpu.run(program).output == _EXPECTED_OUTPUT

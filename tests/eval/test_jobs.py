"""Tests for the experiment job graph: specs, jobs, merging, hashing."""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.eval.experiments import (
    FIGURE_SNC_KEYS,
    figure_jobs,
    plan_jobs,
)
from repro.eval.jobs import (
    ExperimentJob,
    SNCSpec,
    SimulationTask,
    execute_task,
    merge_jobs,
    standard_snc_specs,
)
from repro.eval.pipeline import SimulationScale, standard_snc_configs
from repro.secure.snc import SNCPolicy

_SCALE = SimulationScale(warmup_refs=5_000, measure_refs=10_000)


def _job(workload="art", snc_keys=("lru64",), scale=_SCALE, seed=1,
         figure="figure5", schemes=("otp",), alt_l2=False):
    specs = standard_snc_specs()
    return ExperimentJob(
        figure=figure, schemes=schemes, workload=workload,
        snc_configs=tuple(specs[key] for key in snc_keys),
        scale=scale, seed=seed, alt_l2=alt_l2,
    )


class TestSNCSpec:
    def test_round_trips_every_standard_config(self):
        for key, config in standard_snc_configs().items():
            spec = SNCSpec.from_config(key, config)
            assert spec.to_config() == config

    def test_policy_survives(self):
        spec = standard_snc_specs()["norepl64"]
        assert spec.to_config().policy is SNCPolicy.NO_REPLACEMENT

    def test_standard_specs_bind_the_paper_scheme(self):
        for spec in standard_snc_specs().values():
            assert spec.scheme == "otp"

    def test_scheme_key_participates_in_canonical_form(self):
        base = standard_snc_specs()["lru64"]
        split = SNCSpec(key="lru64", scheme="otp_split")
        assert base.canonical() != split.canonical()


class TestExperimentJob:
    def test_rejects_unknown_workload(self):
        with pytest.raises(KeyError, match="nosuchbench"):
            _job(workload="nosuchbench")

    def test_rejects_unregistered_scheme(self):
        with pytest.raises(KeyError, match="nosuchscheme"):
            _job(schemes=("nosuchscheme",))

    def test_rejects_unregistered_snc_spec_scheme(self):
        rogue = SNCSpec(key="lru64", scheme="nosuchscheme")
        with pytest.raises(KeyError, match="nosuchscheme"):
            ExperimentJob(
                figure="figure5", schemes=("otp",), workload="art",
                snc_configs=(rogue,), scale=_SCALE, seed=1,
            )

    def test_hash_is_deterministic(self):
        assert _job().config_hash() == _job().config_hash()

    def test_hash_ignores_spec_ordering(self):
        specs = standard_snc_specs()
        forward = _job(snc_keys=("lru32", "lru64"))
        backward = ExperimentJob(
            figure="figure5", schemes=("otp",), workload="art",
            snc_configs=(specs["lru64"], specs["lru32"]),
            scale=_SCALE, seed=1,
        )
        assert forward.config_hash() == backward.config_hash()

    @pytest.mark.parametrize("change", [
        dict(workload="vpr"),
        dict(snc_keys=("lru32",)),
        dict(scale=SimulationScale(warmup_refs=5_000, measure_refs=10_001)),
        dict(seed=2),
        dict(alt_l2=True),
    ])
    def test_hash_tracks_every_simulation_input(self, change):
        assert _job(**change).config_hash() != _job().config_hash()

    def test_merging_ignores_figure_and_schemes(self):
        a = _job(figure="figure5", schemes=("otp",))
        b = _job(figure="figure10", schemes=("xom", "otp"))
        assert merge_jobs([a, b]) == merge_jobs([a])

    def test_hash_stable_across_processes(self):
        """SHA-256 over canonical JSON, not salted ``hash()``: a fresh
        interpreter must compute the identical key."""
        code = (
            "from repro.eval.pipeline import SimulationScale\n"
            "from repro.eval.jobs import ExperimentJob, standard_snc_specs\n"
            "job = ExperimentJob(figure='figure5', schemes=('otp',),"
            " workload='art',"
            " snc_configs=(standard_snc_specs()['lru64'],),"
            " scale=SimulationScale(warmup_refs=5000, measure_refs=10000),"
            " seed=1)\n"
            "print(job.config_hash())"
        )
        src = pathlib.Path(__file__).parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (str(src), env.get("PYTHONPATH")) if part
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == _job().config_hash()


class TestMergeJobs:
    def test_overlapping_figures_share_one_task(self):
        jobs = _job(snc_keys=("lru64",)), _job(snc_keys=("norepl64",
                                                         "lru64"))
        tasks = merge_jobs(list(jobs))
        assert len(tasks) == 1
        assert [spec.key for spec in tasks[0].snc_configs] == [
            "lru64", "norepl64"
        ]

    def test_distinct_scales_stay_separate(self):
        other = SimulationScale(warmup_refs=6_000, measure_refs=10_000)
        tasks = merge_jobs([_job(), _job(scale=other)])
        assert len(tasks) == 2

    def test_order_follows_first_appearance(self):
        tasks = merge_jobs([_job(workload="vpr"), _job(workload="art"),
                            _job(workload="vpr")])
        assert [task.workload for task in tasks] == ["vpr", "art"]

    def test_conflicting_geometry_for_one_key_rejected(self):
        rogue = SNCSpec(key="lru64", size_bytes=32 * 1024)
        jobs = [_job(), ExperimentJob(
            figure="figure6", schemes=("otp",), workload="art",
            snc_configs=(rogue,), scale=_SCALE, seed=1,
        )]
        with pytest.raises(ValueError, match="lru64"):
            merge_jobs(jobs)

    def test_conflicting_scheme_for_one_key_rejected(self):
        """The same pricing key bound to two different schemes is as
        ambiguous as two geometries: the merged task could only simulate
        one of them."""
        rogue = SNCSpec(key="lru64", scheme="otp_split")
        jobs = [_job(), ExperimentJob(
            figure="figure6", schemes=("otp_split",), workload="art",
            snc_configs=(rogue,), scale=_SCALE, seed=1,
        )]
        with pytest.raises(ValueError, match="lru64"):
            merge_jobs(jobs)

    def test_alt_l2_flag_merges_as_or(self):
        tasks = merge_jobs([_job(alt_l2=False), _job(alt_l2=True)])
        assert len(tasks) == 1
        assert tasks[0].alt_l2 is True
        tasks = merge_jobs([_job(alt_l2=False)])
        assert tasks[0].alt_l2 is False


class TestFigureDeclarations:
    def test_one_job_per_benchmark(self):
        jobs = figure_jobs("figure5", scale=_SCALE)
        assert len(jobs) == 11
        assert all(job.figure == "figure5" for job in jobs)
        assert all(
            [spec.key for spec in job.snc_configs] == ["norepl64", "lru64"]
            for job in jobs
        )

    def test_figure3_needs_no_snc(self):
        assert all(job.snc_configs == ()
                   for job in figure_jobs("figure3", scale=_SCALE))

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            figure_jobs("figure4")

    def test_plan_for_all_figures_merges_to_one_task_per_benchmark(self):
        jobs = plan_jobs(scale=_SCALE)
        assert len(jobs) == len(FIGURE_SNC_KEYS) * 11
        tasks = merge_jobs(jobs)
        assert len(tasks) == 11
        for task in tasks:
            assert {spec.key for spec in task.snc_configs} == set(
                standard_snc_configs()
            )
            # figure8 is in the set, so the merged task simulates the
            # alternate L2.
            assert task.alt_l2 is True

    def test_only_figure8_declares_the_alternate_l2(self):
        for figure_id in FIGURE_SNC_KEYS:
            jobs = figure_jobs(figure_id, scale=_SCALE)
            expected = figure_id == "figure8"
            assert all(job.alt_l2 is expected for job in jobs), figure_id


class TestExecuteTask:
    def test_simulates_exactly_the_declared_configs(self):
        task = SimulationTask(
            workload="art",
            snc_configs=(standard_snc_specs()["lru64"],),
            scale=_SCALE, seed=1,
        )
        events = execute_task(task)
        assert set(events.snc) == {"lru64"}
        assert events.read_misses > 0

    def test_no_declared_configs_simulates_no_snc(self):
        """A figure3-style job must not pay for the five standard SNC
        simulators (empty mapping != None in simulate_benchmark)."""
        task = SimulationTask(workload="art", snc_configs=(),
                              scale=_SCALE, seed=1)
        assert execute_task(task).snc == {}

    def test_alt_l2_only_simulated_when_declared(self):
        """A task whose figures never price the 384KB L2 must not pay for
        it — and the base counts must not depend on the skip."""
        base = SimulationTask(workload="art", snc_configs=(),
                              scale=_SCALE, seed=1, alt_l2=False)
        full = SimulationTask(workload="art", snc_configs=(),
                              scale=_SCALE, seed=1, alt_l2=True)
        skipped, simulated = execute_task(base), execute_task(full)
        assert skipped.read_misses_big_l2 is None
        assert skipped.allocate_misses_big_l2 is None
        assert simulated.read_misses_big_l2 > 0
        assert skipped.read_misses == simulated.read_misses
        assert skipped.writebacks == simulated.writebacks
        with pytest.raises(Exception, match="alternate-L2"):
            skipped.trace_events(alt_l2=True)

"""Differential suite: the block-columnar recorder vs the per-ref oracle.

:func:`~repro.eval.record.record_source` (block-columnar phase 1) must be
**byte-identical** to :func:`~repro.eval.record.record_source_reference`
(the retired per-reference loop, kept as the parity oracle): same event
columns, same measured aggregates, same serialized wire payload (CRC
included), same trace-store key.  These tests pin that across a
randomized matrix — benchmarks, scales (warmup edge values included),
L2 geometries, block sizes (1 and non-divisors included), interleaved
scenarios and trace files — plus the dispatch paths (``reference=True``
kwarg and ``REPRO_RECORD_REFERENCE=1``).
"""

from __future__ import annotations

import random
from dataclasses import fields

import pytest

from repro.errors import ConfigurationError
from repro.eval import record as record_module
from repro.eval.pipeline import SimulationScale
from repro.eval.record import (
    Recording,
    record_source,
    record_source_reference,
)
from repro.eval.trace_store import recording_to_bytes
from repro.workloads.sources import (
    MultiTaskInterleaver,
    SingleBenchmark,
    TraceFile,
)
from repro.workloads.tracegen import save_trace

#: Valid baseline-L2 geometries (set count must be a power of two).
L2_GEOMETRIES = ((2048, 4), (512, 2))

#: Long enough that every benchmark's initialization phase ends inside
#: the run (the recorder requires load misses in the measurement
#: window); warmup edge values 0 and 1 exercise the EVENT_RESET
#: boundary's degenerate placements.
SCALES = (
    SimulationScale(warmup_refs=30_000, measure_refs=50_000),
    SimulationScale(warmup_refs=0, measure_refs=60_000),  # no boundary
    SimulationScale(warmup_refs=1, measure_refs=59_999),  # boundary at 1
    SimulationScale(warmup_refs=48_000, measure_refs=12_000),
)

#: Block sizes that stress the recorder's boundary splitting: 1 (every
#: block is a single ref), a prime that divides neither scale totals nor
#: quanta, and the production default's neighborhood.
BLOCK_SIZES = (1, 911, 4096)


def assert_identical(block: Recording, reference: Recording) -> None:
    """Field-for-field equality, then the stronger wire-format check:
    identical serialized bytes (header, CRC, and gzip stream)."""
    for item in fields(Recording):
        assert getattr(block, item.name) == \
            getattr(reference, item.name), item.name
    assert recording_to_bytes(block) == recording_to_bytes(reference)


class TestRecordDifferential:
    @pytest.mark.parametrize("name", ["equake", "mcf", "ammp", "gzip"])
    def test_benchmarks_across_scales(self, name):
        source = SingleBenchmark(name)
        for scale in SCALES:
            reference = record_source_reference(source, scale=scale)
            block = record_source(source, scale=scale)
            assert_identical(block, reference)

    @pytest.mark.parametrize("l2_lines,l2_assoc", L2_GEOMETRIES)
    def test_l2_geometries(self, l2_lines, l2_assoc):
        source = SingleBenchmark("vortex")
        scale = SimulationScale(warmup_refs=35_000, measure_refs=25_000)
        reference = record_source_reference(
            source, scale=scale, l2_lines=l2_lines, l2_assoc=l2_assoc
        )
        block = record_source(
            source, scale=scale, l2_lines=l2_lines, l2_assoc=l2_assoc
        )
        assert_identical(block, reference)

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_block_sizes(self, block_size):
        source = SingleBenchmark("gcc")
        scale = SimulationScale(warmup_refs=40_000, measure_refs=15_000)
        reference = record_source_reference(source, scale=scale)
        block = record_source(source, scale=scale,
                              block_size=block_size)
        assert_identical(block, reference)

    @pytest.mark.parametrize("seed", [1, 2, 9])
    def test_interleaved_scenarios(self, seed):
        """Multi-task streams: switches, per-task owner resolution of
        writebacks, and per-task read-miss attribution — with a quantum
        chosen to land switches inside, at, and across block edges."""
        source = MultiTaskInterleaver(["art", "vpr", "gzip"],
                                      quantum=777)
        scale = SimulationScale(warmup_refs=10_000, measure_refs=15_000)
        reference = record_source_reference(source, scale=scale,
                                            seed=seed,
                                            include_alt_l2=False)
        block = record_source(source, scale=scale, seed=seed,
                              include_alt_l2=False)
        assert_identical(block, reference)

    def test_switch_at_warmup_and_block_boundaries(self):
        """Quantum divides both the warmup and the block size, so a
        switch coincides with the warmup boundary and with block edges —
        the EVENT_RESET placement's worst case."""
        source = MultiTaskInterleaver(["art", "mesa"], quantum=1_000)
        scale = SimulationScale(warmup_refs=4_000, measure_refs=12_000)
        reference = record_source_reference(source, scale=scale,
                                            include_alt_l2=False)
        block = record_source(source, scale=scale,
                              include_alt_l2=False, block_size=1_000)
        assert_identical(block, reference)

    def test_trace_file_source(self, tmp_path):
        rng = random.Random(11)
        refs = [(rng.randrange(6_000), rng.random() < 0.3)
                for _ in range(2_500)]
        path = tmp_path / "diff.trace"
        save_trace(refs, path)
        source = TraceFile(path, name="diff")
        scale = SimulationScale(warmup_refs=2_000, measure_refs=6_000)
        reference = record_source_reference(source, scale=scale,
                                            include_alt_l2=False)
        block = record_source(source, scale=scale,
                              include_alt_l2=False)
        assert_identical(block, reference)

    def test_no_load_miss_error_matches(self):
        source = SingleBenchmark("gzip")
        tiny = SimulationScale(warmup_refs=0, measure_refs=10)
        with pytest.raises(ConfigurationError):
            record_source_reference(source, scale=tiny)
        with pytest.raises(ConfigurationError):
            record_source(source, scale=tiny)


class TestDispatch:
    def test_reference_kwarg_selects_the_oracle(self, monkeypatch):
        calls = []
        real = record_module.record_source_reference

        def spying(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(record_module, "record_source_reference",
                            spying)
        scale = SimulationScale(warmup_refs=16_000, measure_refs=14_000)
        record_source(SingleBenchmark("art"), scale=scale,
                      reference=True)
        assert calls == [1]

    def test_env_var_selects_the_oracle(self, monkeypatch):
        calls = []
        real = record_module.record_source_reference

        def spying(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(record_module, "record_source_reference",
                            spying)
        scale = SimulationScale(warmup_refs=16_000, measure_refs=14_000)
        monkeypatch.setenv("REPRO_RECORD_REFERENCE", "0")
        record_source(SingleBenchmark("art"), scale=scale)
        assert calls == []
        monkeypatch.setenv("REPRO_RECORD_REFERENCE", "1")
        record_source(SingleBenchmark("art"), scale=scale)
        assert calls == [1]

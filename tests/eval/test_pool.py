"""Tests for the persistent worker pool: lifecycle, crash recovery,
shared-memory shipping hygiene, in-flight record dedupe, and
persistent-vs-spawn-vs-inline parity across all three backends."""

import textwrap
import threading
import time
from array import array

import pytest

from repro.eval import pool as pool_mod
from repro.eval import scheduler as scheduler_mod
from repro.eval.jobs import (
    ExperimentJob,
    execute_record,
    merge_jobs,
    record_task_for,
    standard_snc_specs,
)
from repro.eval.pipeline import SimulationScale
from repro.eval.pool import (
    WorkerPool,
    claim_record,
    get_worker_pool,
    pool_stats,
    remember_recording,
    resolve_recording_ref,
    shutdown_worker_pool,
)
from repro.eval.record import RecordedTask, Recording
from repro.eval.report import format_pool_stats
from repro.eval.scheduler import BACKENDS, POOLS, run_tasks
from repro.eval.trace_store import TraceStore, recording_to_bytes

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - always present on CI platforms
    shared_memory = None

_SCALE = SimulationScale(warmup_refs=20_000, measure_refs=20_000)
_WORKLOADS = ("art", "vpr", "equake")


def _tiny_recording(name: str, event_count: int = 64) -> Recording:
    """A minimal valid recording for shipment-cache unit tests."""
    return Recording(
        name=name, tasks=(RecordedTask(0, name, 6.4),),
        warmup_refs=10, measure_refs=event_count, seed=1,
        l2_lines=64, l2_assoc=4,
        read_misses=5, allocate_misses=3, writebacks=2,
        read_misses_big_l2=1, allocate_misses_big_l2=1,
        task_read_misses={0: 5},
        kinds=array("B", [1] * event_count),
        lines=array("Q", range(event_count)),
        aux=array("Q", [0] * event_count),
    )


def _jobs(scale=_SCALE, seed=1):
    specs = (standard_snc_specs()["lru64"],)
    return [
        ExperimentJob(figure="figure5", schemes=("otp",), workload=name,
                      snc_configs=specs, scale=scale, seed=seed)
        for name in _WORKLOADS
    ]


@pytest.fixture(scope="module")
def inline_results():
    return run_tasks(merge_jobs(_jobs()), n_jobs=1, backend="replay")


@pytest.fixture(autouse=True)
def _fresh_global_pool():
    """Every test starts and ends without a process-wide pool, so one
    test's workers (or injected faults) never leak into the next — and
    never into other test files sharing this pytest process."""
    shutdown_worker_pool()
    yield
    shutdown_worker_pool()


class TestDifferentialParity:
    def test_pools_tuple(self):
        assert POOLS == ("persistent", "spawn")

    def test_unknown_pool_rejected(self):
        with pytest.raises(ValueError, match="unknown pool"):
            run_tasks([], pool="threads")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_persistent_vs_spawn_vs_inline(self, backend,
                                           inline_results):
        """The acceptance bar: every backend must produce identical
        events whether tasks run inline, on a fresh spawn pool, or on
        the warm persistent pool."""
        tasks = merge_jobs(_jobs())
        persistent = run_tasks(tasks, n_jobs=2, backend=backend,
                               pool="persistent")
        spawn = run_tasks(tasks, n_jobs=2, backend=backend,
                          pool="spawn")
        expected = [result.events for result in inline_results]
        assert [r.events for r in persistent] == expected
        assert [r.events for r in spawn] == expected

    def test_pool_is_reused_across_runs(self):
        """The tentpole claim: a second run spawns zero new workers."""
        tasks = merge_jobs(_jobs())
        run_tasks(tasks, n_jobs=2, backend="replay", pool="persistent")
        spawned_before = pool_stats().workers_spawned
        run_tasks(tasks, n_jobs=2, backend="replay", pool="persistent")
        assert pool_stats().workers_spawned == spawned_before


class TestWorkerDeathRecovery:
    def test_crash_respawns_and_retries_inline(self, tmp_path,
                                               monkeypatch):
        """A worker that dies mid-task is buried and respawned, and the
        task runs to completion inline in the parent — once per task,
        so a chronically-crashing task still terminates."""
        helper = tmp_path / "pool_crash_helper.py"
        helper.write_text(textwrap.dedent(
            """
            import multiprocessing
            import os


            def crash_in_worker(item):
                if multiprocessing.parent_process() is not None:
                    os._exit(17)
                return (item * 10,)
            """
        ))
        monkeypatch.syspath_prepend(str(tmp_path))
        import pool_crash_helper

        stats = pool_stats()
        respawned = stats.workers_respawned
        retried = stats.tasks_retried
        pool = WorkerPool(2)
        try:
            results = []
            pool.run(pool_crash_helper.crash_in_worker, [1, 2, 3],
                     results.append)
        finally:
            pool.shutdown()
        assert sorted(results) == [10, 20, 30]
        assert stats.workers_respawned - respawned == 3
        assert stats.tasks_retried - retried == 3

    def test_death_mid_sweep_completes_with_correct_results(
            self, inline_results):
        """Kill a warm worker under the scheduler's feet: the sweep
        must still finish, byte-identical, with the dead worker
        replaced."""
        pool = get_worker_pool(2)
        victim = pool._workers[0].process
        victim.kill()
        victim.join(timeout=10)
        respawned = pool_stats().workers_respawned
        results = run_tasks(merge_jobs(_jobs()), n_jobs=2,
                            backend="replay", pool="persistent")
        assert [r.events for r in results] == [
            r.events for r in inline_results
        ]
        assert pool_stats().workers_respawned > respawned
        assert all(worker.process.is_alive()
                   for worker in pool._workers)

    def test_task_that_raises_fails_the_run_but_not_the_pool(
            self, monkeypatch):
        """An exception *raised* by a task (as opposed to a worker
        death) surfaces to the caller; the pool stays usable."""
        monkeypatch.setenv("_REPRO_POOL_FAULT", "_batch_indexed")
        tasks = merge_jobs(_jobs())
        with pytest.raises(RuntimeError, match="injected worker fault"):
            run_tasks(tasks, n_jobs=2, backend="replay",
                      pool="persistent")
        monkeypatch.delenv("_REPRO_POOL_FAULT")
        pool = pool_mod._POOL
        assert pool is not None
        assert all(worker.process.is_alive()
                   for worker in pool._workers)


@pytest.mark.skipif(shared_memory is None,
                    reason="platform lacks multiprocessing.shared_memory")
class TestShmHygiene:
    def _spy_shipments(self, monkeypatch, pool):
        shipped = []
        original = pool.ship_recording

        def spy(key, recording=None, payload=None):
            ref = original(key, recording=recording, payload=payload)
            if "shm" in ref:
                shipped.append(ref["shm"])
            return ref

        monkeypatch.setattr(pool, "ship_recording", spy)
        return shipped

    def test_segments_cached_until_shutdown(self, monkeypatch,
                                            tmp_path):
        """Shipments outlive the run (recordings are immutable per key,
        so later runs reuse them) but never the pool: shutdown must
        unlink every remaining segment."""
        pool = get_worker_pool(2)
        shipped = self._spy_shipments(monkeypatch, pool)
        run_tasks(merge_jobs(_jobs()), n_jobs=2, backend="replay",
                  pool="persistent", trace_store=TraceStore(tmp_path))
        assert shipped, "persistent replay run shipped nothing via shm"
        for name in shipped:  # still published: the cross-run cache
            shared_memory.SharedMemory(name=name).close()
        shutdown_worker_pool()
        for name in shipped:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_segments_unlinked_after_exception_then_shutdown(
            self, monkeypatch):
        """A failed run keeps its shipments (a retry reuses them), and
        shutdown still reclaims every segment — no leak either way."""
        monkeypatch.setenv("_REPRO_POOL_FAULT", "_batch_indexed")
        pool = get_worker_pool(2)
        shipped = self._spy_shipments(monkeypatch, pool)
        with pytest.raises(RuntimeError):
            run_tasks(merge_jobs(_jobs()), n_jobs=2, backend="replay",
                      pool="persistent")
        assert shipped
        shutdown_worker_pool()
        for name in shipped:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_repeat_run_reuses_cached_shipments(self, tmp_path):
        """The ship-once half of the warm-pool win: a second run over
        the same recordings publishes zero new segments."""
        store = TraceStore(tmp_path)
        tasks = merge_jobs(_jobs())
        run_tasks(tasks, n_jobs=2, backend="replay", pool="persistent",
                  trace_store=store)
        shipments = pool_stats().shm_shipments
        assert shipments > 0
        run_tasks(tasks, n_jobs=2, backend="replay", pool="persistent",
                  trace_store=store)
        assert pool_stats().shm_shipments == shipments

    def test_budget_evicts_old_epochs_keeps_recent(self, monkeypatch):
        """With a zero cache budget, entries untouched for two runs are
        unlinked as soon as a new shipment lands — but entries shipped
        this run stay pinned (in-flight items may reference them)."""
        monkeypatch.setenv("REPRO_POOL_SHM_CACHE_MB", "0")
        pool = get_worker_pool(1)
        payload = recording_to_bytes(_tiny_recording("old"))
        old = pool.ship_recording("hygiene-old", payload=payload)
        assert "shm" in old
        # Same-run shipments never evict each other, budget or not.
        fresh = pool.ship_recording(
            "hygiene-fresh",
            payload=recording_to_bytes(_tiny_recording("fresh")))
        assert "hygiene-old" in pool._shipped_refs
        with pool._lock:  # two runs complete without touching them
            pool._epoch += 2
        new = pool.ship_recording(
            "hygiene-new",
            payload=recording_to_bytes(_tiny_recording("new")))
        for ref in (old, fresh):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=ref["shm"])
        shared_memory.SharedMemory(name=new["shm"]).close()
        assert list(pool._shipped_refs) == ["hygiene-new"]

    def test_shm_moves_at_least_the_payload_bytes(self, tmp_path):
        """The zero-copy claim, quantified: the bytes published via
        shared memory must cover at least what the pickle pipe would
        otherwise have carried (the gzip wire payloads)."""
        stats = pool_stats()
        shm_before = stats.shm_bytes
        pipe_before = stats.pipe_bytes
        store = TraceStore(tmp_path)
        run_tasks(merge_jobs(_jobs()), n_jobs=2, backend="replay",
                  pool="persistent", trace_store=store)
        payload_bytes = sum(
            path.stat().st_size for path in tmp_path.glob("*.trace")
        )
        assert payload_bytes > 0
        assert stats.shm_bytes - shm_before >= payload_bytes
        assert stats.pipe_bytes == pipe_before

    def test_pipe_fallback_when_shm_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_NO_SHM", "1")
        stats = pool_stats()
        shm_before = stats.shm_shipments
        pipe_before = stats.pipe_shipments
        results = run_tasks(merge_jobs(_jobs()), n_jobs=2,
                            backend="replay", pool="persistent")
        assert len(results) == len(_WORKLOADS)
        assert stats.shm_shipments == shm_before
        assert stats.pipe_shipments > pipe_before


class TestRecordingLRU:
    def test_ref_resolves_once_per_process(self):
        record_task = record_task_for(merge_jobs(_jobs())[0])
        recording = execute_record(record_task)
        ref = {"key": "test-lru-key",
               "payload": recording_to_bytes(recording)}
        first = resolve_recording_ref(ref)
        second = resolve_recording_ref(ref)
        assert first is second  # decoded once, LRU-served after
        assert first.event_count == recording.event_count

    def test_lru_evicts_beyond_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_LRU_RECORDINGS", "2")
        pool_mod._RECORDING_LRU.clear()
        sentinel = object()
        for key in ("a", "b", "c"):
            remember_recording(key, sentinel)
        assert list(pool_mod._RECORDING_LRU) == ["b", "c"]
        pool_mod._RECORDING_LRU.clear()


class TestInflightDedupe:
    def test_claim_protocol(self):
        claim, owner = claim_record("dedupe-key")
        assert owner
        deduped_before = pool_stats().records_deduped
        joined, second_owner = claim_record("dedupe-key")
        assert not second_owner
        assert joined is claim
        assert pool_stats().records_deduped == deduped_before + 1
        claim.publish(b"payload", None)
        assert joined.wait(timeout=5) == (b"payload", None)
        # A retired claim frees the key for the next owner.
        fresh, owner_again = claim_record("dedupe-key")
        assert owner_again
        fresh.fail()
        waiter, _ = claim_record("dedupe-key")
        waiter.fail()

    def test_failed_owner_releases_waiters(self):
        claim, _ = claim_record("failing-key")
        joined, _ = claim_record("failing-key")
        claim.fail()
        assert joined.wait(timeout=5) is None

    def test_concurrent_runs_record_each_stream_once(self, monkeypatch):
        """Two threads sweeping the same tasks must share one record
        pass per stream: the second thread joins the first's in-flight
        claims instead of re-simulating the workload."""
        calls = []
        lock = threading.Lock()

        def slow_record(record_task):
            with lock:
                calls.append(record_task)
            time.sleep(1.0)
            return execute_record(record_task)

        monkeypatch.setattr(scheduler_mod, "execute_record",
                            slow_record)
        tasks = merge_jobs(_jobs()[:1])
        outcomes = {}

        def sweep(tag, delay):
            time.sleep(delay)
            lines = []
            results = run_tasks(tasks, n_jobs=1, backend="replay",
                                progress=lines.append)
            outcomes[tag] = (results, lines)

        first = threading.Thread(target=sweep, args=("first", 0.0))
        second = threading.Thread(target=sweep, args=("second", 0.4))
        first.start()
        second.start()
        first.join()
        second.join()
        assert len(calls) == 1  # one record pass for both sweeps
        first_events = [r.events for r in outcomes["first"][0]]
        second_events = [r.events for r in outcomes["second"][0]]
        assert first_events == second_events
        assert any("deduped (record in flight)" in line
                   for line in outcomes["second"][1])


class TestPoolLifecycle:
    def test_get_worker_pool_grows_never_shrinks(self):
        pool = get_worker_pool(1)
        assert pool.n_workers == 1
        assert get_worker_pool(2) is pool
        assert pool.n_workers == 2
        assert get_worker_pool(1) is pool
        assert pool.n_workers == 2

    def test_shutdown_stops_workers(self):
        pool = get_worker_pool(1)
        processes = [worker.process for worker in pool._workers]
        shutdown_worker_pool()
        assert all(not process.is_alive() for process in processes)
        with pytest.raises(RuntimeError, match="shut down"):
            pool.run(execute_record, [(0, None)], lambda *a: None)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(0)


class TestPoolStatsLine:
    def test_spawned_once_wording(self):
        stats = pool_mod.PoolStats(workers_spawned=4,
                                   tasks_dispatched=22,
                                   shm_shipments=11,
                                   shm_bytes=7_400_000)
        line = format_pool_stats(stats)
        assert "4 workers spawned once" in line
        assert "22 tasks dispatched" in line
        assert "11 shm shipments (7.4 MB zero-copy)" in line
        assert "respawned" not in line

    def test_respawn_and_dedupe_wording(self):
        stats = pool_mod.PoolStats(workers_spawned=5,
                                   workers_respawned=1,
                                   tasks_dispatched=9, tasks_retried=1,
                                   pipe_shipments=2, pipe_bytes=100_000,
                                   records_deduped=3)
        line = format_pool_stats(stats)
        assert "5 workers (1 respawned after death)" in line
        assert "spawned once" not in line
        assert "1 retried inline" in line
        assert "2 pipe shipments (0.1 MB pickled)" in line
        assert "3 record passes deduped in flight" in line

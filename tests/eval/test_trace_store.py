"""The recorded-stream store: round trips, corruption, cold vs warm.

A recording that is truncated, garbled, version-skewed or CRC-broken must
never be replayed: the store detects every anomaly, *discards* the bad
file and reports a miss, and the scheduler transparently re-records —
never crashing, never returning stale events.  The ``--no-trace-cache``
path (``trace_store=None``) records fresh every run and writes nothing.
"""

from __future__ import annotations

import gzip
import json
import random
import struct
from array import array
from dataclasses import replace

import pytest

from repro.eval.jobs import (
    RecordTask,
    SimulationTask,
    SourceSpec,
    execute_record,
    execute_task,
    record_task_for,
    standard_snc_specs,
)
from repro.eval.pipeline import SimulationScale
from repro.eval.record import (
    AUX_TYPECODE,
    KIND_TYPECODE,
    LINE_TYPECODE,
    RecordedTask,
    Recording,
)
from repro.eval.report import format_trace_stats
from repro.eval.scheduler import run_tasks
from repro.eval.trace_store import (
    TRACE_FORMAT,
    TraceStore,
    recording_from_bytes,
    recording_to_bytes,
)
from repro.timing.model import (
    EVENT_ALLOC,
    EVENT_READ,
    EVENT_RESET,
    EVENT_SWITCH,
    EVENT_WRITEBACK,
)

_SCALE = SimulationScale(warmup_refs=5_000, measure_refs=10_000)


def _record_task(workload: str = "art") -> RecordTask:
    return RecordTask(
        source=SourceSpec(kind="benchmark", workloads=(workload,)),
        scale=_SCALE,
    )


def _task(workload: str = "art") -> SimulationTask:
    return SimulationTask(
        workload=workload,
        snc_configs=(standard_snc_specs()["lru64"],),
        scale=_SCALE,
    )


@pytest.fixture(scope="module")
def recording():
    return execute_record(_record_task())


def test_round_trip_is_lossless(recording):
    restored = recording_from_bytes(recording_to_bytes(recording))
    assert restored == recording


def _random_recording(rng: "random.Random") -> Recording:
    """A synthetic recording with randomized columns over the *whole*
    event vocabulary — kinds, 32-bit line indices, owner aux on
    writebacks, incoming-task aux on switches, RESET boundaries —
    independent of what any real workload happens to emit."""
    tasks = tuple(
        RecordedTask(xom_id, f"task{xom_id}",
                     rng.choice((25.0, 50.0, 80.0)))
        for xom_id in range(rng.randint(1, 3))
    )
    xom_ids = [task.xom_id for task in tasks]
    kinds, lines, aux = [], [], []

    def emit(kind, line=0, extra=0):
        kinds.append(kind)
        lines.append(line)
        aux.append(extra)

    n_events = rng.randint(0, 400)
    reset_at = rng.randrange(n_events) if n_events else None
    for i in range(n_events):
        if i == reset_at:
            emit(EVENT_RESET)
            continue
        kind = rng.choice((EVENT_READ, EVENT_ALLOC, EVENT_WRITEBACK,
                           EVENT_SWITCH))
        line = rng.randint(0, (1 << 32) - 1)
        if kind == EVENT_WRITEBACK:
            emit(kind, line, rng.choice(xom_ids))
        elif kind == EVENT_SWITCH:
            emit(kind, 0, rng.choice(xom_ids))
        else:
            emit(kind, line)
    big_l2 = rng.random() < 0.5
    return Recording(
        name=rng.choice(("synthetic", "mix(a+b)@q500")),
        tasks=tasks,
        warmup_refs=rng.randint(0, 10_000),
        measure_refs=rng.randint(1, 10_000),
        seed=rng.randint(1, 999),
        l2_lines=rng.choice((512, 1024, 2048)),
        l2_assoc=rng.choice((2, 4, 8)),
        read_misses=rng.randint(0, 50_000),
        allocate_misses=rng.randint(0, 50_000),
        writebacks=rng.randint(0, 50_000),
        read_misses_big_l2=rng.randint(0, 50_000) if big_l2 else None,
        allocate_misses_big_l2=(
            rng.randint(0, 50_000) if big_l2 else None
        ),
        task_read_misses={xom: rng.randint(0, 9_999)
                          for xom in xom_ids},
        kinds=array(KIND_TYPECODE, kinds),
        lines=array(LINE_TYPECODE, lines),
        aux=array(AUX_TYPECODE, aux),
    )


@pytest.mark.parametrize("case", range(20))
def test_random_streams_round_trip_lossless(case):
    """Property-style: any well-formed column triple survives the wire
    format bit-for-bit, whatever mix of kinds, aux values and RESET
    boundaries it holds — including the empty stream."""
    rng = random.Random(0xC01 + case)
    recording = _random_recording(rng)
    restored = recording_from_bytes(recording_to_bytes(recording))
    assert restored == recording
    assert restored.kinds.tolist() == recording.kinds.tolist()
    assert restored.lines.tolist() == recording.lines.tolist()
    assert restored.aux.tolist() == recording.aux.tolist()


def test_out_of_range_fields_are_rejected_at_put_time():
    """A line index past 32 bits (or an owner past 16) cannot be
    narrowed to the wire width; serialization must fail loudly, and the
    store must count it as a put error rather than persist garbage."""
    rng = random.Random(7)
    recording = _random_recording(rng)
    oversized = replace(
        recording,
        kinds=array(KIND_TYPECODE, [EVENT_READ]),
        lines=array(LINE_TYPECODE, [1 << 32]),
        aux=array(AUX_TYPECODE, [0]),
    )
    with pytest.raises(Exception):
        recording_to_bytes(oversized)


class TestCorruptionDetection:
    """Every anomaly parses as an error, never as a recording."""

    def test_wrong_magic(self, recording):
        data = b"XXXX" + recording_to_bytes(recording)[4:]
        with pytest.raises(ValueError, match="magic"):
            recording_from_bytes(data)

    def test_version_bump(self, recording):
        data = bytearray(recording_to_bytes(recording))
        struct.pack_into("<H", data, 4, TRACE_FORMAT + 1)
        with pytest.raises(ValueError, match="format"):
            recording_from_bytes(bytes(data))

    def test_truncation_everywhere(self, recording):
        """No prefix of a valid file parses — header cuts, payload cuts,
        even a 0-byte file."""
        data = recording_to_bytes(recording)
        for cut in (0, 3, 5, 9, 40, len(data) // 2, len(data) - 7):
            with pytest.raises(Exception):
                recording_from_bytes(data[:cut])

    def test_garbled_payload(self, recording):
        data = bytearray(recording_to_bytes(recording))
        # Stomp bytes in the compressed event stream.
        for offset in range(len(data) - 30, len(data) - 10):
            data[offset] ^= 0xFF
        with pytest.raises(Exception):
            recording_from_bytes(bytes(data))

    def test_event_count_mismatch(self, recording):
        data = recording_to_bytes(recording)
        header_len = struct.unpack_from("<I", data, 6)[0]
        header = json.loads(data[10:10 + header_len])
        header["event_count"] += 1
        new_header = json.dumps(header, sort_keys=True).encode()
        rebuilt = (data[:4] + struct.pack("<HI", TRACE_FORMAT,
                                          len(new_header))
                   + new_header + data[10 + header_len:])
        with pytest.raises(ValueError, match="events"):
            recording_from_bytes(rebuilt)

    def test_crc_mismatch(self, recording):
        """Same length, different bytes: only the CRC catches it."""
        data = recording_to_bytes(recording)
        header_len = struct.unpack_from("<I", data, 6)[0]
        body_start = 10 + header_len
        packed = bytearray(gzip.decompress(data[body_start:]))
        packed[10] ^= 0x01
        rebuilt = data[:body_start] + gzip.compress(bytes(packed),
                                                    compresslevel=1)
        with pytest.raises(ValueError, match="CRC"):
            recording_from_bytes(rebuilt)


class TestStore:
    def test_cold_get_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.get(_record_task()) is None
        assert (store.hits, store.misses) == (0, 1)

    def test_put_then_get(self, tmp_path, recording):
        store = TraceStore(tmp_path)
        record_task = _record_task()
        store.put(record_task, recording)
        assert store.get(record_task) == recording
        assert store.hits == 1

    def test_distinct_keys_per_source_scale_seed(self, tmp_path):
        store = TraceStore(tmp_path)
        base = _record_task()
        assert store.key_for(base) != store.key_for(_record_task("vpr"))
        assert store.key_for(base) != store.key_for(RecordTask(
            source=base.source, scale=base.scale, seed=2,
        ))
        assert store.key_for(base) != store.key_for(RecordTask(
            source=base.source,
            scale=SimulationScale(warmup_refs=5_000, measure_refs=10_001),
        ))

    @pytest.mark.parametrize("how", ["truncate", "garble", "version"])
    def test_corrupt_file_discarded_and_missed(self, tmp_path, recording,
                                               how):
        store = TraceStore(tmp_path)
        record_task = _record_task()
        store.put(record_task, recording)
        path = store.path_for(record_task)
        data = bytearray(path.read_bytes())
        if how == "truncate":
            data = data[:len(data) // 3]
        elif how == "garble":
            for offset in range(20, 60):
                data[offset] ^= 0xA5
        else:
            struct.pack_into("<H", data, 4, TRACE_FORMAT + 7)
        path.write_bytes(bytes(data))

        assert store.get(record_task) is None
        assert not path.exists(), "corrupt recording must be discarded"

    def test_format_upgrade_counted_separately(self, tmp_path,
                                               recording):
        """An old-format file is discarded like corruption but counted
        as a *format upgrade*, so a version bump's silent re-records
        are visible in the runner summary."""
        store = TraceStore(tmp_path)
        record_task = _record_task()
        store.put(record_task, recording)
        path = store.path_for(record_task)
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 4, TRACE_FORMAT - 1)
        path.write_bytes(bytes(data))

        assert store.get(record_task) is None
        assert not path.exists()
        assert store.corrupt_discards == 1
        assert store.format_upgrades == 1
        stats = format_trace_stats(store)
        assert "1 format upgrades" in stats
        assert "1 corrupt discarded" in stats

    def test_unwritable_store_is_silent(self, tmp_path, recording):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        store = TraceStore(blocked)
        store.put(_record_task(), recording)  # must not raise
        assert store.put_errors == 1


class TestSchedulerIntegration:
    """Cold records, warm reuses, corruption re-records — transparently."""

    def _progress(self):
        lines = []
        return lines, lines.append

    def test_cold_then_warm(self, tmp_path):
        store = TraceStore(tmp_path)
        task = _task()
        reference = execute_task(task)

        lines, progress = self._progress()
        [cold] = run_tasks([task], backend="replay", trace_store=store,
                           progress=progress)
        assert cold.events == reference
        assert any("recorded in" in line for line in lines)

        lines, progress = self._progress()
        [warm] = run_tasks([task], backend="replay", trace_store=store,
                           progress=progress)
        assert warm.events == reference
        assert any("trace cached" in line for line in lines)
        assert not any("recorded in" in line for line in lines)

    def test_old_format_recording_rerecorded_transparently(
            self, tmp_path):
        """The full bump story: a pre-bump file is discarded on first
        touch, the stream is re-recorded, events still match the fused
        reference, and the warm run after that hits the fresh file."""
        store = TraceStore(tmp_path)
        task = _task("gzip")
        reference = execute_task(task)
        [first] = run_tasks([task], backend="replay", trace_store=store)
        assert first.events == reference

        path = store.path_for(record_task_for(task))
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 4, TRACE_FORMAT + 3)
        path.write_bytes(bytes(data))

        lines, progress = self._progress()
        [again] = run_tasks([task], backend="replay", trace_store=store,
                            progress=progress)
        assert again.events == reference
        assert any("recorded in" in line for line in lines)
        assert store.format_upgrades == 1

        lines, progress = self._progress()
        [warm] = run_tasks([task], backend="replay", trace_store=store,
                           progress=progress)
        assert warm.events == reference
        assert any("trace cached" in line for line in lines)

    def test_corrupted_recording_rerecords_fresh_events(self, tmp_path):
        store = TraceStore(tmp_path)
        task = _task("vpr")
        reference = execute_task(task)
        [first] = run_tasks([task], backend="replay", trace_store=store)

        # Garble the stored stream in place; a warm run must detect it,
        # re-record, and still produce the reference events (stale or
        # garbage counts must never surface).
        path = store.path_for(record_task_for(task))
        data = bytearray(path.read_bytes())
        for offset in range(len(data) // 2, len(data) // 2 + 64):
            data[offset % len(data)] ^= 0x3C
        path.write_bytes(bytes(data))

        lines, progress = self._progress()
        [again] = run_tasks([task], backend="replay", trace_store=store,
                            progress=progress)
        assert again.events == reference == first.events
        assert any("recorded in" in line for line in lines)

    def test_no_trace_store_records_every_run(self, tmp_path):
        """The --no-trace-cache path: no store, nothing persisted, and
        each run records inline — results still match the fused path."""
        task = _task()
        reference = execute_task(task)
        for _run in (1, 2):
            lines, progress = self._progress()
            [result] = run_tasks([task], backend="replay",
                                 trace_store=None, progress=progress)
            assert result.events == reference
            assert any("recorded in" in line for line in lines)
        assert list(tmp_path.iterdir()) == []

"""Tests for the CLI runner and the ASCII chart renderer."""

import pytest

from repro.eval.charts import render_averages, render_chart
from repro.eval.experiments import figure5, run_all_benchmarks
from repro.eval.jobs import standard_snc_specs
from repro.eval.pipeline import SimulationScale
from repro.eval.runner import build_parser, main, parse_scale


@pytest.fixture(scope="module")
def small_figure():
    # Big enough to clear every benchmark's initialization phase.
    events = run_all_benchmarks(
        scale=SimulationScale(warmup_refs=50_000, measure_refs=30_000)
    )
    return figure5(events)


class TestParseScale:
    def test_full(self):
        scale = parse_scale("full")
        assert scale.warmup_refs == 200_000

    def test_quick(self):
        assert parse_scale("quick").measure_refs == 50_000

    def test_explicit(self):
        scale = parse_scale("1000:2000")
        assert (scale.warmup_refs, scale.measure_refs) == (1000, 2000)

    def test_garbage_rejected(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            parse_scale("banana")


class TestParser:
    def test_defaults_select_all_figures(self):
        args = build_parser().parse_args([])
        assert args.figures == ["10", "3", "5", "6", "7", "8", "9"]

    def test_figure_subset(self):
        args = build_parser().parse_args(["--figures", "5", "10"])
        assert args.figures == ["5", "10"]

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--figures", "4"])


@pytest.mark.slow
class TestCharts:
    def test_chart_contains_all_benchmarks(self, small_figure):
        chart = render_chart(small_figure)
        for name in ("ammp", "art", "vpr", "mcf"):
            assert name in chart
        assert "#" in chart and "=" in chart

    def test_averages_chart(self, small_figure):
        chart = render_averages(small_figure)
        assert "XOM" in chart
        assert "SNC-LRU" in chart
        assert "paper" in chart and "ours" in chart

    def test_bars_scale_to_peak(self, small_figure):
        chart = render_chart(small_figure, width=30)
        longest = max(
            line.count("=") for line in chart.splitlines() if "|" in line
        )
        assert longest <= 30


class TestMain:
    @pytest.mark.slow
    def test_end_to_end_quick_run(self, capsys, tmp_path):
        code = main(["--figures", "5", "--scale", "50000:30000", "--charts",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure5" in out
        assert "Headline comparison" in out
        assert "averages" in out

    def test_too_small_scale_fails_cleanly(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="initialization"):
            main(["--figures", "3", "--scale", "2000:2000", "--no-cache"])

    def test_rejects_bad_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--jobs", "0", "--no-cache"])
        assert excinfo.value.code == 2
        assert "--jobs" in capsys.readouterr().err


class TestJobsSelection:
    def test_plain_counts_accepted(self):
        parser = build_parser()
        assert parser.parse_args(["--jobs", "4"]).jobs == 4
        assert parser.parse_args([]).jobs == 1

    def test_auto_parses_to_the_resolve_later_sentinel(self):
        # "auto" cannot resolve at parse time: the cap is the sweep's
        # total lane count, known only once the tasks are merged.  The
        # parser hands main() the 0 sentinel; auto_jobs() does the rest.
        args = build_parser().parse_args(["--jobs", "auto"])
        assert args.jobs == 0

    def test_auto_jobs_caps_at_the_lane_count(self):
        import os

        from repro.eval.jobs import ExperimentJob, merge_jobs
        from repro.eval.scheduler import auto_jobs

        specs = (standard_snc_specs()["lru64"],)
        tasks = merge_jobs([
            ExperimentJob(figure="figure5", schemes=("otp",),
                          workload="art", snc_configs=specs,
                          scale=SimulationScale(20_000, 20_000)),
        ])
        # One task, one lane: auto must not spawn idle workers.
        assert auto_jobs(tasks) == 1
        assert auto_jobs([]) == 1
        many = merge_jobs([
            ExperimentJob(figure="figure5", schemes=("otp",),
                          workload="art",
                          snc_configs=tuple(standard_snc_specs().values()),
                          scale=SimulationScale(20_000, 20_000)),
        ])
        expected = max(1, min(os.cpu_count() or 1,
                              len(many[0].snc_configs)))
        assert auto_jobs(many) == expected

    def test_garbage_jobs_gets_a_menu(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--jobs", "many"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid --jobs value 'many'" in err
        assert "'auto'" in err


class TestPoolSelection:
    def test_valid_pools_accepted(self):
        parser = build_parser()
        for name in ("persistent", "spawn"):
            assert parser.parse_args(["--pool", name]).pool == name
        assert parser.parse_args([]).pool == "persistent"

    def test_unknown_pool_gets_a_menu(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--pool", "threads"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown pool 'threads'" in err
        assert "'persistent' (warm process-wide workers" in err
        assert "'spawn'" in err


class TestBackendSelection:
    def test_valid_backends_accepted(self):
        parser = build_parser()
        for name in ("fused", "replay", "replay-perevent"):
            assert parser.parse_args(["--backend", name]).backend == name

    def test_unknown_backend_gets_a_menu(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--backend", "vectorized"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown backend 'vectorized'" in err
        assert "'replay' (record once, batch-price" in err
        assert "'replay-perevent'" in err
        assert "'fused'" in err

    def test_replay_run_reports_trace_store_stats(self, capsys,
                                                  tmp_path):
        code = main(["--figures", "5", "--scale", "50000:30000",
                     "--no-cache",
                     "--trace-cache-dir", str(tmp_path / "traces")])
        assert code == 0
        err = capsys.readouterr().err
        assert "trace store:" in err
        # Cold first run: every distinct recording misses once.
        assert "0 hits" in err

    def test_fused_run_reports_no_trace_stats(self, capsys, tmp_path):
        code = main(["--figures", "5", "--scale", "50000:30000",
                     "--backend", "fused", "--no-cache"])
        assert code == 0
        assert "trace store:" not in capsys.readouterr().err

"""Golden-master regression: the rendered paper tables, byte for byte.

The seven figure tables plus the §4.3 scenario table and the integrity
table, rendered at quick scale, are checked into ``tests/golden/``.  Any
refactor that silently drifts a single counter, calibration constant or
formatting rule fails here with a diff — the complement of the
differential suite, which only proves the two backends agree with *each
other*.

The fixtures are produced by the fused reference backend, while the test
renders through the replay backend (the production default) — so one
pass pins **both** engines to the same bytes: replay must match what
fused wrote, and the randomized differential suite ties fused to replay
everywhere else.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python tests/eval/test_golden_master.py

and review the fixture diff like any other code change.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval.experiments import (
    FIGURES_BY_ID,
    plan_jobs,
    run_integrity_sweep,
    run_scenarios,
    scenario_jobs,
)
from repro.eval.pipeline import QUICK_SCALE
from repro.eval.report import (
    format_figure,
    format_integrity_table,
    format_scenario_table,
)
from repro.eval.scheduler import run_jobs

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: The scenario table's pinned configuration: one mix per arm of the
#: §4.3 trade-off (fits / contends), both strategies each.
SCENARIO_MIXES = (("art", "vpr"), ("equake", "mcf"))
SCENARIO_QUANTUM = 2_000


def _render_figures(backend: str) -> dict[str, str]:
    events = run_jobs(plan_jobs(scale=QUICK_SCALE), backend=backend)
    return {
        figure_id: format_figure(figure(events)) + "\n"
        for figure_id, figure in FIGURES_BY_ID.items()
    }


def _render_scenarios(backend: str) -> str:
    results = {}
    for mix in SCENARIO_MIXES:
        results.update(run_scenarios(
            scenario_jobs(mix, quantum=SCENARIO_QUANTUM,
                          scale=QUICK_SCALE),
            backend=backend,
        ))
    return format_scenario_table(results) + "\n"


def _render_integrity(backend: str) -> str:
    events = run_integrity_sweep(scale=QUICK_SCALE, backend=backend)
    return format_integrity_table(events) + "\n"


def render_all(backend: str) -> dict[str, str]:
    tables = _render_figures(backend)
    tables["scenarios"] = _render_scenarios(backend)
    tables["integrity"] = _render_integrity(backend)
    return tables


def _assert_matches_golden(tables: dict[str, str]) -> None:
    for name, rendered in tables.items():
        path = GOLDEN_DIR / f"{name}.txt"
        assert path.exists(), (
            f"missing golden fixture {path}; regenerate with "
            f"'PYTHONPATH=src python {__file__}'"
        )
        golden = path.read_text()
        assert rendered == golden, (
            f"{name} drifted from tests/golden/{name}.txt — if the "
            "change is intentional, regenerate the fixtures and review "
            "the diff"
        )


@pytest.fixture(scope="module")
def rendered_tables():
    return render_all("replay")


def test_tables_match_golden_fixtures(rendered_tables):
    """Figures 3-10 plus the scenario and integrity tables, rendered
    through the replay backend, must be byte-identical to the fixtures
    the fused reference wrote."""
    _assert_matches_golden(rendered_tables)


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, rendered in render_all("fused").items():
        path = GOLDEN_DIR / f"{name}.txt"
        path.write_text(rendered)
        print(f"wrote {path}")


if __name__ == "__main__":
    regenerate()

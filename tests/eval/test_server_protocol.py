"""Protocol robustness of the serve daemon: every malformed input is
answered with an ``error`` frame or a clean close, and the daemon keeps
serving — the next frame, the next client — afterwards.

Each test speaks raw newline-delimited JSON over a plain socket (no
:class:`EvalClient` between the bytes and the daemon), so the frames
under test are exactly what a broken client would produce.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.eval.client import PROTOCOL_VERSION, EvalClient, ServerError
from repro.eval.jobs import SNCSpec, SimulationTask, task_to_wire
from repro.eval.pipeline import SimulationScale
from repro.eval.server import start_server_thread

#: Tiny but non-degenerate: the valid-submit-after-error tests execute
#: this for real, so it must clear the workload's initialization phase
#: (the recorder rejects windows with no load misses) yet stay fast.
TINY_TASK = SimulationTask(
    workload="art",
    snc_configs=(SNCSpec(key="lru64"),),
    scale=SimulationScale(warmup_refs=8_000, measure_refs=8_000),
)


@pytest.fixture(scope="module")
def daemon():
    with start_server_thread(n_jobs=1, backend="fused") as handle:
        yield handle


def raw_connection(handle):
    sock = socket.create_connection(
        ("127.0.0.1", handle.server.port), timeout=30
    )
    return sock, sock.makefile("rb")


def send_line(sock, payload: bytes) -> None:
    sock.sendall(payload + b"\n")


def recv_frame(stream) -> dict:
    line = stream.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


def roundtrip(sock, stream, frame: dict) -> dict:
    send_line(sock, json.dumps(frame).encode())
    return recv_frame(stream)


class TestHandshake:
    def test_hello_reports_protocol_and_pid(self, daemon):
        sock, stream = raw_connection(daemon)
        try:
            reply = roundtrip(sock, stream, {"type": "hello"})
            assert reply["type"] == "hello"
            assert reply["protocol"] == PROTOCOL_VERSION
            assert reply["pid"] > 0
        finally:
            sock.close()

    def test_client_rejects_protocol_mismatch(self, daemon,
                                              monkeypatch):
        monkeypatch.setattr(
            "repro.eval.client.PROTOCOL_VERSION", PROTOCOL_VERSION + 1
        )
        with pytest.raises(ServerError, match="protocol"):
            EvalClient(daemon.address)


class TestMalformedFrames:
    def test_bad_json_answered_not_fatal(self, daemon):
        sock, stream = raw_connection(daemon)
        try:
            send_line(sock, b"{this is not json")
            reply = recv_frame(stream)
            assert reply["type"] == "error"
            assert reply["code"] == "bad-json"
            # Same connection still serves well-formed frames.
            assert roundtrip(sock, stream,
                             {"type": "hello"})["type"] == "hello"
        finally:
            sock.close()

    def test_non_object_frame_rejected(self, daemon):
        sock, stream = raw_connection(daemon)
        try:
            send_line(sock, b"[1, 2, 3]")
            reply = recv_frame(stream)
            assert (reply["type"], reply["code"]) == ("error",
                                                      "bad-json")
        finally:
            sock.close()

    def test_unknown_type_keeps_connection(self, daemon):
        sock, stream = raw_connection(daemon)
        try:
            reply = roundtrip(sock, stream, {"type": "explode"})
            assert (reply["type"], reply["code"]) == ("error",
                                                      "unknown-type")
            assert roundtrip(sock, stream,
                             {"type": "hello"})["type"] == "hello"
        finally:
            sock.close()

    def test_blank_lines_ignored(self, daemon):
        sock, stream = raw_connection(daemon)
        try:
            sock.sendall(b"\n\n")
            assert roundtrip(sock, stream,
                             {"type": "hello"})["type"] == "hello"
        finally:
            sock.close()

    def test_truncated_frame_then_disconnect(self, daemon):
        # A client dying mid-frame leaves an unterminated line; the
        # daemon must shrug it off and serve the next client.
        sock, _stream = raw_connection(daemon)
        sock.sendall(b'{"type": "sub')
        sock.close()
        with EvalClient(daemon.address) as client:
            assert client.server_info["type"] == "hello"


class TestRequestErrors:
    def test_submit_without_tasks(self, daemon):
        sock, stream = raw_connection(daemon)
        try:
            reply = roundtrip(sock, stream,
                              {"type": "submit", "id": "r1"})
            assert (reply["type"], reply["code"]) == ("error",
                                                      "bad-submit")
            assert reply["id"] == "r1"
        finally:
            sock.close()

    def test_submit_with_invalid_task_then_valid_one(self, daemon):
        sock, stream = raw_connection(daemon)
        try:
            reply = roundtrip(sock, stream, {
                "type": "submit", "id": "r1",
                "tasks": [{"kind": "simulation", "workload": "zzz",
                           "scale": [10, 10]}],
            })
            assert (reply["type"], reply["code"]) == ("error",
                                                      "bad-task")
            assert "zzz" in reply["error"]
            # The same connection then runs a real task to completion.
            send_line(sock, json.dumps({
                "type": "submit", "id": "r2",
                "tasks": [task_to_wire(TINY_TASK)],
            }).encode())
            frames = []
            while True:
                frame = recv_frame(stream)
                frames.append(frame)
                if frame["type"] != "progress":
                    break
            assert frames[-1]["type"] == "result"
            assert len(frames[-1]["results"]) == 1
            assert any(frame["type"] == "progress"
                       for frame in frames)
        finally:
            sock.close()

    def test_error_frames_are_counted(self, daemon):
        with EvalClient(daemon.address) as client:
            stats = client.stats()
        assert stats["protocol_errors"] >= 1
        assert stats["request_errors"] >= 1


class TestLimits:
    def test_oversized_frame_answered_then_closed(self):
        with start_server_thread(n_jobs=1, backend="fused",
                                 max_request_bytes=4096) as handle:
            sock, stream = raw_connection(handle)
            try:
                send_line(sock, b'{"type": "submit", "tasks": ["'
                          + b"x" * 8192 + b'"]}')
                reply = recv_frame(stream)
                assert (reply["type"], reply["code"]) == (
                    "error", "frame-too-large"
                )
                assert stream.readline() == b""  # clean close
            finally:
                sock.close()
            # The daemon survives to serve the next client.
            with EvalClient(handle.address) as client:
                assert client.server_info["type"] == "hello"

    def test_idle_connection_dropped(self):
        with start_server_thread(n_jobs=1, backend="fused",
                                 idle_timeout=0.2) as handle:
            sock, stream = raw_connection(handle)
            try:
                reply = recv_frame(stream)  # blocks until the timeout
                assert (reply["type"], reply["code"]) == (
                    "error", "idle-timeout"
                )
                assert stream.readline() == b""
            finally:
                sock.close()
            with EvalClient(handle.address) as client:
                assert client.server_info["type"] == "hello"

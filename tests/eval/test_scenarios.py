"""Tests for the §4.3 scenario pipeline: jobs -> scheduler -> cache ->
pricer, and the FLUSH-vs-TAG invariants."""

from dataclasses import asdict

import pytest

from repro.eval.cache import ResultCache
from repro.eval.experiments import (
    SCENARIO_SCHEMES,
    run_scenarios,
    scenario_jobs,
    scenario_slowdowns,
    scheme_config_key,
)
from repro.eval.jobs import (
    ScenarioJob,
    SourceSpec,
    execute_task,
    merge_scenario_jobs,
)
from repro.eval.pipeline import (
    SimulationScale,
    simulate_benchmark,
    simulate_scenario,
    standard_snc_configs,
)
from repro.eval.scheduler import run_tasks
from repro.secure.snc_policy import SwitchStrategy
from repro.workloads.sources import MultiTaskInterleaver, SingleBenchmark
from repro.workloads.spec import BY_NAME

#: Short but past every init phase for the benchmarks used here.
SCALE = SimulationScale(warmup_refs=20_000, measure_refs=30_000)


def mix_events(strategy, workloads=("art", "vpr"), quantum=1000,
               snc_configs=None, schemes=None):
    return simulate_scenario(
        MultiTaskInterleaver(workloads, quantum=quantum),
        scale=SCALE,
        snc_configs=snc_configs or {
            "lru64": standard_snc_configs()["lru64"]
        },
        snc_schemes=schemes,
        switch_strategy=strategy,
    )


class TestSingleTaskParity:
    def test_single_task_scenario_matches_the_benchmark_path(self):
        """The WorkloadSource refactor's anchor: one task, no switches,
        byte-identical events to the classic figure pipeline.

        TAG runs the full five standard configurations; FLUSH runs the
        LRU ones (flushing needs the spill table, so it rejects
        no-replacement configs up front)."""
        all_configs = standard_snc_configs()
        lru_only = {key: config for key, config in all_configs.items()
                    if key != "norepl64"}
        for strategy, configs in ((SwitchStrategy.TAG, all_configs),
                                  (SwitchStrategy.FLUSH, lru_only)):
            bench = simulate_benchmark(BY_NAME["art"], scale=SCALE,
                                       snc_configs=configs,
                                       simulate_alt_l2=False)
            scenario = simulate_scenario(SingleBenchmark("art"),
                                         scale=SCALE,
                                         snc_configs=configs,
                                         switch_strategy=strategy)
            expected = asdict(bench)
            got = asdict(scenario)
            assert got.pop("task_read_misses") == {
                "0:art": bench.read_misses
            }
            expected.pop("task_read_misses")
            assert got == expected

    def test_one_task_interleave_equals_single_benchmark(self):
        via_interleaver = simulate_scenario(
            MultiTaskInterleaver(["art"], quantum=500), scale=SCALE
        )
        direct = simulate_scenario(SingleBenchmark("art"), scale=SCALE)
        left, right = asdict(via_interleaver), asdict(direct)
        assert left.pop("name") == "mix(art)@q500"
        assert right.pop("name") == "art"
        assert left == right


class TestStrategyInvariants:
    def test_tag_never_spills_at_switch_time(self):
        events = mix_events(SwitchStrategy.TAG)
        counts = events.snc["lru64"]
        assert counts.switches > 0
        assert counts.switch_spills == 0

    def test_flush_spills_at_every_switch_and_empties_the_snc(self):
        config = standard_snc_configs()["lru64"]
        source = MultiTaskInterleaver(["art", "vpr"], quantum=1000)
        from repro.secure.schemes import get_scheme

        sim = get_scheme("otp").build_timing_sim(
            config, switch_strategy=SwitchStrategy.FLUSH
        )
        for item in source.stream(1):
            from repro.workloads.sources import Switch

            if type(item) is Switch:
                assert len(sim.snc) > 0
                sim.switch_task(item.next_task)
                # FLUSH leaves the SNC empty at every switch.
                assert len(sim.snc) == 0
                break_after = sim.counts.switches >= 3
                if break_after:
                    break
            else:
                line, is_write = item
                if is_write:
                    sim.writeback(line)
                else:
                    sim.read_miss(line)
        assert sim.counts.switch_spills > 0

    def test_flush_costs_more_than_tag_when_working_sets_fit(self):
        flush = mix_events(SwitchStrategy.FLUSH)
        tag = mix_events(SwitchStrategy.TAG)
        # Identical workload view: the strategies see the same misses.
        assert flush.read_misses == tag.read_misses
        assert flush.task_read_misses == tag.task_read_misses
        from repro.eval.experiments import PAPER_LATENCIES
        from repro.secure.schemes import get_scheme
        from repro.timing.model import slowdown_pct

        base = get_scheme("baseline").price(
            flush.trace_events(), PAPER_LATENCIES
        )
        price = get_scheme("otp").price
        flush_slow = slowdown_pct(
            price(flush.trace_events("lru64"), PAPER_LATENCIES), base
        )
        tag_slow = slowdown_pct(
            price(tag.trace_events("lru64"), PAPER_LATENCIES), base
        )
        assert tag_slow < flush_slow

    def test_cross_task_writebacks_update_the_owners_entry(self):
        """A shared L2 can evict task A's dirty line during task B's
        quantum; the sequence-number update must run under A's tag (the
        owner tag travels with the line), not B's."""
        from repro.secure.schemes import get_scheme

        sim = get_scheme("otp").build_timing_sim(
            standard_snc_configs()["lru64"]
        )
        sim.begin_task(0)
        sim.writeback(10)  # task 0 owns line 10: seq 1
        sim.switch_task(1)
        sim.writeback(10, xom_id=0)  # evicted during task 1's quantum
        assert sim.snc.peek(10, xom_id=0) == 2  # owner's chain advanced
        assert sim.snc.peek(10, xom_id=1) is None  # no phantom entry
        assert sim.counts.update_hits == 1

    def test_flush_cross_task_writeback_leaves_no_residency(self):
        """Under FLUSH the SNC holds only the running task's entries: a
        descheduled owner's dirty eviction is a table read-modify-write,
        so the owner returns cold (no phantom warm hits) but its
        sequence chain still advances."""
        from repro.secure.schemes import get_scheme

        sim = get_scheme("otp").build_timing_sim(
            standard_snc_configs()["lru64"],
            switch_strategy=SwitchStrategy.FLUSH,
        )
        sim.begin_task(0)
        sim.writeback(10)  # task 0 owns line 10: seq 1
        sim.switch_task(1)  # flushes task 0's entries to the table
        spills_before = sim.counts.table_spills
        sim.writeback(10, xom_id=0)  # evicted during task 1's quantum
        assert sim.snc.peek(10, xom_id=0) is None  # no residency
        assert sim.counts.table_spills == spills_before + 1
        sim.switch_task(0)
        # Task 0 re-warms through a query miss and sees seq 2 — the
        # detached update was not lost.
        decision = sim.core.read(10)
        assert decision.seq == 2

    def test_both_registered_schemes_ride_the_scenario_pipeline(self):
        """otp and otp_split both simulate and price the same mix —
        the acceptance criterion's two-scheme end-to-end run."""
        base_config = standard_snc_configs()["lru64"]
        configs = {
            scheme_config_key(scheme): base_config
            for scheme in SCENARIO_SCHEMES
        }
        schemes = {
            scheme_config_key(scheme): scheme
            for scheme in SCENARIO_SCHEMES
        }
        for strategy in SwitchStrategy:
            events = mix_events(strategy, snc_configs=configs,
                                schemes=schemes)
            slowdowns = scenario_slowdowns(events)
            assert set(slowdowns) == set(SCENARIO_SCHEMES)
            for value in slowdowns.values():
                assert value >= 0.0


class TestScenarioJobs:
    def test_jobs_merge_like_figure_jobs(self):
        jobs = scenario_jobs(["art", "vpr"], quantum=1000, scale=SCALE)
        assert len(jobs) == 2  # one per strategy
        tasks = merge_scenario_jobs(jobs + jobs)  # duplicates collapse
        assert len(tasks) == 2
        strategies = {task.strategy for task in tasks}
        assert strategies == {"flush", "tag"}
        # Each task carries one SNC config per scheme.
        assert all(len(task.snc_configs) == len(SCENARIO_SCHEMES)
                   for task in tasks)

    def test_config_hash_is_stable_and_strategy_sensitive(self):
        jobs = scenario_jobs(["art", "vpr"], quantum=1000, scale=SCALE)
        flush_task, tag_task = merge_scenario_jobs(jobs)
        assert flush_task.config_hash() == flush_task.config_hash()
        assert flush_task.config_hash() != tag_task.config_hash()

    def test_trace_source_hash_tracks_file_contents(self, tmp_path):
        from repro.workloads.tracegen import save_trace

        path = tmp_path / "t.trace"
        save_trace([(1, False)], path)
        spec = SourceSpec(kind="trace", trace_path=str(path))
        before = spec.canonical()
        save_trace([(2, True)], path)
        assert spec.canonical() != before

    def test_validation(self):
        with pytest.raises(KeyError):
            SourceSpec(kind="benchmark", workloads=("nope",))
        with pytest.raises(Exception):
            SourceSpec(kind="multitask", workloads=("art", "vpr"))
        with pytest.raises(ValueError):
            ScenarioJob(
                scenario="x", schemes=("otp",),
                source=SourceSpec(kind="benchmark", workloads=("art",)),
                snc_configs=(), strategy="bogus", scale=SCALE,
            )

    def test_scenario_tasks_cache_and_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = scenario_jobs(["art", "vpr"], quantum=1000, scale=SCALE)
        tasks = merge_scenario_jobs(jobs)
        cold = run_tasks(tasks, n_jobs=1, cache=cache)
        assert all(not result.cached for result in cold)
        warm = run_tasks(tasks, n_jobs=1, cache=cache)
        assert all(result.cached for result in warm)
        for before, after in zip(cold, warm):
            assert asdict(before.events) == asdict(after.events)

    def test_run_scenarios_indexes_by_source_and_strategy(self, tmp_path):
        jobs = scenario_jobs(["art", "vpr"], quantum=1000, scale=SCALE)
        results = run_scenarios(jobs, cache=ResultCache(tmp_path))
        label = jobs[0].source.label
        assert set(results) == {(label, "flush"), (label, "tag")}

    def test_execute_task_dispatches_on_kind(self):
        jobs = scenario_jobs(["art"], scale=SCALE)
        # A no-switch source has no strategy dimension: one TAG job only.
        (task,) = merge_scenario_jobs(jobs)
        assert task.strategy == "tag"
        events = execute_task(task)
        direct = simulate_benchmark(BY_NAME["art"], scale=SCALE,
                                    simulate_alt_l2=False)
        assert events.read_misses == direct.read_misses

"""Tests for the trace-driven evaluation pipeline."""

import pytest

from repro.eval.pipeline import (
    QUICK_SCALE,
    SimulationScale,
    simulate_benchmark,
    standard_snc_configs,
)
from repro.secure.snc import SNCPolicy
from repro.timing.model import baseline_cycles, slowdown_pct, xom_cycles
from repro.secure.engine import LatencyParams
from repro.workloads.spec import BY_NAME

_LAT = LatencyParams()


@pytest.fixture(scope="module")
def vpr_events():
    return simulate_benchmark(BY_NAME["vpr"], scale=QUICK_SCALE)


class TestStandardConfigs:
    def test_five_configurations(self):
        configs = standard_snc_configs()
        assert set(configs) == {
            "lru64", "norepl64", "lru32", "lru128", "lru64_32way"
        }

    def test_paper_geometries(self):
        configs = standard_snc_configs()
        assert configs["lru64"].n_entries == 32 * 1024
        assert configs["lru32"].n_entries == 16 * 1024
        assert configs["lru128"].n_entries == 64 * 1024
        assert configs["lru64_32way"].assoc == 32
        assert configs["norepl64"].policy is SNCPolicy.NO_REPLACEMENT


class TestSimulateBenchmark:
    def test_produces_counts_for_all_configs(self, vpr_events):
        assert set(vpr_events.snc) == set(standard_snc_configs())
        assert vpr_events.read_misses > 0
        assert vpr_events.writebacks > 0

    def test_calibration_anchors_xom_slowdown(self, vpr_events):
        """At any scale, the derived compute cycles make the priced XOM
        slowdown equal the Figure 3 target."""
        events = vpr_events.trace_events()
        measured = slowdown_pct(
            xom_cycles(events, _LAT), baseline_cycles(events, _LAT)
        )
        assert measured == pytest.approx(21.16, abs=0.05)

    def test_deterministic(self):
        scale = SimulationScale(warmup_refs=5_000, measure_refs=10_000)
        a = simulate_benchmark(BY_NAME["art"], scale=scale)
        b = simulate_benchmark(BY_NAME["art"], scale=scale)
        assert a.read_misses == b.read_misses
        assert a.snc["lru64"].overlapped_reads == (
            b.snc["lru64"].overlapped_reads
        )

    @pytest.mark.slow
    def test_seed_changes_counts(self):
        # Long enough to get past mcf's deterministic initialization pass.
        scale = SimulationScale(warmup_refs=50_000, measure_refs=30_000)
        a = simulate_benchmark(BY_NAME["mcf"], scale=scale, seed=1)
        b = simulate_benchmark(BY_NAME["mcf"], scale=scale, seed=2)
        assert a.read_misses != b.read_misses

    def test_bigger_l2_misses_less(self, vpr_events):
        assert vpr_events.read_misses_big_l2 < vpr_events.read_misses

    def test_snc_read_events_cover_read_misses(self, vpr_events):
        """Conservation: every critical read miss lands in exactly one SNC
        read category."""
        for key, counts in vpr_events.snc.items():
            assert counts.reads == vpr_events.read_misses, key

    def test_art_fits_its_snc(self):
        """art's footprint is under 16K lines: after warmup every read
        should be an SNC hit."""
        events = simulate_benchmark(BY_NAME["art"], scale=QUICK_SCALE)
        lru = events.snc["lru64"]
        assert lru.seqnum_miss_reads < 0.01 * max(lru.reads, 1)

    def test_trace_events_requires_known_key(self, vpr_events):
        assert vpr_events.trace_events("lru64").snc is not None
        assert vpr_events.trace_events().snc is None

    def test_alt_l2_substitutes_big_l2_misses(self, vpr_events):
        alt = vpr_events.trace_events(alt_l2=True)
        assert alt.read_misses == vpr_events.read_misses_big_l2
        assert alt.allocate_misses == vpr_events.allocate_misses_big_l2

    def test_alt_l2_rejects_snc_events(self, vpr_events):
        """SNC counts come from the baseline L2's miss stream; pairing
        them with the 384KB L2's misses would be physically inconsistent
        and must be refused, not silently priced."""
        with pytest.raises(Exception, match="baseline L2"):
            vpr_events.trace_events("lru64", alt_l2=True)

"""The stable ``repro.eval.api`` facade: exports, figure selection, and
the rule that benchmarks/examples consume the harness only through it.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

from repro.eval import api
from repro.eval.pipeline import SimulationScale

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_every_advertised_name_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_run_figures_accepts_all_id_spellings():
    """'figure5', '5' and 5 select the same figure (no simulation here —
    only the id-normalization path, via the rejection branch)."""
    for bad in ("figure99", "99", 99, "fig5"):
        with pytest.raises(KeyError, match="unknown figure"):
            api.run_figures([bad], scale=SimulationScale(1, 1))


def test_record_and_price_batch_compose(tmp_path):
    """The facade's phase-1/phase-2 pieces fit together: record a task's
    stream, batch-price it, and match the per-event reference method."""
    scale = SimulationScale(warmup_refs=12_000, measure_refs=16_000)
    task = api.SimulationTask(
        workload="art",
        snc_configs=(api.standard_snc_specs()["lru64"],),
        scale=scale,
    )
    recording = api.record(api.record_task_for(task))
    store = api.TraceStore(tmp_path)
    store.put(api.record_task_for(task), recording)
    restored = store.get(api.record_task_for(task))
    [batched] = api.price_batch([task], restored)
    configs = {"lru64": api.standard_snc_specs()["lru64"].to_config()}
    assert batched == restored.replay(configs)


def _eval_imports(path: pathlib.Path) -> set[str]:
    modules = set()
    for node in ast.walk(ast.parse(path.read_text())):
        if isinstance(node, ast.ImportFrom) and node.module:
            modules.add(node.module)
        elif isinstance(node, ast.Import):
            modules.update(alias.name for alias in node.names)
    return {m for m in modules if m.startswith("repro.eval")}


@pytest.mark.parametrize("path", sorted(
    list(REPO.glob("benchmarks/*.py"))
    + [REPO / "examples" / "snc_design_space.py"],
), ids=lambda path: path.name)
def test_benchmarks_and_examples_import_only_the_facade(path):
    """Deep imports of eval internals from benchmarks/examples are what
    the facade exists to end; only ``repro.eval.api`` is allowed."""
    deep = _eval_imports(path) - {"repro.eval.api"}
    assert not deep, f"{path.name} imports eval internals: {sorted(deep)}"

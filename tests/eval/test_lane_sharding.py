"""Tests for lane-sharded batch pricing: the shard planner, the member
splitter, partial-events merging, scheduler-level byte parity across
backends / job counts / forced shard shapes, crash-mid-shard recovery,
and the shard lines in the stats summaries."""

import json
import random

import pytest

from repro.eval import pool as pool_mod
from repro.eval.cache import events_to_dict
from repro.eval.experiments import scenario_jobs
from repro.eval.jobs import (
    ExperimentJob,
    IntegrityModelSpec,
    SNCSpec,
    execute_record,
    merge_jobs,
    merge_scenario_jobs,
    merge_shard_events,
    price_batch,
    record_task_for,
    task_lanes,
    total_lane_count,
)
from repro.eval.pipeline import SimulationScale
from repro.eval.pool import pool_stats, shutdown_worker_pool
from repro.eval.report import format_pool_stats, format_trace_stats
from repro.eval.scheduler import (
    BACKENDS,
    MIN_SHARD_LANES,
    _lane_shard_limit,
    _shard_members,
    plan_lane_shards,
    run_tasks,
)
from repro.eval.trace_store import TraceStore

_SCALE = SimulationScale(warmup_refs=20_000, measure_refs=20_000)


def _sweep_tasks(n_configs=6, workload="equake", integrity=False,
                 scale=_SCALE):
    """One merged single-workload task with ``n_configs`` SNC lanes
    (power-of-two entry counts) and optionally one integrity lane."""
    specs = tuple(
        SNCSpec(key=f"lru{kb}e{eb}", size_bytes=kb * 1024, entry_bytes=eb)
        for kb in (4, 8, 16, 32) for eb in (2, 4)
    )[:n_configs]
    integ = ((IntegrityModelSpec(key="mac16", provider="mac"),)
             if integrity else ())
    job = ExperimentJob(figure="shard-test", schemes=("otp",),
                        workload=workload, snc_configs=specs,
                        scale=scale, integrity=integ)
    return merge_jobs([job])


def _digest(results):
    return json.dumps([events_to_dict(r.events) for r in results])


@pytest.fixture(autouse=True)
def _fresh_global_pool():
    shutdown_worker_pool()
    yield
    shutdown_worker_pool()


class TestPlanLaneShards:
    def test_single_group_takes_all_workers(self):
        assert plan_lane_shards([16], 4) == [4]

    def test_spare_workers_dealt_to_biggest_group(self):
        assert plan_lane_shards([6, 6, 6], 4) == [2, 1, 1]
        assert plan_lane_shards([4, 2], 4) == [2, 1]

    def test_groups_covering_workers_stay_whole(self):
        assert plan_lane_shards([8, 8, 8, 8], 4) == [1, 1, 1, 1]
        assert plan_lane_shards([8, 8], 2) == [1, 1]

    def test_serial_never_shards(self):
        assert plan_lane_shards([16], 1) == [1]

    def test_min_lanes_per_shard_respected(self):
        # A split must leave MIN_SHARD_LANES lanes in every shard.
        assert plan_lane_shards([MIN_SHARD_LANES], 4) == [1]
        assert plan_lane_shards([2 * MIN_SHARD_LANES - 1], 4) == [1]
        assert plan_lane_shards([2 * MIN_SHARD_LANES], 4) == [2]

    def test_limit_caps_every_group(self):
        assert plan_lane_shards([16], 4, limit=1) == [1]
        assert plan_lane_shards([16], 8, limit=3) == [3]

    def test_empty_plan(self):
        assert plan_lane_shards([], 4) == []


class TestLaneShardLimit:
    @pytest.mark.parametrize("raw,expected", [
        ("", None), ("auto", None), ("AUTO", None),
        ("off", 1), ("0", 1), ("no", 1),
        ("3", 3), ("1", 1), ("-2", 1),
        ("banana", None),
    ])
    def test_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_LANE_SHARDS", raw)
        assert _lane_shard_limit() == expected

    def test_unset_means_adaptive(self, monkeypatch):
        monkeypatch.delenv("REPRO_LANE_SHARDS", raising=False)
        assert _lane_shard_limit() is None


class TestShardMembers:
    def test_one_shard_degenerates_to_unsharded_item(self):
        members = list(enumerate(_sweep_tasks(4)))
        [shard] = _shard_members(members, 1)
        assert shard == [(0, members[0][1], None)]

    def test_non_divisor_chunks_balanced_within_one_lane(self):
        task = _sweep_tasks(5)[0]
        shards = _shard_members([(0, task)], 2)
        sizes = [len(shards[0][0][2]), len(shards[1][0][2])]
        assert sizes == [2, 3]
        # Contiguous, in canonical order, covering every lane once.
        recovered = shards[0][0][2] + shards[1][0][2]
        assert recovered == task_lanes(task)

    def test_full_coverage_collapses_to_none(self):
        # Two 3-lane tasks into 2 shards: each shard holds one whole
        # task, so both items carry lane_keys=None (the cheap spelling
        # price_batch treats as "everything").
        tasks = (_sweep_tasks(3, workload="equake")
                 + _sweep_tasks(3, workload="art"))
        shards = _shard_members(list(enumerate(tasks)), 2)
        assert shards == [[(0, tasks[0], None)], [(1, tasks[1], None)]]

    def test_task_spanning_a_boundary_splits_its_lanes(self):
        tasks = (_sweep_tasks(4, workload="equake")
                 + _sweep_tasks(2, workload="art"))
        shards = _shard_members(list(enumerate(tasks)), 3)
        assert shards[0] == [(0, tasks[0], task_lanes(tasks[0])[:2])]
        assert shards[1] == [(0, tasks[0], task_lanes(tasks[0])[2:])]
        assert shards[2] == [(1, tasks[1], None)]

    def test_lane_less_task_priced_exactly_once(self):
        # A task with no SNC configs and no integrity still has
        # non-lane events; it must land in exactly one shard, as a
        # full (lane_keys=None) member.
        bare = merge_jobs([ExperimentJob(
            figure="shard-test", schemes=("baseline",), workload="art",
            snc_configs=(), scale=_SCALE,
        )])[0]
        assert task_lanes(bare) == ()
        laned = _sweep_tasks(4)[0]
        shards = _shard_members([(0, bare), (1, laned)], 2)
        placements = [
            (index, keys)
            for shard in shards
            for index, _task, keys in shard if index == 0
        ]
        assert placements == [(0, None)]

    def test_integrity_lanes_ride_the_same_flattening(self):
        task = _sweep_tasks(3, integrity=True)[0]
        lanes = task_lanes(task)
        assert ("integrity", "mac16") in lanes
        assert total_lane_count([task]) == 4
        shards = _shard_members([(0, task)], 2)
        recovered = [lane for shard in shards
                     for _i, _t, keys in shard for lane in keys]
        assert recovered == list(lanes)


class TestMergeShardEvents:
    @pytest.fixture(scope="class")
    def task_and_recording(self):
        [task] = _sweep_tasks(6, integrity=True)
        return task, execute_record(record_task_for(task))

    def test_merged_partials_match_the_one_pass(self, task_and_recording):
        task, recording = task_and_recording
        [full] = price_batch([task], recording)
        lanes = task_lanes(task)
        partials = [
            price_batch([task], recording, lanes=[chunk])[0]
            for chunk in (lanes[:3], lanes[3:])
        ]
        merged = merge_shard_events(task, partials)
        assert json.dumps(events_to_dict(merged)) == json.dumps(
            events_to_dict(full)
        )

    def test_randomized_shard_shapes(self, task_and_recording):
        task, recording = task_and_recording
        [full] = price_batch([task], recording)
        expected = json.dumps(events_to_dict(full))
        lanes = task_lanes(task)
        rng = random.Random(20030100)
        for _ in range(5):
            n_shards = rng.randint(1, len(lanes))
            cuts = sorted(
                rng.sample(range(1, len(lanes)), n_shards - 1)
            )
            bounds = [0, *cuts, len(lanes)]
            partials = [
                price_batch([task], recording,
                            lanes=[lanes[lo:hi]])[0]
                for lo, hi in zip(bounds, bounds[1:])
            ]
            merged = merge_shard_events(task, partials)
            assert json.dumps(events_to_dict(merged)) == expected

    def test_missing_lane_is_an_error(self, task_and_recording):
        task, recording = task_and_recording
        lanes = task_lanes(task)
        partial = price_batch([task], recording, lanes=[lanes[:2]])[0]
        with pytest.raises(KeyError):
            merge_shard_events(task, [partial])


class TestSchedulerParity:
    @pytest.fixture(scope="class")
    def inline_digest(self):
        return _digest(run_tasks(_sweep_tasks(6), n_jobs=1,
                                 backend="replay"))

    def test_sharded_run_byte_identical_and_counted(self, tmp_path,
                                                    inline_digest):
        store = TraceStore(tmp_path)
        tasks = _sweep_tasks(8)
        shards_before = pool_stats().lane_shards
        results = run_tasks(tasks, n_jobs=4, backend="replay",
                            pool="persistent", trace_store=store)
        assert _digest(results) == _digest(
            run_tasks(tasks, n_jobs=1, backend="replay")
        )
        assert pool_stats().lane_shards - shards_before == 4
        assert pool_stats().shard_seconds > 0
        assert store.price_passes == 1
        assert store.price_shards == 4

    def test_forced_shard_counts_stay_byte_identical(self, monkeypatch,
                                                     tmp_path,
                                                     inline_digest):
        tasks = _sweep_tasks(6)
        for forced, expected in (("off", 0), ("3", 3)):
            monkeypatch.setenv("REPRO_LANE_SHARDS", forced)
            store = TraceStore(tmp_path / forced)
            before = pool_stats().lane_shards
            results = run_tasks(tasks, n_jobs=4, backend="replay",
                                pool="persistent", trace_store=store)
            assert _digest(results) == inline_digest
            assert pool_stats().lane_shards - before == expected

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_every_job_count(self, backend,
                                           inline_digest):
        # The acceptance bar: fused / replay / replay-perevent at
        # --jobs 1, 2 and 4 all serialize byte-identically — only
        # the replay backend shards, the others must simply not care.
        tasks = _sweep_tasks(6)
        for n_jobs in (1, 2, 4):
            results = run_tasks(tasks, n_jobs=n_jobs, backend=backend,
                                pool="persistent")
            assert _digest(results) == inline_digest, (
                f"{backend} diverged at n_jobs={n_jobs}"
            )

    def test_scenario_tasks_shard_too(self):
        # FLUSH and TAG share one recording (the record pass is
        # configuration-independent), so at --jobs 4 the single group
        # lane-shards across the strategies' tasks.
        jobs = scenario_jobs(("art", "vpr"), quantum=2000,
                             snc_keys=("lru32", "lru64"), scale=_SCALE)
        tasks = merge_scenario_jobs(jobs)
        assert len(tasks) == 2  # one per strategy
        # Two schemes x two geometries per task: eight lanes in all.
        assert total_lane_count(tasks) == 8
        expected = _digest(run_tasks(tasks, n_jobs=1, backend="replay"))
        shards_before = pool_stats().lane_shards
        results = run_tasks(tasks, n_jobs=4, backend="replay",
                            pool="persistent")
        assert _digest(results) == expected
        assert pool_stats().lane_shards - shards_before == 4


class TestCrashMidShard:
    def test_dead_workers_shard_repriced_alone(self, monkeypatch,
                                               tmp_path):
        """Kill the worker pricing shard 1 of group 0: only that shard
        is retried (inline, after a respawn), and the merged tables
        are still byte-identical."""
        tasks = _sweep_tasks(8)
        expected = _digest(run_tasks(tasks, n_jobs=1, backend="replay",
                                     trace_store=TraceStore(tmp_path)))
        shutdown_worker_pool()  # workers must spawn with the env set
        monkeypatch.setenv("_REPRO_SHARD_CRASH", "0:1")
        stats = pool_stats()
        respawned = stats.workers_respawned
        retried = stats.tasks_retried
        results = run_tasks(tasks, n_jobs=4, backend="replay",
                            pool="persistent",
                            trace_store=TraceStore(tmp_path))
        assert _digest(results) == expected
        assert stats.workers_respawned - respawned == 1
        assert stats.tasks_retried - retried == 1


class TestStatsWording:
    def test_pool_line_reports_shards(self):
        stats = pool_mod.PoolStats(workers_spawned=4,
                                   tasks_dispatched=4,
                                   shm_shipments=1, shm_bytes=1_000_000,
                                   lane_shards=4, shard_seconds=1.0)
        line = format_pool_stats(stats)
        assert "4 lane shards priced (0.25s/shard)" in line

    def test_pool_line_silent_without_shards(self):
        stats = pool_mod.PoolStats(workers_spawned=2,
                                   tasks_dispatched=3)
        assert "lane shard" not in format_pool_stats(stats)

    def test_trace_line_reports_shard_passes(self, tmp_path):
        store = TraceStore(tmp_path)
        store.note_priced(3, 0.9, shards=4)
        line = format_trace_stats(store)
        assert "3 tasks batch-priced in 4 shards (0.9s)" in line
        assert "replay-priced" not in line

    def test_trace_line_keeps_old_wording_unsharded(self, tmp_path):
        store = TraceStore(tmp_path)
        store.note_priced(2, 0.5, shards=1)
        store.note_priced(1, 0.2)  # per-event replays count no pass
        line = format_trace_stats(store)
        assert "3 tasks replay-priced (0.7s)" in line
        assert "shards" not in line

"""Daemon shutdown leaves nothing behind: the ``shutdown`` request and
SIGTERM both drain in-flight work, stop the worker pool, and unlink
every cached ``/dev/shm`` recording segment (the ``repro_pool_<pid>_*``
``RPRW`` shipments).

These tests run the real ``python -m repro.eval serve`` subprocess so
the assertions cover the whole exit path — atexit, signal handlers,
worker reaping — not just the in-process object teardown.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.eval.client import EvalClient
from repro.eval.jobs import SNCSpec, SimulationTask, task_to_wire
from repro.eval.pipeline import SimulationScale

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SHM_DIR = Path("/dev/shm")

SCALE = SimulationScale(warmup_refs=8_000, measure_refs=8_000)
WORKLOADS = ("art", "vpr", "gzip")


def tiny_tasks() -> list[SimulationTask]:
    return [
        SimulationTask(workload=workload,
                       snc_configs=(SNCSpec(key="lru64"),),
                       scale=SCALE)
        for workload in WORKLOADS
    ]


def start_daemon(tmp_path) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.eval", "serve", "--port", "0",
         "--jobs", "2", "--backend", "replay",
         "--cache-dir", str(tmp_path / "cache"),
         "--trace-cache-dir", str(tmp_path / "traces")],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.time() + 60
    address = None
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        if "listening on" in line:
            address = line.split("listening on ")[1].split()[0]
            break
    if address is None:
        proc.kill()
        raise RuntimeError("daemon never announced its address")
    return proc, address


def run_batch_and_snapshot(address: str) -> dict:
    """Submit a parallel batch and return the daemon's stats frame —
    worker pids and pool counters included."""
    with EvalClient(address) as client:
        results = client.run_tasks(tiny_tasks())
        assert len(results) == len(WORKLOADS)
        return client.stats()


def leaked_segments(pid: int) -> list[str]:
    if not SHM_DIR.exists():  # non-Linux: nothing to scan
        return []
    return sorted(
        path.name for path in SHM_DIR.glob(f"repro_pool_{pid}_*")
    )


def workers_alive(pids: list[int]) -> list[int]:
    alive = []
    for pid in pids:
        try:
            os.kill(pid, 0)
        except (ProcessLookupError, PermissionError):
            continue
        alive.append(pid)
    return alive


def wait_workers_dead(pids: list[int], timeout: float = 10.0) -> list[int]:
    deadline = time.time() + timeout
    while time.time() < deadline:
        alive = workers_alive(pids)
        if not alive:
            return []
        time.sleep(0.05)
    return workers_alive(pids)


def assert_clean_exit(proc: subprocess.Popen, stats: dict) -> None:
    pid = stats["pid"]
    worker_pids = stats["worker_pids"]
    # The batch really exercised the machinery being torn down.
    assert worker_pids, "parallel batch never spawned pool workers"
    assert stats["pool_counters"]["shm_shipments"] >= 1
    assert proc.wait(timeout=30) == 0
    assert leaked_segments(pid) == []
    assert wait_workers_dead(worker_pids) == []


@pytest.mark.skipif(sys.platform != "linux",
                    reason="/dev/shm and SIGTERM semantics are "
                           "asserted on Linux")
class TestShutdownCleanliness:
    def test_shutdown_request_drains_and_unlinks(self, tmp_path):
        proc, address = start_daemon(tmp_path)
        try:
            stats = run_batch_and_snapshot(address)
            # The warm pool holds its shipment segments while alive.
            assert leaked_segments(stats["pid"]), (
                "expected live shm shipments before shutdown — the "
                "leak assertion below would be vacuous"
            )
            with EvalClient(address) as client:
                reply = client.shutdown()
            assert reply["ok"] is True
            assert reply["tasks_executed"] == len(WORKLOADS)
            assert_clean_exit(proc, stats)
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_sigterm_drains_and_unlinks(self, tmp_path):
        proc, address = start_daemon(tmp_path)
        try:
            stats = run_batch_and_snapshot(address)
            proc.send_signal(signal.SIGTERM)
            assert_clean_exit(proc, stats)
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_shutdown_waits_for_inflight_submit(self, tmp_path):
        """A shutdown racing an in-flight submit drains it first: the
        submitter still gets its full result frame."""
        proc, address = start_daemon(tmp_path)
        try:
            host, _, port = address.rpartition(":")
            sock = socket.create_connection((host, int(port)),
                                            timeout=30)
            stream = sock.makefile("rb")
            frame = {"type": "submit", "id": "racer",
                     "tasks": [task_to_wire(task)
                               for task in tiny_tasks()]}
            sock.sendall(json.dumps(frame).encode() + b"\n")
            time.sleep(0.1)
            proc.send_signal(signal.SIGTERM)
            frames = []
            while True:
                line = stream.readline()
                if not line:
                    break
                frames.append(json.loads(line))
                if frames[-1]["type"] in ("result", "error"):
                    break
            sock.close()
            assert frames and frames[-1]["type"] == "result"
            assert len(frames[-1]["results"]) == len(WORKLOADS)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

"""Concurrent clients against one serve daemon: cross-client
single-flight dedupe, byte-identical results for every subscriber, and
shared work surviving a subscriber's disconnect.

The daemon runs on a background thread; the hammer clients are real
asyncio connections speaking the wire protocol directly, so the
concurrency under test is the protocol's, not a client library's.  The
``_REPRO_SERVE_STALL`` test knob delays batch execution long enough
that every late submitter deterministically *joins* the first
submitter's in-flight tasks instead of racing past them.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time

from repro.eval.cache import events_to_dict
from repro.eval.client import EvalClient
from repro.eval.jobs import SNCSpec, SimulationTask, task_to_wire
from repro.eval.pipeline import SimulationScale
from repro.eval.server import start_server_thread

#: Small enough to execute in well under a second each, big enough to
#: clear every chosen workload's initialization phase.
SCALE = SimulationScale(warmup_refs=8_000, measure_refs=8_000)
WORKLOADS = ("art", "vpr", "gzip", "mesa")


def tiny_task(workload: str) -> SimulationTask:
    return SimulationTask(
        workload=workload,
        snc_configs=(SNCSpec(key="lru64"),),
        scale=SCALE,
    )


async def submit_frames(port: int, tasks, rid: str) -> dict:
    """One asyncio client: submit, collect frames, return the final
    one (``result`` or ``error``) plus the progress count."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        frame = {"type": "submit", "id": rid,
                 "tasks": [task_to_wire(task) for task in tasks]}
        writer.write(json.dumps(frame).encode() + b"\n")
        await writer.drain()
        progress = 0
        while True:
            reply = json.loads(await reader.readline())
            if reply["type"] == "progress":
                progress += 1
                continue
            reply["progress_frames"] = progress
            return reply
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestSingleFlight:
    def test_hammer_overlapping_job_sets(self, monkeypatch):
        """Five concurrent clients, overlapping task sets: the daemon
        executes each distinct task exactly once and every subscriber
        gets byte-identical events."""
        monkeypatch.setenv("_REPRO_SERVE_STALL", "0.5")
        tasks = [tiny_task(workload) for workload in WORKLOADS]
        # Overlapping subsets: every client wants art; the rest varies.
        job_sets = [
            tasks,
            tasks[:2],
            [tasks[0], tasks[2]],
            [tasks[0], tasks[3], tasks[1]],
            list(reversed(tasks)),
        ]
        with start_server_thread(n_jobs=1, backend="fused") as handle:
            port = handle.server.port

            async def hammer():
                return await asyncio.gather(*(
                    submit_frames(port, job_set, f"client{i}")
                    for i, job_set in enumerate(job_sets)
                ))

            replies = asyncio.run(hammer())
            with EvalClient(handle.address) as client:
                stats = client.stats()

        # Single-flight: executed count == distinct tasks, everything
        # else joined an in-flight run (the stall guarantees no client
        # found the LRU already warm).
        assert stats["tasks_executed"] == len(tasks)
        assert stats["tasks_requested"] == sum(map(len, job_sets))
        assert stats["tasks_joined"] == (
            stats["tasks_requested"] - stats["tasks_executed"]
        )
        total_counts = {"executed": 0, "hot": 0, "joined": 0}
        by_workload: dict[str, list] = {}
        for reply, job_set in zip(replies, job_sets):
            assert reply["type"] == "result", reply
            assert len(reply["results"]) == len(job_set)
            # One progress frame per task, streamed before the result.
            assert reply["progress_frames"] == len(job_set)
            for key in total_counts:
                total_counts[key] += reply["counts"][key]
            for task, entry in zip(job_set, reply["results"]):
                by_workload.setdefault(task.workload, []).append(
                    entry["events"]
                )
        assert total_counts["executed"] == len(tasks)
        assert total_counts["hot"] == 0
        # Byte-identical across subscribers: every client's copy of a
        # workload's events serializes to the same dict.
        for workload, copies in by_workload.items():
            assert len(copies) >= 2, workload
            assert all(copy == copies[0] for copy in copies), workload

    def test_results_match_local_execution(self, monkeypatch):
        """What the subscribers got is exactly what a local run
        produces — dedupe never substitutes stale or foreign events."""
        from repro.eval.jobs import execute_task

        task = tiny_task("art")
        with start_server_thread(n_jobs=1, backend="fused") as handle:
            with EvalClient(handle.address) as client:
                (result,) = client.run_tasks([task])
        assert (events_to_dict(result.events)
                == events_to_dict(execute_task(task)))


class TestDisconnects:
    def test_disconnect_mid_stream_keeps_shared_task(self, monkeypatch):
        """A subscriber hanging up mid-request must not cancel the
        task for the surviving subscribers."""
        monkeypatch.setenv("_REPRO_SERVE_STALL", "0.5")
        tasks = [tiny_task("art"), tiny_task("vpr")]
        with start_server_thread(n_jobs=1, backend="fused") as handle:
            survivor_results = []
            errors = []

            def survivor():
                try:
                    with EvalClient(handle.address) as client:
                        survivor_results.extend(
                            client.run_tasks(tasks)
                        )
                except Exception as err:  # surfaced by the assert below
                    errors.append(err)

            thread = threading.Thread(target=survivor)
            thread.start()
            # Give the survivor time to enqueue, then subscribe to the
            # same tasks and hang up before any result arrives.
            time.sleep(0.15)
            sock = socket.create_connection(
                ("127.0.0.1", handle.server.port), timeout=10
            )
            frame = {"type": "submit", "id": "quitter",
                     "tasks": [task_to_wire(task) for task in tasks]}
            sock.sendall(json.dumps(frame).encode() + b"\n")
            sock.close()

            thread.join(timeout=30)
            assert not thread.is_alive()
            assert not errors, errors
            assert len(survivor_results) == len(tasks)
            # The shared run completed once; the quitter's tasks joined
            # it rather than spawning (or cancelling) anything.
            with EvalClient(handle.address) as client:
                stats = client.stats()
                assert stats["tasks_executed"] == len(tasks)
                assert stats["tasks_joined"] == len(tasks)
                assert stats["inflight"] == 0
                # And the daemon still serves: a fresh submit resolves
                # from the now-warm LRU.
                rerun = client.run_tasks(tasks)
            assert client.last_request["counts"]["hot"] == len(tasks)
            for fresh, original in zip(rerun, survivor_results):
                assert (events_to_dict(fresh.events)
                        == events_to_dict(original.events))


class TestServerStatsLine:
    def test_dedupe_visible_in_stats_line(self, monkeypatch):
        """The runner/CI-facing summary line carries the single-flight
        evidence (CI greps the joined count on the two-client smoke)."""
        from repro.eval.report import format_server_stats

        monkeypatch.setenv("_REPRO_SERVE_STALL", "0.3")
        tasks = [tiny_task("art")]
        with start_server_thread(n_jobs=1, backend="fused") as handle:
            port = handle.server.port

            async def two_clients():
                return await asyncio.gather(
                    submit_frames(port, tasks, "a"),
                    submit_frames(port, tasks, "b"),
                )

            replies = asyncio.run(two_clients())
            with EvalClient(handle.address) as client:
                line = format_server_stats(client.stats())
        assert all(reply["type"] == "result" for reply in replies)
        assert "1 executed" in line
        assert "1 joined in flight" in line

"""Tests for the multiprocessing scheduler: ordering, parity, caching."""

import pytest

from repro.eval.cache import ResultCache
from repro.eval.jobs import ExperimentJob, standard_snc_specs
from repro.eval.pipeline import SimulationScale
from repro.eval.scheduler import BACKENDS, run_jobs, run_tasks
from repro.eval.trace_store import TraceStore
from repro.eval.jobs import merge_jobs

_SCALE = SimulationScale(warmup_refs=20_000, measure_refs=20_000)
_WORKLOADS = ("art", "vpr", "equake")


def _jobs(scale=_SCALE, seed=1):
    specs = (standard_snc_specs()["lru64"],)
    return [
        ExperimentJob(figure="figure5", schemes=("otp",), workload=name,
                      snc_configs=specs, scale=scale, seed=seed)
        for name in _WORKLOADS
    ]


@pytest.fixture(scope="module")
def serial_results():
    return run_tasks(merge_jobs(_jobs()), n_jobs=1)


class TestOrdering:
    def test_serial_results_follow_task_order(self, serial_results):
        assert [result.task.workload for result in serial_results] == list(
            _WORKLOADS
        )

    def test_parallel_results_follow_task_order(self, serial_results):
        """Fan-out completes out of order; collection must not."""
        parallel = run_tasks(merge_jobs(_jobs()), n_jobs=2)
        assert [result.task.workload for result in parallel] == list(
            _WORKLOADS
        )


class TestParity:
    def test_parallel_matches_serial_exactly(self, serial_results):
        """--jobs N must be bit-identical to --jobs 1: the simulations are
        seeded and share nothing, so events must compare equal field by
        field."""
        parallel = run_tasks(merge_jobs(_jobs()), n_jobs=2)
        for serial, fanned in zip(serial_results, parallel):
            assert serial.task == fanned.task
            assert serial.events == fanned.events

    def test_run_jobs_indexes_by_workload(self):
        events = run_jobs(_jobs(), n_jobs=1)
        assert set(events) == set(_WORKLOADS)
        assert all(events[name].name == name for name in _WORKLOADS)

    def test_run_jobs_rejects_ambiguous_workload_mapping(self):
        """Two scales for one workload would silently collapse in the
        {workload: events} dict — must be rejected instead."""
        other = SimulationScale(warmup_refs=21_000, measure_refs=20_000)
        with pytest.raises(ValueError, match="one task per workload"):
            run_jobs(_jobs() + _jobs(scale=other))


class TestCaching:
    def test_warm_cache_simulates_nothing(self, tmp_path, serial_results):
        cache = ResultCache(tmp_path)
        first = run_tasks(merge_jobs(_jobs()), n_jobs=1, cache=cache)
        assert all(not result.cached for result in first)
        second = run_tasks(merge_jobs(_jobs()), n_jobs=1, cache=cache)
        assert all(result.cached for result in second)
        for cold, warm in zip(first, second):
            assert cold.events == warm.events

    def test_partial_cache_runs_only_the_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = _jobs()
        run_tasks(merge_jobs(jobs[:2]), n_jobs=1, cache=cache)
        results = run_tasks(merge_jobs(jobs), n_jobs=1, cache=cache)
        assert [result.cached for result in results] == [True, True, False]

    def test_parallel_run_populates_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_tasks(merge_jobs(_jobs()), n_jobs=2, cache=cache)
        again = run_tasks(merge_jobs(_jobs()), n_jobs=1, cache=cache)
        assert all(result.cached for result in again)


class TestProgress:
    def test_one_line_per_task_with_timing_or_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        lines: list[str] = []
        run_tasks(merge_jobs(_jobs()), n_jobs=1, cache=cache,
                  progress=lines.append)
        assert len(lines) == len(_WORKLOADS)
        assert all("simulated in" in line for line in lines)
        lines.clear()
        run_tasks(merge_jobs(_jobs()), n_jobs=1, cache=cache,
                  progress=lines.append)
        assert all(line.endswith("cached") for line in lines)

    def test_rejects_nonpositive_n_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            run_tasks([], n_jobs=0)


class TestReplayBackends:
    """The batch-priced default and the per-event bisection backend."""

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_tasks([], backend="repla")

    def test_backends_tuple_names_all_three(self):
        assert BACKENDS == ("fused", "replay", "replay-perevent")

    def test_batch_backend_matches_fused(self, serial_results):
        results = run_tasks(merge_jobs(_jobs()), n_jobs=1,
                            backend="replay")
        assert [r.events for r in results] == [
            r.events for r in serial_results
        ]

    def test_perevent_backend_matches_fused(self, serial_results):
        results = run_tasks(merge_jobs(_jobs()), n_jobs=1,
                            backend="replay-perevent")
        assert [r.events for r in results] == [
            r.events for r in serial_results
        ]

    def test_one_batch_pass_per_recording(self, tmp_path):
        """A multi-config sweep sharing one workload must price as ONE
        batch group — the progress log shows exactly one '[batch'
        line per distinct recording, tasks fan out within it."""
        specs = standard_snc_specs()
        jobs = []
        for keys in (("lru32", "lru64"), ("lru128", "norepl64")):
            jobs.extend(
                ExperimentJob(figure="figure6", schemes=("otp",),
                              workload=name,
                              snc_configs=tuple(specs[k] for k in keys),
                              scale=_SCALE)
                for name in ("art", "vpr")
            )
        tasks = merge_jobs(jobs)
        assert len(tasks) == 2  # one merged task per workload
        lines: list[str] = []
        results = run_tasks(tasks, backend="replay",
                            trace_store=TraceStore(tmp_path),
                            progress=lines.append)
        batch_lines = [line for line in lines if "[batch" in line]
        assert len(batch_lines) == 2  # one per recording, not per task
        assert all("batch-priced" in line for line in batch_lines)
        fused = run_tasks(tasks, backend="fused")
        assert [r.events for r in results] == [
            r.events for r in fused
        ]

"""Tests for the per-figure experiment drivers and reporting.

These run at a reduced scale, so they assert *structural* facts (series
present, paper data wired correctly, pricing identities) rather than the
full-scale shape targets, which live in ``benchmarks/``.
"""

import pytest

from repro.eval import paper_data
from repro.eval.experiments import (
    ALL_FIGURES,
    PAPER_LATENCIES,
    SLOW_CRYPTO_LATENCIES,
    figure3,
    figure5,
    figure8,
    figure9,
    figure10,
    run_all_benchmarks,
)
from repro.eval.pipeline import SimulationScale
from repro.eval.report import format_figure, format_summary

_SCALE = SimulationScale(warmup_refs=60_000, measure_refs=60_000)


@pytest.fixture(scope="module")
def events():
    return run_all_benchmarks(scale=_SCALE)


class TestPaperData:
    def test_figure3_average(self):
        values = list(paper_data.FIGURE3_XOM.values())
        assert sum(values) / len(values) == pytest.approx(16.76, abs=0.01)

    def test_figure5_lru_average(self):
        values = list(paper_data.FIGURE5_SNC_LRU.values())
        assert sum(values) / len(values) == pytest.approx(1.28, abs=0.01)

    def test_all_tables_cover_all_benchmarks(self):
        for table in (
            paper_data.FIGURE3_XOM,
            paper_data.FIGURE5_SNC_NOREPL,
            paper_data.FIGURE6_SNC_32KB,
            paper_data.FIGURE7_32WAY,
            paper_data.FIGURE8_XOM_384K,
            paper_data.FIGURE9_TRAFFIC,
            paper_data.FIGURE10_SNC_LRU,
        ):
            assert set(table) == set(paper_data.BENCHMARK_ORDER)

    def test_figure10_is_figure3_scaled(self):
        """The internal-consistency observation our timing model builds
        on: the paper's Figure 10 XOM column is Figure 3 times 102/50."""
        for name in paper_data.BENCHMARK_ORDER:
            ratio = (
                paper_data.FIGURE10_XOM[name] / paper_data.FIGURE3_XOM[name]
            )
            assert ratio == pytest.approx(102 / 50, rel=0.05), name


class TestLatencyConfigs:
    def test_paper_values(self):
        assert PAPER_LATENCIES.memory == 100
        assert PAPER_LATENCIES.crypto == 50
        assert SLOW_CRYPTO_LATENCIES.crypto == 102


@pytest.mark.slow
class TestFigureDrivers:
    def test_figure3_is_the_calibration_anchor(self, events):
        result = figure3(events)
        series = result.series_by_label("XOM")
        for name, value in series.paper.items():
            assert series.measured[name] == pytest.approx(value, abs=0.05)

    def test_figure5_series_and_ordering(self, events):
        result = figure5(events)
        labels = [series.label for series in result.series]
        assert labels == ["XOM", "SNC-NoRepl", "SNC-LRU"]
        lru = result.series_by_label("SNC-LRU")
        xom = result.series_by_label("XOM")
        for name in lru.measured:
            assert lru.measured[name] <= xom.measured[name] + 0.01

    def test_figure8_normalized_time_identity(self, events):
        """XOM-256K normalized time must equal 1 + figure3 slowdown."""
        fig8 = figure8(events)
        fig3 = figure3(events)
        xom256 = fig8.series_by_label("XOM-256KL2")
        for name, slowdown in fig3.series_by_label("XOM").measured.items():
            assert xom256.measured[name] == pytest.approx(
                1 + slowdown / 100, abs=1e-6
            )

    def test_figure9_non_negative(self, events):
        result = figure9(events)
        for value in result.series_by_label("traffic").measured.values():
            assert value >= 0.0

    def test_figure10_xom_scales_from_figure3(self, events):
        fig10 = figure10(events)
        fig3 = figure3(events)
        for name, base in fig3.series_by_label("XOM").measured.items():
            scaled = fig10.series_by_label("XOM").measured[name]
            assert scaled == pytest.approx(base * 102 / 50, rel=0.01)

    def test_all_figures_run(self, events):
        for figure in ALL_FIGURES:
            result = figure(events)
            assert result.series
            for series in result.series:
                assert set(series.measured) == set(
                    paper_data.BENCHMARK_ORDER
                )


@pytest.mark.slow
class TestReport:
    def test_format_figure_contains_all_rows(self, events):
        text = format_figure(figure5(events))
        for name in paper_data.BENCHMARK_ORDER:
            assert name in text
        assert "average" in text
        assert "paper" in text

    def test_format_summary_headlines(self, events):
        results = [figure5(events), figure10(events)]
        text = format_summary(results)
        assert "XOM" in text
        assert "SNC-LRU" in text
        assert "16.76" in text

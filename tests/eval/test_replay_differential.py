"""Differential suite: the replay backend vs the fused reference.

The record/replay engine (:mod:`repro.eval.record`) must be *count-exact*
against the fused single-pass loops in :mod:`repro.eval.pipeline` — the
paper tables are required to come out byte-identical from either backend.
These tests pin that with randomized configurations: benchmarks, trace
scales, L2 geometries, SNC geometries, registered schemes, integrity
specs, multi-task mixes and both §4.3 switch strategies, asserting every
:class:`~repro.timing.model.SNCEventCounts` and
:class:`~repro.secure.integrity.IntegrityEventCounts` field (and every
aggregate on :class:`~repro.eval.pipeline.BenchmarkEvents`) matches.

Every replay goes through a serialize/deserialize round trip
(:mod:`repro.eval.trace_store` wire format) first, so the differential
also covers what a pool worker or a warm store actually replays.
"""

from __future__ import annotations

import random
from dataclasses import fields

import pytest

from repro.errors import ConfigurationError
from repro.eval.pipeline import (
    SimulationScale,
    simulate_benchmark,
    simulate_scenario,
    standard_snc_configs,
)
from repro.eval.record import (
    ReplayRequest,
    record_source,
    replay_benchmark,
    replay_scenario,
)
from repro.eval.trace_store import recording_from_bytes, recording_to_bytes
from repro.secure.integrity import IntegrityConfig
from repro.secure.snc import SNCConfig, SNCPolicy
from repro.secure.snc_policy import SwitchStrategy
from repro.workloads.sources import MultiTaskInterleaver, SingleBenchmark
from repro.workloads.spec import BY_NAME

#: Valid baseline-L2 geometries (set count must be a power of two).
L2_GEOMETRIES = ((2048, 4), (1024, 8), (512, 4), (1024, 2))

SCALES = (
    SimulationScale(warmup_refs=4_000, measure_refs=8_000),
    SimulationScale(warmup_refs=0, measure_refs=10_000),  # no boundary
    SimulationScale(warmup_refs=7_000, measure_refs=5_000),
)

#: SNC configuration pool: every policy/geometry/scheme axis the
#: evaluation exercises, small enough that capacity effects trigger.
SNC_POOL = (
    ("lru_small", SNCConfig(size_bytes=8 * 1024), "otp"),
    ("norepl", SNCConfig(size_bytes=8 * 1024,
                         policy=SNCPolicy.NO_REPLACEMENT), "otp"),
    ("lru_assoc", SNCConfig(size_bytes=16 * 1024, assoc=32), "otp"),
    ("split", SNCConfig(size_bytes=8 * 1024), "otp_split"),
    ("split_assoc", SNCConfig(size_bytes=16 * 1024, assoc=16),
     "otp_split"),
)

INTEGRITY_POOL = (
    ("mac", "mac", 0),
    ("tree", "hash_tree", 0),
    ("tree_nc", "hash_tree_cached", 128),
)


def _draw_snc(rng: random.Random):
    picks = rng.sample(SNC_POOL, rng.randint(1, 3))
    configs = {key: config for key, config, _scheme in picks}
    schemes = {key: scheme for key, _config, scheme in picks}
    return configs, schemes


def _draw_integrity(rng: random.Random):
    if rng.random() < 0.5:
        return None, None
    picks = rng.sample(INTEGRITY_POOL, rng.randint(1, 2))
    configs = {
        key: IntegrityConfig(base_addr=0, n_lines=1 << 19,
                             node_cache_entries=entries)
        for key, _provider, entries in picks
    }
    providers = {key: provider for key, provider, _entries in picks}
    return configs, providers


def assert_events_identical(fused, replayed):
    """Field-for-field equality, reported per counter on failure."""
    assert replayed.name == fused.name
    for attr in ("read_misses", "allocate_misses", "writebacks",
                 "read_misses_big_l2", "allocate_misses_big_l2",
                 "compute_cycles", "xom_slowdown_target",
                 "task_read_misses"):
        assert getattr(replayed, attr) == getattr(fused, attr), attr
    assert replayed.snc.keys() == fused.snc.keys()
    for key, fused_counts in fused.snc.items():
        replayed_counts = replayed.snc[key]
        for field in fields(fused_counts):
            assert (
                getattr(replayed_counts, field.name)
                == getattr(fused_counts, field.name)
            ), f"snc[{key}].{field.name}"
    assert replayed.integrity.keys() == fused.integrity.keys()
    for key, fused_counts in fused.integrity.items():
        replayed_counts = replayed.integrity[key]
        for field in fields(fused_counts):
            assert (
                getattr(replayed_counts, field.name)
                == getattr(fused_counts, field.name)
            ), f"integrity[{key}].{field.name}"
    assert replayed == fused  # and the dataclass as a whole


def _round_trip(recording):
    """Replay what a worker or a warm store would see, not the in-memory
    object the recorder returned."""
    return recording_from_bytes(recording_to_bytes(recording))


@pytest.mark.parametrize("case", range(6))
def test_benchmark_differential(case):
    """Randomized figure-path configurations: fused == replay."""
    rng = random.Random(0xD1F + case)
    recording = None
    # Some (benchmark, scale, L2 geometry) draws see zero measured load
    # misses — both paths reject those identically — so redraw until the
    # cheap record pass accepts the combination.
    for _attempt in range(20):
        bench = BY_NAME[rng.choice(sorted(BY_NAME))]
        scale = rng.choice(SCALES)
        l2_lines, l2_assoc = rng.choice(L2_GEOMETRIES)
        snc_configs, snc_schemes = _draw_snc(rng)
        integrity_configs, integrity_providers = _draw_integrity(rng)
        alt_l2 = rng.random() < 0.5
        seed = rng.randint(1, 99)
        try:
            recording = _round_trip(record_source(
                SingleBenchmark(bench), scale=scale, seed=seed,
                include_alt_l2=alt_l2, l2_lines=l2_lines,
                l2_assoc=l2_assoc,
            ))
            break
        except ConfigurationError:
            continue
    assert recording is not None, "no valid draw in 20 attempts"

    fused = simulate_benchmark(
        bench, scale=scale, snc_configs=snc_configs, seed=seed,
        snc_schemes=snc_schemes, simulate_alt_l2=alt_l2,
        integrity_configs=integrity_configs,
        integrity_providers=integrity_providers,
        l2_lines=l2_lines, l2_assoc=l2_assoc,
    )
    replayed = recording.replay(
        snc_configs, snc_schemes, alt_l2=alt_l2,
        integrity_configs=integrity_configs,
        integrity_providers=integrity_providers,
    )
    assert_events_identical(fused, replayed)
    batched = recording.replay_batch([ReplayRequest(
        snc_configs=snc_configs, snc_schemes=snc_schemes,
        alt_l2=alt_l2, integrity_configs=integrity_configs,
        integrity_providers=integrity_providers,
    )])[0]
    assert_events_identical(fused, batched)


@pytest.mark.parametrize("case", range(4))
def test_scenario_differential(case):
    """Randomized §4.3 configurations — multi-task mixes under FLUSH and
    TAG — against one shared recording per mix."""
    rng = random.Random(0x5CE + case)
    recording = None
    for _attempt in range(20):
        n_tasks = rng.randint(2, 3)
        names = rng.sample(sorted(BY_NAME), n_tasks)
        quantum = rng.choice((500, 1_500, 3_000))
        scale = rng.choice(SCALES)
        l2_lines, l2_assoc = rng.choice(L2_GEOMETRIES)
        # FLUSH spills through the in-memory table, which only LRU keeps.
        snc_configs, snc_schemes = _draw_snc(rng)
        while any(config.policy is SNCPolicy.NO_REPLACEMENT
                  for config in snc_configs.values()):
            snc_configs, snc_schemes = _draw_snc(rng)
        integrity_configs, integrity_providers = _draw_integrity(rng)
        seed = rng.randint(1, 99)
        try:
            recording = _round_trip(record_source(
                MultiTaskInterleaver(names, quantum), scale=scale,
                seed=seed, include_alt_l2=False, l2_lines=l2_lines,
                l2_assoc=l2_assoc,
            ))
            break
        except ConfigurationError:
            continue
    assert recording is not None, "no valid draw in 20 attempts"
    strategies = (SwitchStrategy.FLUSH, SwitchStrategy.TAG)
    # Both strategies priced in ONE batch pass: the hardest sharing case
    # (same recording, different switch semantics per request).
    batched = recording.replay_batch([
        ReplayRequest(
            snc_configs=snc_configs, snc_schemes=snc_schemes,
            strategy=strategy, integrity_configs=integrity_configs,
            integrity_providers=integrity_providers,
        )
        for strategy in strategies
    ])
    for strategy, batch_events in zip(strategies, batched):
        fused = simulate_scenario(
            MultiTaskInterleaver(names, quantum), scale=scale,
            snc_configs=snc_configs, snc_schemes=snc_schemes,
            switch_strategy=strategy, seed=seed,
            integrity_configs=integrity_configs,
            integrity_providers=integrity_providers,
            l2_lines=l2_lines, l2_assoc=l2_assoc,
        )
        replayed = recording.replay(
            snc_configs, snc_schemes, strategy=strategy,
            integrity_configs=integrity_configs,
            integrity_providers=integrity_providers,
        )
        assert_events_identical(fused, replayed)
        assert_events_identical(fused, batch_events)


def test_single_task_scenario_matches_benchmark_recording():
    """A single-benchmark scenario replays the *same* recording the
    figure path records (the degenerate case the fused paths pin), so
    one recording per benchmark serves both task kinds."""
    scale = SimulationScale(warmup_refs=5_000, measure_refs=10_000)
    configs = {"lru64": standard_snc_configs()["lru64"]}
    recording = _round_trip(record_source(
        SingleBenchmark(BY_NAME["art"]), scale=scale,
    ))
    fused = simulate_scenario(
        SingleBenchmark(BY_NAME["art"]), scale=scale,
        snc_configs=configs,
    )
    replayed = recording.replay(configs, strategy=SwitchStrategy.TAG)
    assert_events_identical(fused, replayed)
    batched = recording.replay_batch([ReplayRequest(
        snc_configs=configs, strategy=SwitchStrategy.TAG,
    )])[0]
    assert_events_identical(fused, batched)


def test_standard_configs_full_axis():
    """The five standard SNC configurations — the exact figure-table
    axis — replay identically, alternate L2 included."""
    scale = SimulationScale(warmup_refs=25_000, measure_refs=25_000)
    fused = simulate_benchmark(BY_NAME["mcf"], scale=scale,
                               snc_configs=standard_snc_configs(),
                               simulate_alt_l2=True)
    recording = _round_trip(record_source(
        SingleBenchmark(BY_NAME["mcf"]), scale=scale,
    ))
    replayed = recording.replay(standard_snc_configs(), alt_l2=True)
    assert_events_identical(fused, replayed)
    batched = recording.replay_batch([ReplayRequest(
        snc_configs=standard_snc_configs(), alt_l2=True,
    )])[0]
    assert_events_identical(fused, batched)


def test_deprecated_free_functions_warn_and_delegate():
    """``replay_benchmark``/``replay_scenario`` stay for one release as
    thin shims over the :class:`Recording` methods: same events, plus a
    :class:`DeprecationWarning` naming the replacement."""
    scale = SimulationScale(warmup_refs=3_000, measure_refs=6_000)
    configs = {"lru64": standard_snc_configs()["lru64"]}
    recording = _round_trip(record_source(
        SingleBenchmark(BY_NAME["gzip"]), scale=scale,
    ))
    with pytest.warns(DeprecationWarning, match="Recording.replay"):
        wrapped = replay_benchmark(recording, configs)
    assert wrapped == recording.replay(configs)
    with pytest.warns(DeprecationWarning, match="Recording.replay"):
        wrapped = replay_scenario(recording, configs,
                                  switch_strategy=SwitchStrategy.TAG)
    assert wrapped == recording.replay(configs,
                                       strategy=SwitchStrategy.TAG)

"""Tests for the on-disk result cache: hit/miss, invalidation, robustness."""

import json

import pytest

from repro.eval.cache import (
    ResultCache,
    code_fingerprint,
    default_cache_dir,
    events_from_dict,
    events_to_dict,
)
from repro.eval.jobs import SimulationTask, execute_task, standard_snc_specs
from repro.eval.pipeline import SimulationScale

_SCALE = SimulationScale(warmup_refs=5_000, measure_refs=10_000)


def _task(workload="art", snc_keys=("lru64",), scale=_SCALE, seed=1):
    specs = standard_snc_specs()
    return SimulationTask(
        workload=workload,
        snc_configs=tuple(specs[key] for key in snc_keys),
        scale=scale, seed=seed,
    )


@pytest.fixture(scope="module")
def art_events():
    return execute_task(_task())


class TestRoundTrip:
    def test_events_survive_serialization(self, art_events):
        assert events_from_dict(events_to_dict(art_events)) == art_events

    def test_miss_then_put_then_hit(self, tmp_path, art_events):
        cache = ResultCache(tmp_path)
        task = _task()
        assert cache.get(task) is None
        cache.put(task, art_events)
        assert cache.get(task) == art_events
        assert (cache.hits, cache.misses) == (1, 1)

    def test_entry_is_inspectable_json(self, tmp_path, art_events):
        cache = ResultCache(tmp_path)
        task = _task()
        cache.put(task, art_events)
        payload = json.loads(cache.path_for(task).read_text())
        assert payload["task"]["workload"] == "art"
        assert payload["events"]["read_misses"] == art_events.read_misses


class TestInvalidation:
    @pytest.mark.parametrize("other", [
        _task(workload="vpr"),
        _task(snc_keys=("lru32",)),
        _task(snc_keys=("lru64", "norepl64")),
        _task(scale=SimulationScale(warmup_refs=5_000,
                                    measure_refs=10_001)),
        _task(seed=2),
    ])
    def test_any_config_change_is_a_miss(self, tmp_path, art_events, other):
        cache = ResultCache(tmp_path)
        cache.put(_task(), art_events)
        assert cache.get(other) is None

    def test_key_includes_code_fingerprint(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        before = cache.key_for(_task())
        code_fingerprint.cache_clear()
        monkeypatch.setattr("repro.eval.cache.code_fingerprint",
                            lambda: "deadbeef")
        try:
            assert cache.key_for(_task()) != before
        finally:
            code_fingerprint.cache_clear()

    def test_fingerprint_is_stable_hex(self):
        first = code_fingerprint()
        assert first == code_fingerprint()
        assert len(first) == 64
        int(first, 16)


class TestRobustness:
    def test_corrupt_entry_degrades_to_miss(self, tmp_path, art_events):
        cache = ResultCache(tmp_path)
        task = _task()
        cache.put(task, art_events)
        cache.path_for(task).write_text("{not json")
        assert cache.get(task) is None

    def test_wrong_shape_degrades_to_miss(self, tmp_path, art_events):
        cache = ResultCache(tmp_path)
        task = _task()
        cache.put(task, art_events)
        cache.path_for(task).write_text(json.dumps({"events": {"bad": 1}}))
        assert cache.get(task) is None

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EVAL_CACHE_DIR", str(tmp_path / "c"))
        assert default_cache_dir() == tmp_path / "c"

    def test_no_tmp_files_left_behind(self, tmp_path, art_events):
        cache = ResultCache(tmp_path)
        cache.put(_task(), art_events)
        assert not list(tmp_path.glob("*.tmp"))

    def test_unwritable_root_never_aborts_the_run(self, tmp_path,
                                                  art_events):
        # A cache root that cannot be a directory (it's a file) makes
        # every write fail with OSError — even when running as root,
        # where a read-only directory would not.
        root = tmp_path / "not-a-dir"
        root.write_text("occupied")
        cache = ResultCache(root)
        cache.put(_task(), art_events)  # must not raise
        assert cache.put_errors == 1
        assert cache.get(_task()) is None

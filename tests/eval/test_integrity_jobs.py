"""The integrity axis through the eval layer: specs, jobs, merging,
scheduling, caching, and the slowdown-vs-node-cache-size experiment."""

import pytest

from repro.errors import ConfigurationError
from repro.eval.cache import ResultCache
from repro.eval.experiments import (
    INTEGRITY_NODE_CACHE_SIZES,
    PAPER_LATENCIES,
    integrity_jobs,
    integrity_model_specs,
    integrity_slowdowns,
    integrity_table_keys,
    run_integrity_sweep,
)
from repro.eval.jobs import (
    ExperimentJob,
    IntegrityModelSpec,
    SimulationTask,
    execute_task,
    merge_jobs,
    standard_snc_specs,
)
from repro.eval.pipeline import QUICK_SCALE, SimulationScale
from repro.eval.scheduler import run_tasks
from repro.secure.schemes import get_scheme

_SCALE = SimulationScale(warmup_refs=5_000, measure_refs=10_000)


def _integrity_spec(**overrides):
    spec = dict(key="tree_nc64", provider="hash_tree_cached",
                node_cache_entries=64)
    spec.update(overrides)
    return IntegrityModelSpec(**spec)


def _job(workload="art", integrity=(), **overrides):
    spec = dict(
        figure="integrity", schemes=("otp",), workload=workload,
        snc_configs=(standard_snc_specs()["lru64"],), scale=_SCALE,
        seed=1, integrity=tuple(integrity),
    )
    spec.update(overrides)
    return ExperimentJob(**spec)


class TestIntegrityModelSpec:
    def test_rejects_unregistered_provider(self):
        with pytest.raises(KeyError, match="nosuchintegrity"):
            _integrity_spec(provider="nosuchintegrity")

    def test_rejects_model_free_provider(self):
        """``none`` is requested by omission — a job naming it would
        simulate nothing and price nothing."""
        with pytest.raises(ConfigurationError, match="none"):
            _integrity_spec(provider="none")

    def test_config_round_trip(self):
        config = _integrity_spec(n_lines=4096,
                                 node_cache_entries=32).to_config()
        assert config.n_lines == 4096
        assert config.node_cache_entries == 32

    @pytest.mark.parametrize("change", [
        dict(provider="hash_tree", node_cache_entries=0),
        dict(n_lines=1 << 18),
        dict(node_cache_entries=128),
        dict(tag_bytes=8),
    ])
    def test_canonical_tracks_every_field(self, change):
        assert (_integrity_spec(**change).canonical()
                != _integrity_spec().canonical())


class TestJobsAndMerging:
    def test_hash_tracks_integrity_dimension(self):
        assert (_job(integrity=[_integrity_spec()]).config_hash()
                != _job().config_hash())

    def test_merge_unions_integrity_by_key(self):
        jobs = [
            _job(integrity=[_integrity_spec()]),
            _job(integrity=[_integrity_spec(key="mac", provider="mac",
                                            node_cache_entries=0)]),
        ]
        tasks = merge_jobs(jobs)
        assert len(tasks) == 1
        assert [spec.key for spec in tasks[0].integrity] == [
            "mac", "tree_nc64",
        ]

    def test_merge_rejects_conflicting_integrity_key(self):
        jobs = [
            _job(integrity=[_integrity_spec()]),
            _job(integrity=[_integrity_spec(node_cache_entries=128)]),
        ]
        with pytest.raises(ValueError, match="tree_nc64"):
            merge_jobs(jobs)

    def test_figure_jobs_declare_no_integrity(self):
        """The paper's own configuration: every figure job's canonical
        form carries an empty integrity list, so the seven tables are
        untouched by the axis."""
        from repro.eval.experiments import plan_jobs
        for job in plan_jobs(scale=_SCALE):
            assert job.integrity == ()
            assert job.canonical()["integrity"] == []


class TestExecution:
    def test_task_simulates_declared_integrity_configs(self):
        task = SimulationTask(
            workload="art", snc_configs=(standard_snc_specs()["lru64"],),
            scale=_SCALE, seed=1,
            integrity=(_integrity_spec(),
                       _integrity_spec(key="tree", provider="hash_tree",
                                       node_cache_entries=0)),
        )
        events = execute_task(task)
        assert set(events.integrity) == {"tree", "tree_nc64"}
        counts = events.integrity["tree_nc64"]
        assert counts.provider == "hash_tree_cached"
        assert counts.verifications > 0
        assert counts.node_cache_hits > 0
        assert events.integrity["tree"].node_cache_hits == 0

    def test_no_integrity_leaves_events_empty(self):
        task = SimulationTask(
            workload="art", snc_configs=(), scale=_SCALE, seed=1,
        )
        assert execute_task(task).integrity == {}

    def test_cache_round_trips_integrity_counts(self, tmp_path):
        task = SimulationTask(
            workload="art", snc_configs=(standard_snc_specs()["lru64"],),
            scale=_SCALE, seed=1, integrity=(_integrity_spec(),),
        )
        cache = ResultCache(tmp_path)
        first = run_tasks([task], cache=cache)[0]
        assert not first.cached
        second = run_tasks([task], cache=cache)[0]
        assert second.cached
        assert second.events.integrity == first.events.integrity

    def test_trace_events_rejects_unsimulated_key(self):
        task = SimulationTask(workload="art", snc_configs=(),
                              scale=_SCALE, seed=1)
        with pytest.raises(ConfigurationError, match="tree_nc64"):
            execute_task(task).trace_events(integrity_key="tree_nc64")

    def test_baseline_pricer_rejects_integrity_events(self):
        """The denominator never prices integrity: silently dropping
        the cost would fake a 0% slowdown."""
        from repro.timing.model import baseline_cycles

        task = SimulationTask(
            workload="art", snc_configs=(), scale=_SCALE, seed=1,
            integrity=(_integrity_spec(),),
        )
        events = execute_task(task)
        with pytest.raises(ValueError, match="baseline verifies nothing"):
            baseline_cycles(
                events.trace_events(integrity_key="tree_nc64"),
                PAPER_LATENCIES,
            )


class TestExperiment:
    @pytest.fixture(scope="class")
    def sweep(self, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("integrity-cache"))
        # QUICK_SCALE: mcf's initialization phase outlasts the tiny
        # job-test scale before its measurement window sees misses.
        events = run_integrity_sweep(("art", "mcf"), scale=QUICK_SCALE,
                                     cache=cache)
        return events, cache

    def test_cached_tree_strictly_cheaper_in_priced_cycles(self, sweep):
        """The acceptance bar: ``hash_tree_cached`` beats ``hash_tree``
        in *cycles* for every workload and every node-cache size."""
        events, _ = sweep
        price = get_scheme("otp").price
        for name, bench_events in events.items():
            uncached = price(
                bench_events.trace_events("lru64", integrity_key="tree"),
                PAPER_LATENCIES,
            )
            for entries in INTEGRITY_NODE_CACHE_SIZES:
                cached = price(
                    bench_events.trace_events(
                        "lru64", integrity_key=f"tree_nc{entries}"
                    ),
                    PAPER_LATENCIES,
                )
                assert cached < uncached, (name, entries)

    def test_slowdown_columns_order_as_threat_model(self, sweep):
        events, _ = sweep
        for bench_events in events.values():
            slowdowns = integrity_slowdowns(bench_events)
            assert (slowdowns["none"] < slowdowns["mac"]
                    < slowdowns["tree"])

    def test_warm_cache_replays_the_sweep_without_simulation(self, sweep):
        events, cache = sweep
        tasks = merge_jobs(integrity_jobs(("art", "mcf"),
                                          scale=QUICK_SCALE))
        results = run_tasks(tasks, cache=cache)
        assert all(result.cached for result in results)
        warm = {result.task.workload: result.events for result in results}
        assert warm["art"].integrity == events["art"].integrity

    def test_one_pass_carries_every_column(self, sweep):
        events, _ = sweep
        expected = {
            spec.key for spec in integrity_model_specs()
        }
        for bench_events in events.values():
            assert set(bench_events.integrity) == expected
        assert set(integrity_table_keys()) == expected | {"none"}

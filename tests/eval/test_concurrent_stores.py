"""Concurrent-writer stress tests for the on-disk stores.

The ROADMAP's evaluation-as-a-service daemon needs ``ResultCache`` and
``TraceStore`` to survive many processes hammering one directory — mixed
gets and puts of the same keys, plus the crash debris a real deployment
accumulates (torn target files, stray scratch files).  These tests pin
the contract that makes that safe:

* atomic writes use *writer-unique* temp names
  (:func:`repro.eval.cache.atomic_write_bytes`), so concurrent putters
  of one key can never interleave bytes in a shared scratch file or
  race each other's ``os.replace`` (the old shared ``.tmp`` suffix did
  both — the rename race surfaced as spurious ``put_errors``);
* every completed read is verify-or-miss: a torn or garbled file is
  discarded and re-recorded, never returned;
* writers clean up after themselves — no scratch-file litter
  accumulates, and failed writes remove their own temp file.
"""

import json
import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

import repro
from repro.eval.cache import ResultCache, atomic_write_bytes
from repro.eval.jobs import (
    ExperimentJob,
    merge_jobs,
    record_task_for,
    standard_snc_specs,
)
from repro.eval.pipeline import SimulationScale
from repro.eval.trace_store import TraceStore

_SRC_DIR = str(Path(repro.__file__).parents[1])
_WORKLOADS = ("art", "vpr", "equake")


def _tasks():
    specs = (standard_snc_specs()["lru64"],)
    return merge_jobs([
        ExperimentJob(figure="figure5", schemes=("otp",), workload=name,
                      snc_configs=specs,
                      scale=SimulationScale(20_000, 20_000))
        for name in _WORKLOADS
    ])


_HAMMER = """
import random
import sys
from array import array
from pathlib import Path

from repro.eval.cache import ResultCache
from repro.eval.jobs import (
    ExperimentJob,
    merge_jobs,
    record_task_for,
    standard_snc_specs,
)
from repro.eval.pipeline import BenchmarkEvents, SimulationScale
from repro.eval.record import RecordedTask, Recording
from repro.eval.trace_store import TraceStore

WORKLOADS = ("art", "vpr", "equake")


def tasks():
    specs = (standard_snc_specs()["lru64"],)
    return merge_jobs([
        ExperimentJob(figure="figure5", schemes=("otp",), workload=name,
                      snc_configs=specs,
                      scale=SimulationScale(20_000, 20_000))
        for name in WORKLOADS
    ])


def synthetic_recording(name, event_count):
    return Recording(
        name=name, tasks=(RecordedTask(0, name, 6.4),),
        warmup_refs=10, measure_refs=event_count, seed=1,
        l2_lines=64, l2_assoc=4,
        read_misses=5, allocate_misses=3, writebacks=2,
        read_misses_big_l2=1, allocate_misses_big_l2=1,
        task_read_misses={0: 5},
        kinds=array("B", [1] * event_count),
        lines=array("Q", range(event_count)),
        aux=array("Q", [0] * event_count),
    )


def synthetic_events(name, worker_id):
    # Worker-dependent payload sizes: concurrent putters of one key
    # write different byte lengths, so a torn hybrid cannot pass as
    # either writer's output.
    return BenchmarkEvents(
        name=name, xom_slowdown_target=6.4,
        read_misses=10 ** worker_id, allocate_misses=3, writebacks=2,
        compute_cycles=1000 + worker_id,
    )


def main():
    root = Path(sys.argv[1])
    worker_id = int(sys.argv[2])
    iterations = int(sys.argv[3])
    rng = random.Random(worker_id)
    cache = ResultCache(root / "cache")
    store = TraceStore(root / "traces")
    my_tasks = tasks()
    for step in range(iterations):
        task = rng.choice(my_tasks)
        record_task = record_task_for(task)
        roll = rng.random()
        if roll < 0.35:
            store.put(record_task, synthetic_recording(
                task.workload, 200 + worker_id * 17
            ))
        elif roll < 0.55:
            entry = store.get_entry(record_task)
            assert entry is None or entry[0].name == task.workload
        elif roll < 0.8:
            cache.put(task, synthetic_events(task.workload, worker_id))
        else:
            events = cache.get(task)
            assert events is None or events.name == task.workload
        if step % 11 == 7:
            # Simulate a crashed writer: tear a target file in place.
            torn = (store.path_for(record_task) if roll < 0.5
                    else cache.path_for(task))
            torn.parent.mkdir(parents=True, exist_ok=True)
            torn.write_bytes(b"RPRT\\x02\\x00to" * (worker_id + 1))
    if cache.put_errors or store.put_errors:
        print(f"worker {worker_id}: put_errors cache="
              f"{cache.put_errors} store={store.put_errors}",
              file=sys.stderr)
        sys.exit(1)


main()
"""


@pytest.mark.slow
class TestMultiProcessHammer:
    def test_shared_dirs_survive_concurrent_writers(self, tmp_path):
        """4 processes, mixed get/put on shared dirs, torn files
        injected throughout: every process must finish with zero put
        errors, and the survivors must read back verify-or-miss."""
        script = tmp_path / "hammer.py"
        script.write_text(textwrap.dedent(_HAMMER))
        (tmp_path / "traces").mkdir()
        (tmp_path / "cache").mkdir()
        # Pre-seed crash debris: stray scratch files a dead writer of
        # some other implementation might have left.  The stores must
        # neither trip over them nor ever read them.
        strays = [
            tmp_path / "traces" / ".stray-leftover.tmp",
            tmp_path / "cache" / "dead-writer.tmp",
        ]
        for stray in strays:
            stray.write_bytes(b"\x00garbage\x00")

        procs = [
            subprocess.Popen(
                [sys.executable, str(script), str(tmp_path), str(wid),
                 "80"],
                env={"PYTHONPATH": _SRC_DIR, "PATH": "/usr/bin:/bin"},
                stderr=subprocess.PIPE,
            )
            for wid in range(4)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()

        # Every surviving entry reads back valid — or misses cleanly.
        cache = ResultCache(tmp_path / "cache")
        store = TraceStore(tmp_path / "traces")
        for task in _tasks():
            record_task = record_task_for(task)
            entry = store.get_entry(record_task)
            if entry is not None:
                assert entry[0].name == task.workload
            events = cache.get(task)
            if events is not None:
                assert events.name == task.workload

        # No writer litters scratch files: the only .tmp files left are
        # the pre-seeded strays, untouched.
        leftover = sorted((tmp_path / "traces").glob("*.tmp")) + sorted(
            (tmp_path / "cache").glob("*.tmp")
        )
        assert leftover == strays
        for stray in strays:
            assert stray.read_bytes() == b"\x00garbage\x00"


class TestAtomicWriteBytes:
    def test_concurrent_same_key_writes_stay_whole(self, tmp_path):
        """8 threads rewriting one path with different-length payloads:
        the final file must be exactly one writer's bytes, never an
        interleaved hybrid (the shared-.tmp failure mode)."""
        target = tmp_path / "entry.json"
        payloads = [
            json.dumps({"writer": writer, "pad": "x" * (writer * 97)})
            .encode()
            for writer in range(8)
        ]

        def hammer(payload):
            for _ in range(50):
                atomic_write_bytes(target, payload)

        threads = [threading.Thread(target=hammer, args=(payload,))
                   for payload in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = target.read_bytes()
        assert final in payloads
        assert list(tmp_path.glob("*.tmp")) == []

    def test_failed_write_cleans_its_scratch_file(self, tmp_path):
        target = tmp_path / "missing-dir" / "entry.json"
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"payload")
        assert not (tmp_path / "missing-dir").exists()
        assert list(tmp_path.glob("**/*.tmp")) == []

    def test_unique_names_across_calls(self, tmp_path, monkeypatch):
        """Two in-flight writes of one key must never share a scratch
        name — pin the per-call uniqueness directly."""
        names = []
        real_replace = __import__("os").replace

        def spying_replace(src, dst):
            names.append(str(src))
            real_replace(src, dst)

        monkeypatch.setattr("repro.eval.cache.os.replace",
                            spying_replace)
        target = tmp_path / "entry.json"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert len(set(names)) == 2

"""Server-parity golden test: every table the repo pins — the seven
figure tables, the §4.3 scenario table and the integrity table — is
rendered from results fetched through a live serve daemon and
byte-diffed against the local-path golden masters in ``tests/golden/``.

This turns the golden fixtures into server-parity oracles: the daemon
executes through the unchanged scheduler and ships events through the
result cache's canonical wire form, so a single drifted byte anywhere
in the protocol, the wire serialization or the dedupe layer fails here
with a table diff.  A second daemon re-renders two figures at
``n_jobs=4`` on the warm persistent pool, pinning parallel server runs
to the same bytes.
"""

from __future__ import annotations

import pytest

from test_golden_master import (
    GOLDEN_DIR,
    SCENARIO_MIXES,
    SCENARIO_QUANTUM,
    _assert_matches_golden,
)

from repro.eval.cache import ResultCache
from repro.eval.client import EvalClient
from repro.eval.experiments import (
    FIGURES_BY_ID,
    index_scenario_results,
    integrity_jobs,
    plan_jobs,
    scenario_jobs,
)
from repro.eval.jobs import merge_jobs, merge_scenario_jobs
from repro.eval.pipeline import QUICK_SCALE
from repro.eval.report import (
    format_figure,
    format_integrity_table,
    format_scenario_table,
)
from repro.eval.server import start_server_thread
from repro.eval.trace_store import TraceStore


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve-parity")
    with start_server_thread(
        n_jobs=1, backend="replay",
        cache=ResultCache(tmp / "cache"),
        trace_store=TraceStore(tmp / "traces"),
    ) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(daemon):
    with EvalClient(daemon.address) as eval_client:
        yield eval_client


def _render_figures_via(client) -> dict[str, str]:
    tasks = merge_jobs(plan_jobs(scale=QUICK_SCALE))
    results = client.run_tasks(tasks)
    events = {result.task.workload: result.events
              for result in results}
    return {
        figure_id: format_figure(figure(events)) + "\n"
        for figure_id, figure in FIGURES_BY_ID.items()
    }


def _render_scenarios_via(client) -> str:
    results = {}
    for mix in SCENARIO_MIXES:
        tasks = merge_scenario_jobs(scenario_jobs(
            mix, quantum=SCENARIO_QUANTUM, scale=QUICK_SCALE
        ))
        results.update(index_scenario_results(client.run_tasks(tasks)))
    return format_scenario_table(results) + "\n"


def _render_integrity_via(client) -> str:
    tasks = merge_jobs(integrity_jobs(scale=QUICK_SCALE))
    results = client.run_tasks(tasks)
    events = {result.task.workload: result.events
              for result in results}
    return format_integrity_table(events) + "\n"


@pytest.fixture(scope="module")
def server_tables(client):
    tables = _render_figures_via(client)
    tables["scenarios"] = _render_scenarios_via(client)
    tables["integrity"] = _render_integrity_via(client)
    return tables


def test_server_tables_match_golden_fixtures(server_tables):
    """Figures 3-10 plus the scenario and integrity tables, fetched
    through the daemon, must be byte-identical to the fixtures the
    local fused reference wrote."""
    assert GOLDEN_DIR.exists()
    _assert_matches_golden(server_tables)


def test_second_fetch_is_hot_and_identical(client, server_tables):
    """Refetching through the warm daemon (hot LRU, zero executions)
    renders the very same bytes."""
    refetched = _render_figures_via(client)
    assert client.last_request["counts"]["executed"] == 0
    assert client.last_request["counts"]["hot"] > 0
    for figure_id, rendered in refetched.items():
        assert rendered == server_tables[figure_id]


def test_parallel_server_run_matches_golden(tmp_path):
    """The same figure tables through a ``--jobs 4`` daemon (warm
    persistent pool, lane-sharded batches) stay byte-identical."""
    figure_ids = ["figure5", "figure10"]
    with start_server_thread(
        n_jobs=4, backend="replay",
        trace_store=TraceStore(tmp_path / "traces"),
    ) as handle:
        with EvalClient(handle.address) as client:
            tasks = merge_jobs(plan_jobs(figure_ids, scale=QUICK_SCALE))
            results = client.run_tasks(tasks)
    events = {result.task.workload: result.events
              for result in results}
    for figure_id in figure_ids:
        rendered = format_figure(FIGURES_BY_ID[figure_id](events))
        golden = (GOLDEN_DIR / f"{figure_id}.txt").read_text()
        assert rendered + "\n" == golden, f"{figure_id} drifted"

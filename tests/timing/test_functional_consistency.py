"""Cross-check: the byte-free SNC timing simulator must make exactly the
same decisions as the functional OTP engine on the same reference stream.

This is the glue test that keeps the evaluation honest: the figures are
produced by the timing layer, the security properties by the functional
layer, and this test pins them together.
"""

import random

import pytest

from repro.crypto.des import DES
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure.otp_engine import OTPEngine
from repro.secure.snc import SequenceNumberCache, SNCConfig, SNCPolicy
from repro.timing.model import SNCTimingSim


def run_both(config: SNCConfig, operations):
    """Drive engine and sim with one op stream; return their categories."""
    dram = DRAM(line_bytes=128, latency=100)
    engine = OTPEngine(
        dram, DES(b"crosschk"),
        snc=SequenceNumberCache(config),
    )
    sim = SNCTimingSim(config)
    for line_index, is_write in operations:
        if is_write:
            engine.write_line(line_index * 128, bytes(128))
            sim.writeback(line_index)
        else:
            engine.read_line(line_index * 128, LineKind.DATA)
            sim.read_miss(line_index)
    engine_counts = {
        "overlapped": engine.stats.overlapped_reads,
        "seqnum_miss": engine.stats.seqnum_miss_reads,
        "direct": engine.stats.serial_reads,
        "snc_query_hits": engine.snc.stats.query_hits,
        "snc_update_hits": engine.snc.stats.update_hits,
        "snc_evictions": engine.snc.stats.evictions,
    }
    sim_counts = {
        "overlapped": sim.counts.overlapped_reads,
        "seqnum_miss": sim.counts.seqnum_miss_reads,
        "direct": sim.counts.direct_reads,
        "snc_query_hits": sim.snc.stats.query_hits,
        "snc_update_hits": sim.snc.stats.update_hits,
        "snc_evictions": sim.snc.stats.evictions,
    }
    return engine_counts, sim_counts


def random_operations(seed, n_ops=600, n_lines=24):
    rng = random.Random(seed)
    return [
        (rng.randrange(n_lines), rng.random() < 0.4) for _ in range(n_ops)
    ]


class TestLRUConsistency:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_streams_agree(self, seed):
        config = SNCConfig(size_bytes=16, entry_bytes=2)  # 8 entries
        engine_counts, sim_counts = run_both(
            config, random_operations(seed)
        )
        assert engine_counts == sim_counts

    def test_pathological_cyclic_stream(self):
        config = SNCConfig(size_bytes=8, entry_bytes=2)  # 4 entries
        operations = [(line % 6, False) for line in range(200)]
        operations += [(line % 6, True) for line in range(200)]
        engine_counts, sim_counts = run_both(config, operations)
        assert engine_counts == sim_counts

    def test_set_associative_agreement(self):
        config = SNCConfig(size_bytes=16, entry_bytes=2, assoc=2)
        engine_counts, sim_counts = run_both(
            config, random_operations(99, n_ops=800, n_lines=32)
        )
        assert engine_counts == sim_counts


class TestNoReplacementConsistency:
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_random_streams_agree(self, seed):
        config = SNCConfig(
            size_bytes=8, entry_bytes=2, policy=SNCPolicy.NO_REPLACEMENT
        )
        engine_counts, sim_counts = run_both(
            config, random_operations(seed, n_ops=500, n_lines=16)
        )
        assert engine_counts == sim_counts

    def test_rejection_counts_agree(self):
        config = SNCConfig(
            size_bytes=8, entry_bytes=2, policy=SNCPolicy.NO_REPLACEMENT
        )
        operations = [(line, True) for line in range(12)]
        operations += [(line, False) for line in range(12)]
        dram = DRAM(line_bytes=128)
        engine = OTPEngine(
            dram, DES(b"rejcheck"), snc=SequenceNumberCache(config)
        )
        sim = SNCTimingSim(config)
        for line, is_write in operations:
            if is_write:
                engine.write_line(line * 128, bytes(128))
                sim.writeback(line)
            else:
                engine.read_line(line * 128, LineKind.DATA)
                sim.read_miss(line)
        assert engine.snc.stats.rejected == sim.snc.stats.rejected
        assert engine.stats.serial_reads == sim.counts.direct_reads

"""Cross-check: the byte-free SNC timing simulator must make exactly the
same decisions as the functional OTP engine on the same reference stream.

This is the glue test that keeps the evaluation honest: the figures are
produced by the timing layer, the security properties by the functional
layer, and this test pins them together.  Since the registry refactor
both layers drive one :class:`~repro.secure.snc_policy.SNCPolicyCore`, so
agreement holds by construction — these tests now guard the *wiring* (the
engine's stats mapping, the simulator's counting callbacks, the registry
factories) against regressions.

``TestRegistryConsistency`` drives every scheme through its registry spec
at the evaluation's five *standard* SNC configurations with one shared
randomized trace — the full-size geometries the figures actually price,
not just the scaled-down ones.
"""

import random

import pytest

from repro.crypto.blockcipher import IdentityCipher
from repro.crypto.des import DES
from repro.memory.bus import MemoryBus, TransactionKind
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineKind
from repro.secure.engine import LatencyParams
from repro.secure.otp_engine import OTPEngine
from repro.secure.regions import RegionMap
from repro.secure.schemes import EngineContext, get_scheme
from repro.secure.snc import SequenceNumberCache, SNCConfig, SNCPolicy
from repro.eval.pipeline import standard_snc_configs
from repro.timing.model import SNCTimingSim


def run_both(config: SNCConfig, operations):
    """Drive engine and sim with one op stream; return their categories."""
    dram = DRAM(line_bytes=128, latency=100)
    engine = OTPEngine(
        dram, DES(b"crosschk"),
        snc=SequenceNumberCache(config),
    )
    sim = SNCTimingSim(config)
    for line_index, is_write in operations:
        if is_write:
            engine.write_line(line_index * 128, bytes(128))
            sim.writeback(line_index)
        else:
            engine.read_line(line_index * 128, LineKind.DATA)
            sim.read_miss(line_index)
    engine_counts = {
        "overlapped": engine.stats.overlapped_reads,
        "seqnum_miss": engine.stats.seqnum_miss_reads,
        "direct": engine.stats.serial_reads,
        "snc_query_hits": engine.snc.stats.query_hits,
        "snc_update_hits": engine.snc.stats.update_hits,
        "snc_evictions": engine.snc.stats.evictions,
    }
    sim_counts = {
        "overlapped": sim.counts.overlapped_reads,
        "seqnum_miss": sim.counts.seqnum_miss_reads,
        "direct": sim.counts.direct_reads,
        "snc_query_hits": sim.snc.stats.query_hits,
        "snc_update_hits": sim.snc.stats.update_hits,
        "snc_evictions": sim.snc.stats.evictions,
    }
    return engine_counts, sim_counts


def random_operations(seed, n_ops=600, n_lines=24):
    rng = random.Random(seed)
    return [
        (rng.randrange(n_lines), rng.random() < 0.4) for _ in range(n_ops)
    ]


class TestLRUConsistency:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_streams_agree(self, seed):
        config = SNCConfig(size_bytes=16, entry_bytes=2)  # 8 entries
        engine_counts, sim_counts = run_both(
            config, random_operations(seed)
        )
        assert engine_counts == sim_counts

    def test_pathological_cyclic_stream(self):
        config = SNCConfig(size_bytes=8, entry_bytes=2)  # 4 entries
        operations = [(line % 6, False) for line in range(200)]
        operations += [(line % 6, True) for line in range(200)]
        engine_counts, sim_counts = run_both(config, operations)
        assert engine_counts == sim_counts

    def test_set_associative_agreement(self):
        config = SNCConfig(size_bytes=16, entry_bytes=2, assoc=2)
        engine_counts, sim_counts = run_both(
            config, random_operations(99, n_ops=800, n_lines=32)
        )
        assert engine_counts == sim_counts


class TestNoReplacementConsistency:
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_random_streams_agree(self, seed):
        config = SNCConfig(
            size_bytes=8, entry_bytes=2, policy=SNCPolicy.NO_REPLACEMENT
        )
        engine_counts, sim_counts = run_both(
            config, random_operations(seed, n_ops=500, n_lines=16)
        )
        assert engine_counts == sim_counts

    def test_rejection_counts_agree(self):
        config = SNCConfig(
            size_bytes=8, entry_bytes=2, policy=SNCPolicy.NO_REPLACEMENT
        )
        operations = [(line, True) for line in range(12)]
        operations += [(line, False) for line in range(12)]
        dram = DRAM(line_bytes=128)
        engine = OTPEngine(
            dram, DES(b"rejcheck"), snc=SequenceNumberCache(config)
        )
        sim = SNCTimingSim(config)
        for line, is_write in operations:
            if is_write:
                engine.write_line(line * 128, bytes(128))
                sim.writeback(line)
            else:
                engine.read_line(line * 128, LineKind.DATA)
                sim.read_miss(line)
        assert engine.snc.stats.rejected == sim.snc.stats.rejected
        assert engine.stats.serial_reads == sim.counts.direct_reads


# -- registry-level cross-check: the five standard configurations -----------

#: 8-byte lines with the no-op cipher keep the functional engine cheap
#: enough to drive the full-size standard SNCs (32K-64K entries) with a
#: trace long enough to exercise capacity misses.
_LINE_BYTES = 8


def _registry_engine(scheme_key: str, config: SNCConfig) -> OTPEngine:
    """Build the scheme's functional engine exactly as the processor
    would, through its registry spec."""
    dram = DRAM(line_bytes=_LINE_BYTES, latency=100)
    return get_scheme(scheme_key).build_engine(EngineContext(
        dram=dram, cipher=IdentityCipher(8), bus=MemoryBus(),
        regions=RegionMap(), integrity=None,
        latencies=LatencyParams(memory=100), snc_config=config,
    ))


def _drive_pair(engine: OTPEngine, sim, operations) -> tuple[dict, dict]:
    """One shared op stream through both layers; return their counts."""
    for line_index, is_write in operations:
        if is_write:
            engine.write_line(line_index * _LINE_BYTES, bytes(_LINE_BYTES))
            sim.writeback(line_index)
        else:
            engine.read_line(line_index * _LINE_BYTES, LineKind.DATA)
            sim.read_miss(line_index)
    engine_counts = {
        "overlapped": engine.stats.overlapped_reads,
        "seqnum_miss": engine.stats.seqnum_miss_reads,
        "direct": engine.stats.serial_reads,
        "table_fetches": engine.bus.counts[TransactionKind.SEQNUM_READ],
        "table_spills": engine.bus.counts[TransactionKind.SEQNUM_WRITE],
        "snc_query_hits": engine.snc.stats.query_hits,
        "snc_update_hits": engine.snc.stats.update_hits,
        "snc_insertions": engine.snc.stats.insertions,
        "snc_evictions": engine.snc.stats.evictions,
        "snc_rejected": engine.snc.stats.rejected,
    }
    sim_counts = {
        "overlapped": sim.counts.overlapped_reads,
        "seqnum_miss": sim.counts.seqnum_miss_reads,
        "direct": sim.counts.direct_reads,
        "table_fetches": sim.counts.table_fetches,
        "table_spills": sim.counts.table_spills,
        "snc_query_hits": sim.snc.stats.query_hits,
        "snc_update_hits": sim.snc.stats.update_hits,
        "snc_insertions": sim.snc.stats.insertions,
        "snc_evictions": sim.snc.stats.evictions,
        "snc_rejected": sim.snc.stats.rejected,
    }
    return engine_counts, sim_counts


@pytest.fixture(scope="module")
def shared_trace():
    """One randomized reference stream reused for every configuration:
    24K distinct lines overflow the 16K-entry 32KB SNC (evictions) while
    the larger configs see a mix of cold misses and hits."""
    rng = random.Random(20260730)
    return [
        (rng.randrange(24_000), rng.random() < 0.4) for _ in range(30_000)
    ]


class TestRegistryConsistency:
    """Every standard SNC config, engine vs registry timing machine."""

    @pytest.mark.parametrize("config_key",
                             sorted(standard_snc_configs()))
    def test_standard_config_counts_agree(self, config_key, shared_trace):
        config = standard_snc_configs()[config_key]
        engine = _registry_engine("otp", config)
        sim = get_scheme("otp").build_timing_sim(config)
        engine_counts, sim_counts = _drive_pair(engine, sim, shared_trace)
        assert engine_counts == sim_counts, config_key
        # The trace must actually exercise the machinery.
        assert sim_counts["snc_query_hits"] > 0
        if config.policy is SNCPolicy.LRU:
            assert sim_counts["seqnum_miss"] > 0

    def test_smallest_config_sees_evictions(self, shared_trace):
        """The 32KB config's 16K entries overflow under the 24K-line
        trace — the spill/refetch paths are genuinely covered."""
        config = standard_snc_configs()["lru32"]
        sim = get_scheme("otp").build_timing_sim(config)
        for line_index, is_write in shared_trace:
            if is_write:
                sim.writeback(line_index)
            else:
                sim.read_miss(line_index)
        assert sim.counts.table_spills > 0
        assert sim.snc.stats.evictions > 0

    def test_otp_split_counts_agree_through_overflow(self):
        """The split-counter scheme stays layer-consistent across its
        overflow-to-direct transition (>256 rewrites of hot lines)."""
        rng = random.Random(7)
        hot = [0, 1, 2]
        operations = []
        for _ in range(2_500):
            line = rng.choice(hot) if rng.random() < 0.8 else (
                rng.randrange(3, 40)
            )
            operations.append((line, rng.random() < 0.7))
        config = SNCConfig(size_bytes=64, entry_bytes=2)  # 32 entries
        engine = _registry_engine("otp_split", config)
        sim = get_scheme("otp_split").build_timing_sim(config)
        engine_counts, sim_counts = _drive_pair(engine, sim, operations)
        assert engine_counts == sim_counts
        # The hot lines must actually have overflowed to direct.
        assert sim_counts["direct"] > 0
        assert sim_counts["snc_rejected"] > 0

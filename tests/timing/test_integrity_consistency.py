"""Cross-check: every registered integrity spec's byte-free timing model
must count exactly what its functional provider does on the same stream.

The slowdown-vs-node-cache-size experiment is produced by the timing
models; the tamper-detection guarantees by the functional providers.
These tests pin the two layers together the same way
``test_functional_consistency.py`` pins the SNC layers: one randomized
honest reference stream drives both, and every
:class:`~repro.secure.integrity.IntegrityStats` field must agree —
including the trusted node cache's hit count, whose FIFO behaviour the
model mirrors digest-free.
"""

import random
from dataclasses import fields

import pytest

from repro.secure.integrity import (
    IntegrityConfig,
    IntegrityStats,
    all_integrities,
    get_integrity,
)

# Small geometry: the pure-Python SHA-256 costs ~1.5ms per node, so the
# functional side of each cross-check pair is the budget.  Depth 5 still
# exercises every walk shape (cache hits at every level, full walks).
_LINE_BYTES = 128
_N_LINES = 32


def _verifying_specs():
    return [spec for spec in all_integrities() if spec.verifies]


def _build_pair(spec, node_cache_entries=0):
    config = IntegrityConfig(
        base_addr=0, n_lines=_N_LINES, line_bytes=_LINE_BYTES,
        node_cache_entries=node_cache_entries,
    )
    provider = spec.build_provider(b"cross-check-key", config)
    model = spec.build_timing_model(config)
    return provider, model


def _install_all(provider, model):
    """The honest baseline: every covered line recorded, as the loader
    does at image install (counters then zeroed, like the pipeline's
    warmup reset)."""
    payload = bytes(_LINE_BYTES)
    for line in range(_N_LINES):
        provider.record_line(line * _LINE_BYTES, payload)
        model.update(line)
    provider.stats.__init__()
    model.reset_counts()


def _drive_pair(provider, model, operations):
    payload = bytes(_LINE_BYTES)
    for line, is_write in operations:
        if is_write:
            provider.record_line(line * _LINE_BYTES, payload)
            model.update(line)
        else:
            provider.verify_line(line * _LINE_BYTES, payload)
            model.verify(line)


def _stats_dict(stats) -> dict:
    return {
        field.name: getattr(stats, field.name)
        for field in fields(IntegrityStats)
    }


def random_operations(seed, n_ops=300, n_lines=_N_LINES):
    rng = random.Random(seed)
    return [
        (rng.randrange(n_lines), rng.random() < 0.35)
        for _ in range(n_ops)
    ]


class TestRegistryConsistency:
    """Every verifying spec, functional provider vs timing model."""

    @pytest.mark.parametrize("spec_key",
                             [spec.key for spec in _verifying_specs()])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_streams_agree(self, spec_key, seed):
        provider, model = _build_pair(get_integrity(spec_key))
        _install_all(provider, model)
        _drive_pair(provider, model, random_operations(seed))
        assert _stats_dict(provider.stats) == _stats_dict(model.counts), (
            spec_key
        )
        assert model.counts.verifications > 0
        assert model.counts.hashes_computed > 0

    @pytest.mark.parametrize("entries", [4, 16])
    def test_node_cache_occupancy_mirrors(self, entries):
        """The cached tree's FIFO trusted cache — including the evict-
        then-reinsert subtleties — must count identically across the
        layers at every cache size."""
        spec = get_integrity("hash_tree_cached")
        provider, model = _build_pair(spec, node_cache_entries=entries)
        _install_all(provider, model)
        _drive_pair(provider, model, random_operations(99, n_ops=600))
        assert _stats_dict(provider.stats) == _stats_dict(model.counts)
        assert model.counts.node_cache_hits > 0

    def test_uncached_tree_never_hits(self):
        provider, model = _build_pair(get_integrity("hash_tree"))
        _install_all(provider, model)
        _drive_pair(provider, model, random_operations(7))
        assert provider.stats.node_cache_hits == 0
        assert model.counts.node_cache_hits == 0
        # Every verification walks the full path: leaf + depth levels.
        depth = provider.depth
        assert model.counts.verify_hashes == (
            model.counts.verifications * (depth + 1)
        )

    def test_mac_prices_one_hash_per_verification(self):
        """Honest post-install execution (the precondition `_install_all`
        establishes, exactly as the loader does): every covered line
        carries a tag, so each verification is exactly one HMAC in both
        layers.  The functional provider's untagged shortcut only exists
        for degenerate never-recorded reads, which a priced trace never
        contains — the trees *fail* verification on such reads."""
        provider, model = _build_pair(get_integrity("mac"))
        _install_all(provider, model)
        _drive_pair(provider, model, random_operations(21))
        assert _stats_dict(provider.stats) == _stats_dict(model.counts)
        assert model.counts.verify_hashes == model.counts.verifications

    def test_critical_split_is_pricing_only(self):
        """``critical_hashes`` tracks the load-miss subset without
        disturbing the cross-checked totals."""
        provider, model = _build_pair(get_integrity("hash_tree"))
        _install_all(provider, model)
        payload = bytes(_LINE_BYTES)
        for line in range(_N_LINES):
            provider.verify_line(line * _LINE_BYTES, payload)
            model.verify(line, critical=(line % 2 == 0))
        assert _stats_dict(provider.stats) == _stats_dict(model.counts)
        assert model.counts.critical_hashes * 2 == (
            model.counts.verify_hashes
        )

    def test_models_ignore_uncovered_lines(self):
        """References outside the protected region don't count — the
        covers() mirror of the functional layer."""
        _, model = _build_pair(get_integrity("hash_tree"))
        model.verify(_N_LINES + 5)
        model.update(_N_LINES + 5)
        assert model.counts.verifications == 0
        assert model.counts.updates == 0

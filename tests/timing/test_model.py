"""Tests for the event-count timing model."""

import pytest

from repro.secure.engine import LatencyParams
from repro.secure.snc import SNCConfig, SNCPolicy
from repro.timing.model import (
    SNCEventCounts,
    SNCTimingSim,
    TraceEvents,
    baseline_cycles,
    calibrate_compute_cycles,
    normalized_time,
    otp_cycles,
    slowdown_pct,
    snc_traffic_pct,
    xom_cycles,
)

_LAT = LatencyParams(memory=100, crypto=50, xor=1)


def make_events(read_misses=1000, allocate=100, writebacks=200,
                compute=100_000, snc=None):
    return TraceEvents(
        name="test", read_misses=read_misses, allocate_misses=allocate,
        writebacks=writebacks, compute_cycles=compute, snc=snc,
    )


class TestPricing:
    def test_baseline(self):
        events = make_events()
        assert baseline_cycles(events, _LAT) == 100_000 + 1000 * 100

    def test_xom_adds_serial_crypto(self):
        events = make_events()
        assert xom_cycles(events, _LAT) == 100_000 + 1000 * 150

    def test_otp_prices_the_mix(self):
        snc = SNCEventCounts(
            overlapped_reads=800, seqnum_miss_reads=150, direct_reads=50
        )
        events = make_events(snc=snc)
        expected = 100_000 + 800 * 101 + 150 * 201 + 50 * 150
        assert otp_cycles(events, _LAT) == expected

    def test_otp_requires_snc_counts(self):
        with pytest.raises(ValueError):
            otp_cycles(make_events(), _LAT)

    def test_slowdown_and_normalized(self):
        assert slowdown_pct(110.0, 100.0) == pytest.approx(10.0)
        assert normalized_time(110.0, 100.0) == pytest.approx(1.10)

    def test_traffic_is_byte_relative(self):
        snc = SNCEventCounts(table_fetches=64, table_spills=64)
        events = make_events(read_misses=1000, allocate=0, writebacks=0,
                             snc=snc)
        # 128 transfers * 2B vs 1000 lines * 128B = 0.2%
        assert snc_traffic_pct(events) == pytest.approx(0.2)


class TestCalibration:
    def test_round_trips_through_xom_slowdown(self):
        """calibrate(R, s) must make the priced XOM slowdown equal s."""
        for target in (1.08, 14.27, 34.91):
            read_misses = 10_000
            compute = calibrate_compute_cycles(read_misses, target)
            events = make_events(read_misses=read_misses, compute=compute)
            measured = slowdown_pct(
                xom_cycles(events, _LAT), baseline_cycles(events, _LAT)
            )
            assert measured == pytest.approx(target, abs=0.02)

    def test_figure10_scales_linearly(self):
        """The paper's own consistency: XOM at crypto=102 is (102/50) times
        the crypto=50 slowdown."""
        compute = calibrate_compute_cycles(10_000, 16.76)
        events = make_events(read_misses=10_000, compute=compute)
        slow = LatencyParams(memory=100, crypto=102, xor=1)
        s50 = slowdown_pct(
            xom_cycles(events, _LAT), baseline_cycles(events, _LAT)
        )
        s102 = slowdown_pct(
            xom_cycles(events, slow), baseline_cycles(events, slow)
        )
        assert s102 / s50 == pytest.approx(102 / 50, rel=1e-6)

    def test_rejects_infeasible_slowdown(self):
        with pytest.raises(ValueError):
            calibrate_compute_cycles(1000, 51.0)  # above crypto/memory bound

    def test_rejects_zero_slowdown(self):
        with pytest.raises(ValueError):
            calibrate_compute_cycles(1000, 0.0)


class TestSNCTimingSim:
    def lru_sim(self, entries=4):
        return SNCTimingSim(SNCConfig(size_bytes=entries * 2, entry_bytes=2))

    def norepl_sim(self, entries=4):
        return SNCTimingSim(SNCConfig(
            size_bytes=entries * 2, entry_bytes=2,
            policy=SNCPolicy.NO_REPLACEMENT,
        ))

    def test_first_read_is_a_query_miss_under_lru(self):
        sim = self.lru_sim()
        sim.read_miss(5)
        assert sim.counts.seqnum_miss_reads == 1
        assert sim.counts.table_fetches == 1

    def test_second_read_hits(self):
        sim = self.lru_sim()
        sim.read_miss(5)
        sim.read_miss(5)
        assert sim.counts.overlapped_reads == 1

    def test_writeback_then_read_hits(self):
        sim = self.lru_sim()
        sim.writeback(5)
        sim.read_miss(5)
        assert sim.counts.overlapped_reads == 1

    def test_capacity_eviction_spills(self):
        sim = self.lru_sim(entries=2)
        for line in range(3):
            sim.writeback(line)
        assert sim.counts.table_spills == 1

    def test_allocate_miss_not_critical(self):
        sim = self.lru_sim()
        sim.read_miss(5, critical=False)
        assert sim.counts.seqnum_miss_reads == 0
        assert sim.counts.allocate_queries == 1
        assert sim.counts.table_fetches == 1  # traffic still happens

    def test_norepl_first_read_is_overlapped(self):
        """Version-0 vendor-image reads don't pay a penalty."""
        sim = self.norepl_sim()
        sim.read_miss(5)
        assert sim.counts.overlapped_reads == 1
        assert sim.counts.table_fetches == 0

    def test_norepl_full_rejects_and_reads_go_serial(self):
        sim = self.norepl_sim(entries=2)
        for line in range(3):
            sim.writeback(line)
        assert sim.counts.rejected_updates == 1
        sim.read_miss(2)
        assert sim.counts.direct_reads == 1

    def test_reset_counts_keeps_state(self):
        sim = self.lru_sim()
        sim.writeback(5)
        sim.reset_counts()
        sim.read_miss(5)
        assert sim.counts.overlapped_reads == 1  # still warm
        assert sim.counts.update_hits == 0  # counters cleared

"""Tests for the two-pass assembler."""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.isa import Op, decode
from repro.errors import AssemblerError
from repro.secure.software import SegmentKind


def text_of(program):
    return next(s for s in program.segments if s.name == "text")


def data_of(program):
    return next(s for s in program.segments if s.name == "data")


def decoded(program):
    text = text_of(program)
    return [
        decode(int.from_bytes(text.data[i : i + 4], "big"))
        for i in range(0, len(text.data), 4)
    ]


class TestBasics:
    def test_single_instruction(self):
        program = assemble("halt")
        assert decoded(program)[0].op is Op.HALT

    def test_alu_and_registers(self):
        program = assemble("add t0, t1, t2\nhalt")
        ins = decoded(program)[0]
        assert (ins.op, ins.a, ins.b, ins.c) == (Op.ADD, 8, 9, 10)

    def test_numeric_register_names(self):
        program = assemble("add r8, r9, r10\nhalt")
        ins = decoded(program)[0]
        assert (ins.a, ins.b, ins.c) == (8, 9, 10)

    def test_comments_and_blank_lines(self):
        program = assemble(
            """
            # leading comment
            add t0, t1, t2  # trailing comment

            halt
            """
        )
        assert len(decoded(program)) == 2

    def test_entry_point_defaults_to_main(self):
        program = assemble("nop\nmain: halt")
        assert program.entry_point == 0x1004

    def test_entry_point_defaults_to_text_base_without_main(self):
        assert assemble("halt").entry_point == 0x1000


class TestMemoryOperands:
    def test_load_offset_base(self):
        ins = decoded(assemble("lw t0, 8(sp)\nhalt"))[0]
        assert (ins.op, ins.a, ins.b, ins.signed_imm) == (Op.LW, 8, 29, 8)

    def test_negative_offset(self):
        ins = decoded(assemble("sw t0, -4(sp)\nhalt"))[0]
        assert ins.signed_imm == -4

    def test_bad_operand_shape(self):
        with pytest.raises(AssemblerError):
            assemble("lw t0, t1\nhalt")


class TestBranchesAndLabels:
    def test_backward_branch(self):
        program = assemble(
            """
            loop: addi t0, t0, 1
            bne t0, t1, loop
            halt
            """
        )
        branch = decoded(program)[1]
        # Offset is in words from the following instruction: -2.
        assert branch.signed_imm == -2

    def test_forward_branch(self):
        program = assemble(
            """
            beq t0, t1, done
            nop
            done: halt
            """
        )
        assert decoded(program)[0].signed_imm == 1

    def test_jump_absolute(self):
        program = assemble("j main\nmain: halt")
        assert decoded(program)[0].imm == 0x1004 // 4

    def test_unknown_label(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: halt")


class TestPseudoInstructions:
    def test_li_small_uses_addi(self):
        ins = decoded(assemble("li t0, 42\nhalt"))[0]
        assert (ins.op, ins.signed_imm) == (Op.ADDI, 42)

    def test_li_negative(self):
        ins = decoded(assemble("li t0, -5\nhalt"))[0]
        assert ins.signed_imm == -5

    def test_li_large_uses_lui_ori(self):
        instructions = decoded(assemble("li t0, 0x12345678\nhalt"))
        assert instructions[0].op is Op.LUI
        assert instructions[0].imm == 0x1234
        assert instructions[1].op is Op.ORI
        assert instructions[1].imm == 0x5678

    def test_la_resolves_data_labels(self):
        program = assemble(
            """
            la t0, value
            halt
            .data
            value: .word 7
            """
        )
        instructions = decoded(program)
        address = (instructions[0].imm << 16) | instructions[1].imm
        assert address == 0x100000

    def test_push_pop_expansion(self):
        instructions = decoded(assemble("push t0\npop t1\nhalt"))
        assert [i.op for i in instructions[:4]] == [
            Op.ADDI, Op.SW, Op.LW, Op.ADDI,
        ]

    def test_label_addresses_account_for_pseudo_expansion(self):
        program = assemble(
            """
            li t0, 0x12345678
            target: halt
            """
        )
        # li expands to two words, so target sits at text_base + 8.
        assert program.entry_point == 0x1000  # no main label
        instructions = decoded(program)
        assert instructions[2].op is Op.HALT


class TestDataDirectives:
    def test_word(self):
        data = data_of(assemble("halt\n.data\nv: .word 1, 2, 3"))
        assert data.data == (1).to_bytes(4, "big") + (2).to_bytes(4, "big") \
            + (3).to_bytes(4, "big")

    def test_byte_and_space(self):
        data = data_of(assemble("halt\n.data\n.byte 1, 2\n.space 2\n.byte 3"))
        assert data.data == b"\x01\x02\x00\x00\x03"

    def test_asciiz(self):
        data = data_of(assemble('halt\n.data\ns: .asciiz "hi"'))
        assert data.data == b"hi\x00"

    def test_align(self):
        data = data_of(assemble("halt\n.data\n.byte 1\n.align 2\n.word 2"))
        assert len(data.data) == 8

    def test_data_segment_kind(self):
        program = assemble("halt\n.data\n.word 1")
        assert data_of(program).kind is SegmentKind.DATA
        assert text_of(program).kind is SegmentKind.CODE


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate t0, t1\nhalt")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            assemble("add q0, t1, t2\nhalt")

    def test_immediate_overflow(self):
        with pytest.raises(AssemblerError):
            assemble("addi t0, t0, 0x12345\nhalt")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError):
            assemble(".frob 1\nhalt")

    def test_instructions_in_data_section(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nadd t0, t1, t2")

"""Tests for the SRP-32 disassembler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.assembler import assemble
from repro.cpu.disassembler import (
    decode_rate,
    disassemble,
    disassemble_word,
    format_instruction,
)
from repro.cpu.isa import Instruction, Op, decode


class TestFormatInstruction:
    def test_r_format(self):
        ins = Instruction(Op.ADD, a=8, b=9, c=10)
        assert format_instruction(ins) == "add t0, t1, t2"

    def test_memory_operand(self):
        ins = Instruction(Op.LW, a=8, b=29, imm=0xFFFC)
        assert format_instruction(ins) == "lw t0, -4(sp)"

    def test_branch_with_address(self):
        ins = Instruction(Op.BNE, a=8, b=0, imm=0xFFFE)  # -2 words
        assert format_instruction(ins, address=0x1008) == (
            "bne t0, zero, 0x1004"
        )

    def test_jump(self):
        ins = Instruction(Op.J, imm=0x1000 // 4)
        assert format_instruction(ins) == "j 0x1000"

    def test_system(self):
        assert format_instruction(Instruction(Op.HALT)) == "halt"

    def test_lui_hex(self):
        ins = Instruction(Op.LUI, a=8, imm=0x1234)
        assert format_instruction(ins) == "lui t0, 0x1234"


class TestDisassembleRoundTrip:
    SOURCE = """
    main:
        li   t0, 10
        la   t1, data
    loop:
        lw   t2, 0(t1)
        add  s0, s0, t2
        addi t0, t0, -1
        bne  t0, zero, loop
        jal  helper
        halt
    helper:
        jr   ra
        .data
    data: .word 5
    """

    def test_every_assembled_word_decodes(self):
        program = assemble(self.SOURCE)
        text = next(s for s in program.segments if s.name == "text")
        assert decode_rate(text.data) == 1.0

    def test_reassembly_round_trip(self):
        """disassemble(assemble(x)) must re-assemble to identical bytes."""
        program = assemble(self.SOURCE)
        text = next(s for s in program.segments if s.name == "text")
        listing = disassemble(text.data, base_address=text.base)
        # Strip "address: hexword" prefixes; relocate branch/jump targets
        # back into label-free absolute form the assembler accepts.
        lines = []
        for line in listing:
            body = line.split("  ", 1)[1]
            lines.append(body)
        # Branches render absolute targets; convert to a re-assemblable
        # program by reusing raw words instead for control flow. Simpler
        # and stronger: decode both streams and compare instruction lists.
        redecoded = [
            decode(int.from_bytes(text.data[i : i + 4], "big"))
            for i in range(0, len(text.data), 4)
        ]
        assert all(isinstance(ins.op, Op) for ins in redecoded)

    def test_garbage_renders_as_word_directive(self):
        line = disassemble_word(0xFFFFFFFF)
        assert line.startswith(".word")


class TestDecodeRateAsCiphertextDetector:
    def test_plaintext_code_decodes_fully(self):
        program = assemble(TestDisassembleRoundTrip.SOURCE)
        text = next(s for s in program.segments if s.name == "text")
        assert decode_rate(text.data) == 1.0

    def test_ciphertext_mostly_fails_to_decode(self):
        """The §1 property: encrypted code 'would raise exceptions' — most
        cipher blocks don't decode as instructions."""
        from repro.crypto.des import DES
        from repro.crypto.modes import ecb_encrypt
        program = assemble(TestDisassembleRoundTrip.SOURCE)
        text = next(s for s in program.segments if s.name == "text")
        padded = text.data + b"\x00" * ((-len(text.data)) % 8)
        ciphertext = ecb_encrypt(DES(b"cipherk!"), padded)
        assert decode_rate(ciphertext) < 0.5

    def test_empty_blob(self):
        assert decode_rate(b"") == 0.0

    @given(st.binary(min_size=4, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_rate_is_a_fraction(self, blob):
        assert 0.0 <= decode_rate(blob) <= 1.0


class TestDisassembleListing:
    def test_lines_carry_addresses(self):
        listing = disassemble(
            Instruction(Op.HALT).encode().to_bytes(4, "big"),
            base_address=0x1000,
        )
        assert listing == ["0x00001000: e4000000  halt"]

    def test_pads_unaligned_input(self):
        listing = disassemble(b"\x00\x00\x01")
        assert len(listing) == 1

"""The sample-program library, run on every processor configuration.

Each kernel must produce its documented output on the insecure baseline,
the XOM processor, and the OTP processor — the strongest whole-system
statement the repository makes: arbitrary real programs are oblivious to
the protection scheme except in cycle count.
"""

import pytest

from repro.cpu.programs import SAMPLES, SampleProgram
from repro.secure.processor import EngineKind, SecureProcessor
from repro.secure.software import ProtectionScheme, package_program


@pytest.fixture(scope="module")
def cpus():
    return {
        EngineKind.BASELINE: SecureProcessor(
            key_seed="programs-cpu", engine_kind=EngineKind.BASELINE
        ),
        EngineKind.XOM: SecureProcessor(
            key_seed="programs-cpu", engine_kind=EngineKind.XOM
        ),
        EngineKind.OTP: SecureProcessor(
            key_seed="programs-cpu", engine_kind=EngineKind.OTP
        ),
    }


@pytest.mark.parametrize("sample", SAMPLES, ids=lambda s: s.name)
class TestSamplesEverywhere:
    def test_baseline(self, sample: SampleProgram, cpus):
        report = cpus[EngineKind.BASELINE].run_plain(
            sample.assemble(), max_steps=300_000
        )
        assert report.output == sample.expected_output

    def test_xom(self, sample: SampleProgram, cpus):
        cpu = cpus[EngineKind.XOM]
        image = package_program(
            sample.assemble(), cpu.public_key,
            scheme=ProtectionScheme.DIRECT,
        )
        report = cpu.run(image, max_steps=300_000)
        assert report.output == sample.expected_output

    def test_otp(self, sample: SampleProgram, cpus):
        cpu = cpus[EngineKind.OTP]
        image = package_program(
            sample.assemble(), cpu.public_key, scheme=ProtectionScheme.OTP
        )
        report = cpu.run(image, max_steps=300_000)
        assert report.output == sample.expected_output


class TestSampleMetadata:
    def test_four_samples(self):
        assert len(SAMPLES) == 4
        assert len({sample.name for sample in SAMPLES}) == 4

    def test_all_assemble(self):
        for sample in SAMPLES:
            program = sample.assemble()
            assert program.segments

"""Differential testing of the SRP-32 ALU against a Python golden model.

Hypothesis generates short straight-line register programs; a direct
Python evaluator predicts the register file, and the machine (running the
assembled bytes through the full cache hierarchy) must agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.assembler import assemble
from repro.cpu.machine import Machine
from repro.memory.dram import DRAM
from repro.memory.hierarchy import MemoryHierarchy
from repro.secure.engine import BaselineEngine

_MASK32 = 0xFFFFFFFF


def _signed(value):
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


# (mnemonic, golden lambda) over (b, c) register values.
_R_OPS = {
    "add": lambda b, c: b + c,
    "sub": lambda b, c: b - c,
    "and": lambda b, c: b & c,
    "or": lambda b, c: b | c,
    "xor": lambda b, c: b ^ c,
    "sll": lambda b, c: b << (c & 31),
    "srl": lambda b, c: (b & _MASK32) >> (c & 31),
    "sra": lambda b, c: _signed(b) >> (c & 31),
    "slt": lambda b, c: int(_signed(b) < _signed(c)),
    "sltu": lambda b, c: int((b & _MASK32) < (c & _MASK32)),
    "mul": lambda b, c: b * c,
}

_I_OPS = {
    "addi": lambda b, imm: b + imm,
    "andi": lambda b, imm: b & (imm & 0xFFFF),
    "ori": lambda b, imm: b | (imm & 0xFFFF),
    "xori": lambda b, imm: b ^ (imm & 0xFFFF),
    "slti": lambda b, imm: int(_signed(b) < imm),
}

_r_instruction = st.tuples(
    st.sampled_from(sorted(_R_OPS)),
    st.integers(2, 15),  # destination (avoid zero/at)
    st.integers(2, 15),
    st.integers(2, 15),
)
_i_instruction = st.tuples(
    st.sampled_from(sorted(_I_OPS)),
    st.integers(2, 15),
    st.integers(2, 15),
    st.integers(-0x8000, 0x7FFF),
)


def run_machine(source: str) -> list[int]:
    program = assemble(source)
    dram = DRAM(line_bytes=128, latency=100)
    for segment in program.segments:
        dram.poke(segment.base, segment.data)
    machine = Machine(
        MemoryHierarchy(BaselineEngine(dram)), program.entry_point
    )
    machine.run(max_steps=10_000)
    return [machine.registers.read(index) for index in range(32)]


class TestALUGoldenModel:
    @given(
        seeds=st.lists(st.integers(0, 0x7FFF), min_size=14, max_size=14),
        body=st.lists(
            st.one_of(_r_instruction, _i_instruction),
            min_size=1, max_size=25,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_register_file_matches_golden(self, seeds, body):
        golden = [0] * 32
        lines = []
        for index, seed in enumerate(seeds, start=2):
            lines.append(f"li r{index}, {seed}")
            golden[index] = seed
        for instruction in body:
            if instruction[0] in _R_OPS:
                op, rd, rs, rt = instruction
                lines.append(f"{op} r{rd}, r{rs}, r{rt}")
                golden[rd] = _R_OPS[op](golden[rs], golden[rt]) & _MASK32
            else:
                op, rd, rs, imm = instruction
                lines.append(f"{op} r{rd}, r{rs}, {imm}")
                golden[rd] = _I_OPS[op](golden[rs], imm) & _MASK32
        lines.append("halt")
        registers = run_machine("\n".join(lines))
        # sp (r29) is machine-initialized; ignore it and r0/r1.
        for index in range(2, 29):
            assert registers[index] == golden[index], (
                f"r{index} diverged: machine={registers[index]:#x} "
                f"golden={golden[index]:#x}"
            )

    def test_golden_model_spot_check(self):
        registers = run_machine(
            "li r2, 7\nli r3, 9\nmul r4, r2, r3\nsub r5, r2, r3\nhalt"
        )
        assert registers[4] == 63
        assert registers[5] == (7 - 9) & _MASK32

"""Tests for SRP-32 instruction encoding and decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import Format, Instruction, Op, decode
from repro.errors import IllegalInstructionError


class TestEncodeDecode:
    def test_r_format_round_trip(self):
        ins = Instruction(Op.ADD, a=1, b=2, c=3)
        assert decode(ins.encode()) == ins

    def test_i_format_round_trip(self):
        ins = Instruction(Op.ADDI, a=5, b=6, imm=0x1234)
        assert decode(ins.encode()) == ins

    def test_j_format_round_trip(self):
        ins = Instruction(Op.JAL, imm=0x3FFFFFF)
        assert decode(ins.encode()) == ins

    def test_system_format(self):
        assert decode(Instruction(Op.HALT).encode()).op is Op.HALT

    @given(st.sampled_from(list(Op)), st.integers(0, 31), st.integers(0, 31),
           st.integers(0, 31), st.integers(0, 0xFFFF))
    @settings(max_examples=200, deadline=None)
    def test_all_ops_round_trip(self, op, a, b, c, imm):
        fmt = op.format
        if fmt is Format.R:
            ins = Instruction(op, a=a, b=b, c=c)
        elif fmt is Format.I:
            ins = Instruction(op, a=a, b=b, imm=imm)
        else:
            ins = Instruction(op, imm=imm)
        assert decode(ins.encode()) == ins

    def test_opcode_values_are_unique(self):
        values = [op.value for op in Op]
        assert len(values) == len(set(values))


class TestSignedImmediate:
    def test_positive(self):
        assert Instruction(Op.ADDI, imm=5).signed_imm == 5

    def test_negative(self):
        assert Instruction(Op.ADDI, imm=0xFFFF).signed_imm == -1
        assert Instruction(Op.ADDI, imm=0x8000).signed_imm == -0x8000

    def test_boundary(self):
        assert Instruction(Op.ADDI, imm=0x7FFF).signed_imm == 0x7FFF


class TestIllegalDecodes:
    def test_unknown_opcode(self):
        with pytest.raises(IllegalInstructionError):
            decode(0xFFFFFFFF)

    def test_zero_word_is_illegal(self):
        """All-zero words (uninitialized memory) must not decode silently —
        opcode 0 is deliberately unassigned."""
        with pytest.raises(IllegalInstructionError):
            decode(0)

    def test_r_format_reserved_bits_checked(self):
        """Random ciphertext rarely decodes: R-format demands zero tails.
        This is the XOM 'tampered code raises exceptions' behaviour."""
        word = Instruction(Op.ADD, a=1, b=2, c=3).encode() | 0x1
        with pytest.raises(IllegalInstructionError):
            decode(word)

    def test_garbage_rejection_rate_is_high(self):
        """Sanity-check the tamper-detection story: most random words must
        fail to decode (sparse encoding)."""
        import random
        rng = random.Random(42)
        rejected = 0
        for _ in range(2000):
            try:
                decode(rng.getrandbits(32))
            except IllegalInstructionError:
                rejected += 1
        assert rejected > 1000

"""Tests for the SRP-32 functional machine, run over the plain baseline
memory path (the secure paths are covered in test_processor.py)."""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.machine import HaltReason, Machine
from repro.errors import MachineError
from repro.memory.dram import DRAM
from repro.memory.hierarchy import MemoryHierarchy
from repro.secure.engine import BaselineEngine


def run(source, max_steps=100_000, input_values=None):
    program = assemble(source)
    dram = DRAM(line_bytes=128, latency=100)
    for segment in program.segments:
        dram.poke(segment.base, segment.data)
    machine = Machine(
        MemoryHierarchy(BaselineEngine(dram)), program.entry_point
    )
    if input_values:
        machine.input_queue.extend(input_values)
    return machine.run(max_steps=max_steps)


class TestArithmetic:
    def test_addition_chain(self):
        result = run(
            """
            li t0, 20
            li t1, 22
            add a0, t0, t1
            li v0, 1
            syscall
            halt
            """
        )
        assert result.output == "42"

    def test_subtraction_negative_result(self):
        result = run(
            "li t0, 5\nli t1, 9\nsub a0, t0, t1\nli v0, 1\nsyscall\nhalt"
        )
        assert result.output == "-4"

    def test_multiplication(self):
        result = run(
            "li t0, -7\nli t1, 6\nmul a0, t0, t1\nli v0, 1\nsyscall\nhalt"
        )
        assert result.output == "-42"

    def test_unsigned_division_and_remainder(self):
        result = run(
            """
            li t0, 100
            li t1, 7
            divu a0, t0, t1
            li v0, 1
            syscall
            li a0, 32
            li v0, 2
            syscall
            li t0, 100
            li t1, 7
            remu a0, t0, t1
            li v0, 1
            syscall
            halt
            """
        )
        assert result.output == "14 2"

    def test_division_by_zero_traps(self):
        with pytest.raises(MachineError):
            run("li t0, 1\ndivu t2, t0, zero\nhalt")

    def test_shifts(self):
        result = run(
            """
            li t0, 1
            slli a0, t0, 10
            li v0, 1
            syscall
            halt
            """
        )
        assert result.output == "1024"

    def test_sra_preserves_sign(self):
        result = run(
            "li t0, -16\nsrai a0, t0, 2\nli v0, 1\nsyscall\nhalt"
        )
        assert result.output == "-4"

    def test_slt_signed_vs_unsigned(self):
        result = run(
            """
            li t0, -1
            li t1, 1
            slt a0, t0, t1       # signed: -1 < 1 -> 1
            li v0, 1
            syscall
            sltu a0, t0, t1      # unsigned: 0xffffffff < 1 -> 0
            li v0, 1
            syscall
            halt
            """
        )
        assert result.output == "10"

    def test_zero_register_is_hardwired(self):
        result = run(
            "li t0, 99\nadd zero, t0, t0\nadd a0, zero, zero\n"
            "li v0, 1\nsyscall\nhalt"
        )
        assert result.output == "0"


class TestControlFlow:
    def test_loop_sums_1_to_10(self):
        result = run(
            """
            li t0, 10
            li s0, 0
            loop:
            add s0, s0, t0
            addi t0, t0, -1
            bne t0, zero, loop
            mov a0, s0
            li v0, 1
            syscall
            halt
            """
        )
        assert result.output == "55"

    def test_function_call_and_return(self):
        result = run(
            """
            main:
            li a0, 5
            jal square
            mov a0, v1
            li v0, 1
            syscall
            halt
            square:
            mul v1, a0, a0
            ret
            """
        )
        assert result.output == "25"

    def test_recursive_factorial_via_stack(self):
        result = run(
            """
            main:
            li a0, 6
            jal fact
            mov a0, v1
            li v0, 1
            syscall
            halt
            fact:
            push ra
            push a0
            li t0, 2
            blt a0, t0, base
            addi a0, a0, -1
            jal fact
            pop a0
            pop ra
            mul v1, v1, a0
            ret
            base:
            li v1, 1
            pop a0
            pop ra
            ret
            """
        )
        assert result.output == "720"

    def test_step_limit(self):
        result = run("spin: j spin\nhalt", max_steps=100)
        assert result.reason is HaltReason.STEP_LIMIT
        assert result.steps == 100


class TestMemoryAccess:
    def test_data_segment_round_trip(self):
        result = run(
            """
            la t0, value
            lw a0, 0(t0)
            li v0, 1
            syscall
            halt
            .data
            value: .word 1234
            """
        )
        assert result.output == "1234"

    def test_store_then_load(self):
        result = run(
            """
            la t0, buffer
            li t1, 77
            sw t1, 4(t0)
            lw a0, 4(t0)
            li v0, 1
            syscall
            halt
            .data
            buffer: .space 16
            """
        )
        assert result.output == "77"

    def test_byte_access_signed_and_unsigned(self):
        result = run(
            """
            la t0, bytes
            lb a0, 0(t0)
            li v0, 1
            syscall
            li a0, 32
            li v0, 2
            syscall
            lbu a0, 0(t0)
            li v0, 1
            syscall
            halt
            .data
            bytes: .byte 0xff
            """
        )
        assert result.output == "-1 255"

    def test_unaligned_word_access_traps(self):
        with pytest.raises(MachineError):
            run("li t0, 2\nlw t1, 0(t0)\nhalt")

    def test_string_output(self):
        result = run(
            """
            la a0, msg
            li v0, 3
            syscall
            halt
            .data
            msg: .asciiz "secure!"
            """
        )
        assert result.output == "secure!"


class TestSyscalls:
    def test_exit_code(self):
        result = run("li a0, 3\nli v0, 10\nsyscall")
        assert result.reason is HaltReason.EXIT_SYSCALL
        assert result.exit_code == 3

    def test_read_int(self):
        result = run(
            "li v0, 5\nsyscall\nmov a0, v0\nli v0, 1\nsyscall\nhalt",
            input_values=[88],
        )
        assert result.output == "88"

    def test_read_int_empty_queue_traps(self):
        with pytest.raises(MachineError):
            run("li v0, 5\nsyscall\nhalt")

    def test_unknown_syscall_traps(self):
        with pytest.raises(MachineError):
            run("li v0, 99\nsyscall\nhalt")


class TestCycleAccounting:
    def test_cycles_include_memory_stalls(self):
        result = run("halt")
        # One instruction, but the first fetch missed all the way to DRAM.
        assert result.steps == 1
        assert result.cycles > 100

    def test_cache_warm_loop_is_cheap_per_iteration(self):
        hot = run(
            """
            li t0, 1000
            loop: addi t0, t0, -1
            bne t0, zero, loop
            halt
            """
        )
        # ~3000 instructions; one cold I-line; far fewer than 1 miss/step.
        assert hot.cycles < hot.steps * 3

"""Tests for the WorkloadSource implementations."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.workloads.patterns import take
from repro.workloads.sources import (
    TASK_LINE_STRIDE,
    MultiTaskInterleaver,
    SingleBenchmark,
    Switch,
    TraceFile,
)
from repro.workloads.spec import BY_NAME
from repro.workloads.tracegen import save_trace


class TestSingleBenchmark:
    def test_stream_is_the_benchmark_generator(self):
        source = SingleBenchmark("art")
        expected = take(BY_NAME["art"].generator(seed=3), 200)
        assert take(source.stream(seed=3), 200) == expected

    def test_declares_one_task_with_the_figure3_anchor(self):
        source = SingleBenchmark("mcf")
        (task,) = source.tasks
        assert task.xom_id == 0
        assert task.label == "mcf"
        assert task.xom_slowdown_pct == BY_NAME["mcf"].xom_slowdown_pct

    def test_accepts_model_objects(self):
        source = SingleBenchmark(BY_NAME["vpr"])
        assert source.name == "vpr"


class TestTraceFile:
    def test_cycles_the_file(self, tmp_path):
        refs = [(10, True), (11, False), (12, False)]
        path = tmp_path / "t.trace"
        save_trace(refs, path)
        source = TraceFile(path, name="t")
        assert take(source.stream(), 7) == (refs * 3)[:7]

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        save_trace([], path, header="nothing here")
        with pytest.raises(ConfigurationError):
            TraceFile(path).refs()

    def test_gzipped_trace(self, tmp_path):
        refs = [(1, False), (2, True)]
        path = tmp_path / "t.trace.gz"
        save_trace(refs, path)
        assert take(TraceFile(path).stream(), 2) == refs


class TestMultiTaskInterleaver:
    def test_single_task_degenerates_to_the_plain_stream(self):
        source = MultiTaskInterleaver(["art"], quantum=50)
        expected = take(BY_NAME["art"].generator(seed=1), 300)
        items = take(source.stream(seed=1), 300)
        assert items == expected  # no switches, no offsets

    def test_quantum_boundaries_emit_switch_events(self):
        source = MultiTaskInterleaver(["art", "vpr"], quantum=4)
        items = take(source.stream(), 3 * 5)  # 3 quanta + 3 switches
        switches = [item for item in items if type(item) is Switch]
        assert switches == [Switch(0, 1), Switch(1, 0), Switch(0, 1)]
        # Exactly `quantum` refs between consecutive switches.
        runs = [
            len(list(group))
            for is_switch, group in itertools.groupby(
                items, key=lambda item: type(item) is Switch
            )
            if not is_switch
        ]
        assert runs == [4, 4, 4]

    def test_tasks_occupy_disjoint_line_slices(self):
        source = MultiTaskInterleaver(["art", "vpr", "gzip"], quantum=10)
        refs = [item for item in take(source.stream(), 100)
                if type(item) is not Switch]
        slices = {line // TASK_LINE_STRIDE for line, _ in refs}
        assert slices == {0, 1, 2}

    def test_per_task_seed_derivation(self):
        """Task *i* runs the benchmark's seed+i stream (so one benchmark
        listed twice still runs two distinct streams), offset into its
        own line slice."""
        source = MultiTaskInterleaver(["art", "art"], quantum=5)
        items = take(source.stream(seed=1), 11)
        task0 = take(BY_NAME["art"].generator(seed=1), 5)
        task1 = take(BY_NAME["art"].generator(seed=2), 5)
        assert items[:5] == task0
        assert [(line - TASK_LINE_STRIDE, is_write)
                for line, is_write in items[6:11]] == task1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiTaskInterleaver([], quantum=5)
        with pytest.raises(ConfigurationError):
            MultiTaskInterleaver(["art"], quantum=0)

"""Tests for the WorkloadSource implementations."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.workloads.patterns import take
from repro.workloads import sources as sources_module
from repro.workloads.sources import (
    TASK_LINE_STRIDE,
    MultiTaskInterleaver,
    SingleBenchmark,
    Switch,
    TraceFile,
    WorkloadSource,
    _trace_columns_stat,
)
from repro.workloads.spec import BY_NAME
from repro.workloads.tracegen import save_trace


def flatten_blocks(source, seed, block_size, count):
    """Materialize ``count`` items from ``stream_blocks`` back into the
    scalar vocabulary: ``(line, is_write)`` tuples and Switch markers."""
    items = []
    for item in source.stream_blocks(seed=seed, block_size=block_size):
        if type(item) is Switch:
            items.append(item)
        else:
            lines, writes = item
            assert 0 < len(lines) <= block_size
            assert len(lines) == len(writes)
            items.extend(zip(lines.tolist(), map(bool, writes)))
        if len(items) >= count:
            break
    return items[:count]


class TestSingleBenchmark:
    def test_stream_is_the_benchmark_generator(self):
        source = SingleBenchmark("art")
        expected = take(BY_NAME["art"].generator(seed=3), 200)
        assert take(source.stream(seed=3), 200) == expected

    def test_declares_one_task_with_the_figure3_anchor(self):
        source = SingleBenchmark("mcf")
        (task,) = source.tasks
        assert task.xom_id == 0
        assert task.label == "mcf"
        assert task.xom_slowdown_pct == BY_NAME["mcf"].xom_slowdown_pct

    def test_accepts_model_objects(self):
        source = SingleBenchmark(BY_NAME["vpr"])
        assert source.name == "vpr"


class TestTraceFile:
    def test_cycles_the_file(self, tmp_path):
        refs = [(10, True), (11, False), (12, False)]
        path = tmp_path / "t.trace"
        save_trace(refs, path)
        source = TraceFile(path, name="t")
        assert take(source.stream(), 7) == (refs * 3)[:7]

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.trace"
        save_trace([], path, header="nothing here")
        with pytest.raises(ConfigurationError):
            TraceFile(path).refs()

    def test_gzipped_trace(self, tmp_path):
        refs = [(1, False), (2, True)]
        path = tmp_path / "t.trace.gz"
        save_trace(refs, path)
        assert take(TraceFile(path).stream(), 2) == refs


class TestMultiTaskInterleaver:
    def test_single_task_degenerates_to_the_plain_stream(self):
        source = MultiTaskInterleaver(["art"], quantum=50)
        expected = take(BY_NAME["art"].generator(seed=1), 300)
        items = take(source.stream(seed=1), 300)
        assert items == expected  # no switches, no offsets

    def test_quantum_boundaries_emit_switch_events(self):
        source = MultiTaskInterleaver(["art", "vpr"], quantum=4)
        items = take(source.stream(), 3 * 5)  # 3 quanta + 3 switches
        switches = [item for item in items if type(item) is Switch]
        assert switches == [Switch(0, 1), Switch(1, 0), Switch(0, 1)]
        # Exactly `quantum` refs between consecutive switches.
        runs = [
            len(list(group))
            for is_switch, group in itertools.groupby(
                items, key=lambda item: type(item) is Switch
            )
            if not is_switch
        ]
        assert runs == [4, 4, 4]

    def test_tasks_occupy_disjoint_line_slices(self):
        source = MultiTaskInterleaver(["art", "vpr", "gzip"], quantum=10)
        refs = [item for item in take(source.stream(), 100)
                if type(item) is not Switch]
        slices = {line // TASK_LINE_STRIDE for line, _ in refs}
        assert slices == {0, 1, 2}

    def test_per_task_seed_derivation(self):
        """Task *i* runs the benchmark's seed+i stream (so one benchmark
        listed twice still runs two distinct streams), offset into its
        own line slice."""
        source = MultiTaskInterleaver(["art", "art"], quantum=5)
        items = take(source.stream(seed=1), 11)
        task0 = take(BY_NAME["art"].generator(seed=1), 5)
        task1 = take(BY_NAME["art"].generator(seed=2), 5)
        assert items[:5] == task0
        assert [(line - TASK_LINE_STRIDE, is_write)
                for line, is_write in items[6:11]] == task1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MultiTaskInterleaver([], quantum=5)
        with pytest.raises(ConfigurationError):
            MultiTaskInterleaver(["art"], quantum=0)


class TestStreamBlocks:
    """stream_blocks must reproduce stream element-for-element on every
    source, with Switch markers carried as block boundaries."""

    @pytest.mark.parametrize("seed", [1, 6])
    @pytest.mark.parametrize("block_size", [1, 97, 4096])
    def test_single_benchmark_parity(self, seed, block_size):
        source = SingleBenchmark("equake")
        expected = take(source.stream(seed=seed), 5000)
        assert flatten_blocks(source, seed, block_size, 5000) == expected

    @pytest.mark.parametrize("block_size", [1, 50, 512])
    def test_trace_file_parity_including_wrap(self, tmp_path, block_size):
        refs = [(100 + i, i % 3 == 0) for i in range(137)]
        path = tmp_path / "t.trace"
        save_trace(refs, path)
        source = TraceFile(path, name="t")
        expected = take(source.stream(), 1000)
        assert flatten_blocks(source, 1, block_size, 1000) == expected

    @pytest.mark.parametrize("seed", [1, 4])
    @pytest.mark.parametrize("block_size", [1, 61, 777, 2048])
    def test_interleaver_parity_switches_at_boundaries(self, seed,
                                                       block_size):
        # quantum 777 with block 777 exercises switch-exactly-at-block
        # boundaries; the other sizes exercise mid-quantum splits.
        source = MultiTaskInterleaver(["art", "vpr", "gzip"],
                                      quantum=777)
        expected = take(source.stream(seed=seed), 6000)
        assert flatten_blocks(source, seed, block_size, 6000) == expected

    def test_single_task_interleaver_parity(self):
        source = MultiTaskInterleaver(["mcf"], quantum=100)
        expected = take(source.stream(seed=2), 3000)
        assert flatten_blocks(source, 2, 256, 3000) == expected

    def test_default_adapter_parity(self):
        """A source that only implements stream() inherits a correct
        (if slower) stream_blocks from the protocol base class."""
        inner = MultiTaskInterleaver(["art", "mesa"], quantum=50)

        class Adapterized(WorkloadSource):
            name = "adapterized"
            tasks = inner.tasks

            def stream(self, seed=1):
                return inner.stream(seed=seed)

        expected = take(inner.stream(seed=1), 2000)
        assert flatten_blocks(Adapterized(), 1, 64, 2000) == expected

    def test_blocks_never_span_a_switch(self):
        source = MultiTaskInterleaver(["art", "vpr"], quantum=10)
        stream = source.stream_blocks(seed=1, block_size=64)
        seen = 0
        for item in stream:
            if type(item) is Switch:
                continue
            # Every block belongs wholly to one quantum: never longer
            # than the refs remaining before the next switch.
            assert len(item[0]) <= 10 - (seen % 10)
            seen += len(item[0])
            if seen >= 200:
                break


class TestTraceParseMemo:
    def test_trace_parsed_once_per_identity(self, tmp_path,
                                            monkeypatch):
        refs = [(7, False), (8, True), (9, False)]
        path = tmp_path / "memo.trace"
        save_trace(refs, path)
        calls = {"n": 0}
        real_load = sources_module.load_trace

        def counting_load(p):
            calls["n"] += 1
            return real_load(p)

        monkeypatch.setattr(sources_module, "load_trace", counting_load)
        _trace_columns_stat.cache_clear()
        # Several instances, both stream forms, multiple seeds: one parse.
        for seed in (1, 2, 3):
            source = TraceFile(path, name="memo")
            assert take(source.stream(seed=seed), 5) == (refs * 2)[:5]
            assert flatten_blocks(source, seed, 2, 5) == (refs * 2)[:5]
        assert calls["n"] == 1

    def test_memo_invalidated_by_file_change(self, tmp_path):
        path = tmp_path / "changing.trace"
        save_trace([(1, False)], path)
        _trace_columns_stat.cache_clear()
        assert TraceFile(path).refs() == [(1, False)]
        # Rewrite with different content *and* size; mtime may or may
        # not tick within test resolution, but (size, mtime) keying must
        # catch this edit.
        save_trace([(2, True), (3, False)], path)
        assert TraceFile(path).refs() == [(2, True), (3, False)]

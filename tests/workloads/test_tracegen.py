"""Tests for trace save/load/profile."""

import io

import pytest

from repro.errors import ConfigurationError
from repro.workloads.patterns import take
from repro.workloads.spec import BY_NAME
from repro.workloads.tracegen import (
    load_trace,
    parse_trace,
    profile,
    save_trace,
)


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        refs = [(10, True), (11, False), (10, False)]
        path = tmp_path / "trace.txt"
        assert save_trace(refs, path) == 3
        assert list(load_trace(path)) == refs

    def test_header_comments_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace([(1, False)], path, header="bench: art\nseed: 1")
        assert list(load_trace(path)) == [(1, False)]

    def test_benchmark_trace_round_trip(self, tmp_path):
        refs = take(BY_NAME["art"].generator(), 500)
        path = tmp_path / "art.trace"
        save_trace(refs, path)
        assert list(load_trace(path)) == refs

    def test_gzip_round_trip(self, tmp_path):
        """*.gz paths compress transparently on save and load."""
        refs = take(BY_NAME["art"].generator(), 500)
        path = tmp_path / "art.trace.gz"
        assert save_trace(refs, path, header="bench: art") == 500
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
        assert list(load_trace(path)) == refs

    def test_gzip_smaller_than_plain(self, tmp_path):
        refs = take(BY_NAME["art"].generator(), 2000)
        plain = tmp_path / "t.trace"
        packed = tmp_path / "t.trace.gz"
        save_trace(refs, plain)
        save_trace(refs, packed)
        assert packed.stat().st_size < plain.stat().st_size


class TestParsing:
    def test_inline_comments_and_blanks(self):
        text = "R 5  # hot line\n\nW 6\n"
        assert list(parse_trace(io.StringIO(text))) == [(5, False), (6, True)]

    def test_rejects_bad_op(self):
        with pytest.raises(ConfigurationError):
            list(parse_trace(io.StringIO("X 5\n")))

    def test_rejects_bad_index(self):
        with pytest.raises(ConfigurationError):
            list(parse_trace(io.StringIO("R five\n")))

    def test_bad_index_chains_the_parse_error(self):
        """The int() failure stays on the exception chain (__cause__),
        not suppressed — the traceback shows what int() rejected."""
        with pytest.raises(ConfigurationError) as excinfo:
            list(parse_trace(io.StringIO("R five\n")))
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            list(parse_trace(io.StringIO("R -1\n")))


class TestProfile:
    def test_basic_statistics(self):
        refs = [(0, True), (0, False), (1, False), (2, False)]
        result = profile(refs)
        assert result.references == 4
        assert result.writes == 1
        assert result.distinct_lines == 3
        assert result.footprint_bytes == 3 * 128
        assert result.top_line_share == 0.5
        assert result.write_fraction == 0.25

    def test_empty_stream(self):
        result = profile([])
        assert result.references == 0
        assert result.write_fraction == 0.0

    def test_benchmark_profiles_match_design(self):
        """The workload models' documented footprints hold (spot check)."""
        vpr = profile(take(BY_NAME["vpr"].generator(), 40_000))
        assert vpr.distinct_lines < 6000  # ~600KB netlist
        art = profile(take(BY_NAME["art"].generator(), 40_000))
        assert 13_000 < art.distinct_lines <= 14_001

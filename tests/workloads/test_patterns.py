"""Tests for the reference-pattern combinators."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workloads.patterns import (
    Region,
    mixture,
    phases,
    pointer_chase,
    random_uniform,
    sequential,
    strided,
    take,
    zipf_lines,
)


class TestRegion:
    def test_bounds(self):
        region = Region(100, 50)
        assert region.end == 150

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Region(0, 0)


class TestSequential:
    def test_walks_in_order_and_wraps(self):
        refs = take(sequential(Region(10, 3)), 7)
        assert [line for line, _ in refs] == [10, 11, 12, 10, 11, 12, 10]

    def test_write_fraction(self):
        refs = take(
            sequential(Region(0, 100), write_fraction=0.5,
                       rng=random.Random(1)),
            1000,
        )
        writes = sum(is_write for _, is_write in refs)
        assert 400 < writes < 600

    def test_zero_write_fraction(self):
        refs = take(sequential(Region(0, 10)), 50)
        assert not any(is_write for _, is_write in refs)


class TestStrided:
    def test_steps_by_stride(self):
        refs = take(strided(Region(0, 100), stride_lines=10), 5)
        assert [line for line, _ in refs] == [0, 10, 20, 30, 40]

    def test_wrap_skews_to_cover_all_lines(self):
        refs = take(strided(Region(0, 10), stride_lines=3), 40)
        assert {line for line, _ in refs} == set(range(10))

    def test_rejects_bad_stride(self):
        with pytest.raises(ConfigurationError):
            take(strided(Region(0, 10), stride_lines=0), 1)


class TestRandomUniform:
    def test_stays_in_region(self):
        refs = take(random_uniform(Region(50, 20), 0.3, random.Random(2)), 500)
        assert all(50 <= line < 70 for line, _ in refs)

    def test_covers_region(self):
        refs = take(random_uniform(Region(0, 10), 0.0, random.Random(3)), 500)
        assert {line for line, _ in refs} == set(range(10))

    def test_deterministic_for_seed(self):
        a = take(random_uniform(Region(0, 100), 0.5, random.Random(7)), 50)
        b = take(random_uniform(Region(0, 100), 0.5, random.Random(7)), 50)
        assert a == b


class TestPointerChase:
    def test_visits_every_line_once_per_cycle(self):
        refs = take(pointer_chase(Region(0, 16), 0.0, random.Random(4)), 16)
        assert sorted(line for line, _ in refs) == list(range(16))

    def test_cycles_repeat(self):
        chase = pointer_chase(Region(0, 8), 0.0, random.Random(5))
        first = [line for line, _ in take(chase, 8)]
        second = [line for line, _ in take(chase, 8)]
        assert first == second


class TestZipf:
    def test_skewed_head(self):
        refs = take(
            zipf_lines(Region(0, 4096), 0.0, random.Random(6)), 4000
        )
        head_hits = sum(1 for line, _ in refs if line < 64)
        # The head must be vastly over-represented vs uniform (64/4096).
        assert head_hits > 400

    def test_stays_in_region(self):
        refs = take(
            zipf_lines(Region(100, 1000), 0.0, random.Random(8)), 1000
        )
        assert all(100 <= line < 1100 for line, _ in refs)


class TestMixture:
    def test_respects_weights_roughly(self):
        rng = random.Random(9)
        a = sequential(Region(0, 10))
        b = sequential(Region(1000, 10))
        refs = take(mixture([(a, 0.9), (b, 0.1)], rng), 2000)
        from_b = sum(1 for line, _ in refs if line >= 1000)
        assert 100 < from_b < 320

    def test_rejects_zero_weights(self):
        with pytest.raises(ConfigurationError):
            take(mixture([(sequential(Region(0, 1)), 0.0)],
                         random.Random(0)), 1)


class TestPhases:
    def test_stages_run_in_order(self):
        first = sequential(Region(0, 5))
        second = sequential(Region(100, 5))
        refs = take(phases([(first, 5), (second, 1000)]), 10)
        assert all(line < 5 for line, _ in refs[:5])
        assert all(line >= 100 for line, _ in refs[5:])

    def test_final_stage_loops_forever(self):
        first = sequential(Region(0, 2))
        second = sequential(Region(100, 2))
        refs = take(phases([(first, 2), (second, 3)]), 20)
        assert all(line >= 100 for line, _ in refs[2:])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            take(phases([]), 1)

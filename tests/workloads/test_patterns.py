"""Tests for the reference-pattern combinators."""

import random
from array import array

import pytest

from repro.errors import ConfigurationError
from repro.workloads.patterns import (
    U32_TYPECODE,
    WRITE_TYPECODE,
    Region,
    blocks_from_drawer,
    concat_blocks,
    drawer_from_iterator,
    make_block,
    mixture,
    mixture_drawer,
    phases,
    phases_drawer,
    pointer_chase,
    pointer_chase_drawer,
    random_uniform,
    random_uniform_drawer,
    sequential,
    sequential_drawer,
    strided,
    strided_drawer,
    take,
    take_blocks,
    zipf_lines,
    zipf_lines_drawer,
)


class TestRegion:
    def test_bounds(self):
        region = Region(100, 50)
        assert region.end == 150

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Region(0, 0)


class TestSequential:
    def test_walks_in_order_and_wraps(self):
        refs = take(sequential(Region(10, 3)), 7)
        assert [line for line, _ in refs] == [10, 11, 12, 10, 11, 12, 10]

    def test_write_fraction(self):
        refs = take(
            sequential(Region(0, 100), write_fraction=0.5,
                       rng=random.Random(1)),
            1000,
        )
        writes = sum(is_write for _, is_write in refs)
        assert 400 < writes < 600

    def test_zero_write_fraction(self):
        refs = take(sequential(Region(0, 10)), 50)
        assert not any(is_write for _, is_write in refs)


class TestStrided:
    def test_steps_by_stride(self):
        refs = take(strided(Region(0, 100), stride_lines=10), 5)
        assert [line for line, _ in refs] == [0, 10, 20, 30, 40]

    def test_wrap_skews_to_cover_all_lines(self):
        refs = take(strided(Region(0, 10), stride_lines=3), 40)
        assert {line for line, _ in refs} == set(range(10))

    def test_rejects_bad_stride(self):
        with pytest.raises(ConfigurationError):
            take(strided(Region(0, 10), stride_lines=0), 1)


class TestRandomUniform:
    def test_stays_in_region(self):
        refs = take(random_uniform(Region(50, 20), 0.3, random.Random(2)), 500)
        assert all(50 <= line < 70 for line, _ in refs)

    def test_covers_region(self):
        refs = take(random_uniform(Region(0, 10), 0.0, random.Random(3)), 500)
        assert {line for line, _ in refs} == set(range(10))

    def test_deterministic_for_seed(self):
        a = take(random_uniform(Region(0, 100), 0.5, random.Random(7)), 50)
        b = take(random_uniform(Region(0, 100), 0.5, random.Random(7)), 50)
        assert a == b


class TestPointerChase:
    def test_visits_every_line_once_per_cycle(self):
        refs = take(pointer_chase(Region(0, 16), 0.0, random.Random(4)), 16)
        assert sorted(line for line, _ in refs) == list(range(16))

    def test_cycles_repeat(self):
        chase = pointer_chase(Region(0, 8), 0.0, random.Random(5))
        first = [line for line, _ in take(chase, 8)]
        second = [line for line, _ in take(chase, 8)]
        assert first == second


class TestZipf:
    def test_skewed_head(self):
        refs = take(
            zipf_lines(Region(0, 4096), 0.0, random.Random(6)), 4000
        )
        head_hits = sum(1 for line, _ in refs if line < 64)
        # The head must be vastly over-represented vs uniform (64/4096).
        assert head_hits > 400

    def test_stays_in_region(self):
        refs = take(
            zipf_lines(Region(100, 1000), 0.0, random.Random(8)), 1000
        )
        assert all(100 <= line < 1100 for line, _ in refs)


class TestMixture:
    def test_respects_weights_roughly(self):
        rng = random.Random(9)
        a = sequential(Region(0, 10))
        b = sequential(Region(1000, 10))
        refs = take(mixture([(a, 0.9), (b, 0.1)], rng), 2000)
        from_b = sum(1 for line, _ in refs if line >= 1000)
        assert 100 < from_b < 320

    def test_rejects_zero_weights(self):
        with pytest.raises(ConfigurationError):
            take(mixture([(sequential(Region(0, 1)), 0.0)],
                         random.Random(0)), 1)


class TestPhases:
    def test_stages_run_in_order(self):
        first = sequential(Region(0, 5))
        second = sequential(Region(100, 5))
        refs = take(phases([(first, 5), (second, 1000)]), 10)
        assert all(line < 5 for line, _ in refs[:5])
        assert all(line >= 100 for line, _ in refs[5:])

    def test_final_stage_loops_forever(self):
        first = sequential(Region(0, 2))
        second = sequential(Region(100, 2))
        refs = take(phases([(first, 2), (second, 3)]), 20)
        assert all(line >= 100 for line, _ in refs[2:])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            take(phases([]), 1)


# Every generator and its drawer twin, built fresh from one seed — the
# block-vs-scalar parity property quantifies over these forms.  Each
# entry returns (scalar_iterator, drawer); both must consume the RNG in
# the same per-reference order, so any seed gives identical streams.
def _pair(make_scalar, make_drawer):
    def build(seed):
        return (make_scalar(random.Random(seed)),
                make_drawer(random.Random(seed)))
    return build


def _mixture_pair(seed):
    def components(rng):
        return [
            (sequential(Region(0, 7), 0.3, rng), 0.5),
            (random_uniform(Region(100, 31), 0.2, rng), 0.3),
            (pointer_chase(Region(200, 16), 0.1, rng), 0.2),
        ]
    rng_a, rng_b = random.Random(seed), random.Random(seed)
    return (mixture(components(rng_a), rng_a),
            mixture_drawer(components(rng_b), rng_b))


def _phases_pair(seed):
    rng_a, rng_b = random.Random(seed), random.Random(seed)
    scalar = phases([
        (sequential(Region(0, 9), 1.0, rng_a), 23),
        (random_uniform(Region(50, 40), 0.25, rng_a), 77),
        (zipf_lines(Region(500, 512), 0.4, rng_a), 1 << 62),
    ])
    # Mix native drawers and a wrapped scalar stage: both are legal
    # stage forms and must compose identically.
    drawer = phases_drawer([
        (sequential_drawer(Region(0, 9), 1.0, rng_b), 23),
        (drawer_from_iterator(
            random_uniform(Region(50, 40), 0.25, rng_b)), 77),
        (zipf_lines_drawer(Region(500, 512), 0.4, rng_b), 1 << 62),
    ])
    return scalar, drawer


_FORMS = {
    "sequential": _pair(
        lambda rng: sequential(Region(10, 100), 0.4, rng),
        lambda rng: sequential_drawer(Region(10, 100), 0.4, rng)),
    "sequential_no_writes": _pair(
        lambda rng: sequential(Region(10, 3)),
        lambda rng: sequential_drawer(Region(10, 3))),
    "strided": _pair(
        lambda rng: strided(Region(0, 100), 7, 0.3, rng),
        lambda rng: strided_drawer(Region(0, 100), 7, 0.3, rng)),
    "random_uniform": _pair(
        lambda rng: random_uniform(Region(50, 321), 0.35, rng),
        lambda rng: random_uniform_drawer(Region(50, 321), 0.35, rng)),
    "pointer_chase": _pair(
        lambda rng: pointer_chase(Region(0, 64), 0.2, rng),
        lambda rng: pointer_chase_drawer(Region(0, 64), 0.2, rng)),
    "zipf_lines": _pair(
        lambda rng: zipf_lines(Region(0, 2048), 0.25, rng),
        lambda rng: zipf_lines_drawer(Region(0, 2048), 0.25, rng)),
    "mixture": _mixture_pair,
    "phases": _phases_pair,
}


class TestDrawerParity:
    """The tentpole property: every drawer emits the exact per-reference
    stream of its scalar twin — same lines, same write bits, any seed,
    any block size (including 1 and non-divisors of the total)."""

    @pytest.mark.parametrize("form", sorted(_FORMS))
    @pytest.mark.parametrize("seed", [1, 7, 12345])
    @pytest.mark.parametrize("block_size", [1, 13, 256])
    def test_block_stream_equals_scalar_stream(self, form, seed,
                                               block_size):
        scalar, drawer = _FORMS[form](seed)
        count = 3000
        assert take_blocks(drawer, count, block_size) == \
            take(scalar, count)

    def test_drawer_blocks_are_typed_columns(self):
        _, drawer = _FORMS["random_uniform"](3)
        lines, writes = drawer(64)
        assert isinstance(lines, array)
        assert lines.typecode == U32_TYPECODE
        assert writes.typecode == WRITE_TYPECODE
        assert len(lines) == len(writes) == 64

    def test_blocks_from_drawer_yields_fixed_blocks(self):
        _, drawer = _FORMS["sequential"](2)
        stream = blocks_from_drawer(drawer, 32)
        first = next(stream)
        second = next(stream)
        assert len(first[0]) == len(second[0]) == 32


class TestBlockHelpers:
    def test_make_block_promotes_wide_lines(self):
        lines, writes = make_block([1, 2, 1 << 40], [True, False, True])
        assert lines.typecode == "Q"
        assert list(lines) == [1, 2, 1 << 40]
        assert list(writes) == [1, 0, 1]

    def test_concat_blocks_empty_and_single(self):
        empty = concat_blocks([])
        assert len(empty[0]) == len(empty[1]) == 0
        block = make_block([5, 6], [False, True])
        assert concat_blocks([block]) is block

    def test_concat_blocks_joins_in_order(self):
        joined = concat_blocks([
            make_block([1, 2], [True, False]),
            make_block([3], [True]),
        ])
        assert list(joined[0]) == [1, 2, 3]
        assert list(joined[1]) == [1, 0, 1]

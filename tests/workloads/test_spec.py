"""Tests for the SPEC2000-shaped benchmark models."""

import itertools

import pytest

from repro.workloads.patterns import take
from repro.workloads.spec import BENCHMARKS, BY_NAME, aligned_random
import random


class TestCatalog:
    def test_eleven_benchmarks_in_figure_order(self):
        names = [bench.name for bench in BENCHMARKS]
        assert names == [
            "ammp", "art", "bzip2", "equake", "gcc", "gzip",
            "mcf", "mesa", "parser", "vortex", "vpr",
        ]

    def test_xom_targets_match_figure3(self):
        assert BY_NAME["art"].xom_slowdown_pct == 34.91
        assert BY_NAME["mesa"].xom_slowdown_pct == 0.63

    def test_average_target(self):
        average = sum(b.xom_slowdown_pct for b in BENCHMARKS) / len(BENCHMARKS)
        assert average == pytest.approx(16.76, abs=0.01)


class TestGeneratorContracts:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_deterministic_for_seed(self, bench):
        a = take(bench.generator(seed=7), 2000)
        b = take(bench.generator(seed=7), 2000)
        assert a == b

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_seed_changes_stream(self, bench):
        # The initialization prefix is deterministic by design (a fixed
        # write-once pass), so compare main-loop references.
        a = take(
            itertools.islice(bench.generator(seed=1), 120_000, 122_000), 2000
        )
        b = take(
            itertools.islice(bench.generator(seed=2), 120_000, 122_000), 2000
        )
        assert a != b

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_references_are_sane(self, bench):
        for line, is_write in take(bench.generator(), 5000):
            assert line >= 8192  # at or above the data base
            assert line < (1 << 41)
            assert isinstance(is_write, bool)

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_initialization_phase_is_write_only(self, bench):
        """Every model starts with write-once initialization (the NoRepl
        story depends on it)."""
        head = take(bench.generator(), 1000)
        assert all(is_write for _, is_write in head)

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_main_loop_mixes_reads(self, bench):
        stream = bench.generator()
        # Skip far past any initialization phase.
        refs = take(itertools.islice(stream, 120_000, 125_000), 5000)
        reads = sum(1 for _, is_write in refs if not is_write)
        assert reads > 1000


class TestAlignedRandom:
    def test_lines_respect_block_alignment(self):
        rng = random.Random(3)
        refs = take(
            aligned_random(0, n_blocks=4, block_lines=256,
                           block_stride=1024, write_fraction=0.5, rng=rng),
            2000,
        )
        for line, _ in refs:
            assert line % 1024 < 256  # only the first 256 sets of 1024

    def test_covers_multiple_blocks(self):
        rng = random.Random(4)
        refs = take(
            aligned_random(0, n_blocks=4, block_lines=256,
                           block_stride=1024, write_fraction=0.0, rng=rng),
            2000,
        )
        blocks = {line // 1024 for line, _ in refs}
        assert blocks == {0, 1, 2, 3}


class TestFootprints:
    def test_equake_straddles_the_32kb_snc(self):
        """The Figure 6 story: equake fits 32K entries, not 16K."""
        lines = {
            line for line, _ in take(BY_NAME["equake"].generator(), 150_000)
        }
        assert 16 * 1024 < len(lines) <= 32 * 1024

    def test_vpr_fits_everywhere(self):
        lines = {
            line for line, _ in take(BY_NAME["vpr"].generator(), 60_000)
        }
        assert len(lines) < 16 * 1024

    def test_mcf_exceeds_the_64kb_snc(self):
        lines = {
            line for line, _ in take(BY_NAME["mcf"].generator(), 150_000)
        }
        assert len(lines) > 32 * 1024

"""Smoke tests: the shipped examples must run and print what they promise.

The two fast examples run as subprocesses (exactly as a user would invoke
them); the slower demos are covered by their underlying integration tests
in tests/secure and tests/attacks.
"""

import os
import pathlib
import subprocess
import sys

_EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
_SRC = pathlib.Path(__file__).parent.parent / "src"


def run_example(name: str, timeout: int = 120) -> str:
    # The examples import repro; make sure the subprocess can, whether
    # repro is pip-installed or only on pytest's configured pythonpath.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(_SRC), env.get("PYTHONPATH")) if part
    )
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickstart:
    def test_runs_and_verifies(self):
        out = run_example("quickstart.py")
        assert "program output : '39'" in out
        assert "memory never saw plaintext code" in out


class TestAttackDemo:
    def test_all_four_attacks_resolve(self):
        out = run_example("attack_demo.py", timeout=180)
        assert "pattern analysis" in out
        assert "attack collapses" in out  # counter leak dies vs seq numbers
        assert "spoofed or spliced" in out  # MAC catches splicing
        assert "replay NOT detected" in out  # MAC limitation shown
        assert "stale or tampered memory" in out  # tree catches replay


class TestExamplesExist:
    def test_all_four_examples_present(self):
        names = {path.name for path in _EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "secure_program_execution.py",
            "attack_demo.py",
            "snc_design_space.py",
        } <= names

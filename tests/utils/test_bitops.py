"""Unit and property tests for the bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bytes_to_int,
    bytes_to_words,
    int_to_bytes,
    permute_bits,
    rotl,
    rotl32,
    rotr32,
    words_to_bytes,
    xor_bytes,
)


class TestRotations:
    def test_rotl32_basic(self):
        assert rotl32(1, 1) == 2
        assert rotl32(0x80000000, 1) == 1
        assert rotl32(0xDEADBEEF, 0) == 0xDEADBEEF

    def test_rotl32_full_cycle_is_identity(self):
        assert rotl32(0x12345678, 32) == 0x12345678

    def test_rotr_inverts_rotl(self):
        assert rotr32(rotl32(0xCAFEBABE, 7), 7) == 0xCAFEBABE

    @given(st.integers(0, 2**32 - 1), st.integers(0, 100))
    def test_rotl_rotr_inverse_property(self, value, shift):
        assert rotr32(rotl32(value, shift), shift) == value

    @given(st.integers(0, 2**16 - 1), st.integers(0, 64))
    def test_generic_rotl_matches_width(self, value, shift):
        rotated = rotl(value, shift, 16)
        assert 0 <= rotated < 2**16
        assert rotl(rotated, 16 - (shift % 16), 16) == value


class TestPermuteBits:
    def test_identity_permutation(self):
        table = tuple(range(1, 9))
        assert permute_bits(0b10110010, table, 8) == 0b10110010

    def test_bit_reversal(self):
        table = tuple(range(8, 0, -1))
        assert permute_bits(0b10000000, table, 8) == 0b00000001

    def test_expansion_duplicates_bits(self):
        # Output wider than input: select MSB twice then LSB twice.
        assert permute_bits(0b10, (1, 1, 2, 2), 2) == 0b1100


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x00")

    @given(st.binary(min_size=0, max_size=64))
    def test_self_inverse(self, data):
        key = bytes(reversed(data))
        assert xor_bytes(xor_bytes(data, key), key) == data


class TestConversions:
    @given(st.binary(min_size=1, max_size=32))
    def test_bytes_int_round_trip(self, data):
        assert int_to_bytes(bytes_to_int(data), len(data)) == data

    @given(st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=16))
    def test_words_round_trip(self, words):
        assert bytes_to_words(words_to_bytes(words)) == words

    def test_bytes_to_words_requires_alignment(self):
        with pytest.raises(ValueError):
            bytes_to_words(b"\x00" * 5)

"""Tests for the integer-math helpers used in cache geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.intmath import ceil_div, is_power_of_two, log2_exact


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3
        assert ceil_div(1, 128) == 1

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_matches_float_ceiling(self, a, b):
        assert ceil_div(a, b) == (a + b - 1) // b


class TestPowersOfTwo:
    def test_powers(self):
        for exp in range(20):
            assert is_power_of_two(1 << exp)

    def test_non_powers(self):
        for n in (0, -1, 3, 6, 12, 100):
            assert not is_power_of_two(n)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(256) == 8

    def test_log2_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(48)

    @given(st.integers(0, 40))
    def test_log2_round_trip(self, exp):
        assert log2_exact(1 << exp) == exp

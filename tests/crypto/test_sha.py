"""Known-answer tests for SHA-1 / SHA-256 (FIPS 180-4 examples)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha import _SHA256_H0, _SHA256_K, sha1, sha256


class TestDerivedConstants:
    """The K/H constants are derived from prime roots — verify landmarks."""

    def test_first_and_last_round_constants(self):
        assert _SHA256_K[0] == 0x428A2F98
        assert _SHA256_K[1] == 0x71374491
        assert _SHA256_K[63] == 0xC67178F2

    def test_initial_hash_values(self):
        assert _SHA256_H0[0] == 0x6A09E667
        assert _SHA256_H0[7] == 0x5BE0CD19


class TestSHA256:
    def test_empty_string(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256(msg).hex() == (
            "248d6a61d20638b8e5c026930c3e6039"
            "a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_exact_block_boundary(self):
        # 55, 56 and 64 byte messages cross the padding edge cases.
        for length in (55, 56, 63, 64, 65):
            digest = sha256(b"a" * length)
            assert len(digest) == 32

    @given(st.binary(max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_and_sized(self, data):
        assert sha256(data) == sha256(data)
        assert len(sha256(data)) == 32

    def test_single_bit_sensitivity(self):
        assert sha256(b"\x00") != sha256(b"\x01")


class TestSHA1:
    def test_abc(self):
        assert sha1(b"abc").hex() == (
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        )

    def test_empty(self):
        assert sha1(b"").hex() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha1(msg).hex() == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

"""Tests for ECB / CBC / OTP-counter modes — including the security
properties the paper's §3.4 argues about.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import DES
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ecb_decrypt,
    ecb_encrypt,
    otp_transform,
)
from repro.errors import CryptoError

_CIPHER = DES(bytes.fromhex("133457799BBCDFF1"))


class TestECB:
    def test_round_trip(self):
        pt = bytes(range(64))
        assert ecb_decrypt(_CIPHER, ecb_encrypt(_CIPHER, pt)) == pt

    def test_repeated_blocks_leak_patterns(self):
        """The §3.4 'Advantage' observation: direct (ECB) encryption maps
        equal plaintext blocks to equal ciphertext blocks."""
        pt = b"\x00" * 8 + b"\x00" * 8
        ct = ecb_encrypt(_CIPHER, pt)
        assert ct[:8] == ct[8:]

    def test_rejects_unaligned_input(self):
        with pytest.raises(CryptoError):
            ecb_encrypt(_CIPHER, b"not-aligned")

    @given(st.binary(min_size=0, max_size=128).map(lambda b: b[: len(b) // 8 * 8]))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, pt):
        assert ecb_decrypt(_CIPHER, ecb_encrypt(_CIPHER, pt)) == pt


class TestCBC:
    def test_round_trip(self):
        pt = bytes(range(64))
        iv = b"\xaa" * 8
        assert cbc_decrypt(_CIPHER, iv, cbc_encrypt(_CIPHER, iv, pt)) == pt

    def test_repeated_blocks_do_not_leak(self):
        pt = b"\x00" * 16
        ct = cbc_encrypt(_CIPHER, b"\x42" * 8, pt)
        assert ct[:8] != ct[8:]

    def test_iv_must_be_one_block(self):
        with pytest.raises(CryptoError):
            cbc_encrypt(_CIPHER, b"\x00" * 4, bytes(16))

    def test_different_ivs_give_different_ciphertext(self):
        pt = bytes(16)
        assert cbc_encrypt(_CIPHER, bytes(8), pt) != cbc_encrypt(
            _CIPHER, b"\x01" * 8, pt
        )


class TestOTPTransform:
    def test_round_trip_is_same_operation(self):
        """Equations (2) and (3) of the paper are both 'XOR with the pad'."""
        pt = bytes(range(128))
        ct = otp_transform(_CIPHER, seed=1234, data=pt)
        assert otp_transform(_CIPHER, seed=1234, data=ct) == pt

    def test_repeated_plaintext_blocks_do_not_repeat_in_ciphertext(self):
        """The de-correlation §3.4 claims for address-derived seeds."""
        pt = b"\x00" * 32
        ct = otp_transform(_CIPHER, seed=77, data=pt)
        blocks = {ct[i : i + 8] for i in range(0, 32, 8)}
        assert len(blocks) == 4

    def test_different_seeds_give_unrelated_ciphertext(self):
        pt = bytes(64)
        ct1 = otp_transform(_CIPHER, seed=1000, data=pt)
        ct2 = otp_transform(_CIPHER, seed=2000, data=pt)
        assert ct1 != ct2

    def test_seed_reuse_leaks_xor_of_plaintexts(self):
        """The §3.4 'Disadvantage': same seed twice => C1 xor C2 == D1 xor D2.

        This is precisely why data lines need mutating sequence numbers."""
        d1 = bytes(range(16))
        d2 = bytes(range(100, 116))
        c1 = otp_transform(_CIPHER, seed=5, data=d1)
        c2 = otp_transform(_CIPHER, seed=5, data=d2)
        leaked = bytes(a ^ b for a, b in zip(c1, c2))
        expected = bytes(a ^ b for a, b in zip(d1, d2))
        assert leaked == expected

    @given(st.integers(0, 2**48), st.binary(min_size=0, max_size=128))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_property(self, seed, raw):
        data = raw[: len(raw) // 8 * 8]
        ct = otp_transform(_CIPHER, seed=seed, data=data)
        assert otp_transform(_CIPHER, seed=seed, data=ct) == data

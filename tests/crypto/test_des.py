"""Known-answer and property tests for the from-scratch DES / 3DES."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import DES, TripleDES
from repro.errors import CryptoError

# The worked example distributed with FIPS 46 teaching material.
_KAT_KEY = bytes.fromhex("133457799BBCDFF1")
_KAT_PLAIN = bytes.fromhex("0123456789ABCDEF")
_KAT_CIPHER = bytes.fromhex("85E813540F0AB405")


class TestDESKnownAnswers:
    def test_encrypt_known_vector(self):
        assert DES(_KAT_KEY).encrypt_block(_KAT_PLAIN) == _KAT_CIPHER

    def test_decrypt_known_vector(self):
        assert DES(_KAT_KEY).decrypt_block(_KAT_CIPHER) == _KAT_PLAIN

    def test_all_zero_key_and_block(self):
        # DES is a permutation even under degenerate (weak) keys.
        des = DES(bytes(8))
        ct = des.encrypt_block(bytes(8))
        assert des.decrypt_block(ct) == bytes(8)
        assert ct != bytes(8)

    def test_weak_key_is_self_inverse(self):
        # For the classic weak key, encryption equals decryption.
        weak = DES(bytes.fromhex("0101010101010101"))
        block = bytes.fromhex("DEADBEEF01234567")
        assert weak.decrypt_block(block) == weak.encrypt_block(block)


class TestDESProperties:
    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=8, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, key, block):
        des = DES(key)
        assert des.decrypt_block(des.encrypt_block(block)) == block

    @given(st.binary(min_size=8, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_encryption_changes_data(self, block):
        # With a fixed strong key a fixed point would be astronomical luck.
        des = DES(_KAT_KEY)
        assert des.encrypt_block(block) != block

    def test_avalanche_single_bit_flip(self):
        des = DES(_KAT_KEY)
        base = des.encrypt_block(_KAT_PLAIN)
        flipped_input = bytes([_KAT_PLAIN[0] ^ 0x80]) + _KAT_PLAIN[1:]
        flipped = des.encrypt_block(flipped_input)
        differing = bin(
            int.from_bytes(base, "big") ^ int.from_bytes(flipped, "big")
        ).count("1")
        # A healthy block cipher flips roughly half the 64 output bits.
        assert 16 <= differing <= 48

    def test_int_convenience_round_trip(self):
        des = DES(_KAT_KEY)
        assert des.decrypt_int(des.encrypt_int(0xFEEDFACECAFEF00D)) == (
            0xFEEDFACECAFEF00D
        )


class TestDESValidation:
    def test_rejects_short_key(self):
        with pytest.raises(CryptoError):
            DES(b"short")

    def test_rejects_wrong_block_size(self):
        with pytest.raises(CryptoError):
            DES(_KAT_KEY).encrypt_block(b"tiny")


class TestTripleDES:
    def test_three_key_round_trip(self):
        tdes = TripleDES(bytes(range(24)))
        block = b"ABCDEFGH"
        assert tdes.decrypt_block(tdes.encrypt_block(block)) == block

    def test_two_key_variant_expands(self):
        tdes = TripleDES(bytes(range(16)))
        block = b"ABCDEFGH"
        assert tdes.decrypt_block(tdes.encrypt_block(block)) == block

    def test_degenerates_to_single_des_with_equal_keys(self):
        # EDE with K1 == K2 == K3 must equal single DES (interop property).
        key = _KAT_KEY
        tdes = TripleDES(key * 3)
        assert tdes.encrypt_block(_KAT_PLAIN) == _KAT_CIPHER

    def test_rejects_bad_key_length(self):
        with pytest.raises(CryptoError):
            TripleDES(bytes(10))

    @given(st.binary(min_size=24, max_size=24), st.binary(min_size=8, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, key, block):
        tdes = TripleDES(key)
        assert tdes.decrypt_block(tdes.encrypt_block(block)) == block

"""FIPS 197 known-answer and property tests for the from-scratch AES."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import _INV_SBOX, _SBOX, AES
from repro.errors import CryptoError

_PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")

# FIPS 197 Appendix C vectors.
_VECTORS = [
    (
        "000102030405060708090a0b0c0d0e0f",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestSBoxConstruction:
    """The S-box is derived, not transcribed — spot-check the definition."""

    def test_landmark_entries(self):
        assert _SBOX[0x00] == 0x63
        assert _SBOX[0x01] == 0x7C
        assert _SBOX[0x53] == 0xED
        assert _SBOX[0xFF] == 0x16

    def test_is_a_permutation(self):
        assert sorted(_SBOX) == list(range(256))

    def test_inverse_is_consistent(self):
        assert all(_INV_SBOX[_SBOX[x]] == x for x in range(256))

    def test_no_fixed_points(self):
        # A designed property of the AES affine constant 0x63.
        assert all(_SBOX[x] != x for x in range(256))


class TestAESKnownAnswers:
    @pytest.mark.parametrize("key_hex,cipher_hex", _VECTORS)
    def test_fips197_appendix_c_encrypt(self, key_hex, cipher_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.encrypt_block(_PLAIN).hex() == cipher_hex

    @pytest.mark.parametrize("key_hex,cipher_hex", _VECTORS)
    def test_fips197_appendix_c_decrypt(self, key_hex, cipher_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.decrypt_block(bytes.fromhex(cipher_hex)) == _PLAIN

    def test_fips197_appendix_b_example(self):
        # The worked example in Appendix B uses a different key/plaintext.
        aes = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = aes.encrypt_block(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"


class TestAESProperties:
    @given(
        st.sampled_from([16, 24, 32]).flatmap(
            lambda n: st.binary(min_size=n, max_size=n)
        ),
        st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_all_key_sizes(self, key, block):
        aes = AES(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_avalanche(self):
        aes = AES(bytes(16))
        base = aes.encrypt_block(bytes(16))
        flipped = aes.encrypt_block(b"\x01" + bytes(15))
        differing = bin(
            int.from_bytes(base, "big") ^ int.from_bytes(flipped, "big")
        ).count("1")
        assert 40 <= differing <= 88

    def test_distinct_keys_give_distinct_ciphertexts(self):
        ct1 = AES(bytes(16)).encrypt_block(_PLAIN)
        ct2 = AES(b"\x01" + bytes(15)).encrypt_block(_PLAIN)
        assert ct1 != ct2


class TestAESValidation:
    def test_rejects_bad_key_length(self):
        with pytest.raises(CryptoError):
            AES(bytes(15))

    def test_rejects_bad_block_length(self):
        with pytest.raises(CryptoError):
            AES(bytes(16)).encrypt_block(bytes(8))

"""Tests for pad generation — uniqueness and stream discipline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import DES
from repro.crypto.otp import PadStream, pad_for_seed
from repro.errors import CryptoError

_CIPHER = DES(b"repro-k!"[:8])


class TestPadForSeed:
    def test_length(self):
        assert len(pad_for_seed(_CIPHER, 0, 128)) == 128

    def test_block_structure_matches_seed_increments(self):
        """Block j of the pad must be E_K(seed + j) (paper Algorithm 1)."""
        pad = pad_for_seed(_CIPHER, 10, 24)
        for j in range(3):
            expected = _CIPHER.encrypt_block((10 + j).to_bytes(8, "big"))
            assert pad[8 * j : 8 * j + 8] == expected

    def test_adjacent_seeds_share_overlapping_blocks(self):
        # pad(seed)[8:] == pad(seed+1)[:-8]: exactly the counter structure.
        a = pad_for_seed(_CIPHER, 5, 32)
        b = pad_for_seed(_CIPHER, 6, 32)
        assert a[8:] == b[:-8]

    def test_rejects_unaligned_length(self):
        with pytest.raises(CryptoError):
            pad_for_seed(_CIPHER, 0, 13)

    def test_rejects_negative_seed(self):
        with pytest.raises(CryptoError):
            pad_for_seed(_CIPHER, -1, 8)

    def test_seed_wraps_at_block_width(self):
        full = 1 << 64
        assert pad_for_seed(_CIPHER, full, 8) == pad_for_seed(_CIPHER, 0, 8)

    @given(st.integers(0, 2**40), st.integers(0, 2**40))
    @settings(max_examples=30, deadline=None)
    def test_distinct_far_seeds_distinct_pads(self, s1, s2):
        if abs(s1 - s2) >= 16:  # far enough that no counter overlap exists
            p1 = pad_for_seed(_CIPHER, s1, 128)
            p2 = pad_for_seed(_CIPHER, s2, 128)
            assert p1 != p2


class TestPadStream:
    def test_never_reuses_keystream(self):
        stream = PadStream(_CIPHER, seed=100)
        first = stream.take(16)
        second = stream.take(16)
        assert first != second
        assert stream.blocks_consumed == 4

    def test_matches_flat_generation(self):
        stream = PadStream(_CIPHER, seed=100)
        combined = stream.take(16) + stream.take(24)
        assert combined == pad_for_seed(_CIPHER, 100, 40)

    def test_rejects_partial_blocks(self):
        with pytest.raises(CryptoError):
            PadStream(_CIPHER, seed=0).take(5)

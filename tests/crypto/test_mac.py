"""Tests for HMAC-SHA256 and CBC-MAC."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.des import DES
from repro.crypto.mac import cbc_mac, constant_time_equal, hmac_sha256


class TestHMAC:
    def test_rfc4231_case_1(self):
        key = b"\x0b" * 20
        tag = hmac_sha256(key, b"Hi There")
        assert tag.hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b"
            "881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case_2(self):
        tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex() == (
            "5bdcc146bf60754e6a042426089575c7"
            "5a003f089d2739839dec58b964ec3843"
        )

    def test_long_key_is_hashed_first(self):
        # RFC 4231 case 6 exercises keys longer than the block size.
        key = b"\xaa" * 131
        msg = b"Test Using Larger Than Block-Size Key - Hash Key First"
        tag = hmac_sha256(key, msg)
        assert tag.hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f"
            "8e0bc6213728c5140546040f0ee37f54"
        )

    @given(st.binary(max_size=64), st.binary(max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, key, msg):
        assert hmac_sha256(key, msg) == hmac_sha256(key, msg)

    def test_key_separation(self):
        assert hmac_sha256(b"k1", b"msg") != hmac_sha256(b"k2", b"msg")


class TestCBCMAC:
    def test_tag_length_is_one_block(self):
        cipher = DES(bytes(range(8)))
        assert len(cbc_mac(cipher, b"X" * 128)) == 8

    def test_detects_single_byte_change(self):
        cipher = DES(bytes(range(8)))
        line = bytes(range(64))
        tampered = bytes([line[0] ^ 1]) + line[1:]
        assert cbc_mac(cipher, line) != cbc_mac(cipher, tampered)

    def test_pads_unaligned_messages(self):
        cipher = DES(bytes(range(8)))
        assert len(cbc_mac(cipher, b"abc")) == 8

    @given(st.binary(min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, msg):
        cipher = DES(b"\x01" * 8)
        assert cbc_mac(cipher, msg) == cbc_mac(cipher, msg)


class TestConstantTimeEqual:
    def test_equal(self):
        assert constant_time_equal(b"same", b"same")

    def test_unequal_same_length(self):
        assert not constant_time_equal(b"same", b"sama")

    def test_unequal_lengths(self):
        assert not constant_time_equal(b"short", b"longer")

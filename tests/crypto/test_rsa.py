"""Tests for the vendor -> processor key exchange (textbook RSA)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prng import HashDRBG
from repro.crypto.rsa import (
    RSAKeyPair,
    _is_probable_prime,
    _modinv,
    unwrap_key,
    wrap_key,
)
from repro.errors import CryptoError, KeyExchangeError

# One shared pair: keygen is the slow part, the protocol tests reuse it.
_PAIR = RSAKeyPair.generate(bits=512, seed="unit-test-processor")


class TestPrimality:
    def test_small_primes(self):
        rng = HashDRBG("prime-test")
        for p in (2, 3, 5, 7, 97, 65537):
            assert _is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = HashDRBG("prime-test")
        for c in (0, 1, 4, 9, 91, 561, 65536):
            assert not _is_probable_prime(c, rng)

    def test_carmichael_numbers_rejected(self):
        # Fermat liars that Miller-Rabin must still catch.
        rng = HashDRBG("prime-test")
        for carmichael in (561, 1105, 1729, 2465, 6601):
            assert not _is_probable_prime(carmichael, rng)


class TestModInv:
    def test_known(self):
        assert _modinv(3, 11) == 4

    def test_raises_when_not_coprime(self):
        with pytest.raises(CryptoError):
            _modinv(6, 9)

    @given(st.integers(1, 10**6))
    def test_inverse_property(self, a):
        m = 1_000_003  # prime
        inv = _modinv(a % m or 1, m)
        assert (a % m or 1) * inv % m == 1


class TestKeyGeneration:
    def test_deterministic(self):
        again = RSAKeyPair.generate(bits=512, seed="unit-test-processor")
        assert again.public == _PAIR.public
        assert again.private == _PAIR.private

    def test_different_seeds_different_keys(self):
        other = RSAKeyPair.generate(bits=512, seed="other-processor")
        assert other.public.n != _PAIR.public.n

    def test_modulus_has_requested_size(self):
        assert _PAIR.public.n.bit_length() == 512

    def test_raw_encrypt_decrypt(self):
        message = 0xDEADBEEF
        assert _PAIR.private.decrypt_int(
            _PAIR.public.encrypt_int(message)
        ) == message

    def test_rejects_tiny_modulus(self):
        with pytest.raises(CryptoError):
            RSAKeyPair.generate(bits=32)


class TestKeyWrap:
    def test_wrap_unwrap_round_trip(self):
        session_key = bytes(range(8))
        wrapped = wrap_key(_PAIR.public, session_key)
        assert unwrap_key(_PAIR.private, wrapped) == session_key

    def test_wrap_is_randomized(self):
        session_key = bytes(8)
        w1 = wrap_key(_PAIR.public, session_key, HashDRBG("a"))
        w2 = wrap_key(_PAIR.public, session_key, HashDRBG("b"))
        assert w1 != w2
        assert unwrap_key(_PAIR.private, w1) == session_key
        assert unwrap_key(_PAIR.private, w2) == session_key

    def test_wrong_processor_cannot_unwrap(self):
        """The core XOM guarantee: software bound to CPU A will not run on
        CPU B because B's private key unwraps garbage (§2.1)."""
        other = RSAKeyPair.generate(bits=512, seed="pirate-processor")
        wrapped = wrap_key(_PAIR.public, bytes(range(8)))
        with pytest.raises(KeyExchangeError):
            unwrap_key(other.private, wrapped)

    def test_oversized_key_rejected(self):
        with pytest.raises(KeyExchangeError):
            wrap_key(_PAIR.public, bytes(512 // 8))

    @given(st.binary(min_size=1, max_size=24))
    @settings(max_examples=10, deadline=None)
    def test_round_trip_various_key_sizes(self, key_material):
        wrapped = wrap_key(_PAIR.public, key_material, HashDRBG(key_material))
        assert unwrap_key(_PAIR.private, wrapped) == key_material

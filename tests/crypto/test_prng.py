"""Tests for the deterministic DRBG."""

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.prng import HashDRBG, simulation_rng


class TestHashDRBG:
    def test_deterministic_given_seed(self):
        assert HashDRBG("x").random_bytes(100) == HashDRBG("x").random_bytes(100)

    def test_different_seeds_diverge(self):
        assert HashDRBG("x").random_bytes(32) != HashDRBG("y").random_bytes(32)

    def test_seed_types(self):
        for seed in (b"bytes", "string", 12345):
            assert len(HashDRBG(seed).random_bytes(16)) == 16

    def test_stream_is_stateful(self):
        drbg = HashDRBG("state")
        assert drbg.random_bytes(16) != drbg.random_bytes(16)

    @given(st.integers(1, 256))
    def test_random_int_in_range(self, bits):
        value = HashDRBG("range-test").random_int(bits)
        assert 0 <= value < (1 << bits)

    def test_random_odd_int_shape(self):
        value = HashDRBG("odd").random_odd_int(64)
        assert value % 2 == 1
        assert value.bit_length() == 64

    @given(st.integers(1, 10**9))
    def test_random_below(self, bound):
        assert 0 <= HashDRBG("below").random_below(bound) < bound

    def test_byte_distribution_sanity(self):
        data = HashDRBG("dist").random_bytes(4096)
        ones = sum(bin(b).count("1") for b in data)
        # ~16384 expected; allow generous slack.
        assert 15000 < ones < 17800


class TestSimulationRNG:
    def test_reproducible(self):
        assert simulation_rng(7).random() == simulation_rng(7).random()

    def test_seed_sensitivity(self):
        assert simulation_rng(7).random() != simulation_rng(8).random()

"""Tests for cipher-suite and key-material plumbing."""

import pytest

from repro.crypto.blockcipher import IdentityCipher
from repro.crypto.keys import CipherSuite, SymmetricKey
from repro.errors import CryptoError


class TestCipherSuite:
    @pytest.mark.parametrize(
        "suite,key_bytes,block_bytes",
        [
            (CipherSuite.DES, 8, 8),
            (CipherSuite.TRIPLE_DES, 24, 8),
            (CipherSuite.AES128, 16, 16),
            (CipherSuite.AES256, 32, 16),
        ],
    )
    def test_geometry(self, suite, key_bytes, block_bytes):
        assert suite.key_bytes == key_bytes
        assert suite.block_bytes == block_bytes

    @pytest.mark.parametrize("suite", list(CipherSuite))
    def test_new_cipher_round_trips(self, suite):
        cipher = suite.new_cipher(bytes(suite.key_bytes))
        block = bytes(range(suite.block_bytes))
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestSymmetricKey:
    def test_generate_is_deterministic(self):
        k1 = SymmetricKey.generate(CipherSuite.DES, "vendor-1")
        k2 = SymmetricKey.generate(CipherSuite.DES, "vendor-1")
        assert k1.material == k2.material

    def test_generate_respects_suite_size(self):
        key = SymmetricKey.generate(CipherSuite.AES128, "vendor")
        assert len(key.material) == 16

    def test_rejects_wrong_length_material(self):
        with pytest.raises(CryptoError):
            SymmetricKey(CipherSuite.DES, bytes(16))

    def test_new_cipher_uses_material(self):
        key = SymmetricKey.generate(CipherSuite.DES, "vendor")
        c1 = key.new_cipher()
        c2 = key.new_cipher()
        block = b"ABCDEFGH"
        assert c1.encrypt_block(block) == c2.encrypt_block(block)


class TestIdentityCipher:
    def test_is_noop(self):
        cipher = IdentityCipher(8)
        assert cipher.encrypt_block(b"12345678") == b"12345678"
        assert cipher.decrypt_block(b"12345678") == b"12345678"

    def test_respects_block_size(self):
        with pytest.raises(CryptoError):
            IdentityCipher(8).encrypt_block(b"123")

"""The SRP-32 CPU substrate: ISA, assembler, and functional machine."""

from repro.cpu.assembler import Assembler, assemble
from repro.cpu.isa import (
    Format,
    Instruction,
    N_REGISTERS,
    Op,
    REGISTER_ALIASES,
    REGISTER_NAMES,
    WORD_BYTES,
    decode,
)
from repro.cpu.machine import (
    HaltReason,
    Machine,
    MachineResult,
    Syscall,
)
from repro.cpu.registers import RegisterFile, ZeroGuard

__all__ = [
    "Assembler",
    "Format",
    "HaltReason",
    "Instruction",
    "Machine",
    "MachineResult",
    "N_REGISTERS",
    "Op",
    "REGISTER_ALIASES",
    "REGISTER_NAMES",
    "RegisterFile",
    "Syscall",
    "WORD_BYTES",
    "ZeroGuard",
    "assemble",
    "decode",
]

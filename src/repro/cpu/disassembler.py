"""SRP-32 disassembler.

The inverse of the assembler, used three ways:

* debugging example programs (``python -m repro.cpu.disassembler file``);
* the attack demos — showing that XOM-encrypted text *doesn't* disassemble
  is the visible face of the tamper-resistance story;
* round-trip property tests (assemble -> disassemble -> assemble).
"""

from __future__ import annotations

from repro.cpu.isa import Format, Instruction, Op, WORD_BYTES, decode
from repro.errors import IllegalInstructionError

_REGISTER_NAMES = {
    0: "zero", 1: "at", 2: "v0", 3: "v1",
    4: "a0", 5: "a1", 6: "a2", 7: "a3",
    8: "t0", 9: "t1", 10: "t2", 11: "t3",
    12: "t4", 13: "t5", 14: "t6", 15: "t7",
    16: "s0", 17: "s1", 18: "s2", 19: "s3",
    20: "s4", 21: "s5", 22: "s6", 23: "s7",
    24: "t8", 25: "t9", 26: "k0", 27: "k1",
    28: "gp", 29: "sp", 30: "fp", 31: "ra",
}

_MEMORY_OPS = {Op.LW, Op.SW, Op.LB, Op.LBU, Op.SB}
_BRANCH_OPS = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE}


def _reg(index: int) -> str:
    return _REGISTER_NAMES[index & 0x1F]


def format_instruction(ins: Instruction, address: int | None = None) -> str:
    """Render one decoded instruction in assembler syntax.

    When ``address`` is given, branch targets are shown as absolute
    addresses (what you want when reading a dump)."""
    mnemonic = ins.op.name.lower()
    fmt = ins.op.format
    if ins.op in _MEMORY_OPS:
        return f"{mnemonic} {_reg(ins.a)}, {ins.signed_imm}({_reg(ins.b)})"
    if ins.op in _BRANCH_OPS:
        if address is not None:
            target = address + WORD_BYTES + ins.signed_imm * WORD_BYTES
            return f"{mnemonic} {_reg(ins.a)}, {_reg(ins.b)}, {target:#x}"
        return f"{mnemonic} {_reg(ins.a)}, {_reg(ins.b)}, {ins.signed_imm}"
    if ins.op is Op.LUI:
        return f"{mnemonic} {_reg(ins.a)}, {ins.imm:#x}"
    if ins.op is Op.JR:
        return f"{mnemonic} {_reg(ins.a)}"
    if ins.op is Op.JALR:
        return f"{mnemonic} {_reg(ins.a)}, {_reg(ins.b)}"
    if fmt is Format.R:
        return f"{mnemonic} {_reg(ins.a)}, {_reg(ins.b)}, {_reg(ins.c)}"
    if fmt is Format.I:
        return f"{mnemonic} {_reg(ins.a)}, {_reg(ins.b)}, {ins.signed_imm}"
    if fmt is Format.J:
        return f"{mnemonic} {ins.imm * WORD_BYTES:#x}"
    return mnemonic  # system format


def disassemble_word(word: int, address: int | None = None) -> str:
    """Decode and render one word; garbage renders as ``.word``."""
    try:
        return format_instruction(decode(word), address)
    except IllegalInstructionError:
        return f".word {word:#010x}"


def disassemble(blob: bytes, base_address: int = 0) -> list[str]:
    """Disassemble a byte string into one line per word.

    Lines are ``address: hexword  mnemonic operands``.  Undecodable words
    (data, or ciphertext masquerading as code) render as ``.word``."""
    if len(blob) % WORD_BYTES:
        blob = blob + b"\x00" * (WORD_BYTES - len(blob) % WORD_BYTES)
    lines = []
    for offset in range(0, len(blob), WORD_BYTES):
        address = base_address + offset
        word = int.from_bytes(blob[offset : offset + WORD_BYTES], "big")
        lines.append(
            f"{address:#010x}: {word:08x}  {disassemble_word(word, address)}"
        )
    return lines


def decode_rate(blob: bytes) -> float:
    """Fraction of words that decode as valid instructions.

    Plaintext SRP-32 code decodes at ~100%; DES/AES ciphertext decodes at
    a small background rate — a cheap statistical test for 'is this
    segment actually encrypted?' used by the attack tooling."""
    if not blob:
        return 0.0
    total = 0
    valid = 0
    for offset in range(0, len(blob) - WORD_BYTES + 1, WORD_BYTES):
        total += 1
        word = int.from_bytes(blob[offset : offset + WORD_BYTES], "big")
        try:
            decode(word)
            valid += 1
        except IllegalInstructionError:
            pass
    return valid / total if total else 0.0

"""A two-pass assembler for SRP-32.

Accepts the usual small-RISC dialect::

        .text
    main:
        li    t0, 100            # pseudo: expands to addi/lui+ori
        la    t1, table          # pseudo: address of a label
    loop:
        lw    t2, 0(t1)
        add   s0, s0, t2
        addi  t1, t1, 4
        addi  t0, t0, -1
        bne   t0, zero, loop
        halt
        .data
    table:
        .word 1, 2, 3, 4
        .asciiz "hello"

Pass 1 sizes everything and collects labels; pass 2 encodes.  The output
is a :class:`~repro.secure.software.PlainProgram` ready for the vendor
packaging flow, with code and data in separate segments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.cpu.isa import (
    Format,
    Instruction,
    Op,
    REGISTER_ALIASES,
    WORD_BYTES,
)
from repro.errors import AssemblerError
from repro.secure.software import PlainProgram, Segment, SegmentKind

DEFAULT_TEXT_BASE = 0x0000_1000
DEFAULT_DATA_BASE = 0x0010_0000

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


@dataclass
class _Item:
    """One statement placed at an address during pass 1."""

    kind: str  # "instr" | "bytes"
    address: int
    payload: object  # (mnemonic, operands, line_no) or bytes
    line_no: int = 0


def _parse_int(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(
            f"line {line_no}: expected a number, got {text!r}"
        ) from None


def _parse_register(text: str, line_no: int) -> int:
    name = text.strip().lower().lstrip("$")
    if name not in REGISTER_ALIASES:
        raise AssemblerError(f"line {line_no}: unknown register {text!r}")
    return REGISTER_ALIASES[name]


def _split_operands(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


class Assembler:
    """Two-pass assembler producing a :class:`PlainProgram`."""

    def __init__(self, text_base: int = DEFAULT_TEXT_BASE,
                 data_base: int = DEFAULT_DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------- public

    def assemble(self, source: str, name: str = "a.out") -> PlainProgram:
        items, labels, entry = self._first_pass(source)
        text = bytearray()
        data = bytearray()
        for item in items:
            if item.kind == "bytes":
                blob: bytes = item.payload  # type: ignore[assignment]
                self._place(item.address, blob, text, data)
            else:
                mnemonic, operands, line_no = item.payload  # type: ignore
                words = self._encode(
                    mnemonic, operands, item.address, labels, line_no
                )
                encoded = b"".join(w.encode().to_bytes(4, "big") for w in words)
                self._place(item.address, encoded, text, data)
        segments = []
        if text:
            segments.append(
                Segment(self.text_base, bytes(text), SegmentKind.CODE, "text")
            )
        if data:
            segments.append(
                Segment(self.data_base, bytes(data), SegmentKind.DATA, "data")
            )
        if not segments:
            raise AssemblerError("program has no content")
        return PlainProgram(
            segments=tuple(segments), entry_point=entry, name=name
        )

    # -------------------------------------------------------------- pass 1

    def _first_pass(self, source: str):
        items: list[_Item] = []
        labels: dict[str, int] = {}
        section = "text"
        cursors = {"text": self.text_base, "data": self.data_base}
        for line_no, raw_line in enumerate(source.splitlines(), start=1):
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            while True:
                match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s*(.*)$", line)
                if not match:
                    break
                label, line = match.group(1), match.group(2).strip()
                if label in labels:
                    raise AssemblerError(
                        f"line {line_no}: duplicate label {label!r}"
                    )
                labels[label] = cursors[section]
            if not line:
                continue
            if line.startswith("."):
                section = self._directive(
                    line, line_no, section, cursors, items
                )
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1] if len(parts) > 1 else "")
            size = self._instruction_size(mnemonic, operands, line_no)
            items.append(
                _Item("instr", cursors[section],
                      (mnemonic, operands, line_no), line_no)
            )
            if section != "text":
                raise AssemblerError(
                    f"line {line_no}: instructions outside .text"
                )
            cursors[section] += size
        entry = labels.get("main", self.text_base)
        return items, labels, entry

    def _directive(self, line: str, line_no: int, section: str,
                   cursors: dict[str, int], items: list[_Item]) -> str:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if name == ".globl":
            return section  # accepted and ignored
        if name == ".align":
            power = _parse_int(rest.strip(), line_no)
            step = 1 << power
            cursor = cursors[section]
            padding = (-cursor) % step
            if padding:
                items.append(
                    _Item("bytes", cursor, b"\x00" * padding, line_no)
                )
                cursors[section] += padding
            return section
        if name == ".space":
            count = _parse_int(rest.strip(), line_no)
            items.append(_Item("bytes", cursors[section], b"\x00" * count,
                               line_no))
            cursors[section] += count
            return section
        if name == ".word":
            values = [
                _parse_int(token, line_no) & 0xFFFFFFFF
                for token in _split_operands(rest)
            ]
            blob = b"".join(v.to_bytes(4, "big") for v in values)
            items.append(_Item("bytes", cursors[section], blob, line_no))
            cursors[section] += len(blob)
            return section
        if name == ".byte":
            values = [
                _parse_int(token, line_no) & 0xFF
                for token in _split_operands(rest)
            ]
            items.append(_Item("bytes", cursors[section], bytes(values),
                               line_no))
            cursors[section] += len(values)
            return section
        if name == ".asciiz":
            match = re.match(r'^"(.*)"$', rest.strip())
            if not match:
                raise AssemblerError(
                    f"line {line_no}: .asciiz needs a quoted string"
                )
            blob = (
                match.group(1)
                .encode()
                .decode("unicode_escape")
                .encode("latin-1")
                + b"\x00"
            )
            items.append(_Item("bytes", cursors[section], blob, line_no))
            cursors[section] += len(blob)
            return section
        raise AssemblerError(f"line {line_no}: unknown directive {name}")

    def _place(self, address: int, blob: bytes, text: bytearray,
               data: bytearray) -> None:
        if address >= self.data_base:
            base, target = self.data_base, data
        else:
            base, target = self.text_base, text
        offset = address - base
        if len(target) < offset:
            target.extend(b"\x00" * (offset - len(target)))
        target[offset : offset + len(blob)] = blob

    # -------------------------------------------------------------- pass 2

    _PSEUDO_SIZES = {
        "li": None, "la": 2, "mov": 1, "nop": 1, "b": 1,
        "bgt": 1, "ble": 1, "neg": 1, "not": 2, "ret": 1, "push": 2,
        "pop": 2,
    }

    def _instruction_size(self, mnemonic: str, operands: list[str],
                          line_no: int) -> int:
        if mnemonic in self._PSEUDO_SIZES:
            if mnemonic == "li":
                value = _parse_int(operands[1], line_no) if len(operands) == 2 \
                    else 0
                return WORD_BYTES if -0x8000 <= value < 0x8000 else 8
            return self._PSEUDO_SIZES[mnemonic] * WORD_BYTES
        return WORD_BYTES

    def _encode(self, mnemonic: str, operands: list[str], address: int,
                labels: dict[str, int], line_no: int) -> list[Instruction]:
        expanded = self._expand_pseudo(mnemonic, operands, line_no, labels)
        if expanded is not None:
            out = []
            offset = 0
            for sub_mnemonic, sub_operands in expanded:
                out.extend(
                    self._encode(sub_mnemonic, sub_operands,
                                 address + offset, labels, line_no)
                )
                offset += WORD_BYTES
            return out
        try:
            op = Op[mnemonic.upper()]
        except KeyError:
            raise AssemblerError(
                f"line {line_no}: unknown instruction {mnemonic!r}"
            ) from None
        return [self._encode_one(op, operands, address, labels, line_no)]

    def _expand_pseudo(self, mnemonic: str, operands: list[str],
                       line_no: int, labels: dict[str, int]):
        if mnemonic == "li":
            register, value_text = operands
            value = _parse_int(value_text, line_no)
            if -0x8000 <= value < 0x8000:
                return [("addi", [register, "zero", str(value)])]
            value &= 0xFFFFFFFF
            return [
                ("lui", [register, str(value >> 16)]),
                ("ori", [register, register, str(value & 0xFFFF)]),
            ]
        if mnemonic == "la":
            register, label = operands
            if label not in labels:
                raise AssemblerError(f"line {line_no}: unknown label {label!r}")
            value = labels[label]
            return [
                ("lui", [register, str(value >> 16)]),
                ("ori", [register, register, str(value & 0xFFFF)]),
            ]
        if mnemonic == "mov":
            return [("add", [operands[0], operands[1], "zero"])]
        if mnemonic == "nop":
            return [("sll", ["zero", "zero", "zero"])]
        if mnemonic == "b":
            return [("beq", ["zero", "zero", operands[0]])]
        if mnemonic == "bgt":  # bgt a, b, target == blt b, a, target
            return [("blt", [operands[1], operands[0], operands[2]])]
        if mnemonic == "ble":  # ble a, b, target == bge b, a, target
            return [("bge", [operands[1], operands[0], operands[2]])]
        if mnemonic == "neg":
            return [("sub", [operands[0], "zero", operands[1]])]
        if mnemonic == "not":
            # XORI zero-extends, so build the all-ones mask in the
            # assembler temporary first (classic `at` usage).
            return [
                ("addi", ["at", "zero", "-1"]),
                ("xor", [operands[0], operands[1], "at"]),
            ]
        if mnemonic == "ret":
            return [("jr", ["ra"])]
        if mnemonic == "push":
            return [
                ("addi", ["sp", "sp", "-4"]),
                ("sw", [operands[0], "0(sp)"]),
            ]
        if mnemonic == "pop":
            return [
                ("lw", [operands[0], "0(sp)"]),
                ("addi", ["sp", "sp", "4"]),
            ]
        return None

    def _encode_one(self, op: Op, operands: list[str], address: int,
                    labels: dict[str, int], line_no: int) -> Instruction:
        fmt = op.format
        if fmt is Format.S:
            imm = 0
            if operands:
                imm = _parse_int(operands[0], line_no)
            return Instruction(op, imm=imm)
        if fmt is Format.J:
            target = self._resolve(operands[0], labels, line_no)
            if target % WORD_BYTES:
                raise AssemblerError(
                    f"line {line_no}: jump target {target:#x} not aligned"
                )
            return Instruction(op, imm=target // WORD_BYTES)
        if op in (Op.JR,):
            return Instruction(op, a=_parse_register(operands[0], line_no))
        if op is Op.JALR:
            link = _parse_register(operands[0], line_no)
            target = _parse_register(operands[1], line_no)
            return Instruction(op, a=link, b=target)
        if fmt is Format.R:
            a, b, c = (_parse_register(text, line_no) for text in operands)
            return Instruction(op, a=a, b=b, c=c)
        # I-format
        if op is Op.LUI:
            register = _parse_register(operands[0], line_no)
            value = _parse_int(operands[1], line_no)
            return Instruction(op, a=register, imm=value & 0xFFFF)
        if op in (Op.LW, Op.SW, Op.LB, Op.LBU, Op.SB):
            register = _parse_register(operands[0], line_no)
            match = _MEM_OPERAND_RE.match(operands[1].replace(" ", ""))
            if not match:
                raise AssemblerError(
                    f"line {line_no}: expected offset(base), "
                    f"got {operands[1]!r}"
                )
            offset = _parse_int(match.group(1), line_no)
            base = _parse_register(match.group(2), line_no)
            self._check_imm16(offset, line_no)
            return Instruction(op, a=register, b=base, imm=offset & 0xFFFF)
        if op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            a = _parse_register(operands[0], line_no)
            b = _parse_register(operands[1], line_no)
            target = self._resolve(operands[2], labels, line_no)
            delta = target - (address + WORD_BYTES)
            if delta % WORD_BYTES:
                raise AssemblerError(
                    f"line {line_no}: branch target not word-aligned"
                )
            words = delta // WORD_BYTES
            self._check_imm16(words, line_no)
            return Instruction(op, a=a, b=b, imm=words & 0xFFFF)
        # Plain ALU immediate: op rd, rs, imm
        rd = _parse_register(operands[0], line_no)
        rs = _parse_register(operands[1], line_no)
        value = _parse_int(operands[2], line_no)
        self._check_imm16(value, line_no)
        return Instruction(op, a=rd, b=rs, imm=value & 0xFFFF)

    @staticmethod
    def _check_imm16(value: int, line_no: int) -> None:
        if not -0x8000 <= value <= 0xFFFF:
            raise AssemblerError(
                f"line {line_no}: immediate {value} does not fit in 16 bits"
            )

    def _resolve(self, token: str, labels: dict[str, int],
                 line_no: int) -> int:
        token = token.strip()
        if _LABEL_RE.match(token) and token in labels:
            return labels[token]
        if _LABEL_RE.match(token) and not token[0].isdigit():
            raise AssemblerError(f"line {line_no}: unknown label {token!r}")
        return _parse_int(token, line_no)


def assemble(source: str, name: str = "a.out", **kwargs) -> PlainProgram:
    """Module-level convenience wrapper around :class:`Assembler`."""
    return Assembler(**kwargs).assemble(source, name=name)

"""SRP-32: the Secure RISC Processor instruction set.

A small MIPS-flavoured ISA, sufficient to write the example workloads that
run end-to-end through the encrypted memory path.  Design points that
matter for the reproduction:

* fixed 32-bit instructions — two per 64-bit DES block, exactly the §3.4.1
  pairing the paper describes for vendor code encryption;
* explicit security instructions (``XENTER``/``XEXIT``) mirroring XOM's
  "new instructions ... for handling start/termination of XOM mode" (§2.3);
* loads/stores are word/byte aligned so no access ever straddles a cache
  line, keeping the functional hierarchy honest.

Encoding: ``opcode[31:26] a[25:21] b[20:16] c[15:11]`` with the low 16 bits
an immediate for I-format and the low 26 bits a word target for J-format.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IllegalInstructionError

WORD_BYTES = 4
N_REGISTERS = 32


class Format(enum.Enum):
    R = "register"  # op a, b, c
    I = "immediate"  # op a, b, imm16
    J = "jump"  # op target26
    S = "system"  # no operands (imm carried for XENTER)


class Op(enum.Enum):
    """Every SRP-32 opcode, with its binary encoding value."""

    # R-format ALU
    ADD = 0x01
    SUB = 0x02
    AND = 0x03
    OR = 0x04
    XOR = 0x05
    SLL = 0x06
    SRL = 0x07
    SRA = 0x08
    SLT = 0x09
    SLTU = 0x0A
    MUL = 0x0B
    DIVU = 0x0C
    REMU = 0x0D
    JR = 0x0E
    JALR = 0x0F
    # I-format ALU
    ADDI = 0x10
    ANDI = 0x11
    ORI = 0x12
    XORI = 0x13
    SLTI = 0x14
    SLLI = 0x15
    SRLI = 0x16
    SRAI = 0x17
    LUI = 0x18
    # I-format memory
    LW = 0x20
    SW = 0x21
    LB = 0x22
    LBU = 0x23
    SB = 0x24
    # I-format control
    BEQ = 0x28
    BNE = 0x29
    BLT = 0x2A
    BGE = 0x2B
    # J-format
    J = 0x30
    JAL = 0x31
    # System / security
    SYSCALL = 0x38
    HALT = 0x39
    XENTER = 0x3A
    XEXIT = 0x3B

    @property
    def format(self) -> Format:
        return _FORMATS[self]


_FORMATS = {
    Op.ADD: Format.R, Op.SUB: Format.R, Op.AND: Format.R, Op.OR: Format.R,
    Op.XOR: Format.R, Op.SLL: Format.R, Op.SRL: Format.R, Op.SRA: Format.R,
    Op.SLT: Format.R, Op.SLTU: Format.R, Op.MUL: Format.R, Op.DIVU: Format.R,
    Op.REMU: Format.R, Op.JR: Format.R, Op.JALR: Format.R,
    Op.ADDI: Format.I, Op.ANDI: Format.I, Op.ORI: Format.I, Op.XORI: Format.I,
    Op.SLTI: Format.I, Op.SLLI: Format.I, Op.SRLI: Format.I,
    Op.SRAI: Format.I, Op.LUI: Format.I,
    Op.LW: Format.I, Op.SW: Format.I, Op.LB: Format.I, Op.LBU: Format.I,
    Op.SB: Format.I,
    Op.BEQ: Format.I, Op.BNE: Format.I, Op.BLT: Format.I, Op.BGE: Format.I,
    Op.J: Format.J, Op.JAL: Format.J,
    Op.SYSCALL: Format.S, Op.HALT: Format.S,
    Op.XENTER: Format.S, Op.XEXIT: Format.S,
}

_BY_VALUE = {op.value: op for op in Op}

_MASK16 = 0xFFFF
_MASK26 = 0x03FFFFFF


@dataclass(frozen=True)
class Instruction:
    """A decoded SRP-32 instruction."""

    op: Op
    a: int = 0  # register slot [25:21]
    b: int = 0  # register slot [20:16]
    c: int = 0  # register slot [15:11] (R-format third operand)
    imm: int = 0  # 16-bit immediate (I) or 26-bit word target (J/S)

    def encode(self) -> int:
        """Pack into a 32-bit word."""
        word = self.op.value << 26
        fmt = self.op.format
        if fmt is Format.R:
            word |= (self.a & 0x1F) << 21
            word |= (self.b & 0x1F) << 16
            word |= (self.c & 0x1F) << 11
        elif fmt is Format.I:
            word |= (self.a & 0x1F) << 21
            word |= (self.b & 0x1F) << 16
            word |= self.imm & _MASK16
        else:  # J and S formats carry a 26-bit payload
            word |= self.imm & _MASK26
        return word

    @property
    def signed_imm(self) -> int:
        """The 16-bit immediate, sign-extended."""
        imm = self.imm & _MASK16
        return imm - 0x10000 if imm & 0x8000 else imm


def decode(word: int) -> Instruction:
    """Decode a 32-bit word; raises IllegalInstructionError for garbage.

    Under XOM, an illegal decode is the expected symptom of executing
    tampered or spliced ciphertext — the processor 'raises exceptions and
    then halts' (§1)."""
    opcode = (word >> 26) & 0x3F
    op = _BY_VALUE.get(opcode)
    if op is None:
        raise IllegalInstructionError(
            f"opcode {opcode:#04x} in word {word:#010x} does not decode"
        )
    fmt = op.format
    if fmt is Format.R:
        tail = word & 0x7FF
        if tail:
            raise IllegalInstructionError(
                f"R-format word {word:#010x} has non-zero reserved bits"
            )
        return Instruction(
            op,
            a=(word >> 21) & 0x1F,
            b=(word >> 16) & 0x1F,
            c=(word >> 11) & 0x1F,
        )
    if fmt is Format.I:
        return Instruction(
            op,
            a=(word >> 21) & 0x1F,
            b=(word >> 16) & 0x1F,
            imm=word & _MASK16,
        )
    return Instruction(op, imm=word & _MASK26)


#: Conventional register names (MIPS-style), used by the assembler and
#: the register file's calling convention.
REGISTER_NAMES = {
    "zero": 0, "at": 1, "v0": 2, "v1": 3,
    "a0": 4, "a1": 5, "a2": 6, "a3": 7,
    "t0": 8, "t1": 9, "t2": 10, "t3": 11,
    "t4": 12, "t5": 13, "t6": 14, "t7": 15,
    "s0": 16, "s1": 17, "s2": 18, "s3": 19,
    "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "t8": 24, "t9": 25, "k0": 26, "k1": 27,
    "gp": 28, "sp": 29, "fp": 30, "ra": 31,
}

REGISTER_ALIASES = dict(REGISTER_NAMES)
REGISTER_ALIASES.update({f"r{i}": i for i in range(N_REGISTERS)})

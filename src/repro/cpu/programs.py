"""A small library of ready-made SRP-32 programs.

Real kernels — sorting, matrix multiply, string search, checksumming —
used as protected-execution workloads by tests and available to users who
want something meatier than the quickstart to run through the secure
processors.  Each entry pairs assembly source with the expected output so
callers can verify runs mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.assembler import assemble
from repro.secure.software import PlainProgram


@dataclass(frozen=True)
class SampleProgram:
    """Source plus the output a correct run prints."""

    name: str
    source: str
    expected_output: str

    def assemble(self) -> PlainProgram:
        return assemble(self.source, name=self.name)


BUBBLE_SORT = SampleProgram(
    name="bubble-sort",
    source="""
# Bubble-sort a 12-word array in place, then print it space-separated.
main:
    li   s1, 12            # n
outer:
    addi s1, s1, -1
    beq  s1, zero, show
    la   t0, array
    li   t1, 0             # i
inner:
    lw   t2, 0(t0)
    lw   t3, 4(t0)
    ble  t2, t3, no_swap
    sw   t3, 0(t0)
    sw   t2, 4(t0)
no_swap:
    addi t0, t0, 4
    addi t1, t1, 1
    bne  t1, s1, inner
    b    outer
show:
    la   s0, array
    li   s2, 12
print_loop:
    lw   a0, 0(s0)
    li   v0, 1
    syscall
    addi s2, s2, -1
    beq  s2, zero, done
    li   a0, 32
    li   v0, 2
    syscall
    addi s0, s0, 4
    b    print_loop
done:
    halt
    .data
array: .word 170, 45, 75, 90, 2, 802, 24, 66, 17, 3, 99, 1
""",
    expected_output="1 2 3 17 24 45 66 75 90 99 170 802",
)


MATRIX_MULTIPLY = SampleProgram(
    name="matmul-3x3",
    source="""
# C = A x B for 3x3 matrices; print the trace of C.
main:
    li   t7, 3             # matrix dimension, kept in a register (R-format
    li   s0, 0             # i                   MUL has no immediate form)
    li   s3, 0             # trace accumulator
row:
    li   s1, 0             # j
col:
    li   s2, 0             # k
    li   t6, 0             # dot accumulator
dot:
    # t0 = A[i][k]
    mul  t1, s0, t7
    add  t1, t1, s2
    slli t1, t1, 2
    la   t2, mat_a
    add  t2, t2, t1
    lw   t0, 0(t2)
    # t3 = B[k][j]
    mul  t4, s2, t7
    add  t4, t4, s1
    slli t4, t4, 2
    la   t5, mat_b
    add  t5, t5, t4
    lw   t3, 0(t5)
    mul  t0, t0, t3
    add  t6, t6, t0
    addi s2, s2, 1
    bne  s2, t7, dot
    # store C[i][j]
    mul  t1, s0, t7
    add  t1, t1, s1
    slli t1, t1, 2
    la   t2, mat_c
    add  t2, t2, t1
    sw   t6, 0(t2)
    bne  s0, s1, skip_trace
    add  s3, s3, t6
skip_trace:
    addi s1, s1, 1
    li   t7, 3
    bne  s1, t7, col
    addi s0, s0, 1
    bne  s0, t7, row
    mov  a0, s3
    li   v0, 1
    syscall
    halt
    .data
mat_a: .word 1, 2, 3, 4, 5, 6, 7, 8, 9
mat_b: .word 9, 8, 7, 6, 5, 4, 3, 2, 1
mat_c: .space 36
""",
    # C[0][0]=1*9+2*6+3*3=30; C[1][1]=4*8+5*5+6*2=69; C[2][2]=7*7+8*4+9*1=90
    expected_output=str(30 + 69 + 90),
)


STRING_SEARCH = SampleProgram(
    name="strstr",
    source="""
# Count occurrences of "the" in a text (naive scan).
main:
    la   s0, text
    li   s1, 0             # count
scan:
    lbu  t0, 0(s0)
    beq  t0, zero, done
    li   t1, 116           # 't'
    bne  t0, t1, next
    lbu  t2, 1(s0)
    li   t1, 104           # 'h'
    bne  t2, t1, next
    lbu  t2, 2(s0)
    li   t1, 101           # 'e'
    bne  t2, t1, next
    addi s1, s1, 1
next:
    addi s0, s0, 1
    b    scan
done:
    mov  a0, s1
    li   v0, 1
    syscall
    halt
    .data
text: .asciiz "the quick brown fox jumped over the lazy dog and then the cat"
""",
    expected_output="4",  # the, the, then(the), the
)


FIBONACCI = SampleProgram(
    name="fibonacci",
    source="""
# Iterative Fibonacci: print F(30).
main:
    li   t0, 0
    li   t1, 1
    li   t2, 30
fib:
    add  t3, t0, t1
    mov  t0, t1
    mov  t1, t3
    addi t2, t2, -1
    bne  t2, zero, fib
    mov  a0, t0
    li   v0, 1
    syscall
    halt
""",
    expected_output="832040",
)


#: Every sample, for parametrized testing.
SAMPLES: tuple[SampleProgram, ...] = (
    BUBBLE_SORT,
    MATRIX_MULTIPLY,
    STRING_SEARCH,
    FIBONACCI,
)

"""Register files for the SRP-32 machine.

Two interchangeable implementations share the read/write protocol:

* :class:`RegisterFile` — a plain 32 x 32-bit file for the insecure
  baseline machine;
* :class:`~repro.secure.compartment.TaggedRegisterFile` — the XOM-style
  file whose entries carry compartment ownership tags (§2.3).

Both enforce the ``r0 == 0`` convention here rather than in the machine,
so no caller can forget it.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ConfigurationError

_MASK32 = 0xFFFFFFFF


class RegisterFileLike(Protocol):
    """What the machine requires of a register file."""

    def read(self, index: int) -> int: ...

    def write(self, index: int, value: int) -> None: ...


class RegisterFile:
    """A plain 32-entry register file with a hardwired zero register."""

    def __init__(self, n_registers: int = 32):
        if n_registers < 2:
            raise ConfigurationError("need at least r0 and one register")
        self.n_registers = n_registers
        self._values = [0] * n_registers

    def _check(self, index: int) -> None:
        if not 0 <= index < self.n_registers:
            raise ConfigurationError(f"register index {index} out of range")

    def read(self, index: int) -> int:
        self._check(index)
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        self._check(index)
        if index == 0:
            return  # r0 is hardwired to zero
        self._values[index] = value & _MASK32

    def snapshot(self) -> list[int]:
        """A copy of all register values (debugging, tests)."""
        return list(self._values)


class ZeroGuard:
    """Wraps any register file to enforce the r0-is-zero convention.

    The tagged file from :mod:`repro.secure.compartment` knows nothing
    about SRP-32 conventions; this adapter adds them without inheritance.
    """

    def __init__(self, inner):
        self._inner = inner

    def read(self, index: int) -> int:
        if index == 0:
            return 0
        return self._inner.read(index)

    def write(self, index: int, value: int) -> None:
        if index == 0:
            return
        self._inner.write(index, value)

    def __getattr__(self, name):
        return getattr(self._inner, name)

"""The SRP-32 functional simulator.

Executes programs against a :class:`~repro.memory.hierarchy.MemoryHierarchy`
so every fetch, load and store travels the full cache path and — when the
hierarchy is backed by a secure engine — the genuine crypto path.

Cycle accounting is deliberately simple (1 issue cycle per instruction plus
the hierarchy's stall cycles); the quantitative evaluation uses the
trace-driven pipeline in :mod:`repro.eval`, not this machine.  What the
machine is *for* is end-to-end fidelity: encrypted image in, correct
program output out, with ciphertext (and only ciphertext) on the bus.

Immediate conventions: ``ADDI``/``SLTI``/loads/stores/branches sign-extend;
``ANDI``/``ORI``/``XORI`` zero-extend (so ``LUI``+``ORI`` builds constants).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.cpu.isa import Instruction, Op, WORD_BYTES, decode
from repro.cpu.registers import RegisterFile, RegisterFileLike
from repro.errors import MachineError
from repro.memory.hierarchy import MemoryHierarchy

_MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


class HaltReason(enum.Enum):
    HALT_INSTRUCTION = "halt"
    EXIT_SYSCALL = "exit"
    STEP_LIMIT = "step-limit"


@dataclass
class MachineResult:
    """What a finished run reports."""

    reason: HaltReason
    steps: int
    cycles: int
    output: str
    exit_code: int = 0


class Syscall(enum.IntEnum):
    """The SRP-32 system-call numbers (code in v0, argument in a0)."""

    PRINT_INT = 1
    PRINT_CHAR = 2
    PRINT_STRING = 3
    READ_INT = 5
    EXIT = 10


class Machine:
    """A single-issue functional SRP-32 core."""

    def __init__(self, hierarchy: MemoryHierarchy, entry_point: int,
                 registers: RegisterFileLike | None = None,
                 stack_top: int = 0x0020_0000,
                 on_xom_enter: Callable[[], None] | None = None,
                 on_xom_exit: Callable[[], None] | None = None):
        self.hierarchy = hierarchy
        self.registers = registers if registers is not None else RegisterFile()
        self.pc = entry_point
        self.steps = 0
        self.output_parts: list[str] = []
        self.input_queue: list[int] = []
        self.exit_code = 0
        self._halted: HaltReason | None = None
        self._on_xom_enter = on_xom_enter
        self._on_xom_exit = on_xom_exit
        self.registers.write(29, stack_top)  # sp

    # ----------------------------------------------------------------- run

    def run(self, max_steps: int = 1_000_000) -> MachineResult:
        """Execute until HALT/exit or the step limit."""
        while self._halted is None and self.steps < max_steps:
            self.step()
        if self._halted is None:
            self._halted = HaltReason.STEP_LIMIT
        return MachineResult(
            reason=self._halted,
            steps=self.steps,
            cycles=self.steps + self.hierarchy.stats.stall_cycles,
            output="".join(self.output_parts),
            exit_code=self.exit_code,
        )

    def step(self) -> None:
        """Fetch-decode-execute one instruction."""
        if self._halted is not None:
            raise MachineError("machine has halted")
        word = int.from_bytes(self.hierarchy.fetch(self.pc, WORD_BYTES), "big")
        instruction = decode(word)
        self.steps += 1
        next_pc = self.pc + WORD_BYTES
        self.pc = self._execute(instruction, next_pc)

    # ------------------------------------------------------------- execute

    def _execute(self, ins: Instruction, next_pc: int) -> int:
        op = ins.op
        read = self.registers.read
        write = self.registers.write

        # R-format ALU ------------------------------------------------------
        if op is Op.ADD:
            write(ins.a, read(ins.b) + read(ins.c))
        elif op is Op.SUB:
            write(ins.a, read(ins.b) - read(ins.c))
        elif op is Op.AND:
            write(ins.a, read(ins.b) & read(ins.c))
        elif op is Op.OR:
            write(ins.a, read(ins.b) | read(ins.c))
        elif op is Op.XOR:
            write(ins.a, read(ins.b) ^ read(ins.c))
        elif op is Op.SLL:
            write(ins.a, read(ins.b) << (read(ins.c) & 31))
        elif op is Op.SRL:
            write(ins.a, (read(ins.b) & _MASK32) >> (read(ins.c) & 31))
        elif op is Op.SRA:
            write(ins.a, _signed(read(ins.b)) >> (read(ins.c) & 31))
        elif op is Op.SLT:
            write(ins.a, int(_signed(read(ins.b)) < _signed(read(ins.c))))
        elif op is Op.SLTU:
            write(ins.a, int((read(ins.b) & _MASK32) < (read(ins.c) & _MASK32)))
        elif op is Op.MUL:
            write(ins.a, read(ins.b) * read(ins.c))
        elif op is Op.DIVU:
            divisor = read(ins.c) & _MASK32
            if divisor == 0:
                raise MachineError(f"division by zero at pc={self.pc:#x}")
            write(ins.a, (read(ins.b) & _MASK32) // divisor)
        elif op is Op.REMU:
            divisor = read(ins.c) & _MASK32
            if divisor == 0:
                raise MachineError(f"remainder by zero at pc={self.pc:#x}")
            write(ins.a, (read(ins.b) & _MASK32) % divisor)

        # I-format ALU ------------------------------------------------------
        elif op is Op.ADDI:
            write(ins.a, read(ins.b) + ins.signed_imm)
        elif op is Op.ANDI:
            write(ins.a, read(ins.b) & ins.imm)
        elif op is Op.ORI:
            write(ins.a, read(ins.b) | ins.imm)
        elif op is Op.XORI:
            write(ins.a, read(ins.b) ^ ins.imm)
        elif op is Op.SLTI:
            write(ins.a, int(_signed(read(ins.b)) < ins.signed_imm))
        elif op is Op.SLLI:
            write(ins.a, read(ins.b) << (ins.imm & 31))
        elif op is Op.SRLI:
            write(ins.a, (read(ins.b) & _MASK32) >> (ins.imm & 31))
        elif op is Op.SRAI:
            write(ins.a, _signed(read(ins.b)) >> (ins.imm & 31))
        elif op is Op.LUI:
            write(ins.a, ins.imm << 16)

        # Memory --------------------------------------------------------
        elif op is Op.LW:
            addr = (read(ins.b) + ins.signed_imm) & _MASK32
            self._check_alignment(addr, 4)
            write(ins.a, int.from_bytes(self.hierarchy.load(addr, 4), "big"))
        elif op is Op.SW:
            addr = (read(ins.b) + ins.signed_imm) & _MASK32
            self._check_alignment(addr, 4)
            self.hierarchy.store(
                addr, (read(ins.a) & _MASK32).to_bytes(4, "big")
            )
        elif op is Op.LB:
            addr = (read(ins.b) + ins.signed_imm) & _MASK32
            byte = self.hierarchy.load(addr, 1)[0]
            write(ins.a, byte - 0x100 if byte & 0x80 else byte)
        elif op is Op.LBU:
            addr = (read(ins.b) + ins.signed_imm) & _MASK32
            write(ins.a, self.hierarchy.load(addr, 1)[0])
        elif op is Op.SB:
            addr = (read(ins.b) + ins.signed_imm) & _MASK32
            self.hierarchy.store(addr, bytes([read(ins.a) & 0xFF]))

        # Control -------------------------------------------------------
        elif op is Op.BEQ:
            if read(ins.a) == read(ins.b):
                return next_pc + ins.signed_imm * WORD_BYTES
        elif op is Op.BNE:
            if read(ins.a) != read(ins.b):
                return next_pc + ins.signed_imm * WORD_BYTES
        elif op is Op.BLT:
            if _signed(read(ins.a)) < _signed(read(ins.b)):
                return next_pc + ins.signed_imm * WORD_BYTES
        elif op is Op.BGE:
            if _signed(read(ins.a)) >= _signed(read(ins.b)):
                return next_pc + ins.signed_imm * WORD_BYTES
        elif op is Op.J:
            return ins.imm * WORD_BYTES
        elif op is Op.JAL:
            write(31, next_pc)
            return ins.imm * WORD_BYTES
        elif op is Op.JR:
            return read(ins.a) & _MASK32
        elif op is Op.JALR:
            target = read(ins.b) & _MASK32
            write(ins.a, next_pc)
            return target

        # System ----------------------------------------------------------
        elif op is Op.SYSCALL:
            self._syscall()
        elif op is Op.HALT:
            self._halted = HaltReason.HALT_INSTRUCTION
        elif op is Op.XENTER:
            if self._on_xom_enter is not None:
                self._on_xom_enter()
        elif op is Op.XEXIT:
            if self._on_xom_exit is not None:
                self._on_xom_exit()
        else:  # pragma: no cover - the decoder already rejects unknowns
            raise MachineError(f"unimplemented op {op}")
        return next_pc

    @staticmethod
    def _check_alignment(addr: int, size: int) -> None:
        if addr % size:
            raise MachineError(
                f"unaligned {size}-byte access at {addr:#x}"
            )

    # ------------------------------------------------------------- syscalls

    def _syscall(self) -> None:
        code = self.registers.read(2)  # v0
        arg = self.registers.read(4)  # a0
        if code == Syscall.PRINT_INT:
            self.output_parts.append(str(_signed(arg)))
        elif code == Syscall.PRINT_CHAR:
            self.output_parts.append(chr(arg & 0xFF))
        elif code == Syscall.PRINT_STRING:
            self.output_parts.append(self._read_string(arg))
        elif code == Syscall.READ_INT:
            if not self.input_queue:
                raise MachineError("READ_INT with empty input queue")
            self.registers.write(2, self.input_queue.pop(0) & _MASK32)
        elif code == Syscall.EXIT:
            self.exit_code = _signed(arg)
            self._halted = HaltReason.EXIT_SYSCALL
        else:
            raise MachineError(f"unknown syscall {code}")

    def _read_string(self, addr: int, limit: int = 4096) -> str:
        chars = []
        for offset in range(limit):
            byte = self.hierarchy.load(addr + offset, 1)[0]
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)

"""A simplified CACTI-style SRAM area model (paper §5.4).

The paper uses CACTI 3.2 to argue its Figure 8 comparison is fair: a 64KB
32-way SNC added to a 4-way 256KB L2 costs chip area between a 5-way 320KB
and a 6-way 384KB L2, so XOM gets the 384KB 6-way L2 — the benefit of the
doubt — and still loses.

This model keeps the three first-order terms a cache's area decomposes
into and is calibrated so the paper's published ordering holds (a unit
test pins it):

* the data array — bits times cell area;
* the tag array — per-line tag + status bits, slightly larger cells
  (comparator loading);
* way-multiplexing periphery — grows with associativity, which is what
  makes high associativity expensive and a fully associative 64KB SNC
  implausible (the paper's §4 motivation for evaluating 32-way).

Units are arbitrary ("cell areas"); only ratios are meaningful, exactly
as the paper uses CACTI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.intmath import log2_exact

#: Relative size of a tag cell vs a data cell (comparator loading).
_TAG_CELL_FACTOR = 1.1
#: Periphery overhead per way of associativity.
_WAY_OVERHEAD = 0.02
#: Status bits per line (valid + dirty).
_STATUS_BITS = 2


@dataclass(frozen=True)
class CacheGeometry:
    """What the area model needs to know about a cache."""

    size_bytes: int
    assoc: int
    line_bytes: int
    va_bits: int = 48  # Alpha-style virtual addresses, as in §4

    def __post_init__(self) -> None:
        if min(self.size_bytes, self.assoc, self.line_bytes) <= 0:
            raise ConfigurationError("geometry values must be positive")
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ConfigurationError(
                f"{self.size_bytes}B is not divisible into "
                f"{self.assoc} ways of {self.line_bytes}B lines"
            )

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.assoc

    @property
    def tag_bits_per_line(self) -> int:
        index_bits = log2_exact(self.n_sets)
        offset_bits = log2_exact(self.line_bytes)
        return self.va_bits - index_bits - offset_bits + _STATUS_BITS


def cache_area(geometry: CacheGeometry) -> float:
    """Area in cell units: data + tags, scaled by way periphery."""
    data_bits = geometry.size_bytes * 8
    tag_bits = geometry.n_lines * geometry.tag_bits_per_line
    periphery = 1.0 + _WAY_OVERHEAD * geometry.assoc
    return (data_bits + tag_bits * _TAG_CELL_FACTOR) * periphery


def l2_area(size_bytes: int, assoc: int, line_bytes: int = 128) -> float:
    """Area of an L2 configuration (the paper's 128B lines)."""
    return cache_area(CacheGeometry(size_bytes, assoc, line_bytes))


def snc_area(size_bytes: int = 64 * 1024, assoc: int = 32,
             entries_per_tag: int = 32, entry_bytes: int = 2) -> float:
    """Area of an SNC configuration.

    A practical SNC shares one tag across a group of sequence numbers
    (``entries_per_tag``, a 64-byte 'line' of 32 two-byte entries by
    default) — per-entry tags would cost more area than the data itself.
    """
    line_bytes = entries_per_tag * entry_bytes
    return cache_area(CacheGeometry(size_bytes, assoc, line_bytes))


def l2_area_overhead_for_vas(l2_size_bytes: int = 256 * 1024,
                             line_bytes: int = 128,
                             va_bits: int = 48) -> float:
    """§4's side cost: keeping each L2 line's virtual address on chip.

    The paper stores 40 bits of a 48-bit VA per 128B line and reports the
    256KB L2 growing by 4.0%; this helper reproduces that arithmetic."""
    n_lines = l2_size_bytes // line_bytes
    stored_bits = va_bits - 8  # the paper keeps 40 of 48 bits
    return 100.0 * (n_lines * stored_bits) / (l2_size_bytes * 8)


@dataclass(frozen=True)
class Figure8AreaCheck:
    """The paper's §5.4 area equivalence, evaluated by this model."""

    l2_plus_snc: float
    l2_320k_5way: float
    l2_384k_6way: float

    @property
    def holds(self) -> bool:
        """True iff L2+SNC sits between the 320KB and 384KB L2s."""
        return self.l2_320k_5way < self.l2_plus_snc < self.l2_384k_6way


def figure8_area_check() -> Figure8AreaCheck:
    """Evaluate the §5.4 claim with this model's constants."""
    return Figure8AreaCheck(
        l2_plus_snc=l2_area(256 * 1024, 4) + snc_area(),
        l2_320k_5way=l2_area(320 * 1024, 5),
        l2_384k_6way=l2_area(384 * 1024, 6),
    )

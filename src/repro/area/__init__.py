"""Cache area estimation (simplified CACTI), for the Figure 8 fairness
argument."""

from repro.area.cacti import (
    CacheGeometry,
    Figure8AreaCheck,
    cache_area,
    figure8_area_check,
    l2_area,
    l2_area_overhead_for_vas,
    snc_area,
)

__all__ = [
    "CacheGeometry",
    "Figure8AreaCheck",
    "cache_area",
    "figure8_area_check",
    "l2_area",
    "l2_area_overhead_for_vas",
    "snc_area",
]

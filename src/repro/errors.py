"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with one handler while still being able
to discriminate the security-relevant failures (tamper detection, compartment
violations) from plain configuration mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class CryptoError(ReproError):
    """A cryptographic primitive was misused (bad key/block size, etc.)."""


class KeyExchangeError(CryptoError):
    """The vendor/CPU key-exchange protocol failed."""


class AssemblerError(ReproError):
    """Assembly source could not be translated into an SRP-32 image."""


class MachineError(ReproError):
    """The functional CPU simulator hit an illegal state."""


class IllegalInstructionError(MachineError):
    """The CPU fetched a word that does not decode to a valid instruction.

    Under XOM this is the typical symptom of executing spliced or corrupted
    ciphertext: the decrypted garbage fails to decode.
    """


class MemoryFault(MachineError):
    """An access fell outside the mapped address space."""


class SecurityViolation(ReproError):
    """Base class for violations of the secure-processor model."""


class CompartmentViolation(SecurityViolation):
    """A task touched register or cache state tagged with a foreign XOM ID."""


class TamperDetected(SecurityViolation):
    """Memory integrity verification failed (MAC or hash-tree mismatch)."""


class ReplayDetected(TamperDetected):
    """A stale-but-authentic memory line was detected by integrity checking."""

"""repro — a reproduction of *Fast Secure Processor for Inhibiting
Software Piracy and Tampering* (Yang, Zhang, Gao; MICRO-36, 2003).

The paper's contribution is one-time-pad (counter-mode) memory encryption
with an on-chip Sequence Number Cache (SNC), which moves the decryption
work of an XOM-style secure processor off the memory-access critical path:
a read miss costs ``MAX(memory, crypto) + 1`` instead of
``memory + crypto``.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.crypto` — from-scratch DES/3DES/AES, SHA, RSA, MACs, and the
  counter-mode pad generation.
* :mod:`repro.memory` — DRAM, caches, write buffer, bus (with tap points).
* :mod:`repro.cpu` — the SRP-32 ISA, assembler and functional machine.
* :mod:`repro.secure` — the paper's engines (XOM and OTP+SNC), seeds,
  compartments, vendor packaging, integrity extension, the
  protection-scheme registry (:mod:`repro.secure.schemes` — one
  :class:`~repro.secure.schemes.SchemeSpec` per scheme, spanning the
  functional, timing and evaluation layers), and the assembled
  :class:`~repro.secure.processor.SecureProcessor`.
* :mod:`repro.timing` / :mod:`repro.workloads` / :mod:`repro.eval` — the
  trace-driven evaluation that regenerates the paper's Figures 3 and 5-10.
* :mod:`repro.attacks` — the threat model's adversary, runnable.
* :mod:`repro.area` — the CACTI-style model behind Figure 8's fairness.

Quick start::

    from repro import SecureProcessor, package_program, assemble

    cpu = SecureProcessor(key_seed="my-cpu")
    program = package_program(assemble(SOURCE), cpu.public_key)
    report = cpu.run(program)
    print(report.output, report.cycles)
"""

from repro.cpu import Machine, assemble
from repro.secure import (
    EngineKind,
    LatencyParams,
    OTPEngine,
    PlainProgram,
    ProtectionScheme,
    SchemeSpec,
    SecureProcessor,
    SecureProgram,
    SequenceNumberCache,
    SNCConfig,
    SNCPolicy,
    XOMEngine,
    all_schemes,
    get_scheme,
    package_program,
)

__version__ = "1.0.0"

__all__ = [
    "EngineKind",
    "LatencyParams",
    "Machine",
    "OTPEngine",
    "PlainProgram",
    "ProtectionScheme",
    "SNCConfig",
    "SNCPolicy",
    "SchemeSpec",
    "SecureProcessor",
    "SecureProgram",
    "SequenceNumberCache",
    "XOMEngine",
    "all_schemes",
    "assemble",
    "get_scheme",
    "package_program",
    "__version__",
]

"""On-disk result store for simulation tasks.

A full-scale sweep simulates 11 benchmarks x ~450K references each; an
interrupted or partially-selected run should not pay for the part that
already happened.  The cache maps a task — a figure
:class:`~repro.eval.jobs.SimulationTask` or a §4.3
:class:`~repro.eval.jobs.ScenarioTask` — to its
:class:`~repro.eval.pipeline.BenchmarkEvents`, keyed by

* the task's ``config_hash()`` (workload source, SNC geometries, switch
  strategy, scale, seed — a trace-file source digests the file's
  contents), and
* a fingerprint of the simulation-relevant source modules,

so any config tweak *or* code change invalidates exactly the affected
entries.  Entries are plain JSON (one file per task) — safe to inspect,
diff, and delete; a corrupt or unreadable file degrades to a miss.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
import os
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path

from repro.eval.jobs import AnyTask
from repro.eval.pipeline import BenchmarkEvents
from repro.secure.integrity import IntegrityEventCounts
from repro.timing.model import SNCEventCounts

#: Bump when the serialization layout changes.
CACHE_FORMAT = 2  # 2: BenchmarkEvents gained per-config integrity counts

#: Modules whose source determines simulation results.  Pricing-only code
#: (latency parameters, report formatting) deliberately stays out: a tweak
#: there reuses cached events, which is the whole point of splitting
#: simulation from pricing.
_FINGERPRINT_MODULES = (
    "repro.eval.pipeline",
    "repro.eval.record",
    "repro.memory.cache",
    "repro.secure.context",
    "repro.secure.snc",
    "repro.secure.snc_policy",
    "repro.timing.model",
    "repro.workloads.patterns",
    "repro.workloads.sources",
    "repro.workloads.spec",
    "repro.workloads.tracegen",
)


def _fingerprint_module_names() -> list[str]:
    """The static list plus every discovered scheme and integrity module
    (a scheme's timing state machine lives in its spec file, and an
    integrity provider's timing twin in its, so an edit there must
    invalidate results simulated through it)."""
    from repro.secure.integrity import integrity_module_names
    from repro.secure.schemes import scheme_module_names

    names = list(_FINGERPRINT_MODULES)
    names.append("repro.secure.schemes")
    names.extend(scheme_module_names())
    names.append("repro.secure.integrity")
    names.append("repro.secure.integrity.providers")
    names.extend(integrity_module_names())
    return sorted(names)


def fingerprint_of(module_names) -> str:
    """SHA-256 over the given modules' source bytes — the one
    implementation behind both the result cache's fingerprint and the
    trace store's (:func:`repro.eval.trace_store.record_fingerprint`),
    so the two invalidation mechanisms cannot drift."""
    digest = hashlib.sha256()
    for name in module_names:
        module = importlib.import_module(name)
        digest.update(name.encode())
        digest.update(Path(module.__file__).read_bytes())
    return digest.hexdigest()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the source of every simulation-relevant module."""
    return fingerprint_of(_fingerprint_module_names())


#: Disambiguates temp names within one process (pid alone is not enough:
#: concurrent threads, or a pool worker writing two entries back-to-back,
#: must never collide on the scratch file).
_TMP_SEQ = itertools.count()


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-to-temp + rename with a *writer-unique* temp name.

    Both on-disk stores use this; a shared temp name (``path`` with a
    ``.tmp`` suffix) races under concurrent writers — two processes
    writing the same key interleave their bytes in one scratch file and
    one of them renames a torn hybrid into place.  A per-writer name
    (pid + sequence) keeps every rename atomic and whole-file.  The
    scratch file is removed on failure so crashed writers do not litter
    the store; any exception propagates for the caller to count.
    """
    tmp = path.parent / f".{path.name}.{os.getpid()}.{next(_TMP_SEQ)}.tmp"
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def default_cache_dir() -> Path:
    """``$REPRO_EVAL_CACHE_DIR``, or ``~/.cache/repro-eval``."""
    override = os.environ.get("REPRO_EVAL_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-eval"


def events_to_dict(events: BenchmarkEvents) -> dict:
    return asdict(events)  # recurses into the nested SNCEventCounts


def events_from_dict(payload: dict) -> BenchmarkEvents:
    snc = {key: SNCEventCounts(**counts)
           for key, counts in payload.pop("snc", {}).items()}
    integrity = {key: IntegrityEventCounts(**counts)
                 for key, counts in payload.pop("integrity", {}).items()}
    return BenchmarkEvents(snc=snc, integrity=integrity, **payload)


class ResultCache:
    """One JSON file per task under ``root``; misses on any anomaly."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.put_errors = 0

    def key_for(self, task: AnyTask) -> str:
        digest = hashlib.sha256()
        digest.update(f"format:{CACHE_FORMAT}\n".encode())
        digest.update(f"code:{code_fingerprint()}\n".encode())
        digest.update(f"task:{task.config_hash()}\n".encode())
        return digest.hexdigest()

    def path_for(self, task: AnyTask) -> Path:
        return self.root / f"{self.key_for(task)}.json"

    def get(self, task: AnyTask) -> BenchmarkEvents | None:
        path = self.path_for(task)
        try:
            payload = json.loads(path.read_text())
            events = events_from_dict(payload["events"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return events

    def put(self, task: AnyTask, events: BenchmarkEvents) -> None:
        """Best-effort write: an unwritable cache must never abort a run
        whose (expensive) simulation already succeeded."""
        payload = {
            "format": CACHE_FORMAT,
            "task": task.canonical(),
            "events": events_to_dict(events),
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                self.path_for(task),
                json.dumps(payload, sort_keys=True, indent=1).encode(),
            )
        except OSError:
            self.put_errors += 1

"""Phase 1 + phase 2 of the record/replay trace engine.

The fused pipeline (:mod:`repro.eval.pipeline`) regenerates the workload
stream and re-simulates the L2 for every simulation task, yet that work is
*configuration-independent*: every SNC geometry, protection scheme,
integrity model and §4.3 switch strategy consumes the exact same L2
miss/writeback stream.  This module splits the pass in two:

* :func:`record_source` — run the workload source and the L2(s) **once**
  per (source, scale, seed, L2 geometry) and keep only the compacted
  events: read/allocate misses, writebacks (with their owner), context
  switches, and the warmup boundary, plus the measured aggregate counters.
  The result is a :class:`Recording`, persisted by
  :mod:`repro.eval.trace_store`.
* :meth:`Recording.replay` / :meth:`Recording.replay_batch` — phase 2:
  feed the recording through any set of SNC timing state machines and
  integrity models.  ``replay`` walks the events once per configuration
  through :meth:`~repro.timing.model.SNCTimingSim.replay_events` (the
  per-event reference path); ``replay_batch`` prices many configuration
  sets in **one** event-major pass
  (:func:`repro.timing.batch.replay_events_batch`).  Either way the
  resulting :class:`~repro.eval.pipeline.BenchmarkEvents` are
  **identical** to the fused path's, field for field
  (``tests/eval/test_replay_differential.py`` pins this; the paper
  tables come out byte-identical from all backends).

Event vocabulary: parallel typed columns ``kinds`` / ``lines`` / ``aux``
(:mod:`array`), one entry per event, using the ``EVENT_*`` constants from
:mod:`repro.timing.model`.  The stream covers warmup too (it warms the
SNC/integrity state); :data:`~repro.timing.model.EVENT_RESET` marks where
every counter zeroes while state stays warm, mirroring the fused loops'
boundary handling exactly.

The free functions :func:`replay_benchmark` and :func:`replay_scenario`
are deprecated thin wrappers over the :class:`Recording` methods, kept
for one release.
"""

from __future__ import annotations

import os
import warnings
from array import array
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from operator import itemgetter

from repro.errors import ConfigurationError
from repro.memory.cache import TagOnlyCache
from repro.secure.integrity import IntegrityConfig
from repro.secure.snc import SNCConfig
from repro.secure.snc_policy import SwitchStrategy
from repro.timing.batch import replay_events_batch
from repro.timing.model import (
    EVENT_ALLOC,
    EVENT_READ,
    EVENT_RESET,
    EVENT_SWITCH,
    EVENT_WRITEBACK,
    calibrate_compute_cycles,
)
from repro.eval.pipeline import (
    L2_BASE_ASSOC,
    L2_BASE_LINES,
    L2_BIG_ASSOC,
    L2_BIG_LINES,
    BenchmarkEvents,
    SimulationScale,
    _build_integrity_models,
    _build_sims,
)
from repro.workloads.sources import Switch, WorkloadSource

#: One recorded event, as the compatibility view materializes it:
#: ``(kind, line_index, aux)``.
Event = tuple[int, int, int]

#: In-memory column typecodes: value-exact (the wire format narrows to
#: u8/u32/u16 and rejects what doesn't fit; see
#: :mod:`repro.eval.trace_store`).
KIND_TYPECODE = "B"
LINE_TYPECODE = "Q"
AUX_TYPECODE = "Q"


@dataclass(frozen=True)
class RecordedTask:
    """One task of a recording: enough to rebuild the per-task compute
    calibration without the original :class:`~repro.workloads.sources.
    WorkloadSource` (same fields as its
    :class:`~repro.workloads.sources.TaskBinding`)."""

    xom_id: int
    label: str
    xom_slowdown_pct: float


@dataclass(frozen=True)
class ReplayRequest:
    """One replay's configuration set — what distinguishes the tasks a
    :meth:`Recording.replay_batch` pass prices together.

    ``strategy`` selects the flavor: ``None`` is the figure path (no
    task bookkeeping, scheme-default switch handling, optional
    alternate-L2 aggregates), a :class:`~repro.secure.snc_policy.
    SwitchStrategy` is the §4.3 scenario path (per-task cores, per-task
    compute calibration)."""

    snc_configs: Mapping[str, SNCConfig]
    snc_schemes: Mapping[str, str] | None = None
    strategy: SwitchStrategy | None = None
    alt_l2: bool = False
    integrity_configs: Mapping[str, IntegrityConfig] | None = None
    integrity_providers: Mapping[str, str] | None = None


@dataclass
class Recording:
    """Everything phase 2 needs: the compacted event stream plus the
    measured aggregates phase 1 already counted.

    The stream lives in three parallel typed columns — ``kinds``,
    ``lines``, ``aux`` (:mod:`array`; entry *i* of each is event *i*) —
    covering warmup too (warmup events warm SNC and integrity state);
    the aggregate counters cover only the measurement window, exactly as
    the fused loops count them.  The alternate-L2 counters are ``None``
    when the recording skipped the Figure 8 cache (non-benchmark sources
    never record it)."""

    name: str
    tasks: tuple[RecordedTask, ...]
    warmup_refs: int
    measure_refs: int
    seed: int
    l2_lines: int
    l2_assoc: int
    read_misses: int
    allocate_misses: int
    writebacks: int
    read_misses_big_l2: int | None
    allocate_misses_big_l2: int | None
    task_read_misses: dict[int, int]
    kinds: array = field(default_factory=lambda: array(KIND_TYPECODE))
    lines: array = field(default_factory=lambda: array(LINE_TYPECODE))
    aux: array = field(default_factory=lambda: array(AUX_TYPECODE))

    @property
    def total_refs(self) -> int:
        return self.warmup_refs + self.measure_refs

    @property
    def event_count(self) -> int:
        return len(self.kinds)

    def iter_events(self):
        """The per-event view of the columns: ``(kind, line, aux)``
        triples in stream order — what the per-event reference loops
        consume."""
        return zip(self.kinds, self.lines, self.aux)

    @property
    def events(self) -> list[Event]:
        """The stream materialized as tuples (tests and debugging; the
        replay paths iterate the columns directly)."""
        return list(self.iter_events())

    # -- phase 2 -------------------------------------------------------

    def replay(self, snc_configs: Mapping[str, SNCConfig],
               snc_schemes: Mapping[str, str] | None = None,
               *,
               strategy: SwitchStrategy | None = None,
               alt_l2: bool = False,
               integrity_configs: Mapping[str, IntegrityConfig]
               | None = None,
               integrity_providers: Mapping[str, str] | None = None,
               ) -> BenchmarkEvents:
        """Phase 2, per-event reference path: the replay twin of
        :func:`~repro.eval.pipeline.simulate_benchmark` (``strategy=
        None``) or :func:`~repro.eval.pipeline.simulate_scenario` (a
        :class:`~repro.secure.snc_policy.SwitchStrategy`).

        Builds the same state machines the fused path would and walks
        the recorded columns through each, one configuration at a time
        — the reference backend :meth:`replay_batch` must match.
        """
        request = ReplayRequest(
            snc_configs=snc_configs,
            snc_schemes=snc_schemes,
            strategy=strategy,
            alt_l2=alt_l2,
            integrity_configs=integrity_configs,
            integrity_providers=integrity_providers,
        )
        sims, models = self._build(request)
        events_stream = self.iter_events
        for sim in sims.values():
            sim.replay_events(events_stream())
        for model in models.values():
            _apply_to_integrity(model, events_stream())
        return self._assemble(request, sims, models)

    def replay_batch(self, requests: Sequence[ReplayRequest],
                     ) -> list[BenchmarkEvents]:
        """Phase 2, batched: price every request in **one** event-major
        pass over the columns (outer loop over events, inner loop over
        the union of all requests' state machines), byte-identical to
        calling :meth:`replay` per request.

        One recording often serves many configuration sets — a FLUSH
        task and a TAG task, or several SNC geometry sweeps — and the
        shared pass amortizes the per-event decode across all of them
        (:func:`repro.timing.batch.replay_events_batch` is the loop).
        """
        built = [self._build(request) for request in requests]
        all_sims = [sim for sims, _models in built
                    for sim in sims.values()]
        all_models = [model for _sims, models in built
                      for model in models.values()]
        replay_events_batch(all_sims, all_models,
                            self.kinds, self.lines, self.aux)
        return [
            self._assemble(request, sims, models)
            for request, (sims, models) in zip(requests, built)
        ]

    def _build(self, request: ReplayRequest) -> tuple[dict, dict]:
        """The state machines one request needs, validated against the
        recording (same builders as the fused path)."""
        if request.alt_l2 and self.read_misses_big_l2 is None:
            raise ConfigurationError(
                f"{self.name}: this recording carries no alternate-L2 "
                "counts — re-record with include_alt_l2=True"
            )
        sims = _build_sims(dict(request.snc_configs),
                           dict(request.snc_schemes)
                           if request.snc_schemes else None,
                           request.strategy)
        models = _build_integrity_models(
            dict(request.integrity_configs)
            if request.integrity_configs else None,
            dict(request.integrity_providers)
            if request.integrity_providers else None,
        )
        if request.strategy is not None:
            first_task = self.tasks[0].xom_id
            for sim in sims.values():
                sim.begin_task(first_task)
        return sims, models

    def _assemble(self, request: ReplayRequest, sims: dict,
                  models: dict) -> BenchmarkEvents:
        """One request's :class:`BenchmarkEvents` from its replayed
        state machines plus the recorded aggregates — the same assembly
        for the per-event and batch paths, so they cannot diverge."""
        if request.strategy is None:
            events = BenchmarkEvents(
                self.name, self.tasks[0].xom_slowdown_pct
            )
            if request.alt_l2:
                events.read_misses_big_l2 = self.read_misses_big_l2
                events.allocate_misses_big_l2 = (
                    self.allocate_misses_big_l2
                )
            else:
                events.read_misses_big_l2 = None
                events.allocate_misses_big_l2 = None
            events.compute_cycles = calibrate_compute_cycles(
                self.read_misses, self.tasks[0].xom_slowdown_pct
            )
        else:
            events = BenchmarkEvents(self.name, 0.0)
            events.read_misses_big_l2 = None
            events.allocate_misses_big_l2 = None
            tasks = self.tasks
            task_read_misses = self.task_read_misses
            compute = 0
            for task in tasks:
                misses = task_read_misses[task.xom_id]
                if misses:
                    compute += calibrate_compute_cycles(
                        misses, task.xom_slowdown_pct
                    )
            events.compute_cycles = compute
            if len(tasks) == 1:
                events.xom_slowdown_target = tasks[0].xom_slowdown_pct
            else:
                events.xom_slowdown_target = sum(
                    task.xom_slowdown_pct * task_read_misses[task.xom_id]
                    for task in tasks
                ) / self.read_misses
            events.task_read_misses = {
                f"{task.xom_id}:{task.label}":
                    task_read_misses[task.xom_id]
                for task in tasks
            }
        events.read_misses = self.read_misses
        events.allocate_misses = self.allocate_misses
        events.writebacks = self.writebacks
        events.snc = {name: sim.counts for name, sim in sims.items()}
        events.integrity = {
            name: model.counts for name, model in models.items()
        }
        return events


#: Block size of the block record pass: big enough to amortize the
#: per-block Python overhead, small enough to stay cache-friendly.
DEFAULT_RECORD_BLOCK = 4096


def _reference_requested() -> bool:
    """``REPRO_RECORD_REFERENCE=1`` forces the per-ref reference recorder
    process-wide (parity triage without touching call sites)."""
    return os.environ.get("REPRO_RECORD_REFERENCE", "") not in ("", "0")


def record_source(source: WorkloadSource,
                  scale: SimulationScale | None = None,
                  seed: int = 1,
                  include_alt_l2: bool = True,
                  l2_lines: int = L2_BASE_LINES,
                  l2_assoc: int = L2_BASE_ASSOC,
                  *,
                  reference: bool = False,
                  block_size: int = DEFAULT_RECORD_BLOCK) -> Recording:
    """Phase 1: one pass over the source and the L2(s), columns out.

    Mirrors the fused loops' reference handling exactly — same L2, same
    warmup-boundary placement, same owner resolution for dirty evictions
    of a shared L2 — so a replay of the result is indistinguishable from
    the fused simulation.  ``include_alt_l2`` additionally runs the
    Figure 8 384KB L2 and records its measured miss counts (aggregates
    only; no SNC consumes its stream); benchmark-source recordings always
    include it so one recording serves every figure.

    The pass is block-columnar: the source supplies typed column blocks
    (:meth:`~repro.workloads.sources.WorkloadSource.stream_blocks`), each
    block — split at the warmup boundary, trimmed at the total — goes
    through :meth:`~repro.memory.cache.TagOnlyCache.access_block` in one
    call, and events land directly in the recording's columns.  The
    retired per-reference loop survives as
    :func:`record_source_reference`, the parity oracle: both produce
    byte-identical recordings (same columns, same CRC, same trace-store
    key; the record differential suite pins it).  ``reference=True`` or
    ``REPRO_RECORD_REFERENCE=1`` selects it.
    """
    if reference or _reference_requested():
        return record_source_reference(
            source, scale, seed, include_alt_l2, l2_lines, l2_assoc
        )
    scale = scale or SimulationScale()
    tasks = source.tasks
    first_task = tasks[0].xom_id
    l2 = TagOnlyCache(l2_lines, l2_assoc)
    access_block = l2.access_block
    big_counts = None
    if include_alt_l2:
        big_counts = TagOnlyCache(
            L2_BIG_LINES, L2_BIG_ASSOC
        ).access_block_counts

    kinds = array(KIND_TYPECODE)
    lines = array(LINE_TYPECODE)
    aux = array(AUX_TYPECODE)
    warmup = scale.warmup_refs
    total = scale.total_refs
    read_misses = allocate_misses = writebacks = 0
    read_misses_big = allocate_misses_big = 0
    task_read_misses = {task.xom_id: 0 for task in tasks}
    # Single-task streams skip the ownership map: every line's owner is
    # the one task (access_block's fast arm resolves victims without it).
    line_owner: dict[int, int] | None = (
        {} if len(tasks) > 1 else None
    )
    current_task = first_task
    position = 0

    if hasattr(source, "stream_blocks"):
        block_stream = source.stream_blocks(seed, block_size)
    else:  # duck-typed source: chunk its scalar stream generically
        block_stream = WorkloadSource.stream_blocks(
            source, seed, block_size
        )
    for item in block_stream:
        if type(item) is Switch:
            kinds.append(EVENT_SWITCH)
            lines.append(0)
            aux.append(item.next_task)
            current_task = item.next_task
            continue
        block_lines, block_writes = item
        count = len(block_lines)
        if position + count > total:
            count = total - position
            block_lines = block_lines[:count]
            block_writes = block_writes[:count]
        if position < warmup < position + count:
            split = warmup - position
            parts = (
                (block_lines[:split], block_writes[:split]),
                (block_lines[split:], block_writes[split:]),
            )
        else:
            parts = ((block_lines, block_writes),)
        for part_lines, part_writes in parts:
            if not part_lines:
                continue
            measuring = position >= warmup
            r, a, w = access_block(
                part_lines, part_writes, kinds, lines, aux,
                EVENT_READ, EVENT_ALLOC, EVENT_WRITEBACK,
                current_task, line_owner,
            )
            if measuring:
                read_misses += r
                allocate_misses += a
                writebacks += w
                task_read_misses[current_task] += r
            position += len(part_lines)
            if position == warmup:
                kinds.append(EVENT_RESET)
                lines.append(0)
                aux.append(0)
            if big_counts is not None:
                big_r, big_a = big_counts(part_lines, part_writes)
                if measuring:
                    read_misses_big += big_r
                    allocate_misses_big += big_a
        if position >= total:
            break

    if read_misses == 0:
        raise ConfigurationError(
            f"{source.name}: the measurement window saw no load misses — "
            "the trace scale is too small to get past the workload's "
            "initialization phase (use at least the QUICK_SCALE lengths)"
        )
    return Recording(
        name=source.name,
        tasks=tuple(
            RecordedTask(task.xom_id, task.label, task.xom_slowdown_pct)
            for task in tasks
        ),
        warmup_refs=scale.warmup_refs,
        measure_refs=scale.measure_refs,
        seed=seed,
        l2_lines=l2_lines,
        l2_assoc=l2_assoc,
        read_misses=read_misses,
        allocate_misses=allocate_misses,
        writebacks=writebacks,
        read_misses_big_l2=read_misses_big if include_alt_l2 else None,
        allocate_misses_big_l2=(
            allocate_misses_big if include_alt_l2 else None
        ),
        task_read_misses=task_read_misses,
        kinds=kinds,
        lines=lines,
        aux=aux,
    )


def record_source_reference(source: WorkloadSource,
                            scale: SimulationScale | None = None,
                            seed: int = 1,
                            include_alt_l2: bool = True,
                            l2_lines: int = L2_BASE_LINES,
                            l2_assoc: int = L2_BASE_ASSOC) -> Recording:
    """The per-reference record loop: :func:`record_source`'s parity
    oracle (the pre-block implementation, kept verbatim).  The record
    differential suite pins the two byte-identical; run sweeps with
    ``REPRO_RECORD_REFERENCE=1`` to select it without code changes.
    """
    scale = scale or SimulationScale()
    tasks = source.tasks
    first_task = tasks[0].xom_id
    l2 = TagOnlyCache(l2_lines, l2_assoc)
    l2_access = l2.access
    big_access = None
    if include_alt_l2:
        big_access = TagOnlyCache(L2_BIG_LINES, L2_BIG_ASSOC).access

    events: list[Event] = []
    append = events.append
    measuring = False
    warmup = scale.warmup_refs
    total = scale.total_refs
    read_misses = allocate_misses = writebacks = 0
    read_misses_big = allocate_misses_big = 0
    task_read_misses = {task.xom_id: 0 for task in tasks}
    # Which task fetched each resident line: a dirty eviction is recorded
    # under the *owner's* tag, resolved here once so replays never need
    # the ownership map (same rule as the fused scenario loop).
    line_owner: dict[int, int] = {}
    current_task = first_task
    position = 0

    for item in source.stream(seed):
        if type(item) is Switch:
            append((EVENT_SWITCH, 0, item.next_task))
            current_task = item.next_task
            continue
        if position == warmup:
            measuring = True
        line, is_write = item

        hit, victim = l2_access(line, is_write)
        if not hit:
            line_owner[line] = current_task
            if is_write:
                if measuring:
                    allocate_misses += 1
                append((EVENT_ALLOC, line, 0))
            else:
                if measuring:
                    read_misses += 1
                    task_read_misses[current_task] += 1
                append((EVENT_READ, line, 0))
        if victim is not None:
            owner = line_owner.pop(victim, current_task)
            if measuring:
                writebacks += 1
            append((EVENT_WRITEBACK, victim, owner))
        if not measuring and position + 1 == warmup:
            append((EVENT_RESET, 0, 0))

        if big_access is not None:
            big_hit, _ = big_access(line, is_write)
            if not big_hit and measuring:
                if is_write:
                    allocate_misses_big += 1
                else:
                    read_misses_big += 1

        position += 1
        if position >= total:
            break

    if read_misses == 0:
        raise ConfigurationError(
            f"{source.name}: the measurement window saw no load misses — "
            "the trace scale is too small to get past the workload's "
            "initialization phase (use at least the QUICK_SCALE lengths)"
        )
    return Recording(
        name=source.name,
        tasks=tuple(
            RecordedTask(task.xom_id, task.label, task.xom_slowdown_pct)
            for task in tasks
        ),
        warmup_refs=scale.warmup_refs,
        measure_refs=scale.measure_refs,
        seed=seed,
        l2_lines=l2_lines,
        l2_assoc=l2_assoc,
        read_misses=read_misses,
        allocate_misses=allocate_misses,
        writebacks=writebacks,
        read_misses_big_l2=read_misses_big if include_alt_l2 else None,
        allocate_misses_big_l2=(
            allocate_misses_big if include_alt_l2 else None
        ),
        task_read_misses=task_read_misses,
        # Columnarize once, after the hot loop: three typed columns from
        # one list of triples.
        kinds=array(KIND_TYPECODE, map(itemgetter(0), events)),
        lines=array(LINE_TYPECODE, map(itemgetter(1), events)),
        aux=array(AUX_TYPECODE, map(itemgetter(2), events)),
    )


def _apply_to_integrity(model, events) -> None:
    """Feed one integrity timing model the recorded stream — verify on
    misses, update on writebacks, reset at the boundary, exactly the
    calls the fused loops make (switches never reach integrity models:
    their metadata is keyed by line, not by task)."""
    verify = model.verify
    update = model.update
    for kind, line, _aux in events:
        if kind == EVENT_READ:
            verify(line, critical=True)
        elif kind == EVENT_ALLOC:
            verify(line, critical=False)
        elif kind == EVENT_WRITEBACK:
            update(line)
        elif kind == EVENT_RESET:
            model.reset_counts()


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def replay_benchmark(recording: Recording,
                     snc_configs: dict[str, SNCConfig],
                     snc_schemes: dict[str, str] | None = None,
                     simulate_alt_l2: bool = False,
                     integrity_configs: dict[str, IntegrityConfig]
                     | None = None,
                     integrity_providers: dict[str, str] | None = None,
                     ) -> BenchmarkEvents:
    """Deprecated: use :meth:`Recording.replay` (``strategy=None``)."""
    _deprecated("replay_benchmark()", "Recording.replay()")
    return recording.replay(
        snc_configs, snc_schemes,
        alt_l2=simulate_alt_l2,
        integrity_configs=integrity_configs,
        integrity_providers=integrity_providers,
    )


def replay_scenario(recording: Recording,
                    snc_configs: dict[str, SNCConfig],
                    snc_schemes: dict[str, str] | None = None,
                    switch_strategy: SwitchStrategy = SwitchStrategy.TAG,
                    integrity_configs: dict[str, IntegrityConfig]
                    | None = None,
                    integrity_providers: dict[str, str] | None = None,
                    ) -> BenchmarkEvents:
    """Deprecated: use :meth:`Recording.replay` with a ``strategy``."""
    _deprecated("replay_scenario()", "Recording.replay(strategy=...)")
    return recording.replay(
        snc_configs, snc_schemes,
        strategy=switch_strategy,
        integrity_configs=integrity_configs,
        integrity_providers=integrity_providers,
    )

"""Evaluation harness: trace pipeline, per-figure drivers, reporting."""

from repro.eval.experiments import (
    ALL_FIGURES,
    FigureResult,
    PAPER_LATENCIES,
    SLOW_CRYPTO_LATENCIES,
    Series,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    run_all_benchmarks,
    run_everything,
)
from repro.eval.pipeline import (
    BenchmarkEvents,
    QUICK_SCALE,
    SimulationScale,
    simulate_benchmark,
    standard_snc_configs,
)
from repro.eval.charts import render_averages, render_chart
from repro.eval.report import format_figure, format_summary

__all__ = [
    "ALL_FIGURES",
    "BenchmarkEvents",
    "FigureResult",
    "PAPER_LATENCIES",
    "QUICK_SCALE",
    "SLOW_CRYPTO_LATENCIES",
    "Series",
    "SimulationScale",
    "figure3",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "format_figure",
    "format_summary",
    "render_averages",
    "render_chart",
    "run_all_benchmarks",
    "run_everything",
    "simulate_benchmark",
    "standard_snc_configs",
]

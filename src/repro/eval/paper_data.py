"""The paper's published per-benchmark numbers, transcribed from the data
labels embedded in Figures 3 and 5-10 of the MICRO-36 text.

Every experiment driver reports *paper vs measured* side by side from
these tables; EXPERIMENTS.md records the final comparison.
"""

from __future__ import annotations

#: Benchmark order used throughout the paper's figures.
BENCHMARK_ORDER = (
    "ammp", "art", "bzip2", "equake", "gcc", "gzip",
    "mcf", "mesa", "parser", "vortex", "vpr",
)


def _table(values):
    return dict(zip(BENCHMARK_ORDER, values))


#: Figure 3 / Figure 5 "XOM": slowdown [%] with 100-cycle memory, 50-cycle
#: crypto, 256KB 4-way L2.
FIGURE3_XOM = _table((
    23.02, 34.91, 15.82, 14.27, 18.30, 1.08, 34.76, 0.63, 13.39, 7.05, 21.16,
))
FIGURE3_XOM_AVG = 16.76

#: Figure 5: slowdown [%], 64KB SNC.
FIGURE5_SNC_NOREPL = _table((
    4.57, 0.23, 1.04, 0.06, 18.07, 0.51, 13.51, 0.24, 6.94, 5.02, 0.24,
))
FIGURE5_SNC_NOREPL_AVG = 4.59
FIGURE5_SNC_LRU = _table((
    2.76, 0.23, 0.56, 0.06, 1.40, 0.31, 6.44, 0.07, 0.95, 1.03, 0.24,
))
FIGURE5_SNC_LRU_AVG = 1.28

#: Figure 6: LRU SNC size sweep, slowdown [%].
FIGURE6_SNC_32KB = _table((
    4.36, 0.23, 1.61, 7.58, 1.44, 0.33, 15.23, 0.14, 2.70, 1.86, 0.24,
))
FIGURE6_SNC_32KB_AVG = 3.25
FIGURE6_SNC_64KB = FIGURE5_SNC_LRU
FIGURE6_SNC_64KB_AVG = FIGURE5_SNC_LRU_AVG
FIGURE6_SNC_128KB = _table((
    0.41, 0.23, 0.34, 0.06, 1.29, 0.30, 1.45, 0.01, 0.57, 0.70, 0.24,
))
FIGURE6_SNC_128KB_AVG = 0.51

#: Figure 7: 64KB SNC associativity, slowdown [%].
FIGURE7_FULLY = FIGURE5_SNC_LRU
FIGURE7_FULLY_AVG = FIGURE5_SNC_LRU_AVG
FIGURE7_32WAY = _table((
    9.62, 0.23, 0.55, 0.18, 1.38, 0.31, 6.34, 0.07, 0.94, 1.03, 0.24,
))
FIGURE7_32WAY_AVG = 1.90

#: Figure 8: execution time normalized to the 256KB-L2 insecure baseline.
FIGURE8_XOM_256K = _table((
    1.23, 1.35, 1.16, 1.14, 1.18, 1.01, 1.35, 1.01, 1.13, 1.07, 1.21,
))
FIGURE8_XOM_256K_AVG = 1.17
FIGURE8_XOM_384K = _table((
    1.20, 1.35, 1.03, 1.14, 0.96, 1.00, 1.32, 0.99, 1.02, 0.93, 1.04,
))
FIGURE8_XOM_384K_AVG = 1.09
FIGURE8_SNC_32WAY_256K = _table((
    1.10, 1.00, 1.01, 1.00, 1.01, 1.00, 1.06, 1.00, 1.01, 1.01, 1.00,
))
FIGURE8_SNC_32WAY_256K_AVG = 1.02

#: Figure 9: SNC-induced extra memory traffic [% of L2<->memory traffic].
FIGURE9_TRAFFIC = _table((
    0.32, 0.00, 0.09, 0.00, 0.05, 1.03, 0.47, 0.90, 0.18, 0.39, 0.00,
))
FIGURE9_TRAFFIC_AVG = 0.31

#: Figure 10: slowdown [%] with a 102-cycle crypto unit.
FIGURE10_XOM = _table((
    46.95, 71.21, 32.27, 29.10, 37.36, 2.21, 70.91, 1.28, 27.32, 14.42, 43.16,
))
FIGURE10_XOM_AVG = 34.20
FIGURE10_SNC_NOREPL = _table((
    8.95, 0.23, 1.82, 0.06, 36.89, 1.04, 27.30, 0.48, 14.02, 10.23, 0.24,
))
FIGURE10_SNC_NOREPL_AVG = 9.21
FIGURE10_SNC_LRU = _table((
    2.72, 0.23, 0.56, 0.06, 1.38, 0.30, 6.32, 0.07, 0.94, 1.01, 0.24,
))
FIGURE10_SNC_LRU_AVG = 1.26

#: §5: the paper's headline averages.
HEADLINE = {
    "xom_avg_slowdown_pct": 16.76,
    "snc_norepl_avg_slowdown_pct": 4.59,
    "snc_lru_avg_slowdown_pct": 1.28,
    "max_xom_improvement_pct": 34.7,
}

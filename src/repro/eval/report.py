"""Plain-text reporting: the same rows the paper's figures print.

``format_figure`` renders one reproduced figure as a paper-vs-measured
table; ``format_summary`` prints the headline averages;
``format_run_stats`` summarizes one scheduler pass (simulated vs cached,
where the time went); and ``format_scenario_table`` renders the §4.3
FLUSH-vs-TAG strategy table.  These are what ``pytest benchmarks/
--benchmark-only``, ``python -m repro.eval`` and the examples show.
"""

from __future__ import annotations

from repro.eval.experiments import (
    FigureResult,
    INTEGRITY_SNC_KEY,
    SCENARIO_SCHEMES,
    integrity_slowdowns,
    integrity_table_keys,
    scenario_slowdowns,
    scheme_config_key,
)
from repro.eval.paper_data import BENCHMARK_ORDER
from repro.eval.pipeline import BenchmarkEvents
from repro.eval.scheduler import TaskResult


def _fmt(value: float, width: int = 7) -> str:
    return f"{value:{width}.2f}"


def format_figure(result: FigureResult) -> str:
    """Render a figure as an aligned paper-vs-measured text table."""
    lines = [
        f"{result.figure_id}: {result.caption}",
        f"unit: {result.unit}",
    ]
    header = f"{'benchmark':<10}"
    for series in result.series:
        header += f" | {series.label + ' paper':>18} {'ours':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for bench in BENCHMARK_ORDER:
        row = f"{bench:<10}"
        for series in result.series:
            row += (
                f" | {_fmt(series.paper[bench], 18)}"
                f" {_fmt(series.measured[bench])}"
            )
        lines.append(row)
    avg_row = f"{'average':<10}"
    for series in result.series:
        avg_row += (
            f" | {_fmt(series.paper_avg, 18)} {_fmt(series.measured_avg)}"
        )
    lines.append(avg_row)
    return "\n".join(lines)


def format_summary(results: list[FigureResult]) -> str:
    """The paper's §5 headlines, paper vs measured."""
    by_id = {result.figure_id: result for result in results}
    lines = ["Headline comparison (paper -> measured):"]
    if "figure5" in by_id:
        fig = by_id["figure5"]
        for label in ("XOM", "SNC-NoRepl", "SNC-LRU"):
            series = fig.series_by_label(label)
            lines.append(
                f"  avg {label:<11} slowdown: "
                f"{series.paper_avg:6.2f}% -> {series.measured_avg:6.2f}%"
            )
    if "figure10" in by_id:
        fig = by_id["figure10"]
        for label in ("XOM", "SNC-LRU"):
            series = fig.series_by_label(label)
            lines.append(
                f"  avg {label:<11} slowdown @102-cycle crypto: "
                f"{series.paper_avg:6.2f}% -> {series.measured_avg:6.2f}%"
            )
    return "\n".join(lines)


def format_scenario_table(
    results: dict[tuple[str, str], BenchmarkEvents],
    schemes: tuple[str, ...] = SCENARIO_SCHEMES,
    snc_key: str = "lru64",
) -> str:
    """The §4.3 strategy table: one row per (source, strategy), one
    slowdown column per scheme, plus the switch-cost columns the paper
    leaves open (spills per switch, warm-read fraction)."""
    header = f"{'scenario':<26} {'strategy':<9}"
    for scheme in schemes:
        header += f" {scheme:>10}"
    header += f" {'switches':>9} {'spills/sw':>10} {'warm%':>7}"
    lines = [
        f"SNC context-switch strategies (section 4.3)  "
        f"[slowdown %, {snc_key} geometry]",
        header,
        "-" * len(header),
    ]
    for (label, strategy), events in sorted(results.items()):
        row = f"{label:<26} {strategy:<9}"
        for scheme, value in scenario_slowdowns(
            events, schemes, snc_key
        ).items():
            row += f" {value:>10.2f}"
        counts = events.snc[scheme_config_key(schemes[0], snc_key)]
        spills_per_switch = (
            counts.switch_spills / counts.switches if counts.switches
            else 0.0
        )
        warm_pct = (
            100.0 * counts.overlapped_reads / counts.reads
            if counts.reads else 0.0
        )
        row += (
            f" {counts.switches:>9} {spills_per_switch:>10.1f}"
            f" {warm_pct:>7.1f}"
        )
        lines.append(row)
    return "\n".join(lines)


def format_integrity_table(
    events: dict[str, BenchmarkEvents],
    keys: tuple[str, ...] | None = None,
    scheme: str = "otp",
    snc_key: str = INTEGRITY_SNC_KEY,
) -> str:
    """The integrity experiment: one row per workload, one slowdown
    column per integrity configuration, then the per-configuration hash
    work that explains the slowdowns (hashes per verification and the
    trusted node cache's hit rate, averaged over the workloads)."""
    if keys is None:
        keys = integrity_table_keys()
    header = f"{'workload':<10}" + "".join(f" {key:>12}" for key in keys)
    lines = [
        f"memory-integrity cost over {scheme}+SNC ({snc_key})  "
        f"[slowdown %]",
        header,
        "-" * len(header),
    ]
    for name, bench_events in events.items():
        slowdowns = integrity_slowdowns(bench_events, keys, scheme,
                                        snc_key)
        lines.append(
            f"{name:<10}"
            + "".join(f" {slowdowns[key]:>12.2f}" for key in keys)
        )

    lines.append("")
    lines.append("hash work per configuration (mean over workloads):")
    detail_header = (
        f"{'config':<14} {'hashes/verify':>14} {'nc-hit rate':>12}"
    )
    lines.append(detail_header)
    lines.append("-" * len(detail_header))
    for key in keys:
        if key == "none":
            continue
        per_verify, hit_rates = [], []
        for bench_events in events.values():
            counts = bench_events.integrity[key]
            if counts.verifications:
                per_verify.append(
                    counts.verify_hashes / counts.verifications
                )
                hit_rates.append(
                    counts.node_cache_hits / counts.verifications
                )
        mean_hashes = sum(per_verify) / len(per_verify) if per_verify else 0
        mean_hits = sum(hit_rates) / len(hit_rates) if hit_rates else 0
        lines.append(
            f"{key:<14} {mean_hashes:>14.2f} {mean_hits:>11.1%}"
        )
    return "\n".join(lines)


def format_trace_stats(store) -> str:
    """One line about a :class:`~repro.eval.trace_store.TraceStore`
    pass: how recordings were resolved, and — crucially after a
    ``TRACE_FORMAT`` bump — how many old files were silently discarded
    and re-recorded (``format upgrades``) versus plain bit rot
    (``corrupt``).  When the scheduler fed the store its timing
    telemetry, the cold half (record passes, with their refs/s) and the
    warm half (tasks priced by replay) are broken out too, so a run's
    cold-vs-warm cost is visible at a glance.  The runner prints this
    after every replay run."""
    parts = [
        f"trace store: {store.hits} hit{'s' if store.hits != 1 else ''}",
        f"{store.misses} miss{'es' if store.misses != 1 else ''}",
    ]
    if store.corrupt_discards:
        parts.append(f"{store.corrupt_discards} corrupt discarded")
    if store.format_upgrades:
        parts.append(f"{store.format_upgrades} format upgrades")
    if store.put_errors:
        parts.append(f"{store.put_errors} write errors")
    if getattr(store, "records", 0):
        rate = (store.record_refs / store.record_seconds
                if store.record_seconds > 0 else 0.0)
        parts.append(
            f"{store.records} record pass"
            f"{'es' if store.records != 1 else ''} "
            f"({store.record_seconds:.1f}s, {rate:,.0f} refs/s)"
        )
    if getattr(store, "tasks_priced", 0):
        shards = getattr(store, "price_shards", 0)
        if shards > getattr(store, "price_passes", 0):
            # Some batch pass was lane-sharded across the pool: show
            # how many shard passes the pricing actually ran as.
            parts.append(
                f"{store.tasks_priced} task"
                f"{'s' if store.tasks_priced != 1 else ''} "
                f"batch-priced in {shards} shards "
                f"({store.price_seconds:.1f}s)"
            )
        else:
            parts.append(
                f"{store.tasks_priced} task"
                f"{'s' if store.tasks_priced != 1 else ''} replay-priced "
                f"({store.price_seconds:.1f}s)"
            )
    return ", ".join(parts)


def format_pool_stats(stats) -> str:
    """One line about the persistent pool
    (:func:`repro.eval.pool.pool_stats`): whether the warm workers were
    reused or respawned, how recordings reached them (shared memory vs
    the pickle pipe), and what duplicate work was avoided.  The runner
    prints this after every ``--pool persistent`` run with ``--jobs``
    > 1; CI greps it to pin "workers spawned once" and "shm" on the
    smoke sweeps."""
    if stats.workers_respawned:
        workers = (f"pool: {stats.workers_spawned} workers "
                   f"({stats.workers_respawned} respawned after death)")
    else:
        workers = (f"pool: {stats.workers_spawned} worker"
                   f"{'s' if stats.workers_spawned != 1 else ''} "
                   "spawned once")
    parts = [
        workers,
        f"{stats.tasks_dispatched} task"
        f"{'s' if stats.tasks_dispatched != 1 else ''} dispatched",
        f"{stats.shm_shipments} shm shipment"
        f"{'s' if stats.shm_shipments != 1 else ''} "
        f"({stats.shm_bytes / 1e6:.1f} MB zero-copy)",
    ]
    if stats.pipe_shipments:
        parts.append(
            f"{stats.pipe_shipments} pipe shipment"
            f"{'s' if stats.pipe_shipments != 1 else ''} "
            f"({stats.pipe_bytes / 1e6:.1f} MB pickled)"
        )
    if getattr(stats, "lane_shards", 0):
        per_shard = stats.shard_seconds / stats.lane_shards
        parts.append(
            f"{stats.lane_shards} lane shard"
            f"{'s' if stats.lane_shards != 1 else ''} priced "
            f"({per_shard:.2f}s/shard)"
        )
    if stats.tasks_retried:
        parts.append(f"{stats.tasks_retried} retried inline")
    if stats.records_deduped:
        parts.append(
            f"{stats.records_deduped} record pass"
            f"{'es' if stats.records_deduped != 1 else ''} "
            "deduped in flight"
        )
    return ", ".join(parts)


def format_run_stats(results: list[TaskResult]) -> str:
    """One line about a scheduler pass: cache hits and simulation time."""
    simulated = [result for result in results if not result.cached]
    cached = len(results) - len(simulated)
    parts = [
        f"{len(simulated)} task{'s' if len(simulated) != 1 else ''} "
        f"simulated, {cached} cached"
    ]
    if simulated:
        total = sum(result.seconds for result in simulated)
        slowest = max(simulated, key=lambda result: result.seconds)
        parts.append(
            f"{total:.1f}s sim time, slowest {slowest.task.workload} "
            f"{slowest.seconds:.1f}s"
        )
    return "; ".join(parts)


def format_server_stats(payload: dict) -> str:
    """One line about a serve daemon's lifetime, from its ``stats`` (or
    final ``shutdown``) payload: connections and requests served, how
    tasks were resolved — executed once, answered from the hot LRU, or
    joined onto an identical in-flight run — and how many frames were
    rejected.  The daemon prints this on exit; the concurrency tests
    read the counts to prove cross-client single-flight dedupe."""
    tasks = payload.get("tasks_requested", 0)
    parts = [
        f"serve: {payload.get('connections', 0)} connection"
        f"{'s' if payload.get('connections', 0) != 1 else ''}",
        f"{payload.get('requests', 0)} request"
        f"{'s' if payload.get('requests', 0) != 1 else ''}",
        f"{tasks} task{'s' if tasks != 1 else ''} "
        f"({payload.get('tasks_executed', 0)} executed, "
        f"{payload.get('tasks_hot', 0)} hot, "
        f"{payload.get('tasks_joined', 0)} joined in flight)",
    ]
    errors = (payload.get("protocol_errors", 0)
              + payload.get("request_errors", 0))
    if errors:
        parts.append(f"{errors} error frame{'s' if errors != 1 else ''}")
    uptime = payload.get("uptime_seconds")
    if uptime is not None:
        parts.append(f"up {uptime:.1f}s")
    return ", ".join(parts)


def format_client_stats(summary: dict, address: str) -> str:
    """One line about a ``--server`` run, from
    :attr:`~repro.eval.client.EvalClient.last_request`: where the tasks
    went and how the daemon resolved them.  The runner prints this
    instead of pool/trace lines (those live server-side); CI greps the
    dedupe counts on the two-client smoke."""
    counts = summary.get("counts", {})
    tasks = summary.get("tasks", 0)
    return (
        f"server {address}: {tasks} task{'s' if tasks != 1 else ''} "
        f"({counts.get('executed', 0)} executed, "
        f"{counts.get('hot', 0)} hot, "
        f"{counts.get('joined', 0)} joined in flight) "
        f"in {summary.get('seconds', 0.0):.1f}s server-side"
    )

"""The thin client side of the evaluation service.

:class:`EvalClient` speaks the serve daemon's newline-delimited JSON
protocol (one frame per line — see :mod:`repro.eval.server` and
``docs/serve.md``) over a plain blocking socket, so the runner, the
benchmarks and test threads can all use it without an event loop.  Its
:meth:`~EvalClient.run_tasks` is a drop-in for
:func:`repro.eval.scheduler.run_tasks`: it ships tasks through
:func:`~repro.eval.jobs.task_to_wire`, streams the daemon's per-task
progress frames to a callback, and rebuilds each result's events with
:func:`~repro.eval.cache.events_from_dict` — the same canonical wire
form the result cache round-trips — so every table rendered from a
server run is byte-identical to a local one.

Protocol constants live here (not in the server module) so the server,
the runner and the facade can all import them without a cycle.
"""

from __future__ import annotations

import itertools
import json
import socket
from collections.abc import Callable, Sequence

from repro.eval.cache import events_from_dict
from repro.eval.jobs import AnyTask, task_to_wire
from repro.eval.scheduler import TaskResult

#: Bumped when a frame's meaning changes; ``hello`` replies carry it and
#: the client refuses a mismatched server rather than mis-parse frames.
PROTOCOL_VERSION = 1

#: Default TCP port of ``python -m repro.eval serve``.
DEFAULT_PORT = 7203


class ServerError(RuntimeError):
    """An ``error`` frame from the daemon, or a broken conversation.

    ``code`` carries the frame's machine-readable reason (``bad-json``,
    ``bad-task``, ``task-failed``, ``frame-too-large``, ...) when the
    server sent one.
    """

    def __init__(self, message: str, code: str = "") -> None:
        super().__init__(message)
        self.code = code


def parse_address(text: str) -> tuple[str, int]:
    """A ``--server`` value: ``HOST`` or ``HOST:PORT`` (default port
    :data:`DEFAULT_PORT`)."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        return text, DEFAULT_PORT
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid server address {text!r} — expected HOST or "
            f"HOST:PORT"
        ) from None
    return host or "127.0.0.1", port


class EvalClient:
    """One connection to a running serve daemon.

    Usable as a context manager; the constructor performs the
    ``hello`` handshake and raises :class:`ServerError` on a protocol
    version mismatch.  ``last_request`` holds the most recent submit's
    summary (the server's dedupe counts and wall seconds) for the
    runner's stats line.
    """

    def __init__(self, address: str | tuple[str, int],
                 timeout: float = 600.0) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        self.host, self.port = address
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=timeout
        )
        self._file = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        self.last_request: dict | None = None
        self.server_info = self._request({"type": "hello"}, "hello")
        version = self.server_info.get("protocol")
        if version != PROTOCOL_VERSION:
            self.close()
            raise ServerError(
                f"server speaks protocol {version!r}, client speaks "
                f"{PROTOCOL_VERSION}"
            )

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------ frames

    def _send(self, frame: dict) -> None:
        data = json.dumps(frame, separators=(",", ":")).encode()
        self._sock.sendall(data + b"\n")

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ServerError("server closed the connection")
        frame = json.loads(line)
        if not isinstance(frame, dict):
            raise ServerError(f"non-object frame from server: {frame!r}")
        return frame

    def _request(self, frame: dict, reply_type: str,
                 progress: Callable[[str], None] | None = None) -> dict:
        """Send one frame and collect its reply, streaming ``progress``
        frames to the callback and raising on ``error`` frames."""
        self._send(frame)
        while True:
            reply = self._recv()
            kind = reply.get("type")
            if kind == "progress":
                if progress is not None:
                    progress(self._progress_line(reply))
                continue
            if kind == "error":
                raise ServerError(
                    str(reply.get("error", "unspecified server error")),
                    code=str(reply.get("code", "")),
                )
            if kind == reply_type:
                return reply
            raise ServerError(
                f"expected a {reply_type!r} frame, got {kind!r}"
            )

    @staticmethod
    def _progress_line(frame: dict) -> str:
        line = (f"[{frame.get('done', '?')}/{frame.get('total', '?')}] "
                f"{frame.get('task', '?')}: {frame.get('how', '?')}")
        seconds = frame.get("seconds")
        if seconds:
            line += f" in {seconds:.1f}s"
        return line

    # ------------------------------------------------------------- verbs

    def run_tasks(self, tasks: Sequence[AnyTask],
                  progress: Callable[[str], None] | None = None,
                  ) -> list[TaskResult]:
        """Run tasks on the daemon; results come back in task order.

        The server executes each *distinct* task at most once across
        all connected clients (joining an in-flight run when another
        client already submitted it) and streams one ``progress`` frame
        per completed task.  Events round-trip through the result
        cache's canonical dict form, so they are byte-identical to a
        local run's.
        """
        tasks = list(tasks)
        frame = {
            "type": "submit",
            "id": f"r{next(self._ids)}",
            "tasks": [task_to_wire(task) for task in tasks],
        }
        reply = self._request(frame, "result", progress=progress)
        entries = reply.get("results", [])
        if len(entries) != len(tasks):
            raise ServerError(
                f"server returned {len(entries)} results for "
                f"{len(tasks)} tasks"
            )
        results = [
            TaskResult(
                task=task,
                events=events_from_dict(dict(entry["events"])),
                seconds=float(entry.get("seconds", 0.0)),
                cached=bool(entry.get("cached", False)),
            )
            for task, entry in zip(tasks, entries)
        ]
        self.last_request = {
            "tasks": len(tasks),
            "counts": dict(reply.get("counts", {})),
            "seconds": float(reply.get("seconds", 0.0)),
        }
        return results

    def stats(self) -> dict:
        """The daemon's live counters (requests, dedupe, pool, caches)."""
        return self._request({"type": "stats"}, "stats")

    def shutdown(self) -> dict:
        """Ask the daemon to drain in-flight work and exit cleanly."""
        return self._request({"type": "shutdown"}, "shutdown")

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> EvalClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Multiprocessing executor for simulation tasks.

The tasks produced by :func:`repro.eval.jobs.merge_jobs` and
:func:`repro.eval.jobs.merge_scenario_jobs` are embarrassingly
parallel — independent seeded trace simulations with no shared state — so
the executor is a straight fan-out:

* ``n_jobs == 1`` (the default) runs everything inline in this process:
  zero scheduling overhead, and results bit-identical to the historical
  serial path.
* ``n_jobs > 1`` fans the non-cached tasks over a ``spawn``-context
  process pool.  Workers re-import :mod:`repro` fresh, so results cannot
  depend on parent-process state; each returns its events plus its own
  wall time.

Either way the result list comes back **in task order** (completion order
only affects progress lines), and every simulated result is written back
to the :class:`~repro.eval.cache.ResultCache` when one is given.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.eval.cache import ResultCache
from repro.eval.jobs import (
    AnyTask,
    ExperimentJob,
    execute_task,
    merge_jobs,
)
from repro.eval.pipeline import BenchmarkEvents

Progress = Callable[[str], None]


@dataclass(frozen=True)
class TaskResult:
    """One executed (or cache-served) task."""

    task: AnyTask
    events: BenchmarkEvents
    seconds: float
    cached: bool


def _run_indexed(item: tuple[int, AnyTask]):
    index, task = item
    started = time.perf_counter()
    events = execute_task(task)
    return index, events, time.perf_counter() - started


def run_tasks(tasks: list[AnyTask], n_jobs: int = 1,
              cache: ResultCache | None = None,
              progress: Progress | None = None) -> list[TaskResult]:
    """Execute tasks — figure and scenario alike — in task order.

    Cache hits are resolved first (and never occupy a worker); the
    remainder runs inline (``n_jobs == 1``) or across a process pool.
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    total = len(tasks)
    results: list[TaskResult | None] = [None] * total
    pending: list[tuple[int, AnyTask]] = []

    def emit(index: int, result: TaskResult) -> None:
        results[index] = result
        if progress is not None:
            how = "cached" if result.cached else (
                f"simulated in {result.seconds:.1f}s"
            )
            progress(f"[{index + 1}/{total}] {result.task.describe()}: "
                     f"{how}")

    for index, task in enumerate(tasks):
        events = cache.get(task) if cache is not None else None
        if events is not None:
            emit(index, TaskResult(task, events, 0.0, cached=True))
        else:
            pending.append((index, task))

    if len(pending) <= 1 or n_jobs == 1:
        for index, task in pending:
            started = time.perf_counter()
            events = execute_task(task)
            seconds = time.perf_counter() - started
            if cache is not None:
                cache.put(task, events)
            emit(index, TaskResult(task, events, seconds, cached=False))
    else:
        context = multiprocessing.get_context("spawn")
        workers = min(n_jobs, len(pending))
        with context.Pool(processes=workers) as pool:
            for index, events, seconds in pool.imap_unordered(
                _run_indexed, pending, chunksize=1
            ):
                task = tasks[index]
                if cache is not None:
                    cache.put(task, events)
                emit(index, TaskResult(task, events, seconds, cached=False))

    return [result for result in results if result is not None]


def run_jobs(jobs: list[ExperimentJob], n_jobs: int = 1,
             cache: ResultCache | None = None,
             progress: Progress | None = None) -> dict[str, BenchmarkEvents]:
    """Merge figure-level jobs, execute, and index events by workload.

    This is the one-call path for callers that declare jobs and want the
    classic ``{benchmark: events}`` mapping the figure drivers price.
    The mapping is only well-defined when each workload resolves to one
    task, so a job list mixing scales or seeds for the same workload is
    rejected rather than silently dropping results — use
    :func:`merge_jobs` + :func:`run_tasks` directly for multi-scale
    sweeps.
    """
    tasks = merge_jobs(jobs)
    workloads = [task.workload for task in tasks]
    if len(set(workloads)) != len(workloads):
        raise ValueError(
            "run_jobs needs one task per workload; mixed scales/seeds "
            "for one workload make the {workload: events} mapping "
            "ambiguous (use merge_jobs + run_tasks instead)"
        )
    results = run_tasks(tasks, n_jobs=n_jobs, cache=cache, progress=progress)
    return {result.task.workload: result.events for result in results}

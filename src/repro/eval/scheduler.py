"""Multiprocessing executor for simulation tasks.

The tasks produced by :func:`repro.eval.jobs.merge_jobs` and
:func:`repro.eval.jobs.merge_scenario_jobs` are embarrassingly
parallel — independent seeded trace simulations with no shared state — so
the executor is a straight fan-out:

* ``n_jobs == 1`` (the default) runs everything inline in this process:
  zero scheduling overhead, and results bit-identical to the historical
  serial path.
* ``n_jobs > 1`` fans the non-cached tasks over worker processes, in
  one of two pool modes (:data:`POOLS`):

  - ``pool="persistent"`` (the default) — the process-wide warm
    :class:`~repro.eval.pool.WorkerPool`: workers are spawned once per
    process and reused across every ``run_tasks``/``run_jobs`` call, so
    a multi-figure sweep pays one pool cold-start instead of one per
    figure.  Recordings ship to workers through shared memory
    (zero-copy; pipe fallback) and the shipments stay cached on the
    pool across runs, identical record passes are deduped in flight,
    and a crashed worker is respawned with its task retried once
    inline.
  - ``pool="spawn"`` — the historical per-call ``spawn``-context
    ``multiprocessing.Pool``, kept as the bisection baseline (and for
    embedders that must not hold processes between calls).

  Workers re-import :mod:`repro` fresh in both modes, so results cannot
  depend on parent-process state; each returns its events plus its own
  wall time, and both modes are byte-identical to the inline path.

Three execution backends produce identical events (the differential
suite and the byte-identical table checks in CI pin this):

* ``backend="fused"`` — the reference implementation: each task runs the
  single-pass loops in :mod:`repro.eval.pipeline`, regenerating the
  workload and re-simulating the L2 every time.
* ``backend="replay"`` (the default) — the record/replay engine
  (:mod:`repro.eval.record`): pending tasks are first grouped by their
  :class:`~repro.eval.jobs.RecordTask`, each distinct recording is
  resolved once (from the :class:`~repro.eval.trace_store.TraceStore`
  when one is given, else recorded fresh — in parallel when several are
  missing), and then each group is **batch-priced**: one event-major
  pass (:func:`repro.eval.jobs.price_batch`) walks the shared columns
  once while every task's state machines consume them in lock-step.
  ``--jobs N`` parallelizes across recordings *and*, when recordings
  alone cannot fill the workers, across **lane shards** within one:
  :func:`plan_lane_shards` splits a group's pricing lanes (one per SNC
  configuration or integrity model — independent by construction) into
  per-worker chunks, each worker prices only its subset over the same
  shipped recording, and the parent reassembles per-task events in
  canonical lane order (:func:`repro.eval.jobs.merge_shard_events`) —
  byte-identical to the unsharded pass.
* ``backend="replay-perevent"`` — the same two phases, but each task
  replays the stream on its own through the per-event reference loop
  (:meth:`~repro.timing.model.SNCTimingSim.replay_events`).  This is
  the bisection backend batch pricing is pinned against.

Either way the result list comes back **in task order** (completion order
only affects progress lines), and every simulated result is written back
to the :class:`~repro.eval.cache.ResultCache` when one is given.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.eval.cache import ResultCache
from repro.eval.jobs import (
    AnyTask,
    ExperimentJob,
    Lane,
    RecordTask,
    execute_record,
    execute_task,
    execute_task_replay,
    merge_jobs,
    merge_shard_events,
    price_batch,
    record_task_for,
    task_lanes,
    total_lane_count,
)
from repro.eval.pipeline import BenchmarkEvents
from repro.eval.pool import (
    claim_record,
    get_worker_pool,
    pool_stats,
    remember_recording,
    resolve_recording_ref,
)
from repro.eval.record import Recording
from repro.eval.trace_store import (
    TraceStore,
    recording_from_bytes,
    recording_to_bytes,
)

Progress = Callable[[str], None]

#: The three ways a task's events can be produced.
BACKENDS = ("fused", "replay", "replay-perevent")

#: The two ways parallel work is hosted (``n_jobs == 1`` ignores both).
POOLS = ("persistent", "spawn")


@dataclass(frozen=True)
class TaskResult:
    """One executed (or cache-served) task."""

    task: AnyTask
    events: BenchmarkEvents
    seconds: float
    cached: bool


def _run_indexed(item: tuple[int, AnyTask]):
    index, task = item
    started = time.perf_counter()
    events = execute_task(task)
    return index, events, time.perf_counter() - started


def _record_indexed(item: tuple[int, RecordTask]):
    """Phase 1 worker: returns the serialized recording (the compact
    wire form the store persists and replay workers consume as-is).
    A persistent-pool worker also keeps the decoded recording in its
    LRU, so its own phase-2 tasks on this recording skip the decode."""
    index, record_task = item
    started = time.perf_counter()
    recording = execute_record(record_task)
    remember_recording(record_task.config_hash(), recording)
    payload = recording_to_bytes(recording)
    return index, payload, time.perf_counter() - started


def _replay_indexed(item: tuple[int, AnyTask, dict]):
    index, task, ref = item
    started = time.perf_counter()
    events = execute_task_replay(task, resolve_recording_ref(ref))
    return index, events, time.perf_counter() - started


def _batch_indexed(item):
    """Batch worker: prices one lane shard of one recording's task
    group in a single event-major pass — the whole group when the
    shard plan left it in one piece — and returns the per-task
    (possibly partial) event lists.

    ``item`` is ``(group_index, shard_index, members, ref)`` where
    ``members`` is a tuple of ``(task, lane_keys)`` pairs; a ``None``
    ``lane_keys`` means every lane of that task.  ``_REPRO_SHARD_CRASH``
    (``"<group>:<shard>"``) kills the matching shard's *worker* process
    mid-task — the crash-recovery tests use it to pin that only the
    dead worker's shard is re-priced."""
    group_index, shard_index, members, ref = item
    crash = os.environ.get("_REPRO_SHARD_CRASH", "")
    if (crash == f"{group_index}:{shard_index}"
            and multiprocessing.parent_process() is not None):
        os._exit(17)
    started = time.perf_counter()
    events = price_batch(
        [task for task, _lanes in members],
        resolve_recording_ref(ref),
        lanes=[lanes for _task, lanes in members],
    )
    return group_index, shard_index, events, time.perf_counter() - started


#: Never split a group below this many lanes per shard: each shard
#: re-walks the whole event stream, so a shard must amortize that
#: decode over at least two lanes to beat staying fused with another.
MIN_SHARD_LANES = 2


def _lane_shard_limit() -> int | None:
    """The ``REPRO_LANE_SHARDS`` override: ``""``/``"auto"`` — adaptive
    planning (no cap); ``"0"``/``"off"`` — sharding disabled (every
    group prices in one pass, the pre-sharding behaviour); an integer —
    at most that many shards per group."""
    raw = os.environ.get("REPRO_LANE_SHARDS", "").strip().lower()
    if raw in ("", "auto"):
        return None
    if raw in ("0", "off", "no"):
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return None


def plan_lane_shards(lane_counts: Sequence[int], n_jobs: int,
                     limit: int | None = None) -> list[int]:
    """How many lane shards each recording's batch pass splits into.

    Every group starts as one pass (the sharding-free baseline); the
    workers left idle by that plan (``n_jobs - n_groups``) are then
    dealt out greedily to whichever group has the most lanes per shard,
    while a further split still leaves :data:`MIN_SHARD_LANES` lanes in
    every shard (and respects ``limit``).  Degenerates to all-ones —
    exactly the historical one-pass-per-recording plan — when groups
    already cover the workers or ``n_jobs == 1``; a 16-lane
    single-workload sweep at 4 jobs plans 4 shards of 4 lanes."""
    shards = [1] * len(lane_counts)
    spare = n_jobs - len(lane_counts)
    while spare > 0:
        candidates = [
            g for g, lanes in enumerate(lane_counts)
            if lanes >= MIN_SHARD_LANES * (shards[g] + 1)
            and (limit is None or shards[g] < limit)
        ]
        if not candidates:
            break
        best = max(candidates,
                   key=lambda g: lane_counts[g] / shards[g])
        shards[best] += 1
        spare -= 1
    return shards


def _shard_members(members: list[tuple[int, AnyTask]], n_shards: int,
                   ) -> list[list[tuple[int, AnyTask,
                                        tuple[Lane, ...] | None]]]:
    """Split one group's members into ``n_shards`` contiguous lane
    chunks, balanced to within one lane.

    Lanes are flattened in member order (each task's lanes in canonical
    order), so a task spanning a chunk boundary contributes a lane
    subset to each side.  Returns one list of ``(index, task,
    lane_keys)`` triples per shard; ``lane_keys`` is ``None`` when the
    shard holds every lane of that task — the ``n_shards == 1``
    degenerate case is then exactly the unsharded item."""
    flat: list[tuple[int, AnyTask, Lane | None]] = []
    for index, task in members:
        lanes = task_lanes(task)
        if lanes:
            flat.extend((index, task, lane) for lane in lanes)
        else:
            # A lane-less task (no SNC configs, no integrity) still
            # needs its non-lane events produced exactly once.
            flat.append((index, task, None))
    total = len(flat)
    shards = []
    for s in range(n_shards):
        chunk = flat[total * s // n_shards:total * (s + 1) // n_shards]
        order: list[int] = []
        by_task: dict[int, tuple[AnyTask, list[Lane]]] = {}
        for index, task, lane in chunk:
            if index not in by_task:
                by_task[index] = (task, [])
                order.append(index)
            if lane is not None:
                by_task[index][1].append(lane)
        shard = []
        for index in order:
            task, lanes = by_task[index]
            keys = (None if len(lanes) == len(task_lanes(task))
                    else tuple(lanes))
            shard.append((index, task, keys))
        shards.append(shard)
    return shards


def auto_jobs(tasks: Sequence[AnyTask]) -> int:
    """The worker count ``--jobs auto`` resolves to for a task list:
    one per CPU, capped by the total lane count — with lane sharding a
    sweep can use as many workers as it has pricing lanes (not just
    recordings), and any more would idle."""
    cpus = os.cpu_count() or 1
    return max(1, min(cpus, total_lane_count(tasks)))


def _spawn_chunksize(n_items: int, workers: int) -> int:
    """Chunk so each worker sees ~4 batches — enough slack to balance
    uneven task costs, but far from the per-item pickle round-trips
    ``chunksize=1`` pays on many tiny replay tasks.  Heavy fan-outs
    whose item list was already sized to the workers (the lane-sharded
    batch items) pass an explicit ``chunksize=1`` instead: chunking
    two shards onto one worker would serialize them and idle another."""
    return max(1, n_items // (workers * 4))


def _fan_out(items: list, worker, n_jobs: int, on_result,
             pool: str = "spawn", chunksize: int | None = None) -> None:
    """Run indexed work items serially (zero scheduling overhead), on
    the process-wide persistent pool, or across a fresh spawn-context
    pool, handing each worker's result tuple to ``on_result`` as it
    completes.  The one fan-out used by every phase — fused tasks,
    record passes, replays, batch shards."""
    if len(items) <= 1 or n_jobs == 1:
        for item in items:
            on_result(*worker(item))
        return
    workers = min(n_jobs, len(items))
    if pool == "persistent":
        get_worker_pool(workers).run(worker, items, on_result,
                                     max_workers=workers)
        return
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=workers) as mp_pool:
        for result in mp_pool.imap_unordered(
            worker, items,
            chunksize=chunksize or _spawn_chunksize(len(items), workers),
        ):
            on_result(*result)


def _resolve_recordings(record_tasks: list[RecordTask], n_jobs: int,
                        trace_store: TraceStore | None,
                        progress: Progress | None,
                        pool: str = "spawn",
                        want_recordings: bool = True,
                        ) -> tuple[dict[RecordTask, bytes],
                                   dict[RecordTask, Recording]]:
    """Phase 1: one recording per distinct record task, as wire payloads.

    Store hits are served first.  Of the misses, record passes already
    in flight elsewhere in this process (a concurrent ``run_tasks`` on
    another thread) are *joined* rather than repeated — this call
    records only the passes it claimed first, then collects the rest
    from their owners.  Claimed passes are recorded across the pool
    when there are several and ``n_jobs > 1``, and written back to the
    store.  Payloads travel as the bytes the store read or the worker
    produced (never re-serialized); parsed :class:`Recording` objects
    come back only where one already exists, callers parse the rest on
    demand.  A caller that will fan phase 2 out (the payloads ship to
    workers as-is) passes ``want_recordings=False``: store hits are
    then read verify-only (:meth:`TraceStore.get_payload`) and the
    parent never pays the column decode."""
    payloads: dict[RecordTask, bytes] = {}
    recordings: dict[RecordTask, Recording] = {}
    pending: list[tuple[int, RecordTask]] = []
    claims: dict[RecordTask, object] = {}
    joined: list[tuple[int, RecordTask, object]] = []
    total = len(record_tasks)

    def emit(index: int, record_task: RecordTask, how: str) -> None:
        if progress is not None:
            progress(f"[record {index + 1}/{total}] "
                     f"{record_task.describe()}: {how}")

    for index, record_task in enumerate(record_tasks):
        if trace_store is not None:
            if want_recordings:
                entry = trace_store.get_entry(record_task)
                if entry is not None:
                    recordings[record_task] = entry[0]
                    payloads[record_task] = entry[1]
                    emit(index, record_task, "trace cached")
                    continue
            else:
                payload = trace_store.get_payload(record_task)
                if payload is not None:
                    payloads[record_task] = payload
                    emit(index, record_task, "trace cached")
                    continue
        claim, is_owner = claim_record(record_task.config_hash())
        if is_owner:
            claims[record_task] = claim
            pending.append((index, record_task))
        else:
            joined.append((index, record_task, claim))

    try:
        if len(pending) <= 1 or n_jobs == 1:
            # In-process: keep the Recording object itself —
            # serialization happens only if the store persists it
            # (inside ``put``) or a pool of replay workers later needs
            # the wire form.
            for index, record_task in pending:
                started = time.perf_counter()
                recording = execute_record(record_task)
                seconds = time.perf_counter() - started
                recordings[record_task] = recording
                if trace_store is not None:
                    trace_store.note_record(
                        record_task.scale.total_refs, seconds
                    )
                    # ``put`` returns the wire form it packed, so a
                    # later pool of replay workers reuses it instead of
                    # packing the same recording a second time.
                    payload = trace_store.put(record_task, recording)
                    if payload is not None:
                        payloads[record_task] = payload
                claims.pop(record_task).publish(
                    payloads.get(record_task), recording
                )
                emit(index, record_task, f"recorded in {seconds:.1f}s")
        else:
            def on_recorded(index: int, payload: bytes,
                            seconds: float) -> None:
                record_task = record_tasks[index]
                payloads[record_task] = payload
                if trace_store is not None:
                    trace_store.note_record(
                        record_task.scale.total_refs, seconds
                    )
                    trace_store.put(record_task, payload=payload)
                claims.pop(record_task).publish(payload, None)
                emit(index, record_task, f"recorded in {seconds:.1f}s")

            _fan_out(pending, _record_indexed, n_jobs, on_recorded,
                     pool=pool)
    finally:
        # A record pass that died must not strand its waiters — they
        # fall back to recording for themselves.
        for claim in claims.values():
            claim.fail()

    for index, record_task, claim in joined:
        shared = claim.wait()
        if shared is not None:
            payload, recording = shared
            if payload is not None:
                payloads[record_task] = payload
                if trace_store is not None:
                    trace_store.put(record_task, payload=payload)
            if recording is not None:
                recordings[record_task] = recording
            emit(index, record_task, "deduped (record in flight)")
            continue
        # Owner failed or timed out: record it ourselves after all.
        started = time.perf_counter()
        recording = execute_record(record_task)
        seconds = time.perf_counter() - started
        recordings[record_task] = recording
        if trace_store is not None:
            trace_store.note_record(record_task.scale.total_refs, seconds)
            payload = trace_store.put(record_task, recording)
            if payload is not None:
                payloads[record_task] = payload
        emit(index, record_task, f"recorded in {seconds:.1f}s")
    return payloads, recordings


def run_tasks(tasks: list[AnyTask], n_jobs: int = 1,
              cache: ResultCache | None = None,
              progress: Progress | None = None,
              backend: str = "fused",
              trace_store: TraceStore | None = None,
              pool: str = "persistent",
              on_result=None) -> list[TaskResult]:
    """Execute tasks — figure and scenario alike — in task order.

    Cache hits are resolved first (and never occupy a worker); the
    remainder runs inline (``n_jobs == 1``) or across a process pool,
    through the selected ``backend``.  ``trace_store`` persists replay
    recordings across runs; it is only consulted by the replay backend.
    ``pool`` picks how parallel work is hosted (:data:`POOLS`) and is
    ignored when everything runs inline.  ``on_result(index, result)``,
    when given, fires once per task *as it completes* (cache hits
    included, completion order) — the serve daemon resolves each
    subscriber's future from it instead of waiting for the whole list.
    """
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {BACKENDS})"
        )
    if pool not in POOLS:
        raise ValueError(
            f"unknown pool {pool!r} (expected one of {POOLS})"
        )
    total = len(tasks)
    results: list[TaskResult | None] = [None] * total
    pending: list[tuple[int, AnyTask]] = []

    def emit(index: int, result: TaskResult, verb: str = "simulated"
             ) -> None:
        results[index] = result
        if on_result is not None:
            on_result(index, result)
        if progress is not None:
            how = "cached" if result.cached else (
                f"{verb} in {result.seconds:.1f}s"
            )
            progress(f"[{index + 1}/{total}] {result.task.describe()}: "
                     f"{how}")

    for index, task in enumerate(tasks):
        events = cache.get(task) if cache is not None else None
        if events is not None:
            emit(index, TaskResult(task, events, 0.0, cached=True))
        else:
            pending.append((index, task))

    if backend in ("replay", "replay-perevent") and pending:
        _run_replay(tasks, pending, n_jobs, cache, emit, progress,
                    trace_store, batch=backend == "replay", pool=pool)
    else:
        def on_simulated(index: int, events: BenchmarkEvents,
                         seconds: float) -> None:
            task = tasks[index]
            if cache is not None:
                cache.put(task, events)
            emit(index, TaskResult(task, events, seconds, cached=False))

        _fan_out(pending, _run_indexed, n_jobs, on_simulated, pool=pool)

    return [result for result in results if result is not None]


def _run_replay(tasks: list[AnyTask],
                pending: list[tuple[int, AnyTask]], n_jobs: int,
                cache: ResultCache | None, emit, progress,
                trace_store: TraceStore | None, batch: bool,
                pool: str = "spawn") -> None:
    """The replay backend's two phases over the non-cached tasks."""
    # Group by record pass, preserving first-appearance order: distinct
    # (source, scale, seed) triples record once each; everything else
    # about a task is replay-side configuration.
    record_tasks: list[RecordTask] = []
    by_task: dict[int, RecordTask] = {}
    groups: dict[RecordTask, list[tuple[int, AnyTask]]] = {}
    for index, task in pending:
        record_task = record_task_for(task)
        by_task[index] = record_task
        if record_task not in groups:
            record_tasks.append(record_task)
        groups.setdefault(record_task, []).append((index, task))
    if batch:
        # One pool item per (recording, lane shard): groups alone when
        # they cover the workers, lane shards within them when they
        # don't (a single-recording sweep still fills the pool).
        plan = plan_lane_shards(
            [sum(len(task_lanes(task)) for _index, task in groups[rt])
             for rt in record_tasks],
            n_jobs, _lane_shard_limit(),
        )
        n_parallel = sum(plan)
    else:
        plan = None
        n_parallel = len(pending)
    fanning_out = n_jobs > 1 and n_parallel > 1
    payloads, recordings = _resolve_recordings(
        record_tasks, n_jobs, trace_store, progress, pool=pool,
        # Phase 2 in the workers consumes the wire payloads as-is, so
        # the parent skips the column decode for store hits entirely.
        want_recordings=not fanning_out,
    )

    def payload_for(record_task: RecordTask) -> bytes:
        """The wire form for a pool worker — serialized at most once,
        and only here (a recording made in-process has no payload yet
        unless the store already wrote one)."""
        payload = payloads.get(record_task)
        if payload is None:
            payload = recording_to_bytes(recordings[record_task])
            payloads[record_task] = payload
        return payload

    worker_pool = (get_worker_pool(min(n_jobs, max(n_parallel, 1)))
                   if pool == "persistent" and fanning_out else None)

    def ref_for(record_task: RecordTask) -> dict:
        """The recording reference a phase-2 pool item carries: a
        shared-memory shipment on the persistent pool (zero-copy; pipe
        fallback inside ``ship_recording``; shipments are cached on the
        pool across runs and unlinked by its budget or shutdown), the
        wire payload itself on the spawn pool."""
        key = record_task.config_hash()
        if worker_pool is not None:
            return worker_pool.ship_recording(
                key, recording=recordings.get(record_task),
                payload=payloads.get(record_task),
            )
        return {"key": key, "payload": payload_for(record_task)}

    if batch:
        _price_groups(record_tasks, groups, payloads, recordings,
                      ref_for, n_jobs, cache, emit, progress,
                      pool=pool, trace_store=trace_store, plan=plan)
        return

    if len(pending) <= 1 or n_jobs == 1:
        # Inline: parse each payload at most once, memoized across
        # the tasks sharing it (pool workers parse their own copy
        # instead).
        for index, task in pending:
            record_task = by_task[index]
            recording = recordings.get(record_task)
            if recording is None:
                recording = recording_from_bytes(
                    payloads[record_task]
                )
                recordings[record_task] = recording
            started = time.perf_counter()
            events = execute_task_replay(task, recording)
            seconds = time.perf_counter() - started
            if trace_store is not None:
                trace_store.note_priced(1, seconds)
            if cache is not None:
                cache.put(task, events)
            emit(index,
                 TaskResult(task, events, seconds, cached=False),
                 verb="replayed")
        return

    def on_replayed(index: int, events: BenchmarkEvents,
                    seconds: float) -> None:
        task = tasks[index]
        if trace_store is not None:
            trace_store.note_priced(1, seconds)
        if cache is not None:
            cache.put(task, events)
        emit(index, TaskResult(task, events, seconds, cached=False),
             verb="replayed")

    _fan_out([(index, task, ref_for(by_task[index]))
              for index, task in pending],
             _replay_indexed, n_jobs, on_replayed, pool=pool)


def _price_groups(record_tasks: list[RecordTask],
                  groups: dict[RecordTask, list[tuple[int, AnyTask]]],
                  payloads: dict[RecordTask, bytes],
                  recordings: dict[RecordTask, Recording],
                  ref_for, n_jobs: int,
                  cache: ResultCache | None, emit, progress,
                  pool: str = "spawn",
                  trace_store: TraceStore | None = None,
                  plan: list[int] | None = None) -> None:
    """Phase 2, batch mode: one event-major pass per recording — or,
    when recordings alone would leave workers idle, several lane-shard
    passes per recording priced concurrently.

    ``plan`` (from :func:`plan_lane_shards`) says how many shards each
    group splits into; each shard prices a contiguous lane subset over
    the same shipped recording (one pool item per shard, riding the
    pool's dedupe/retry/respawn machinery as-is — a dead worker
    re-prices only its shard), and the group's results are merged back
    per task in canonical lane order
    (:func:`~repro.eval.jobs.merge_shard_events`), byte-identical to
    the one-pass path.  The group's wall time — summed across its
    shards — is apportioned evenly across its tasks so run stats still
    sum to the real simulated time.
    """
    n_groups = len(record_tasks)
    if plan is None:
        plan = [1] * n_groups
    group_shards = [
        _shard_members(groups[record_task], plan[group_index])
        for group_index, record_task in enumerate(record_tasks)
    ]

    def finish(group_index: int,
               per_shard: dict[int, tuple[list[BenchmarkEvents],
                                          float]]) -> None:
        record_task = record_tasks[group_index]
        members = groups[record_task]
        n_shards = len(group_shards[group_index])
        seconds = sum(shard_seconds
                      for _events, shard_seconds in per_shard.values())
        if trace_store is not None:
            trace_store.note_priced(len(members), seconds,
                                    shards=n_shards)
        if n_shards > 1:
            stats = pool_stats()
            stats.lane_shards += n_shards
            stats.shard_seconds += seconds
        if progress is not None:
            sharding = (
                f" in {n_shards} shards" if n_shards > 1 else ""
            )
            progress(
                f"[batch {group_index + 1}/{n_groups}] "
                f"{record_task.describe()}: {len(members)} task"
                f"{'s' if len(members) != 1 else ''}{sharding} "
                f"batch-priced in {seconds:.1f}s"
            )
        partials: dict[int, list[BenchmarkEvents]] = {}
        for shard_index in sorted(per_shard):
            events_list, _shard_seconds = per_shard[shard_index]
            for (index, _task, _lanes), events in zip(
                group_shards[group_index][shard_index], events_list
            ):
                partials.setdefault(index, []).append(events)
        share = seconds / len(members)
        for index, task in members:
            if n_shards > 1:
                events = merge_shard_events(task, partials[index])
            else:
                events = partials[index][0]
            if cache is not None:
                cache.put(task, events)
            emit(index, TaskResult(task, events, share, cached=False),
                 verb="batch-priced")

    pending_shards: dict[int, dict[int, tuple[list, float]]] = {}

    def on_priced(group_index: int, shard_index: int,
                  events_list: list[BenchmarkEvents],
                  seconds: float) -> None:
        got = pending_shards.setdefault(group_index, {})
        got[shard_index] = (events_list, seconds)
        if len(got) == len(group_shards[group_index]):
            finish(group_index, pending_shards.pop(group_index))

    items = [
        (group_index, shard_index,
         tuple((task, lanes) for _index, task, lanes in shard),
         ref_for(record_task))
        for group_index, record_task in enumerate(record_tasks)
        for shard_index, shard in enumerate(group_shards[group_index])
    ]
    if len(items) <= 1 or n_jobs == 1:
        # Inline: parse each payload at most once (store hits arrive
        # parsed already; fresh pool recordings arrive as wire bytes),
        # and price each group in one unsharded pass.
        for group_index, record_task in enumerate(record_tasks):
            recording = recordings.get(record_task)
            if recording is None:
                recording = recording_from_bytes(payloads[record_task])
                recordings[record_task] = recording
            started = time.perf_counter()
            events_list = price_batch(
                [task for _, task in groups[record_task]], recording
            )
            on_priced(group_index, 0,
                      events_list, time.perf_counter() - started)
        return

    _fan_out(items, _batch_indexed, n_jobs, on_priced, pool=pool,
             chunksize=1)


def run_jobs(jobs: list[ExperimentJob], n_jobs: int = 1,
             cache: ResultCache | None = None,
             progress: Progress | None = None,
             backend: str = "fused",
             trace_store: TraceStore | None = None,
             pool: str = "persistent",
             ) -> dict[str, BenchmarkEvents]:
    """Merge figure-level jobs, execute, and index events by workload.

    This is the one-call path for callers that declare jobs and want the
    classic ``{benchmark: events}`` mapping the figure drivers price.
    The mapping is only well-defined when each workload resolves to one
    task, so a job list mixing scales or seeds for the same workload is
    rejected rather than silently dropping results — use
    :func:`merge_jobs` + :func:`run_tasks` directly for multi-scale
    sweeps.
    """
    tasks = merge_jobs(jobs)
    workloads = [task.workload for task in tasks]
    if len(set(workloads)) != len(workloads):
        raise ValueError(
            "run_jobs needs one task per workload; mixed scales/seeds "
            "for one workload make the {workload: events} mapping "
            "ambiguous (use merge_jobs + run_tasks instead)"
        )
    results = run_tasks(tasks, n_jobs=n_jobs, cache=cache,
                        progress=progress, backend=backend,
                        trace_store=trace_store, pool=pool)
    return {result.task.workload: result.events for result in results}

"""ASCII bar charts for the reproduced figures.

The paper's evaluation figures are grouped bar charts; this module renders
our :class:`~repro.eval.experiments.FigureResult` objects in the same
spirit, paper bars against measured bars, entirely in text — nothing in
this repository needs a display.
"""

from __future__ import annotations

from repro.eval.experiments import FigureResult
from repro.eval.paper_data import BENCHMARK_ORDER

_BAR_GLYPH = "#"
_PAPER_GLYPH = "="


def _bar(value: float, scale: float, width: int, glyph: str) -> str:
    if scale <= 0:
        return ""
    length = int(round(value / scale * width))
    return glyph * max(0, min(width, length))


def render_chart(result: FigureResult, width: int = 48) -> str:
    """Render one figure as grouped horizontal bars.

    Each benchmark gets one ``=`` bar (paper) and one ``#`` bar (measured)
    per series, scaled to the figure's maximum value."""
    peak = 0.0
    for series in result.series:
        peak = max(
            peak,
            max(series.paper.values()),
            max(series.measured.values()),
        )
    lines = [
        f"{result.figure_id}: {result.caption} [{result.unit}]",
        f"scale: 0 .. {peak:.2f}   ('=' paper, '#' measured)",
        "",
    ]
    label_width = max(len(name) for name in BENCHMARK_ORDER) + 2
    for bench in BENCHMARK_ORDER:
        for index, series in enumerate(result.series):
            label = bench if index == 0 else ""
            tag = series.label[:12]
            lines.append(
                f"{label:<{label_width}}{tag:>14} |"
                f"{_bar(series.paper[bench], peak, width, _PAPER_GLYPH)}"
                f" {series.paper[bench]:.2f}"
            )
            lines.append(
                f"{'':<{label_width}}{'':>14} |"
                f"{_bar(series.measured[bench], peak, width, _BAR_GLYPH)}"
                f" {series.measured[bench]:.2f}"
            )
        lines.append("")
    return "\n".join(lines)


def render_averages(result: FigureResult, width: int = 40) -> str:
    """A compact averages-only chart (one pair of bars per series)."""
    peak = max(
        max(series.paper_avg, series.measured_avg)
        for series in result.series
    )
    lines = [f"{result.figure_id} averages [{result.unit}]"]
    for series in result.series:
        lines.append(
            f"  {series.label:<22} paper "
            f"|{_bar(series.paper_avg, peak, width, _PAPER_GLYPH)} "
            f"{series.paper_avg:.2f}"
        )
        lines.append(
            f"  {'':<22} ours  "
            f"|{_bar(series.measured_avg, peak, width, _BAR_GLYPH)} "
            f"{series.measured_avg:.2f}"
        )
    return "\n".join(lines)

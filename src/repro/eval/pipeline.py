"""The trace-driven simulation pipeline behind every figure.

One pass per benchmark drives:

* the baseline 256KB 4-way L2 (2048 lines) — its miss/writeback stream is
  what the paper's mechanisms act on;
* the Figure 8 alternate 384KB 6-way L2 (3072 lines), fed the same
  references;
* five SNC timing simulators (64KB LRU / 64KB no-replacement / 32KB LRU /
  128KB LRU / 64KB 32-way LRU) fed the baseline L2's miss stream.

Counters reset at the warmup boundary while all cache/SNC *state* stays
warm, mirroring the paper's fast-forward methodology (10B instructions of
warmup before measurement).  Every event is then priced by
:mod:`repro.timing.model` under any latency configuration — Figure 10 needs
no re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memory.cache import TagOnlyCache
from repro.secure.snc import SNCConfig, SNCPolicy
from repro.timing.model import (
    SNCEventCounts,
    SNCTimingSim,
    TraceEvents,
    calibrate_compute_cycles,
)
from repro.workloads.spec import BenchmarkModel

#: The paper's cache geometries, in 128-byte lines.
L2_BASE_LINES, L2_BASE_ASSOC = 2048, 4  # 256KB 4-way
L2_BIG_LINES, L2_BIG_ASSOC = 3072, 6  # 384KB 6-way (Figure 8)


def standard_snc_configs() -> dict[str, SNCConfig]:
    """The five SNC configurations the evaluation sweeps."""
    return {
        "lru64": SNCConfig(size_bytes=64 * 1024),
        "norepl64": SNCConfig(
            size_bytes=64 * 1024, policy=SNCPolicy.NO_REPLACEMENT
        ),
        "lru32": SNCConfig(size_bytes=32 * 1024),
        "lru128": SNCConfig(size_bytes=128 * 1024),
        "lru64_32way": SNCConfig(size_bytes=64 * 1024, assoc=32),
    }


@dataclass(frozen=True)
class SimulationScale:
    """Trace length (references at L2-input granularity)."""

    warmup_refs: int = 200_000
    measure_refs: int = 250_000

    @property
    def total_refs(self) -> int:
        return self.warmup_refs + self.measure_refs


#: A smaller scale for unit tests and quick smoke runs.
QUICK_SCALE = SimulationScale(warmup_refs=30_000, measure_refs=50_000)


@dataclass
class BenchmarkEvents:
    """Everything measured for one benchmark, post-warmup."""

    name: str
    xom_slowdown_target: float
    read_misses: int = 0
    allocate_misses: int = 0
    writebacks: int = 0
    read_misses_big_l2: int = 0
    allocate_misses_big_l2: int = 0
    compute_cycles: int = 0
    snc: dict[str, SNCEventCounts] = field(default_factory=dict)

    def trace_events(self, snc_key: str | None = None) -> TraceEvents:
        """Assemble the pricing view for one SNC configuration."""
        return TraceEvents(
            name=self.name,
            read_misses=self.read_misses,
            allocate_misses=self.allocate_misses,
            writebacks=self.writebacks,
            compute_cycles=self.compute_cycles,
            snc=self.snc.get(snc_key) if snc_key else None,
            read_misses_alt_l2=self.read_misses_big_l2,
        )


def simulate_benchmark(bench: BenchmarkModel,
                       scale: SimulationScale | None = None,
                       snc_configs: dict[str, SNCConfig] | None = None,
                       seed: int = 1) -> BenchmarkEvents:
    """Run one benchmark through the L2s and the given SNC configurations.

    ``snc_configs=None`` means the five standard configurations; an empty
    mapping means *no* SNC simulation (a caller pricing only the XOM path
    should not pay for five SNC timing simulators).
    """
    scale = scale or SimulationScale()
    if snc_configs is None:
        snc_configs = standard_snc_configs()
    generator = bench.generator(seed=seed)
    l2 = TagOnlyCache(L2_BASE_LINES, L2_BASE_ASSOC)
    l2_big = TagOnlyCache(L2_BIG_LINES, L2_BIG_ASSOC)
    sims = {name: SNCTimingSim(cfg) for name, cfg in snc_configs.items()}
    events = BenchmarkEvents(bench.name, bench.xom_slowdown_pct)

    measuring = False
    warmup = scale.warmup_refs
    sims_values = list(sims.values())
    for position in range(scale.total_refs):
        if position == warmup:
            measuring = True
        line, is_write = next(generator)

        hit, victim = l2.access(line, is_write)
        if not hit:
            if measuring:
                if is_write:
                    events.allocate_misses += 1
                else:
                    events.read_misses += 1
            for sim in sims_values:
                sim.read_miss(line, critical=not is_write)
        if victim is not None:
            if measuring:
                events.writebacks += 1
            for sim in sims_values:
                sim.writeback(victim)
        if not measuring and position + 1 == warmup:
            for sim in sims_values:
                sim.reset_counts()

        big_hit, _ = l2_big.access(line, is_write)
        if not big_hit and measuring:
            if is_write:
                events.allocate_misses_big_l2 += 1
            else:
                events.read_misses_big_l2 += 1

    events.snc = {name: sim.counts for name, sim in sims.items()}
    if events.read_misses == 0:
        raise ConfigurationError(
            f"{bench.name}: the measurement window saw no load misses — "
            "the trace scale is too small to get past the benchmark's "
            "initialization phase (use at least the QUICK_SCALE lengths)"
        )
    events.compute_cycles = calibrate_compute_cycles(
        events.read_misses, bench.xom_slowdown_pct
    )
    return events

"""The trace-driven simulation pipeline behind every figure and scenario.

One pass per workload source drives:

* the baseline 256KB 4-way L2 (2048 lines) — its miss/writeback stream is
  what the paper's mechanisms act on;
* the Figure 8 alternate 384KB 6-way L2 (3072 lines), fed the same
  references — simulated only when a requesting job prices it
  (``simulate_alt_l2``);
* one SNC timing state machine per requested configuration, fed the
  baseline L2's miss stream.  Each state machine is built by its
  protection scheme's registry spec (:mod:`repro.secure.schemes`), so
  scheme variants like ``otp_split`` ride the same pipeline.

Two entry points share the methodology: :func:`simulate_benchmark` is the
single-benchmark figure path, and :func:`simulate_scenario` runs any
:class:`~repro.workloads.sources.WorkloadSource` — including the §4.3
multi-task interleaver, whose explicit switch events it routes to every
SNC state machine under a chosen
:class:`~repro.secure.snc_policy.SwitchStrategy`.  A single-task scenario
reproduces the figure path's events exactly (the tests pin this).

These fused single-pass loops are the evaluation's **reference
implementation** (``backend="fused"``).  The production path is the
record/replay engine in :mod:`repro.eval.record`, which runs the
workload + L2 part of this pass once per (source, scale, seed) and
replays the compacted event stream through any configuration set,
producing identical :class:`BenchmarkEvents` — the differential suite
and the golden-master fixtures pin the two against each other.

Counters reset at the warmup boundary while all cache/SNC *state* stays
warm, mirroring the paper's fast-forward methodology (10B instructions of
warmup before measurement).  Every event is then priced by
:mod:`repro.timing.model` under any latency configuration — Figure 10 needs
no re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.memory.cache import TagOnlyCache
from repro.secure.integrity import (
    IntegrityConfig,
    IntegrityEventCounts,
    get_integrity,
)
from repro.secure.schemes import get_scheme
from repro.secure.snc import SNCConfig, SNCPolicy
from repro.secure.snc_policy import SwitchStrategy
from repro.timing.model import (
    SNCEventCounts,
    TraceEvents,
    calibrate_compute_cycles,
)
from repro.workloads.sources import SingleBenchmark, Switch, WorkloadSource
from repro.workloads.spec import BenchmarkModel

#: The paper's cache geometries, in 128-byte lines.
L2_BASE_LINES, L2_BASE_ASSOC = 2048, 4  # 256KB 4-way
L2_BIG_LINES, L2_BIG_ASSOC = 3072, 6  # 384KB 6-way (Figure 8)


def standard_snc_configs() -> dict[str, SNCConfig]:
    """The five SNC configurations the evaluation sweeps."""
    return {
        "lru64": SNCConfig(size_bytes=64 * 1024),
        "norepl64": SNCConfig(
            size_bytes=64 * 1024, policy=SNCPolicy.NO_REPLACEMENT
        ),
        "lru32": SNCConfig(size_bytes=32 * 1024),
        "lru128": SNCConfig(size_bytes=128 * 1024),
        "lru64_32way": SNCConfig(size_bytes=64 * 1024, assoc=32),
    }


@dataclass(frozen=True)
class SimulationScale:
    """Trace length (references at L2-input granularity)."""

    warmup_refs: int = 200_000
    measure_refs: int = 250_000

    @property
    def total_refs(self) -> int:
        return self.warmup_refs + self.measure_refs


#: A smaller scale for unit tests and quick smoke runs.
QUICK_SCALE = SimulationScale(warmup_refs=30_000, measure_refs=50_000)


@dataclass
class BenchmarkEvents:
    """Everything measured for one workload source, post-warmup.

    The alternate-L2 counters are ``None`` when the simulation skipped
    the Figure 8 cache (no requesting job priced it).  Multi-task
    scenarios also record each task's measured load misses
    (``task_read_misses``, keyed ``"<xom_id>:<label>"``) — the per-task
    split behind the summed compute calibration."""

    name: str
    xom_slowdown_target: float
    read_misses: int = 0
    allocate_misses: int = 0
    writebacks: int = 0
    read_misses_big_l2: int | None = 0
    allocate_misses_big_l2: int | None = 0
    compute_cycles: int = 0
    snc: dict[str, SNCEventCounts] = field(default_factory=dict)
    integrity: dict[str, IntegrityEventCounts] = field(default_factory=dict)
    task_read_misses: dict[str, int] | None = None

    def trace_events(self, snc_key: str | None = None, *,
                     integrity_key: str | None = None,
                     alt_l2: bool = False) -> TraceEvents:
        """Assemble the pricing view for one SNC configuration.

        ``integrity_key`` selects one simulated integrity configuration's
        counts; the scheme pricers then add its cost on top
        (:func:`repro.timing.model.integrity_cycles`).  ``alt_l2=True``
        substitutes the Figure 8 384KB-L2 miss counts for the baseline
        L2's, so an SNC-free scheme's pricer can price the alternate
        hierarchy without a dedicated code path.  It cannot be combined
        with ``snc_key`` or ``integrity_key``: those event counts were
        generated by the *baseline* L2's miss stream and would not
        describe the alternate hierarchy."""
        read_misses = self.read_misses
        allocate_misses = self.allocate_misses
        if alt_l2:
            if snc_key or integrity_key:
                raise ConfigurationError(
                    f"{self.name}: SNC/integrity events come from the "
                    "baseline L2's miss stream and cannot price the "
                    "alternate L2"
                )
            if self.read_misses_big_l2 is None:
                raise ConfigurationError(
                    f"{self.name}: the alternate-L2 cache was not "
                    "simulated for this event set (declare alt_l2=True "
                    "on the requesting job)"
                )
            read_misses = self.read_misses_big_l2
            allocate_misses = self.allocate_misses_big_l2
        if integrity_key and integrity_key not in self.integrity:
            raise ConfigurationError(
                f"{self.name}: no integrity configuration "
                f"{integrity_key!r} was simulated for this event set "
                "(declare it on the requesting job)"
            )
        return TraceEvents(
            name=self.name,
            read_misses=read_misses,
            allocate_misses=allocate_misses,
            writebacks=self.writebacks,
            compute_cycles=self.compute_cycles,
            snc=self.snc.get(snc_key) if snc_key else None,
            integrity=(
                self.integrity[integrity_key] if integrity_key else None
            ),
        )


def _build_sims(snc_configs: dict[str, SNCConfig],
                snc_schemes: dict[str, str] | None,
                switch_strategy: SwitchStrategy | None = None) -> dict:
    """One timing state machine per config, built by its scheme's spec.

    ``switch_strategy`` selects the §4.3 context-switch handling for
    scenario runs; ``None`` (the figure path, which never switches) uses
    each scheme's default."""
    snc_schemes = snc_schemes or {}
    sims = {}
    for name, config in snc_configs.items():
        scheme = get_scheme(snc_schemes.get(name, "otp"))
        if scheme.build_timing_sim is None:
            raise ConfigurationError(
                f"scheme {scheme.key!r} declares no SNC timing state "
                f"machine — config {name!r} cannot be simulated"
            )
        if switch_strategy is None:
            sims[name] = scheme.build_timing_sim(config)
        else:
            sims[name] = scheme.build_timing_sim(
                config, switch_strategy=switch_strategy
            )
    return sims


def _build_integrity_models(
    integrity_configs: dict[str, IntegrityConfig] | None,
    integrity_providers: dict[str, str] | None,
) -> dict:
    """One byte-free integrity model per config, built by its spec.

    ``integrity_providers`` maps each config key to the registered
    :class:`~repro.secure.integrity.IntegritySpec` that simulates it.
    ``None``/empty configs (the figure path) build nothing, which is why
    the paper tables are untouched by the integrity axis."""
    models = {}
    for name, config in (integrity_configs or {}).items():
        provider_key = (integrity_providers or {}).get(name)
        if provider_key is None:
            raise ConfigurationError(
                f"integrity config {name!r} names no registered provider"
            )
        spec = get_integrity(provider_key)
        if spec.build_timing_model is None:
            raise ConfigurationError(
                f"integrity provider {spec.key!r} declares no timing "
                f"model — config {name!r} cannot be simulated"
            )
        models[name] = spec.build_timing_model(config)
    return models


def simulate_benchmark(bench: BenchmarkModel,
                       scale: SimulationScale | None = None,
                       snc_configs: dict[str, SNCConfig] | None = None,
                       seed: int = 1,
                       snc_schemes: dict[str, str] | None = None,
                       simulate_alt_l2: bool = True,
                       integrity_configs: dict[str, IntegrityConfig]
                       | None = None,
                       integrity_providers: dict[str, str] | None = None,
                       l2_lines: int = L2_BASE_LINES,
                       l2_assoc: int = L2_BASE_ASSOC,
                       ) -> BenchmarkEvents:
    """Run one benchmark through the L2s and the given SNC configurations.

    ``snc_configs=None`` means the five standard configurations; an empty
    mapping means *no* SNC simulation (a caller pricing only the XOM path
    should not pay for five SNC timing simulators).  ``snc_schemes`` maps
    a config key to the registered scheme whose timing state machine
    simulates it (default ``"otp"``).  ``simulate_alt_l2=False`` skips the
    Figure 8 alternate L2 entirely — callers whose figures never price it
    should not pay for a second cache model.  ``integrity_configs`` (with
    ``integrity_providers`` naming each config's registered integrity
    spec) adds byte-free integrity models to the same pass: a load or
    allocate miss verifies the line, a dirty eviction updates it — the
    same points the functional engines call the provider.  The default is
    none, as in the paper.
    """
    scale = scale or SimulationScale()
    if snc_configs is None:
        snc_configs = standard_snc_configs()
    # The benchmark is the single-task WorkloadSource: same references,
    # no switch events — the fused loop below never needs to check.
    generator = SingleBenchmark(bench).stream(seed)
    l2 = TagOnlyCache(l2_lines, l2_assoc)
    sims = _build_sims(snc_configs, snc_schemes)
    integrity_models = _build_integrity_models(
        integrity_configs, integrity_providers
    )
    events = BenchmarkEvents(bench.name, bench.xom_slowdown_pct)

    # The hot loop runs total_refs times per figure job; bound methods and
    # counters are hoisted into locals to keep per-ref attribute lookups
    # out of it (benchmarks/bench_trace_throughput.py tracks the effect).
    measuring = False
    warmup = scale.warmup_refs
    sims_values = list(sims.values())
    models_values = list(integrity_models.values())
    read_miss_fns = [sim.read_miss for sim in sims_values]
    writeback_fns = [sim.writeback for sim in sims_values]
    verify_fns = [model.verify for model in models_values]
    update_fns = [model.update for model in models_values]
    next_ref = generator.__next__
    l2_access = l2.access
    big_access = None
    if simulate_alt_l2:
        big_access = TagOnlyCache(L2_BIG_LINES, L2_BIG_ASSOC).access
    read_misses = allocate_misses = writebacks = 0
    read_misses_big = allocate_misses_big = 0

    for position in range(scale.total_refs):
        if position == warmup:
            measuring = True
        line, is_write = next_ref()

        hit, victim = l2_access(line, is_write)
        if not hit:
            if measuring:
                if is_write:
                    allocate_misses += 1
                else:
                    read_misses += 1
            for read_miss in read_miss_fns:
                read_miss(line, critical=not is_write)
            for verify in verify_fns:
                verify(line, critical=not is_write)
        if victim is not None:
            if measuring:
                writebacks += 1
            for writeback in writeback_fns:
                writeback(victim)
            for update in update_fns:
                update(victim)
        if not measuring and position + 1 == warmup:
            for sim in sims_values:
                sim.reset_counts()
            for model in models_values:
                model.reset_counts()

        if big_access is not None:
            big_hit, _ = big_access(line, is_write)
            if not big_hit and measuring:
                if is_write:
                    allocate_misses_big += 1
                else:
                    read_misses_big += 1

    events.read_misses = read_misses
    events.allocate_misses = allocate_misses
    events.writebacks = writebacks
    if simulate_alt_l2:
        events.read_misses_big_l2 = read_misses_big
        events.allocate_misses_big_l2 = allocate_misses_big
    else:
        events.read_misses_big_l2 = None
        events.allocate_misses_big_l2 = None
    events.snc = {name: sim.counts for name, sim in sims.items()}
    events.integrity = {
        name: model.counts for name, model in integrity_models.items()
    }
    if events.read_misses == 0:
        raise ConfigurationError(
            f"{bench.name}: the measurement window saw no load misses — "
            "the trace scale is too small to get past the benchmark's "
            "initialization phase (use at least the QUICK_SCALE lengths)"
        )
    events.compute_cycles = calibrate_compute_cycles(
        events.read_misses, bench.xom_slowdown_pct
    )
    return events


def simulate_scenario(source: WorkloadSource,
                      scale: SimulationScale | None = None,
                      snc_configs: dict[str, SNCConfig] | None = None,
                      snc_schemes: dict[str, str] | None = None,
                      switch_strategy: SwitchStrategy = SwitchStrategy.TAG,
                      seed: int = 1,
                      integrity_configs: dict[str, IntegrityConfig]
                      | None = None,
                      integrity_providers: dict[str, str] | None = None,
                      l2_lines: int = L2_BASE_LINES,
                      l2_assoc: int = L2_BASE_ASSOC,
                      ) -> BenchmarkEvents:
    """Run any workload source — including multi-task — through the L2
    and the given SNC configurations under one §4.3 switch strategy.

    The reference handling is the same methodology as
    :func:`simulate_benchmark` (same warmup reset, same counters, same
    per-config state machines); what this entry point adds is switch
    events — routed to every SNC state machine, which applies the
    strategy through its policy cores — and per-task compute
    calibration: each task's compute cycles are solved from *its*
    measured load misses and *its* Figure 3 anchor, then summed, so a
    single-task scenario degenerates to the figure path's events
    exactly.  Scenarios never simulate the Figure 8 alternate L2.
    Integrity models (``integrity_configs``/``integrity_providers``,
    same contract as :func:`simulate_benchmark`) ride along untouched by
    switches — integrity metadata is keyed by line, not by task.
    """
    scale = scale or SimulationScale()
    if snc_configs is None:
        snc_configs = standard_snc_configs()
    sims = _build_sims(snc_configs, snc_schemes, switch_strategy)
    integrity_models = _build_integrity_models(
        integrity_configs, integrity_providers
    )
    tasks = source.tasks
    first_task = tasks[0].xom_id
    for sim in sims.values():
        sim.begin_task(first_task)
    l2 = TagOnlyCache(l2_lines, l2_assoc)
    events = BenchmarkEvents(source.name, 0.0)

    measuring = False
    warmup = scale.warmup_refs
    total = scale.total_refs
    sims_values = list(sims.values())
    models_values = list(integrity_models.values())
    read_miss_fns = [sim.read_miss for sim in sims_values]
    writeback_fns = [sim.writeback for sim in sims_values]
    verify_fns = [model.verify for model in models_values]
    update_fns = [model.update for model in models_values]
    switch_fns = [sim.switch_task for sim in sims_values]
    l2_access = l2.access
    read_misses = allocate_misses = writebacks = 0
    task_read_misses = {task.xom_id: 0 for task in tasks}
    # Which task fetched each L2-resident line: dirty evictions must be
    # written back under the *owner's* tag (in hardware the tag travels
    # with the line), not whichever task happens to be scheduled when
    # the shared L2 evicts it.
    line_owner: dict[int, int] = {}
    current_task = first_task
    position = 0

    for item in source.stream(seed):
        if type(item) is Switch:
            # Switches always reach the state machines (they move warm
            # state); their counters reset at the warmup boundary with
            # everything else.
            next_task = item.next_task
            for switch_task in switch_fns:
                switch_task(next_task)
            current_task = next_task
            continue
        if position == warmup:
            measuring = True
        line, is_write = item

        hit, victim = l2_access(line, is_write)
        if not hit:
            line_owner[line] = current_task
            if measuring:
                if is_write:
                    allocate_misses += 1
                else:
                    read_misses += 1
                    task_read_misses[current_task] += 1
            for read_miss in read_miss_fns:
                read_miss(line, critical=not is_write)
            for verify in verify_fns:
                verify(line, critical=not is_write)
        if victim is not None:
            owner = line_owner.pop(victim, current_task)
            if measuring:
                writebacks += 1
            for writeback in writeback_fns:
                writeback(victim, owner)
            for update in update_fns:
                update(victim)
        if not measuring and position + 1 == warmup:
            for sim in sims_values:
                sim.reset_counts()
            for model in models_values:
                model.reset_counts()
        position += 1
        if position >= total:
            break

    events.read_misses = read_misses
    events.allocate_misses = allocate_misses
    events.writebacks = writebacks
    events.read_misses_big_l2 = None
    events.allocate_misses_big_l2 = None
    events.snc = {name: sim.counts for name, sim in sims.items()}
    events.integrity = {
        name: model.counts for name, model in integrity_models.items()
    }
    if events.read_misses == 0:
        raise ConfigurationError(
            f"{source.name}: the measurement window saw no load misses — "
            "the scenario scale is too small to get past the tasks' "
            "initialization phases (use at least the QUICK_SCALE lengths)"
        )
    # Per-task calibration: each task's compute weight from its own
    # Figure 3 anchor and its own measured misses; the scenario's compute
    # cycles are the sum.  The recorded target is the miss-weighted mean
    # (informational; pricing only reads compute_cycles).
    compute = 0
    for task in tasks:
        misses = task_read_misses[task.xom_id]
        if misses:
            compute += calibrate_compute_cycles(
                misses, task.xom_slowdown_pct
            )
    events.compute_cycles = compute
    if len(tasks) == 1:
        events.xom_slowdown_target = tasks[0].xom_slowdown_pct
    else:
        events.xom_slowdown_target = sum(
            task.xom_slowdown_pct * task_read_misses[task.xom_id]
            for task in tasks
        ) / events.read_misses
    events.task_read_misses = {
        f"{task.xom_id}:{task.label}": task_read_misses[task.xom_id]
        for task in tasks
    }
    return events

"""Schedulable units of the evaluation: the experiment job graph.

The paper's evaluation is a sweep of independent trace simulations — every
figure prices the same kind of per-benchmark event sets under different
SNC geometries and latencies.  This module turns that sweep into explicit
data:

* :class:`ExperimentJob` — what one *figure* needs from one *workload*:
  the registered protection schemes being priced
  (:mod:`repro.secure.schemes`), the SNC configurations that must be
  simulated, the integrity configurations riding the same pass
  (:class:`IntegrityModelSpec`, resolving through the
  :mod:`repro.secure.integrity` registry; figure jobs declare none, as
  in the paper), whether the Figure 8 alternate L2 is priced, the trace
  scale and the workload seed.  Figures declare jobs
  (:func:`repro.eval.experiments.figure_jobs`); they never loop inline.
* :class:`SimulationTask` — what actually runs: one trace pass over one
  workload, feeding the union of every SNC configuration any selected
  figure asked for (and the alternate L2 only if some figure prices it).
  :func:`merge_jobs` folds a job list into the minimal task list, so
  requesting all seven figures still simulates each benchmark exactly
  once.
* :class:`ScenarioJob` / :class:`ScenarioTask` — the same two-level shape
  for multi-programmed §4.3 scenarios: a :class:`SourceSpec` names the
  workload source (a benchmark, a trace file, or a multi-task interleave
  with its quantum), a switch strategy picks FLUSH or TAG, and
  :func:`merge_scenario_jobs` unions SNC requirements exactly like
  :func:`merge_jobs`.  The scheduler and result cache treat both task
  kinds identically (:func:`execute_task` dispatches).
* :class:`RecordTask` — the replay backend's phase 1: the
  configuration-independent record pass a task's replay depends on
  (:func:`record_task_for` derives it; :func:`execute_record` runs it;
  :func:`execute_task_replay` is the phase 2 twin of
  :func:`execute_task`).  Tasks that differ only in SNC geometry,
  scheme, integrity, switch strategy or the alternate-L2 flag map to
  the *same* record task — that sharing is the engine's speedup.

All are frozen, hashable and picklable, so tasks can fan out across
processes (:mod:`repro.eval.scheduler`) and key an on-disk result store
(:mod:`repro.eval.cache`).  Identity is *content-based*:
:meth:`SimulationTask.config_hash` is a SHA-256 over the canonical JSON of
the full configuration, stable across processes and interpreter runs
(unlike ``hash()``, which is salted per process for strings); a trace
source hashes its file's *contents*, so editing a trace invalidates its
cached results.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path

from repro.errors import ConfigurationError
from repro.eval.pipeline import (
    L2_BASE_ASSOC,
    L2_BASE_LINES,
    L2_BIG_ASSOC,
    L2_BIG_LINES,
    BenchmarkEvents,
    SimulationScale,
    simulate_benchmark,
    simulate_scenario,
    standard_snc_configs,
)
from repro.eval.record import (
    Recording,
    ReplayRequest,
    record_source,
)
from repro.secure.integrity import IntegrityConfig, get_integrity
from repro.secure.schemes import get_scheme
from repro.secure.snc import SNCConfig, SNCPolicy
from repro.secure.snc_policy import SwitchStrategy
from repro.workloads.sources import (
    TRACE_XOM_SLOWDOWN_PCT,
    MultiTaskInterleaver,
    SingleBenchmark,
    TraceFile,
    WorkloadSource,
)
from repro.workloads.spec import BY_NAME


@dataclass(frozen=True)
class SNCSpec:
    """A hashable, JSON-friendly description of one SNC configuration.

    ``scheme`` names the registered protection scheme whose timing state
    machine simulates this configuration (``"otp"`` for the paper's
    Algorithm 1; variants like ``"otp_split"`` plug in their own core).
    """

    key: str  # the pricing key figures use, e.g. "lru64"
    size_bytes: int = 64 * 1024
    entry_bytes: int = 2
    assoc: int | None = None  # None = fully associative
    policy: str = SNCPolicy.LRU.value
    scheme: str = "otp"

    @classmethod
    def from_config(cls, key: str, config: SNCConfig,
                    scheme: str = "otp") -> SNCSpec:
        return cls(
            key=key,
            size_bytes=config.size_bytes,
            entry_bytes=config.entry_bytes,
            assoc=config.assoc,
            policy=config.policy.value,
            scheme=scheme,
        )

    def to_config(self) -> SNCConfig:
        return SNCConfig(
            size_bytes=self.size_bytes,
            entry_bytes=self.entry_bytes,
            assoc=self.assoc,
            policy=SNCPolicy(self.policy),
        )

    def canonical(self) -> list:
        return [self.key, self.size_bytes, self.entry_bytes, self.assoc,
                self.policy, self.scheme]


def standard_snc_specs() -> dict[str, SNCSpec]:
    """The five standard configurations, as specs keyed like the pipeline."""
    return {
        key: SNCSpec.from_config(key, config)
        for key, config in standard_snc_configs().items()
    }


@dataclass(frozen=True)
class IntegrityModelSpec:
    """A hashable, JSON-friendly description of one integrity
    configuration — the eval layer's handle on the
    :mod:`repro.secure.integrity` registry, exactly as :class:`SNCSpec`
    is its handle on the scheme registry.

    ``provider`` names the registered
    :class:`~repro.secure.integrity.IntegritySpec` whose byte-free
    timing model simulates this configuration (it must declare one —
    ``"none"`` is expressed by *not* requesting a model, which is how
    the figure jobs stay byte-identical to the pre-integrity pipeline);
    ``key`` is the pricing key figures and tables use.
    """

    key: str  # the pricing key, e.g. "tree_nc1024"
    provider: str  # integrity registry key: "mac", "hash_tree", ...
    n_lines: int = 1 << 19  # covers every synthetic workload footprint
    node_cache_entries: int = 0
    tag_bytes: int = 16

    def __post_init__(self) -> None:
        spec = get_integrity(self.provider)  # raises on unregistered
        if spec.build_timing_model is None:
            raise ConfigurationError(
                f"integrity provider {self.provider!r} declares no "
                f"timing model — request it by omission, not by key"
            )

    def to_config(self) -> IntegrityConfig:
        return IntegrityConfig(
            base_addr=0,
            n_lines=self.n_lines,
            node_cache_entries=self.node_cache_entries,
            tag_bytes=self.tag_bytes,
        )

    def canonical(self) -> list:
        return [self.key, self.provider, self.n_lines,
                self.node_cache_entries, self.tag_bytes]


def _merge_integrity(target: dict[str, IntegrityModelSpec],
                     specs: tuple[IntegrityModelSpec, ...],
                     context: str) -> None:
    """Union integrity specs by pricing key, rejecting conflicts —
    the same discipline :func:`merge_jobs` applies to SNC specs."""
    for spec in specs:
        existing = target.get(spec.key)
        if existing is not None and existing != spec:
            raise ValueError(
                f"integrity key {spec.key!r} bound to two different "
                f"configurations in one {context}"
            )
        target[spec.key] = spec


def _canonical_hash(payload: object) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def _scale_canonical(scale: SimulationScale) -> list[int]:
    return [scale.warmup_refs, scale.measure_refs]


@dataclass(frozen=True)
class ExperimentJob:
    """One figure's requirement on one workload — the unit figures declare.

    ``figure`` says who wants the result; ``schemes`` names the registered
    protection schemes whose pricers will consume it (validated against
    the registry); ``workload``, ``snc_configs``, ``alt_l2``, ``scale``
    and ``seed`` pin down the simulation itself.  Jobs on the same
    (workload, scale, seed) share one :class:`SimulationTask` whose SNC
    set is the union of theirs (:func:`merge_jobs`).
    """

    figure: str
    schemes: tuple[str, ...]  # registered scheme keys being priced
    workload: str
    snc_configs: tuple[SNCSpec, ...]
    scale: SimulationScale
    seed: int = 1
    alt_l2: bool = False  # does this figure price the Figure 8 384KB L2?
    #: Integrity configurations this figure prices; empty (the paper's
    #: own configuration) for every figure job, so the seven tables are
    #: untouched by the axis.
    integrity: tuple[IntegrityModelSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.workload not in BY_NAME:
            raise KeyError(f"unknown workload {self.workload!r}")
        for key in self.schemes:
            get_scheme(key)  # raises KeyError on an unregistered scheme
        for spec in self.snc_configs:
            get_scheme(spec.scheme)

    def canonical(self) -> dict:
        return {
            "figure": self.figure,
            "schemes": sorted(self.schemes),
            "workload": self.workload,
            "snc": [spec.canonical() for spec in
                    sorted(self.snc_configs, key=lambda spec: spec.key)],
            "integrity": [spec.canonical() for spec in
                          sorted(self.integrity,
                                 key=lambda spec: spec.key)],
            "scale": _scale_canonical(self.scale),
            "seed": self.seed,
            "alt_l2": self.alt_l2,
        }

    def config_hash(self) -> str:
        """Stable across processes and runs — safe as a cache-key input."""
        return _canonical_hash(self.canonical())


@dataclass(frozen=True)
class SimulationTask:
    """One trace pass over one workload — the unit the scheduler runs."""

    workload: str
    snc_configs: tuple[SNCSpec, ...]
    scale: SimulationScale
    seed: int = 1
    alt_l2: bool = False
    integrity: tuple[IntegrityModelSpec, ...] = ()

    def canonical(self) -> dict:
        return {
            "workload": self.workload,
            "snc": [spec.canonical() for spec in
                    sorted(self.snc_configs, key=lambda spec: spec.key)],
            "integrity": [spec.canonical() for spec in
                          sorted(self.integrity,
                                 key=lambda spec: spec.key)],
            "scale": _scale_canonical(self.scale),
            "seed": self.seed,
            "alt_l2": self.alt_l2,
        }

    def config_hash(self) -> str:
        return _canonical_hash(self.canonical())

    def describe(self) -> str:
        scale = self.scale
        integrity = (
            f", {len(self.integrity)} integrity cfgs"
            if self.integrity else ""
        )
        return (
            f"{self.workload} "
            f"[{len(self.snc_configs)} SNC cfgs{integrity}, "
            f"{scale.warmup_refs}+{scale.measure_refs} refs, "
            f"seed {self.seed}]"
        )


def merge_jobs(jobs: list[ExperimentJob]) -> list[SimulationTask]:
    """Fold figure-level jobs into the minimal simulation task list.

    Jobs on the same (workload, scale, seed) merge into one task whose SNC
    set is the union of their requirements — and whose alternate-L2 flag
    is the OR of theirs — so overlapping figures never re-simulate a
    trace, and nobody pays for the Figure 8 cache unless some figure
    prices it.  Task order follows first appearance, keeping the
    scheduler's result order deterministic.
    """
    grouped: dict[tuple, dict[str, SNCSpec]] = {}
    integrity: dict[tuple, dict[str, IntegrityModelSpec]] = {}
    alt_l2: dict[tuple, bool] = {}
    for job in jobs:
        group = (job.workload, job.scale, job.seed)
        specs = grouped.setdefault(group, {})
        alt_l2[group] = alt_l2.get(group, False) or job.alt_l2
        _merge_integrity(integrity.setdefault(group, {}), job.integrity,
                         "job set")
        for spec in job.snc_configs:
            existing = specs.get(spec.key)
            if existing is not None and existing != spec:
                raise ValueError(
                    f"SNC key {spec.key!r} bound to two different "
                    f"geometries in one job set"
                )
            specs[spec.key] = spec
    return [
        SimulationTask(
            workload=workload,
            snc_configs=tuple(sorted(specs.values(),
                                     key=lambda spec: spec.key)),
            scale=scale,
            seed=seed,
            alt_l2=alt_l2[(workload, scale, seed)],
            integrity=tuple(sorted(
                integrity[(workload, scale, seed)].values(),
                key=lambda spec: spec.key,
            )),
        )
        for (workload, scale, seed), specs in grouped.items()
    ]


@lru_cache(maxsize=64)
def _trace_digest_stat(path: str, mtime_ns: int, size: int) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def _trace_digest(path: str) -> str:
    """Content digest of a trace file, memoized per (path, mtime, size)
    so hashing a scheduled trace task doesn't re-read the whole file on
    every cache lookup."""
    stat = Path(path).stat()
    return _trace_digest_stat(path, stat.st_mtime_ns, stat.st_size)


@dataclass(frozen=True)
class SourceSpec:
    """A hashable, JSON-friendly description of one workload source.

    ``kind`` selects the :mod:`repro.workloads.sources` implementation:

    * ``"benchmark"`` — one synthetic model (``workloads`` has one name);
    * ``"multitask"`` — the §4.3 interleaver over ``workloads`` with
      ``quantum`` references per time slice;
    * ``"trace"`` — a recorded trace file at ``trace_path``, calibrated
      by ``xom_slowdown_pct``.  Its canonical form digests the file's
      contents, so a changed trace never resolves to a stale cached
      result.
    """

    kind: str
    workloads: tuple[str, ...] = ()
    quantum: int = 0
    trace_path: str = ""
    #: Trace calibration anchor; same default :class:`TraceFile` uses.
    xom_slowdown_pct: float = TRACE_XOM_SLOWDOWN_PCT

    def __post_init__(self) -> None:
        if self.kind in ("benchmark", "multitask"):
            if not self.workloads:
                raise ConfigurationError(
                    f"{self.kind!r} source needs workload names"
                )
            for name in self.workloads:
                if name not in BY_NAME:
                    raise KeyError(f"unknown workload {name!r}")
            if self.kind == "benchmark" and len(self.workloads) != 1:
                raise ConfigurationError(
                    "'benchmark' source takes exactly one workload"
                )
            if self.kind == "multitask" and self.quantum <= 0:
                raise ConfigurationError(
                    "'multitask' source needs a positive quantum"
                )
        elif self.kind == "trace":
            if not self.trace_path:
                raise ConfigurationError("'trace' source needs a path")
        else:
            raise ConfigurationError(
                f"unknown source kind {self.kind!r} "
                "(benchmark, multitask, trace)"
            )

    @property
    def label(self) -> str:
        if self.kind == "benchmark":
            return self.workloads[0]
        if self.kind == "multitask":
            return f"mix({'+'.join(self.workloads)})@q{self.quantum}"
        return f"trace:{self.trace_path}"

    def build(self) -> WorkloadSource:
        """Materialize the runtime source this spec describes."""
        if self.kind == "benchmark":
            return SingleBenchmark(self.workloads[0])
        if self.kind == "multitask":
            return MultiTaskInterleaver(self.workloads, self.quantum)
        return TraceFile(self.trace_path,
                         xom_slowdown_pct=self.xom_slowdown_pct)

    def canonical(self) -> list:
        if self.kind == "trace":
            return [self.kind, _trace_digest(self.trace_path),
                    self.xom_slowdown_pct]
        return [self.kind, list(self.workloads), self.quantum]


@dataclass(frozen=True)
class ScenarioJob:
    """One scenario table's requirement on one workload source.

    The scenario analogue of :class:`ExperimentJob`: ``scenario`` says
    who wants the result, ``schemes`` names the registered schemes whose
    pricers will consume it, and (``source``, ``strategy``, ``scale``,
    ``seed``) pin down the simulation.  Jobs sharing those four merge
    into one :class:`ScenarioTask` (:func:`merge_scenario_jobs`).
    """

    scenario: str
    schemes: tuple[str, ...]
    source: SourceSpec
    snc_configs: tuple[SNCSpec, ...]
    strategy: str  # SwitchStrategy value: "flush" | "tag"
    scale: SimulationScale
    seed: int = 1
    integrity: tuple[IntegrityModelSpec, ...] = ()

    def __post_init__(self) -> None:
        SwitchStrategy(self.strategy)  # raises ValueError on a bad name
        for key in self.schemes:
            get_scheme(key)
        for spec in self.snc_configs:
            get_scheme(spec.scheme)

    def canonical(self) -> dict:
        return {
            "scenario": self.scenario,
            "schemes": sorted(self.schemes),
            "source": self.source.canonical(),
            "snc": [spec.canonical() for spec in
                    sorted(self.snc_configs, key=lambda spec: spec.key)],
            "integrity": [spec.canonical() for spec in
                          sorted(self.integrity,
                                 key=lambda spec: spec.key)],
            "strategy": self.strategy,
            "scale": _scale_canonical(self.scale),
            "seed": self.seed,
        }

    def config_hash(self) -> str:
        return _canonical_hash(self.canonical())


@dataclass(frozen=True)
class ScenarioTask:
    """One scenario trace pass — scheduled and cached like a
    :class:`SimulationTask`."""

    source: SourceSpec
    snc_configs: tuple[SNCSpec, ...]
    strategy: str
    scale: SimulationScale
    seed: int = 1
    integrity: tuple[IntegrityModelSpec, ...] = ()

    @property
    def workload(self) -> str:
        """The display name run stats and progress lines use."""
        return f"{self.source.label}/{self.strategy}"

    def canonical(self) -> dict:
        return {
            "kind": "scenario",
            "source": self.source.canonical(),
            "snc": [spec.canonical() for spec in
                    sorted(self.snc_configs, key=lambda spec: spec.key)],
            "integrity": [spec.canonical() for spec in
                          sorted(self.integrity,
                                 key=lambda spec: spec.key)],
            "strategy": self.strategy,
            "scale": _scale_canonical(self.scale),
            "seed": self.seed,
        }

    def config_hash(self) -> str:
        return _canonical_hash(self.canonical())

    def describe(self) -> str:
        scale = self.scale
        return (
            f"{self.source.label} "
            f"[{self.strategy}, {len(self.snc_configs)} SNC cfgs, "
            f"{scale.warmup_refs}+{scale.measure_refs} refs, "
            f"seed {self.seed}]"
        )


#: What the scheduler runs and the result cache keys: either task kind.
AnyTask = SimulationTask | ScenarioTask


@dataclass(frozen=True)
class RecordTask:
    """Phase 1 of the replay backend: one (source, scale, seed) record
    pass whose event stream any number of replay tasks consume.

    Derived from simulation/scenario tasks by :func:`record_task_for`;
    deliberately **omits** everything configuration-dependent — SNC
    geometries, schemes, integrity models, switch strategies, the
    alternate-L2 flag — because the recorded stream does not depend on
    them.  That is what lets a FLUSH task and a TAG task (or a figure-5
    task and a figure-6 task on new SNC keys) share one recording.
    Benchmark-source recordings always include the Figure 8 alternate
    L2's aggregate counts, so one recording per benchmark serves every
    figure.
    """

    source: SourceSpec
    scale: SimulationScale
    seed: int = 1

    @property
    def include_alt_l2(self) -> bool:
        return self.source.kind == "benchmark"

    def canonical(self) -> dict:
        return {
            "kind": "record",
            "source": self.source.canonical(),
            "scale": _scale_canonical(self.scale),
            "seed": self.seed,
            "l2": [L2_BASE_LINES, L2_BASE_ASSOC],
            "alt_l2": (
                [L2_BIG_LINES, L2_BIG_ASSOC] if self.include_alt_l2
                else None
            ),
        }

    def config_hash(self) -> str:
        return _canonical_hash(self.canonical())

    def describe(self) -> str:
        scale = self.scale
        return (
            f"{self.source.label} "
            f"[{scale.warmup_refs}+{scale.measure_refs} refs, "
            f"seed {self.seed}]"
        )


def record_task_for(task: AnyTask) -> RecordTask:
    """The record pass a task's replay depends on (its phase 1 key)."""
    if isinstance(task, ScenarioTask):
        source = task.source
    else:
        source = SourceSpec(kind="benchmark", workloads=(task.workload,))
    return RecordTask(source=source, scale=task.scale, seed=task.seed)


def execute_record(record_task: RecordTask) -> Recording:
    """Run one record pass (picklable: pool workers call it)."""
    return record_source(
        record_task.source.build(),
        scale=record_task.scale,
        seed=record_task.seed,
        include_alt_l2=record_task.include_alt_l2,
    )


#: One independently priced state machine of a task: ``("snc", key)``
#: for an SNC configuration, ``("integrity", key)`` for an integrity
#: model.  Lanes never interact during a replay — each consumes the
#: shared event columns on its own — which is what lets the scheduler
#: shard a batch pass by lane subsets without changing a single count.
Lane = tuple[str, str]


def task_lanes(task: AnyTask) -> tuple[Lane, ...]:
    """A task's pricing lanes in canonical order: every SNC
    configuration (key-sorted, as the task stores them), then every
    integrity model.  This order is the contract sharding relies on —
    :func:`merge_shard_events` rebuilds the per-lane dicts in exactly
    this order so a merged result is byte-identical to an unsharded
    pass."""
    return (
        tuple(("snc", spec.key) for spec in task.snc_configs)
        + tuple(("integrity", spec.key) for spec in task.integrity)
    )


def total_lane_count(tasks: Sequence[AnyTask]) -> int:
    """How many pricing lanes a task list carries in total — the upper
    bound on useful batch-mode parallelism (``--jobs auto`` sizes the
    pool with it)."""
    return sum(len(task.snc_configs) + len(task.integrity)
               for task in tasks)


def replay_request_for(task: AnyTask,
                       lanes: Sequence[Lane] | None = None,
                       ) -> ReplayRequest:
    """A task's replay-side configuration as the request object
    :meth:`~repro.eval.record.Recording.replay_batch` consumes — the
    phase 2 twin of :func:`_task_configs`.  ``lanes`` restricts the
    request to a subset of the task's lanes (a shard of a sharded batch
    pass); ``None`` means all of them."""
    configs = _task_configs(task, lanes=lanes)
    if isinstance(task, ScenarioTask):
        return ReplayRequest(
            strategy=SwitchStrategy(task.strategy), **configs
        )
    return ReplayRequest(alt_l2=task.alt_l2, **configs)


def execute_task_replay(task: AnyTask,
                        recording: Recording) -> BenchmarkEvents:
    """Run one task as phase 2 through the per-event reference path:
    replay ``recording`` through the task's SNC/integrity
    configurations, one at a time.  Events are identical to
    :func:`execute_task`'s — the differential suite pins it."""
    request = replay_request_for(task)
    return recording.replay(
        request.snc_configs, request.snc_schemes,
        strategy=request.strategy,
        alt_l2=request.alt_l2,
        integrity_configs=request.integrity_configs,
        integrity_providers=request.integrity_providers,
    )


def price_batch(tasks: Sequence[AnyTask],
                recording: Recording,
                lanes: Sequence[Sequence[Lane] | None] | None = None,
                ) -> list[BenchmarkEvents]:
    """Run many tasks of one recording as a single batch-priced pass:
    the union of every task's state machines consumes the shared
    columns event-major (:meth:`~repro.eval.record.Recording.
    replay_batch`), and each task gets its events back in order —
    byte-identical to calling :func:`execute_task_replay` per task.

    ``lanes`` (parallel to ``tasks``) restricts each task to a lane
    subset — one shard of a lane-sharded pass; a ``None`` entry keeps
    every lane of that task.  A sharded task's events carry only its
    shard's ``snc``/``integrity`` counts; :func:`merge_shard_events`
    reassembles the full object from the shards."""
    if lanes is None:
        lanes = [None] * len(tasks)
    requests = [replay_request_for(task, lanes=lane_subset)
                for task, lane_subset in zip(tasks, lanes)]
    return recording.replay_batch(requests)


def merge_shard_events(task: AnyTask,
                       partials: Sequence[BenchmarkEvents],
                       ) -> BenchmarkEvents:
    """Reassemble one task's events from the lane-shard partials of a
    sharded batch pass.

    Each partial priced a disjoint lane subset of ``task`` over the
    same recording, so every non-lane field (miss counts, compute
    cycles, per-task splits) derives from the recording alone and is
    identical across partials; only the ``snc`` / ``integrity`` dicts
    differ.  They are unioned and rebuilt in the task's canonical lane
    order (:func:`task_lanes`), making the merged object — including
    dict iteration order, which the result cache's serialization
    preserves — byte-identical to an unsharded pass.  A lane missing
    from every partial raises ``KeyError``: shards must cover the task
    exactly."""
    merged = partials[0]
    snc: dict = {}
    integrity: dict = {}
    for events in partials:
        snc.update(events.snc)
        integrity.update(events.integrity)
    merged.snc = {spec.key: snc[spec.key] for spec in task.snc_configs}
    merged.integrity = {spec.key: integrity[spec.key]
                        for spec in task.integrity}
    return merged


def merge_scenario_jobs(jobs: list[ScenarioJob]) -> list[ScenarioTask]:
    """Fold scenario jobs into the minimal task list, like
    :func:`merge_jobs`: jobs sharing (source, strategy, scale, seed)
    merge into one task whose SNC set is the union of theirs."""
    grouped: dict[tuple, dict[str, SNCSpec]] = {}
    integrity: dict[tuple, dict[str, IntegrityModelSpec]] = {}
    for job in jobs:
        group = (job.source, job.strategy, job.scale, job.seed)
        specs = grouped.setdefault(group, {})
        _merge_integrity(integrity.setdefault(group, {}), job.integrity,
                         "scenario job set")
        for spec in job.snc_configs:
            existing = specs.get(spec.key)
            if existing is not None and existing != spec:
                raise ValueError(
                    f"SNC key {spec.key!r} bound to two different "
                    f"geometries in one scenario job set"
                )
            specs[spec.key] = spec
    return [
        ScenarioTask(
            source=source,
            snc_configs=tuple(sorted(specs.values(),
                                     key=lambda spec: spec.key)),
            strategy=strategy,
            scale=scale,
            seed=seed,
            integrity=tuple(sorted(
                integrity[(source, strategy, scale, seed)].values(),
                key=lambda spec: spec.key,
            )),
        )
        for (source, strategy, scale, seed), specs in grouped.items()
    ]


def _task_configs(task: AnyTask,
                  lanes: Sequence[Lane] | None = None) -> dict:
    """A task's spec tuples as the keyword mapping every simulation and
    replay entry point takes — one place, so the fused and replay
    dispatchers cannot diverge when a task axis is added.  ``lanes``
    keeps only the named subset of the task's lanes (a shard of a
    sharded batch pass); filtering preserves the canonical key-sorted
    spec order, so a shard's dicts iterate exactly like the matching
    slice of the full task's."""
    snc_specs = task.snc_configs
    integrity_specs = task.integrity
    if lanes is not None:
        picked = set(lanes)
        snc_specs = tuple(spec for spec in snc_specs
                          if ("snc", spec.key) in picked)
        integrity_specs = tuple(spec for spec in integrity_specs
                                if ("integrity", spec.key) in picked)
    return {
        "snc_configs": {spec.key: spec.to_config()
                        for spec in snc_specs},
        "snc_schemes": {spec.key: spec.scheme
                        for spec in snc_specs},
        "integrity_configs": {spec.key: spec.to_config()
                              for spec in integrity_specs},
        "integrity_providers": {spec.key: spec.provider
                                for spec in integrity_specs},
    }


def execute_task(task: AnyTask) -> BenchmarkEvents:
    """Run one task's trace simulation (picklable: pool workers call it).

    Dispatches on the task kind: figure tasks run the single-benchmark
    fast path, scenario tasks build their workload source and run the
    switch-aware scenario loop."""
    configs = _task_configs(task)
    if isinstance(task, ScenarioTask):
        return simulate_scenario(
            task.source.build(),
            scale=task.scale,
            switch_strategy=SwitchStrategy(task.strategy),
            seed=task.seed,
            **configs,
        )
    return simulate_benchmark(
        BY_NAME[task.workload],
        scale=task.scale,
        seed=task.seed,
        simulate_alt_l2=task.alt_l2,
        **configs,
    )


def task_to_wire(task: AnyTask) -> dict:
    """Serialize a task to the serve protocol's JSON wire form.

    The inverse of :func:`task_from_wire`:
    ``task_from_wire(json.loads(json.dumps(task_to_wire(task))))``
    rebuilds an equal task, so a client-shipped task hashes (and so
    caches) exactly like the local one.  ``kind`` selects the task
    class; specs travel as their dataclass field dicts; the scale is a
    ``[warmup_refs, measure_refs]`` pair.
    """
    wire: dict = {
        "snc": [asdict(spec) for spec in task.snc_configs],
        "integrity": [asdict(spec) for spec in task.integrity],
        "scale": _scale_canonical(task.scale),
        "seed": task.seed,
    }
    if isinstance(task, ScenarioTask):
        wire["kind"] = "scenario"
        wire["source"] = asdict(task.source)
        wire["strategy"] = task.strategy
    else:
        wire["kind"] = "simulation"
        wire["workload"] = task.workload
        wire["alt_l2"] = task.alt_l2
    return wire


def task_from_wire(wire: object) -> AnyTask:
    """Rebuild a task from its JSON wire form, validating as it goes.

    Every malformed payload — wrong shape, unknown ``kind``, unknown
    workload/scheme/provider, bad field types — raises
    :class:`~repro.errors.ConfigurationError` with a message naming
    the problem, so the serve daemon can answer a bad ``submit`` with
    one error frame instead of dying.
    """
    try:
        if not isinstance(wire, dict):
            raise ConfigurationError(
                f"task payload must be a JSON object, got "
                f"{type(wire).__name__}"
            )
        kind = wire.get("kind")
        snc = tuple(SNCSpec(**dict(spec)) for spec in wire.get("snc", ()))
        for spec in snc:
            get_scheme(spec.scheme)  # KeyError on unregistered scheme
        integrity = tuple(IntegrityModelSpec(**dict(spec))
                          for spec in wire.get("integrity", ()))
        warmup, measure = wire["scale"]
        scale = SimulationScale(warmup_refs=int(warmup),
                                measure_refs=int(measure))
        seed = int(wire.get("seed", 1))
        if kind == "scenario":
            fields = dict(wire["source"])
            fields["workloads"] = tuple(fields.get("workloads", ()))
            strategy = wire["strategy"]
            SwitchStrategy(strategy)  # ValueError on a bad name
            return ScenarioTask(
                source=SourceSpec(**fields),
                snc_configs=snc,
                strategy=strategy,
                scale=scale,
                seed=seed,
                integrity=integrity,
            )
        if kind == "simulation":
            workload = wire["workload"]
            if workload not in BY_NAME:
                raise KeyError(f"unknown workload {workload!r}")
            return SimulationTask(
                workload=workload,
                snc_configs=snc,
                scale=scale,
                seed=seed,
                alt_l2=bool(wire.get("alt_l2", False)),
                integrity=integrity,
            )
        raise ConfigurationError(
            f"unknown task kind {kind!r} (simulation, scenario)"
        )
    except ConfigurationError:
        raise
    except (KeyError, TypeError, ValueError) as err:
        raise ConfigurationError(
            f"malformed task payload: {err}"
        ) from err

"""On-disk store for recorded event streams (phase 1 artifacts).

The record/replay engine (:mod:`repro.eval.record`) pays the dominant
per-reference cost — workload generation plus L2 simulation — once per
(source, scale, seed, L2 geometry).  This store persists that work across
runs, the way :mod:`repro.eval.cache` persists finished task results:

* one file per recording under ``root``, named by a SHA-256 over the
  record task's canonical configuration and a fingerprint of the
  *recording-relevant* modules only (workload generators, the tag-only
  cache, the recorder itself).  SNC, scheme, integrity and pricing code
  deliberately stay out of the fingerprint: recordings are
  configuration-independent, so an edit to Algorithm 1 must invalidate
  cached *results* (:data:`repro.eval.cache._FINGERPRINT_MODULES` covers
  that) but may keep replaying the same recorded stream — that reuse is
  the engine's whole point.  The serialization format version is *not*
  part of the key: a format bump maps the same record task to the same
  path, so the version check below detects the old file, discards it,
  and counts a **format upgrade** instead of a silent cold miss.
* the payload is stdlib-only: a JSON header (identity + measured
  aggregates) followed by the event stream as three concatenated typed
  columns — kinds (u8), line indices (u32 LE), aux (u16 LE) — compressed
  with ``gzip``.  The columnar planes mirror the in-memory
  :class:`~repro.eval.record.Recording` columns, decode straight into
  :mod:`array` buffers, and compress better than interleaved
  per-event records.
* **any** anomaly — truncated file, flipped bytes, wrong magic, a format
  bump, a CRC mismatch, an event-count mismatch — degrades to a miss:
  the corrupt file is discarded (best-effort unlink) and the caller
  re-records.  A stale or garbled recording is never replayed
  (``tests/eval/test_trace_store.py`` pins every one of these paths).
  The store counts what happened (``hits`` / ``misses`` /
  ``corrupt_discards`` / ``format_upgrades`` / ``put_errors``) so the
  runner summary can surface silent re-records.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import struct
import sys
import zlib
from array import array
from functools import lru_cache
from pathlib import Path

from repro.errors import ConfigurationError
from repro.eval.cache import fingerprint_of
from repro.eval.record import (
    AUX_TYPECODE,
    KIND_TYPECODE,
    LINE_TYPECODE,
    RecordedTask,
    Recording,
)

#: Bump when the on-disk layout changes; old recordings are discarded on
#: first touch and transparently re-recorded (a *format upgrade*).
#: Format 2: columnar event planes (v1 interleaved 7-byte records).
TRACE_FORMAT = 2

_MAGIC = b"RPRT"
_PREFIX_STRUCT = struct.Struct("<HI")  # format version, header length

#: Wire typecodes: exact u32/u16 element widths for the line and aux
#: planes (kinds are single bytes).
_U32_TYPECODE = next(tc for tc in "ILQ" if array(tc).itemsize == 4)
_U16_TYPECODE = next(tc for tc in "HIL" if array(tc).itemsize == 2)
#: Bytes per event across the three planes: 1 (kind) + 4 (line) + 2 (aux).
_EVENT_BYTES = 7


class TraceFormatError(ValueError):
    """A recording serialized under a different ``TRACE_FORMAT``.

    Distinguished from plain corruption so the store can count format
    upgrades (old recordings discarded after a version bump) separately
    from bit rot."""

    def __init__(self, found: int) -> None:
        super().__init__(f"format {found} != {TRACE_FORMAT}")
        self.found = found


#: Modules whose source determines what gets *recorded* (not how it is
#: priced or simulated downstream).
_FINGERPRINT_MODULES = (
    "repro.eval.record",
    "repro.memory.cache",
    "repro.workloads.patterns",
    "repro.workloads.sources",
    "repro.workloads.spec",
    "repro.workloads.tracegen",
)


@lru_cache(maxsize=1)
def record_fingerprint() -> str:
    """SHA-256 over the source of every recording-relevant module."""
    return fingerprint_of(_FINGERPRINT_MODULES)


def default_trace_dir() -> Path:
    """``$REPRO_TRACE_CACHE_DIR``, or ``~/.cache/repro-eval/traces``."""
    override = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-eval" / "traces"


def _pack_columns(recording: Recording) -> bytes:
    """The three event planes, narrowed to their wire widths and
    concatenated (kinds ‖ lines ‖ aux), little-endian."""
    try:
        lines = array(_U32_TYPECODE, recording.lines)
        aux = array(_U16_TYPECODE, recording.aux)
    except OverflowError as err:
        raise ConfigurationError(
            f"{recording.name}: an event field exceeds the trace format's "
            "range (line indices must fit 32 bits, owners/tasks 16)"
        ) from err
    if sys.byteorder == "big":
        lines.byteswap()
        aux.byteswap()
    return b"".join((
        recording.kinds.tobytes(), lines.tobytes(), aux.tobytes()
    ))


def _unpack_columns(packed: bytes, event_count: int,
                    ) -> tuple[array, array, array]:
    """The wire planes back as the in-memory column types."""
    kinds = array(KIND_TYPECODE)
    kinds.frombytes(packed[:event_count])
    lines_wire = array(_U32_TYPECODE)
    lines_wire.frombytes(packed[event_count:event_count * 5])
    aux_wire = array(_U16_TYPECODE)
    aux_wire.frombytes(packed[event_count * 5:])
    if sys.byteorder == "big":
        lines_wire.byteswap()
        aux_wire.byteswap()
    return (kinds, array(LINE_TYPECODE, lines_wire),
            array(AUX_TYPECODE, aux_wire))


def recording_to_bytes(recording: Recording) -> bytes:
    """Serialize: magic, version, JSON header, gzip'd column planes."""
    header = {
        "name": recording.name,
        "tasks": [[task.xom_id, task.label, task.xom_slowdown_pct]
                  for task in recording.tasks],
        "warmup_refs": recording.warmup_refs,
        "measure_refs": recording.measure_refs,
        "seed": recording.seed,
        "l2_lines": recording.l2_lines,
        "l2_assoc": recording.l2_assoc,
        "read_misses": recording.read_misses,
        "allocate_misses": recording.allocate_misses,
        "writebacks": recording.writebacks,
        "read_misses_big_l2": recording.read_misses_big_l2,
        "allocate_misses_big_l2": recording.allocate_misses_big_l2,
        "task_read_misses": {
            str(xom_id): count
            for xom_id, count in recording.task_read_misses.items()
        },
        "event_count": recording.event_count,
    }
    packed = _pack_columns(recording)
    header["crc32"] = zlib.crc32(packed)
    header_bytes = json.dumps(header, sort_keys=True).encode()
    return b"".join((
        _MAGIC,
        _PREFIX_STRUCT.pack(TRACE_FORMAT, len(header_bytes)),
        header_bytes,
        gzip.compress(packed, compresslevel=1),
    ))


def recording_from_bytes(data: bytes) -> Recording:
    """Parse and *verify* a serialized recording.

    Raises ``ValueError`` on any anomaly — wrong magic, version skew
    (:class:`TraceFormatError`), truncation, garbled header, CRC or
    event-count mismatch — so callers (the store, a pool worker) can
    treat every failure mode uniformly.
    """
    prefix_end = len(_MAGIC) + _PREFIX_STRUCT.size
    if data[:len(_MAGIC)] != _MAGIC:
        raise ValueError("bad magic: not a recording")
    if len(data) < prefix_end:
        raise ValueError("truncated prefix")
    version, header_len = _PREFIX_STRUCT.unpack(
        data[len(_MAGIC):prefix_end]
    )
    if version != TRACE_FORMAT:
        raise TraceFormatError(version)
    header_end = prefix_end + header_len
    if len(data) < header_end:
        raise ValueError("truncated header")
    header = json.loads(data[prefix_end:header_end])
    packed = gzip.decompress(data[header_end:])
    event_count = header["event_count"]
    if len(packed) != event_count * _EVENT_BYTES:
        raise ValueError(
            f"event payload holds {len(packed)} bytes, expected "
            f"{event_count} events"
        )
    if zlib.crc32(packed) != header["crc32"]:
        raise ValueError("event payload CRC mismatch")
    kinds, lines, aux = _unpack_columns(packed, event_count)
    return Recording(
        name=header["name"],
        tasks=tuple(
            RecordedTask(xom_id, label, slowdown)
            for xom_id, label, slowdown in header["tasks"]
        ),
        warmup_refs=header["warmup_refs"],
        measure_refs=header["measure_refs"],
        seed=header["seed"],
        l2_lines=header["l2_lines"],
        l2_assoc=header["l2_assoc"],
        read_misses=header["read_misses"],
        allocate_misses=header["allocate_misses"],
        writebacks=header["writebacks"],
        read_misses_big_l2=header["read_misses_big_l2"],
        allocate_misses_big_l2=header["allocate_misses_big_l2"],
        task_read_misses={
            int(xom_id): count
            for xom_id, count in header["task_read_misses"].items()
        },
        kinds=kinds,
        lines=lines,
        aux=aux,
    )


class TraceStore:
    """One recording file per record task under ``root``.

    Same discipline as :class:`~repro.eval.cache.ResultCache`: reads miss
    on any anomaly (and discard the offending file), writes are atomic
    (tmp + rename) and best-effort — an unwritable store must never abort
    a run whose recording already succeeded.

    Every outcome is counted: ``hits``, ``misses`` (every way a get can
    fail), ``corrupt_discards`` (a file existed but did not verify),
    ``format_upgrades`` (the subset of discards caused by a
    ``TRACE_FORMAT`` skew — old recordings after a bump) and
    ``put_errors``.  :func:`repro.eval.report.format_trace_stats`
    renders them in the runner summary.
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_trace_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt_discards = 0
        self.format_upgrades = 0
        self.put_errors = 0

    def key_for(self, record_task) -> str:
        digest = hashlib.sha256()
        digest.update(f"code:{record_fingerprint()}\n".encode())
        digest.update(f"task:{record_task.config_hash()}\n".encode())
        return digest.hexdigest()

    def path_for(self, record_task) -> Path:
        return self.root / f"{self.key_for(record_task)}.trace"

    def get_entry(self, record_task) -> tuple[Recording, bytes] | None:
        """The verified recording *and* its wire payload.

        The payload comes back so callers shipping recordings to pool
        workers (:mod:`repro.eval.scheduler`) never re-serialize what
        the store just read and verified."""
        path = self.path_for(record_task)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            recording = recording_from_bytes(data)
        except Exception as err:
            # Corrupt (truncated, garbled, version skew, bad gzip/CRC):
            # discard so a stale file can never shadow the re-recorded
            # stream, then report a miss — the caller re-records.
            self.misses += 1
            self.corrupt_discards += 1
            if isinstance(err, TraceFormatError):
                self.format_upgrades += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return recording, data

    def get(self, record_task) -> Recording | None:
        entry = self.get_entry(record_task)
        return None if entry is None else entry[0]

    def put(self, record_task, recording: Recording | None = None, *,
            payload: bytes | None = None) -> bytes | None:
        """Persist a recording, given as the object, its wire
        ``payload``, or both (a caller that already serialized — a pool
        worker's return value — should pass the payload so it is not
        packed twice).

        Returns the payload written so the caller can reuse the wire
        form (e.g. to ship to replay workers) instead of serializing the
        same recording again; ``None`` if serialization failed."""
        if payload is None:
            try:
                payload = recording_to_bytes(recording)
            except ConfigurationError:
                self.put_errors += 1
                return None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.path_for(record_task)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError:
            self.put_errors += 1
        return payload

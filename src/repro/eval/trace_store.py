"""On-disk store for recorded event streams (phase 1 artifacts).

The record/replay engine (:mod:`repro.eval.record`) pays the dominant
per-reference cost — workload generation plus L2 simulation — once per
(source, scale, seed, L2 geometry).  This store persists that work across
runs, the way :mod:`repro.eval.cache` persists finished task results:

* one file per recording under ``root``, named by a SHA-256 over the
  record task's canonical configuration and a fingerprint of the
  *recording-relevant* modules only (workload generators, the tag-only
  cache, the recorder itself).  SNC, scheme, integrity and pricing code
  deliberately stay out of the fingerprint: recordings are
  configuration-independent, so an edit to Algorithm 1 must invalidate
  cached *results* (:data:`repro.eval.cache._FINGERPRINT_MODULES` covers
  that) but may keep replaying the same recorded stream — that reuse is
  the engine's whole point.  The serialization format version is *not*
  part of the key: a format bump maps the same record task to the same
  path, so the version check below detects the old file, discards it,
  and counts a **format upgrade** instead of a silent cold miss.
* the payload is stdlib-only: a JSON header (identity + measured
  aggregates) followed by the event stream as three concatenated typed
  columns — kinds (u8), line indices (u32 LE), aux (u16 LE) — compressed
  with ``gzip``.  The columnar planes mirror the in-memory
  :class:`~repro.eval.record.Recording` columns, decode straight into
  :mod:`array` buffers, and compress better than interleaved
  per-event records.
* **any** anomaly — truncated file, flipped bytes, wrong magic, a format
  bump, a CRC mismatch, an event-count mismatch — degrades to a miss:
  the corrupt file is discarded (best-effort unlink) and the caller
  re-records.  A stale or garbled recording is never replayed
  (``tests/eval/test_trace_store.py`` pins every one of these paths).
  The store counts what happened (``hits`` / ``misses`` /
  ``corrupt_discards`` / ``format_upgrades`` / ``put_errors``) so the
  runner summary can surface silent re-records.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import struct
import sys
import zlib
from array import array
from functools import lru_cache
from pathlib import Path

from repro.errors import ConfigurationError
from repro.eval.cache import atomic_write_bytes, fingerprint_of
from repro.eval.record import (
    AUX_TYPECODE,
    KIND_TYPECODE,
    LINE_TYPECODE,
    RecordedTask,
    Recording,
)

#: Bump when the on-disk layout changes; old recordings are discarded on
#: first touch and transparently re-recorded (a *format upgrade*).
#: Format 2: columnar event planes (v1 interleaved 7-byte records).
TRACE_FORMAT = 2

_MAGIC = b"RPRT"
#: Magic of the *raw* (uncompressed) sibling format used for zero-copy
#: shipping through shared memory — same header, same column planes,
#: no gzip, so a mapped buffer decodes without a decompress pass.
_RAW_MAGIC = b"RPRW"
_PREFIX_STRUCT = struct.Struct("<HI")  # format version, header length

#: Wire typecodes: exact u32/u16 element widths for the line and aux
#: planes (kinds are single bytes).
_U32_TYPECODE = next(tc for tc in "ILQ" if array(tc).itemsize == 4)
_U16_TYPECODE = next(tc for tc in "HIL" if array(tc).itemsize == 2)
#: Bytes per event across the three planes: 1 (kind) + 4 (line) + 2 (aux).
_EVENT_BYTES = 7


class TraceFormatError(ValueError):
    """A recording serialized under a different ``TRACE_FORMAT``.

    Distinguished from plain corruption so the store can count format
    upgrades (old recordings discarded after a version bump) separately
    from bit rot."""

    def __init__(self, found: int) -> None:
        super().__init__(f"format {found} != {TRACE_FORMAT}")
        self.found = found


#: Modules whose source determines what gets *recorded* (not how it is
#: priced or simulated downstream).
_FINGERPRINT_MODULES = (
    "repro.eval.record",
    "repro.memory.cache",
    "repro.workloads.patterns",
    "repro.workloads.sources",
    "repro.workloads.spec",
    "repro.workloads.tracegen",
)


@lru_cache(maxsize=1)
def record_fingerprint() -> str:
    """SHA-256 over the source of every recording-relevant module."""
    return fingerprint_of(_FINGERPRINT_MODULES)


def default_trace_dir() -> Path:
    """``$REPRO_TRACE_CACHE_DIR``, or ``~/.cache/repro-eval/traces``."""
    override = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-eval" / "traces"


def _pack_columns(recording: Recording) -> bytes:
    """The three event planes, narrowed to their wire widths and
    concatenated (kinds ‖ lines ‖ aux), little-endian."""
    try:
        lines = array(_U32_TYPECODE, recording.lines)
        aux = array(_U16_TYPECODE, recording.aux)
    except OverflowError as err:
        raise ConfigurationError(
            f"{recording.name}: an event field exceeds the trace format's "
            "range (line indices must fit 32 bits, owners/tasks 16)"
        ) from err
    if sys.byteorder == "big":
        lines.byteswap()
        aux.byteswap()
    return b"".join((
        recording.kinds.tobytes(), lines.tobytes(), aux.tobytes()
    ))


def _unpack_columns(packed, event_count: int,
                    ) -> tuple[array, array, array]:
    """The wire planes back as the in-memory column types.

    ``packed`` may be any buffer (bytes or a memoryview over a mapped
    shared-memory segment); every slice is explicitly bounded so a
    page-padded buffer never bleeds garbage into the aux plane."""
    kinds = array(KIND_TYPECODE)
    kinds.frombytes(packed[:event_count])
    lines_wire = array(_U32_TYPECODE)
    lines_wire.frombytes(packed[event_count:event_count * 5])
    aux_wire = array(_U16_TYPECODE)
    aux_wire.frombytes(packed[event_count * 5:event_count * _EVENT_BYTES])
    if sys.byteorder == "big":
        lines_wire.byteswap()
        aux_wire.byteswap()
    return (kinds, array(LINE_TYPECODE, lines_wire),
            array(AUX_TYPECODE, aux_wire))


def _header_bytes(recording: Recording, packed: bytes) -> bytes:
    """The canonical JSON header (identity, measured aggregates, event
    count, CRC over the packed planes) shared by the gzip wire format
    and the raw shared-memory format."""
    header = {
        "name": recording.name,
        "tasks": [[task.xom_id, task.label, task.xom_slowdown_pct]
                  for task in recording.tasks],
        "warmup_refs": recording.warmup_refs,
        "measure_refs": recording.measure_refs,
        "seed": recording.seed,
        "l2_lines": recording.l2_lines,
        "l2_assoc": recording.l2_assoc,
        "read_misses": recording.read_misses,
        "allocate_misses": recording.allocate_misses,
        "writebacks": recording.writebacks,
        "read_misses_big_l2": recording.read_misses_big_l2,
        "allocate_misses_big_l2": recording.allocate_misses_big_l2,
        "task_read_misses": {
            str(xom_id): count
            for xom_id, count in recording.task_read_misses.items()
        },
        "event_count": recording.event_count,
    }
    header["crc32"] = zlib.crc32(packed)
    return json.dumps(header, sort_keys=True).encode()


def recording_to_bytes(recording: Recording) -> bytes:
    """Serialize: magic, version, JSON header, gzip'd column planes."""
    packed = _pack_columns(recording)
    header_bytes = _header_bytes(recording, packed)
    return b"".join((
        _MAGIC,
        _PREFIX_STRUCT.pack(TRACE_FORMAT, len(header_bytes)),
        header_bytes,
        # mtime=0 keeps the payload a pure function of the recording, so
        # byte-equality checks (CI's block-vs-reference compare, the
        # serial/parallel parity steps) see identical files, not a
        # timestamp diff.
        gzip.compress(packed, compresslevel=1, mtime=0),
    ))


def recording_to_raw(recording: Recording) -> bytes:
    """Serialize to the *raw* (uncompressed) shipping format: same
    header and column planes as the wire format, no gzip — the form
    published in shared memory, where compression buys nothing and a
    decompress pass per worker is exactly the cost being avoided."""
    packed = _pack_columns(recording)
    header_bytes = _header_bytes(recording, packed)
    return b"".join((
        _RAW_MAGIC,
        _PREFIX_STRUCT.pack(TRACE_FORMAT, len(header_bytes)),
        header_bytes,
        packed,
    ))


def _split_prefix(data, magic: bytes) -> tuple[int, int]:
    """Validate ``magic`` + version, returning (header start, header
    end).  ``data`` may be any buffer."""
    prefix_end = len(magic) + _PREFIX_STRUCT.size
    if bytes(data[:len(magic)]) != magic:
        raise ValueError("bad magic: not a recording")
    if len(data) < prefix_end:
        raise ValueError("truncated prefix")
    version, header_len = _PREFIX_STRUCT.unpack(
        data[len(magic):prefix_end]
    )
    if version != TRACE_FORMAT:
        raise TraceFormatError(version)
    header_end = prefix_end + header_len
    if len(data) < header_end:
        raise ValueError("truncated header")
    return prefix_end, header_end


def _verify_packed(header: dict, packed) -> None:
    """The two integrity gates every deserialization path runs: the
    packed planes hold exactly ``event_count`` events and their CRC
    matches the header's."""
    event_count = header["event_count"]
    if len(packed) != event_count * _EVENT_BYTES:
        raise ValueError(
            f"event payload holds {len(packed)} bytes, expected "
            f"{event_count} events"
        )
    if zlib.crc32(packed) != header["crc32"]:
        raise ValueError("event payload CRC mismatch")


def _split_wire(data: bytes) -> tuple[bytes, dict, bytes]:
    """Parse and verify the gzip wire format without building the
    recording's column arrays: ``(header_bytes, header, packed)``.

    This is the cheap half of :func:`recording_from_bytes` —
    :func:`raw_from_wire` uses it to repackage a verified store payload
    for shared memory without paying the array decode."""
    prefix_end, header_end = _split_prefix(data, _MAGIC)
    header = json.loads(data[prefix_end:header_end])
    packed = gzip.decompress(data[header_end:])
    _verify_packed(header, packed)
    return data[prefix_end:header_end], header, packed


def raw_from_wire(payload: bytes) -> bytes:
    """A verified gzip wire payload repackaged as the raw shipping
    format (decompress + verify only — no array building)."""
    header_bytes, _, packed = _split_wire(payload)
    return b"".join((
        _RAW_MAGIC,
        _PREFIX_STRUCT.pack(TRACE_FORMAT, len(header_bytes)),
        header_bytes,
        packed,
    ))


def _recording_from_parts(header: dict, packed) -> Recording:
    kinds, lines, aux = _unpack_columns(packed, header["event_count"])
    return Recording(
        name=header["name"],
        tasks=tuple(
            RecordedTask(xom_id, label, slowdown)
            for xom_id, label, slowdown in header["tasks"]
        ),
        warmup_refs=header["warmup_refs"],
        measure_refs=header["measure_refs"],
        seed=header["seed"],
        l2_lines=header["l2_lines"],
        l2_assoc=header["l2_assoc"],
        read_misses=header["read_misses"],
        allocate_misses=header["allocate_misses"],
        writebacks=header["writebacks"],
        read_misses_big_l2=header["read_misses_big_l2"],
        allocate_misses_big_l2=header["allocate_misses_big_l2"],
        task_read_misses={
            int(xom_id): count
            for xom_id, count in header["task_read_misses"].items()
        },
        kinds=kinds,
        lines=lines,
        aux=aux,
    )


def recording_from_bytes(data: bytes) -> Recording:
    """Parse and *verify* a serialized recording.

    Raises ``ValueError`` on any anomaly — wrong magic, version skew
    (:class:`TraceFormatError`), truncation, garbled header, CRC or
    event-count mismatch — so callers (the store, a pool worker) can
    treat every failure mode uniformly.
    """
    _, header, packed = _split_wire(data)
    return _recording_from_parts(header, packed)


def recording_from_raw(buf) -> Recording:
    """Parse and verify a recording in the raw shipping format.

    ``buf`` may be any buffer — in particular a ``memoryview`` over a
    mapped shared-memory segment, in which case the column arrays are
    filled straight from the mapping (no pickle, no decompress, no
    intermediate copy of the payload).  The same CRC and event-count
    gates apply as for the wire format: a torn or garbled segment
    raises rather than replaying garbage.
    """
    prefix_end, header_end = _split_prefix(buf, _RAW_MAGIC)
    header = json.loads(bytes(buf[prefix_end:header_end]))
    packed = buf[header_end:]
    expected = header["event_count"] * _EVENT_BYTES
    if len(packed) < expected:
        raise ValueError(
            f"event payload holds {len(packed)} bytes, expected "
            f"{header['event_count']} events"
        )
    packed = packed[:expected]
    _verify_packed(header, packed)
    return _recording_from_parts(header, packed)


class TraceStore:
    """One recording file per record task under ``root``.

    Same discipline as :class:`~repro.eval.cache.ResultCache`: reads miss
    on any anomaly (and discard the offending file), writes are atomic
    (tmp + rename) and best-effort — an unwritable store must never abort
    a run whose recording already succeeded.

    Every outcome is counted: ``hits``, ``misses`` (every way a get can
    fail), ``corrupt_discards`` (a file existed but did not verify),
    ``format_upgrades`` (the subset of discards caused by a
    ``TRACE_FORMAT`` skew — old recordings after a bump) and
    ``put_errors``.  :func:`repro.eval.report.format_trace_stats`
    renders them in the runner summary.
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_trace_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt_discards = 0
        self.format_upgrades = 0
        self.put_errors = 0
        # Timing telemetry the scheduler feeds per run (not persisted):
        # what the cold half (record passes) and the warm half (replay
        # pricing) actually cost, for the runner's summary line.
        self.records = 0
        self.record_refs = 0
        self.record_seconds = 0.0
        self.tasks_priced = 0
        self.price_seconds = 0.0
        self.price_passes = 0
        self.price_shards = 0

    def note_record(self, total_refs: int, seconds: float) -> None:
        """Count one completed record pass of ``total_refs`` references."""
        self.records += 1
        self.record_refs += total_refs
        self.record_seconds += seconds

    def note_priced(self, tasks: int, seconds: float,
                    shards: int = 0) -> None:
        """Count ``tasks`` simulation tasks priced by replay.

        Batch passes also report ``shards`` — how many lane shards the
        group's pass was split into (1 when it ran whole).  The summary
        line surfaces sharding only when some pass split
        (``price_shards > price_passes``); the per-event path passes no
        shard count at all."""
        self.tasks_priced += tasks
        self.price_seconds += seconds
        if shards:
            self.price_passes += 1
            self.price_shards += shards

    def key_for(self, record_task) -> str:
        digest = hashlib.sha256()
        digest.update(f"code:{record_fingerprint()}\n".encode())
        digest.update(f"task:{record_task.config_hash()}\n".encode())
        return digest.hexdigest()

    def path_for(self, record_task) -> Path:
        return self.root / f"{self.key_for(record_task)}.trace"

    def get_entry(self, record_task) -> tuple[Recording, bytes] | None:
        """The verified recording *and* its wire payload.

        The payload comes back so callers shipping recordings to pool
        workers (:mod:`repro.eval.scheduler`) never re-serialize what
        the store just read and verified."""
        path = self.path_for(record_task)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            recording = recording_from_bytes(data)
        except Exception as err:
            # Corrupt (truncated, garbled, version skew, bad gzip/CRC):
            # discard so a stale file can never shadow the re-recorded
            # stream, then report a miss — the caller re-records.
            self.misses += 1
            self.corrupt_discards += 1
            if isinstance(err, TraceFormatError):
                self.format_upgrades += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return recording, data

    def get(self, record_task) -> Recording | None:
        entry = self.get_entry(record_task)
        return None if entry is None else entry[0]

    def get_payload(self, record_task) -> bytes | None:
        """The verified wire payload alone — no column arrays built.

        The scheduler's fan-out path ships store hits to pool workers
        as-is, so the parent never needs the decoded object; this skips
        the array decode :meth:`get_entry` pays (each worker decodes its
        own copy once, into its recording LRU).  Verification is not
        skipped: the CRC and event-count gates run here exactly as they
        do for a full read, and a file that fails them is discarded and
        reported as a miss."""
        path = self.path_for(record_task)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            _split_wire(data)
        except Exception as err:
            self.misses += 1
            self.corrupt_discards += 1
            if isinstance(err, TraceFormatError):
                self.format_upgrades += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return data

    def put(self, record_task, recording: Recording | None = None, *,
            payload: bytes | None = None) -> bytes | None:
        """Persist a recording, given as the object, its wire
        ``payload``, or both (a caller that already serialized — a pool
        worker's return value — should pass the payload so it is not
        packed twice).

        Returns the payload written so the caller can reuse the wire
        form (e.g. to ship to replay workers) instead of serializing the
        same recording again; ``None`` if serialization failed."""
        if payload is None:
            try:
                payload = recording_to_bytes(recording)
            except ConfigurationError:
                self.put_errors += 1
                return None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(self.path_for(record_task), payload)
        except OSError:
            self.put_errors += 1
        return payload

"""One driver per figure of the paper's evaluation (§5).

Each figure contributes two things:

* a **job declaration** — :func:`figure_jobs` emits one
  :class:`~repro.eval.jobs.ExperimentJob` per benchmark naming exactly the
  SNC configurations that figure prices (:data:`FIGURE_SNC_KEYS`), the
  registered protection schemes it prices them through
  (:data:`FIGURE_SCHEMES`), and whether it needs the Figure 8 alternate
  L2 (:data:`FIGURES_NEEDING_ALT_L2`) — so the scheduler can merge, cache
  and fan out the simulations and skip what nobody asked for;
* a ``figureN`` **pricing function** that takes the per-benchmark event
  sets and returns a :class:`FigureResult` pairing the paper's published
  series with the reproduced ones.  All pricing resolves through the
  scheme registry (:func:`repro.secure.schemes.get_scheme`); the figure
  bodies only say *which* scheme and SNC key each series uses.  The
  benchmark files in ``benchmarks/`` print these tables; EXPERIMENTS.md
  archives them.

The §4.3 multi-programmed scenarios follow the same declare/price split:
:func:`scenario_jobs` emits :class:`~repro.eval.jobs.ScenarioJob` entries
(strategy x scheme x SNC geometry over one workload mix),
:func:`run_scenarios` schedules them through the same task
scheduler/cache, and :func:`scenario_slowdowns` prices each scheme
against the insecure baseline — see ``docs/scenarios.md``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.eval import paper_data
from repro.eval.cache import ResultCache
from repro.eval.jobs import (
    ExperimentJob,
    IntegrityModelSpec,
    ScenarioJob,
    SNCSpec,
    SourceSpec,
    merge_scenario_jobs,
    standard_snc_specs,
)
from repro.eval.pipeline import BenchmarkEvents, SimulationScale
from repro.eval.scheduler import Progress, run_jobs, run_tasks
from repro.eval.trace_store import TraceStore
from repro.secure.engine import LatencyParams
from repro.secure.schemes import get_scheme
from repro.timing.model import (
    normalized_time,
    slowdown_pct,
    snc_traffic_pct,
)
from repro.workloads.spec import BENCHMARKS

#: The paper's two crypto-latency configurations.
PAPER_LATENCIES = LatencyParams(memory=100, crypto=50, xor=1)
SLOW_CRYPTO_LATENCIES = LatencyParams(memory=100, crypto=102, xor=1)

#: Which SNC configurations each figure prices (keys into
#: :func:`repro.eval.jobs.standard_snc_specs`).
FIGURE_SNC_KEYS: dict[str, tuple[str, ...]] = {
    "figure3": (),
    "figure5": ("norepl64", "lru64"),
    "figure6": ("lru32", "lru64", "lru128"),
    "figure7": ("lru64", "lru64_32way"),
    "figure8": ("lru64_32way",),
    "figure9": ("lru64",),
    "figure10": ("norepl64", "lru64"),
}

#: Which registered protection schemes each figure prices.  (The baseline
#: is always priced too — it is every figure's denominator.)
FIGURE_SCHEMES: dict[str, tuple[str, ...]] = {
    "figure3": ("xom",),
    "figure5": ("xom", "otp"),
    "figure6": ("otp",),
    "figure7": ("otp",),
    "figure8": ("xom", "otp"),
    "figure9": ("otp",),
    "figure10": ("xom", "otp"),
}

#: Figures that price the 384KB alternate L2; everyone else's simulation
#: skips that cache entirely.
FIGURES_NEEDING_ALT_L2 = frozenset({"figure8"})


def figure_jobs(figure_id: str, scale: SimulationScale | None = None,
                seed: int = 1) -> list[ExperimentJob]:
    """One job per benchmark: what ``figure_id`` needs simulated."""
    if figure_id not in FIGURE_SNC_KEYS:
        raise KeyError(f"unknown figure {figure_id!r}")
    specs = standard_snc_specs()
    snc = tuple(specs[key] for key in FIGURE_SNC_KEYS[figure_id])
    scale = scale or SimulationScale()
    return [
        ExperimentJob(
            figure=figure_id,
            schemes=FIGURE_SCHEMES[figure_id],
            workload=bench.name,
            snc_configs=snc,
            scale=scale,
            seed=seed,
            alt_l2=figure_id in FIGURES_NEEDING_ALT_L2,
        )
        for bench in BENCHMARKS
    ]


def plan_jobs(figure_ids: Iterable[str] | None = None,
              scale: SimulationScale | None = None,
              seed: int = 1) -> list[ExperimentJob]:
    """Every selected figure's jobs (default: all seven figures)."""
    if figure_ids is None:
        figure_ids = FIGURE_SNC_KEYS
    jobs: list[ExperimentJob] = []
    for figure_id in figure_ids:
        jobs.extend(figure_jobs(figure_id, scale=scale, seed=seed))
    return jobs


def run_all_benchmarks(scale: SimulationScale | None = None,
                       seed: int = 1, n_jobs: int = 1,
                       cache: ResultCache | None = None,
                       progress: Progress | None = None,
                       backend: str = "fused",
                       trace_store: TraceStore | None = None,
                       pool: str = "persistent",
                       ) -> dict[str, BenchmarkEvents]:
    """Simulate all 11 benchmarks once; every figure prices these events.

    Declares the union of every figure's jobs and hands them to the
    scheduler, so callers get parallelism (``n_jobs``/``pool``), result
    caching and the record/replay backend (``backend``/``trace_store``)
    for free while ``n_jobs=1`` stays bit-identical to the historical
    serial loop.
    """
    return run_jobs(plan_jobs(scale=scale, seed=seed), n_jobs=n_jobs,
                    cache=cache, progress=progress, backend=backend,
                    trace_store=trace_store, pool=pool)


@dataclass
class Series:
    """One line/bar group of a figure: paper values vs measured values."""

    label: str
    paper: dict[str, float]
    measured: dict[str, float]
    paper_avg: float

    @property
    def measured_avg(self) -> float:
        values = list(self.measured.values())
        return sum(values) / len(values) if values else 0.0


@dataclass
class FigureResult:
    """A reproduced figure: id, caption, and its series."""

    figure_id: str
    caption: str
    unit: str
    series: list[Series] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(label)


def _pricer(scheme_key: str, snc_key: str | None = None,
            alt_l2: bool = False, integrity_key: str | None = None):
    """A (events, latencies) -> cycles closure from the scheme registry."""
    spec = get_scheme(scheme_key)

    def price(events_one: BenchmarkEvents, lat: LatencyParams) -> float:
        return spec.price(
            events_one.trace_events(snc_key, alt_l2=alt_l2,
                                    integrity_key=integrity_key), lat
        )

    return price


_baseline = _pricer("baseline")


def _slowdowns(events: dict[str, BenchmarkEvents], pricer,
               lat: LatencyParams) -> dict[str, float]:
    out = {}
    for name, bench_events in events.items():
        base = _baseline(bench_events, lat)
        out[name] = slowdown_pct(pricer(bench_events, lat), base)
    return out


def figure3(events: dict[str, BenchmarkEvents]) -> FigureResult:
    """XOM slowdown per benchmark (the calibration anchor)."""
    result = FigureResult(
        "figure3",
        "Performance loss due to serial encryption/decryption (XOM)",
        "slowdown [%]",
    )
    result.series.append(Series(
        "XOM", paper_data.FIGURE3_XOM,
        _slowdowns(events, _pricer("xom"), PAPER_LATENCIES),
        paper_data.FIGURE3_XOM_AVG,
    ))
    return result


def figure5(events: dict[str, BenchmarkEvents]) -> FigureResult:
    """XOM vs SNC-NoRepl vs SNC-LRU (64KB SNC)."""
    result = FigureResult(
        "figure5",
        "Performance comparison for XOM, SNC with LRU and no replacement",
        "slowdown [%]",
    )
    result.series.append(Series(
        "XOM", paper_data.FIGURE3_XOM,
        _slowdowns(events, _pricer("xom"), PAPER_LATENCIES),
        paper_data.FIGURE3_XOM_AVG,
    ))
    result.series.append(Series(
        "SNC-NoRepl", paper_data.FIGURE5_SNC_NOREPL,
        _slowdowns(events, _pricer("otp", "norepl64"), PAPER_LATENCIES),
        paper_data.FIGURE5_SNC_NOREPL_AVG,
    ))
    result.series.append(Series(
        "SNC-LRU", paper_data.FIGURE5_SNC_LRU,
        _slowdowns(events, _pricer("otp", "lru64"), PAPER_LATENCIES),
        paper_data.FIGURE5_SNC_LRU_AVG,
    ))
    return result


def figure6(events: dict[str, BenchmarkEvents]) -> FigureResult:
    """SNC capacity sweep: 32KB / 64KB / 128KB, LRU."""
    result = FigureResult(
        "figure6", "Performance comparison for different sized SNC (LRU)",
        "slowdown [%]",
    )
    for label, key, paper, avg in (
        ("32KB", "lru32", paper_data.FIGURE6_SNC_32KB,
         paper_data.FIGURE6_SNC_32KB_AVG),
        ("64KB", "lru64", paper_data.FIGURE6_SNC_64KB,
         paper_data.FIGURE6_SNC_64KB_AVG),
        ("128KB", "lru128", paper_data.FIGURE6_SNC_128KB,
         paper_data.FIGURE6_SNC_128KB_AVG),
    ):
        result.series.append(Series(
            label, paper,
            _slowdowns(events, _pricer("otp", key), PAPER_LATENCIES), avg,
        ))
    return result


def figure7(events: dict[str, BenchmarkEvents]) -> FigureResult:
    """Fully associative vs 32-way set associative 64KB SNC."""
    result = FigureResult(
        "figure7",
        "Fully associative vs 32-way set associative SNC",
        "slowdown [%]",
    )
    result.series.append(Series(
        "fully-assoc", paper_data.FIGURE7_FULLY,
        _slowdowns(events, _pricer("otp", "lru64"), PAPER_LATENCIES),
        paper_data.FIGURE7_FULLY_AVG,
    ))
    result.series.append(Series(
        "32-way", paper_data.FIGURE7_32WAY,
        _slowdowns(events, _pricer("otp", "lru64_32way"), PAPER_LATENCIES),
        paper_data.FIGURE7_32WAY_AVG,
    ))
    return result


def figure8(events: dict[str, BenchmarkEvents]) -> FigureResult:
    """Equal-area comparison: bigger L2 for XOM vs L2 + SNC for OTP."""
    result = FigureResult(
        "figure8", "Impact of a larger L2 cache (area-equalized)",
        "normalized execution time",
    )
    lat = PAPER_LATENCIES
    price_xom = _pricer("xom")
    price_xom_big = _pricer("xom", alt_l2=True)
    price_snc = _pricer("otp", "lru64_32way")
    xom256, xom384, snc = {}, {}, {}
    for name, bench_events in events.items():
        base = _baseline(bench_events, lat)
        xom256[name] = normalized_time(price_xom(bench_events, lat), base)
        xom384[name] = normalized_time(price_xom_big(bench_events, lat),
                                       base)
        snc[name] = normalized_time(price_snc(bench_events, lat), base)
    result.series.append(Series(
        "XOM-256KL2", paper_data.FIGURE8_XOM_256K, xom256,
        paper_data.FIGURE8_XOM_256K_AVG,
    ))
    result.series.append(Series(
        "XOM-384KL2", paper_data.FIGURE8_XOM_384K, xom384,
        paper_data.FIGURE8_XOM_384K_AVG,
    ))
    result.series.append(Series(
        "SNC-32way-LRU-256KL2", paper_data.FIGURE8_SNC_32WAY_256K, snc,
        paper_data.FIGURE8_SNC_32WAY_256K_AVG,
    ))
    return result


def figure9(events: dict[str, BenchmarkEvents]) -> FigureResult:
    """SNC-induced additional memory traffic (64KB LRU SNC)."""
    result = FigureResult(
        "figure9", "SNC induced additional memory traffic",
        "% of L2<->memory traffic",
    )
    measured = {
        name: snc_traffic_pct(bench_events.trace_events("lru64"))
        for name, bench_events in events.items()
    }
    result.series.append(Series(
        "traffic", paper_data.FIGURE9_TRAFFIC, measured,
        paper_data.FIGURE9_TRAFFIC_AVG,
    ))
    return result


def figure10(events: dict[str, BenchmarkEvents]) -> FigureResult:
    """The 102-cycle crypto unit: same events, slower pipeline."""
    result = FigureResult(
        "figure10",
        "Performance with a longer encryption/decryption latency (102)",
        "slowdown [%]",
    )
    lat = SLOW_CRYPTO_LATENCIES
    result.series.append(Series(
        "XOM", paper_data.FIGURE10_XOM,
        _slowdowns(events, _pricer("xom"), lat),
        paper_data.FIGURE10_XOM_AVG,
    ))
    result.series.append(Series(
        "SNC-NoRepl", paper_data.FIGURE10_SNC_NOREPL,
        _slowdowns(events, _pricer("otp", "norepl64"), lat),
        paper_data.FIGURE10_SNC_NOREPL_AVG,
    ))
    result.series.append(Series(
        "SNC-LRU", paper_data.FIGURE10_SNC_LRU,
        _slowdowns(events, _pricer("otp", "lru64"), lat),
        paper_data.FIGURE10_SNC_LRU_AVG,
    ))
    return result


# --------------------------------------------------------------- scenarios

#: The §4.3 design-space defaults: both switch strategies, priced through
#: both SNC-bearing registered schemes.
SCENARIO_STRATEGIES = ("flush", "tag")
SCENARIO_SCHEMES = ("otp", "otp_split")


def scheme_config_key(scheme: str, snc_key: str = "lru64") -> str:
    """The SNC-config pricing key a scheme uses in scenario tables.

    The paper's own scheme keeps the standard geometry key; variants get
    a suffixed key so one task can simulate the same geometry under
    several schemes' state machines."""
    return snc_key if scheme == "otp" else f"{snc_key}+{scheme}"


def scenario_snc_specs(schemes: Iterable[str] = SCENARIO_SCHEMES,
                       snc_key: str = "lru64") -> tuple[SNCSpec, ...]:
    """One SNC spec per scheme, all sharing the ``snc_key`` geometry."""
    base = standard_snc_specs()[snc_key]
    return tuple(
        SNCSpec(
            key=scheme_config_key(scheme, snc_key),
            size_bytes=base.size_bytes,
            entry_bytes=base.entry_bytes,
            assoc=base.assoc,
            policy=base.policy,
            scheme=scheme,
        )
        for scheme in schemes
    )


def scenario_jobs(workloads: Sequence[str], quantum: int = 2000,
                  strategies: Iterable[str] | None = None,
                  schemes: tuple[str, ...] = SCENARIO_SCHEMES,
                  snc_keys: Iterable[str] = ("lru64",),
                  scale: SimulationScale | None = None,
                  seed: int = 1,
                  scenario: str = "context-switch") -> list[ScenarioJob]:
    """The §4.3 job matrix: one job per (strategy, SNC geometry) over one
    workload mix.

    ``strategies=None`` means :data:`SCENARIO_STRATEGIES` — except for a
    single workload name, which declares a no-switch scenario (the
    degenerate case the parity tests pin): with no switches the
    strategies are indistinguishable, so the default matrix collapses to
    TAG alone rather than simulating the identical run once per
    strategy.  An explicitly passed ``strategies`` is honored as given.
    """
    strategies = None if strategies is None else tuple(strategies)
    if len(workloads) == 1:
        source = SourceSpec(kind="benchmark", workloads=tuple(workloads))
        if strategies is None:
            strategies = ("tag",)
    else:
        source = SourceSpec(kind="multitask", workloads=tuple(workloads),
                            quantum=quantum)
        if strategies is None:
            strategies = SCENARIO_STRATEGIES
    scale = scale or SimulationScale()
    return [
        ScenarioJob(
            scenario=scenario,
            schemes=schemes,
            source=source,
            snc_configs=scenario_snc_specs(schemes, snc_key),
            strategy=strategy,
            scale=scale,
            seed=seed,
        )
        for strategy in strategies
        for snc_key in snc_keys
    ]


def run_scenario_tasks(jobs: list[ScenarioJob], n_jobs: int = 1,
                       cache: ResultCache | None = None,
                       progress: Progress | None = None,
                       backend: str = "fused",
                       trace_store: TraceStore | None = None,
                       pool: str = "persistent") -> list:
    """Merge and schedule scenario jobs, returning the raw
    :class:`~repro.eval.scheduler.TaskResult` list (for run stats);
    :func:`run_scenarios` is the indexed convenience wrapper."""
    tasks = merge_scenario_jobs(jobs)
    keys = [(task.source.label, task.strategy) for task in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError(
            "scenario jobs must resolve to one task per (source, "
            "strategy); mixed scales/seeds make the result mapping "
            "ambiguous (use merge_scenario_jobs + run_tasks directly)"
        )
    return run_tasks(tasks, n_jobs=n_jobs, cache=cache,
                     progress=progress, backend=backend,
                     trace_store=trace_store, pool=pool)


def index_scenario_results(results: list,
                           ) -> dict[tuple[str, str], BenchmarkEvents]:
    """Index :func:`run_scenario_tasks` results by (source label,
    strategy) — the keying every scenario table uses."""
    return {
        (result.task.source.label, result.task.strategy): result.events
        for result in results
    }


def run_scenarios(jobs: list[ScenarioJob], n_jobs: int = 1,
                  cache: ResultCache | None = None,
                  progress: Progress | None = None,
                  backend: str = "fused",
                  trace_store: TraceStore | None = None,
                  pool: str = "persistent",
                  ) -> dict[tuple[str, str], BenchmarkEvents]:
    """Merge, schedule and index scenario jobs: the scenario analogue of
    :func:`run_all_benchmarks`, returning events keyed by
    ``(source label, strategy)``."""
    return index_scenario_results(
        run_scenario_tasks(jobs, n_jobs=n_jobs, cache=cache,
                           progress=progress, backend=backend,
                           trace_store=trace_store, pool=pool)
    )


def scenario_slowdowns(events: BenchmarkEvents,
                       schemes: Iterable[str] = SCENARIO_SCHEMES,
                       snc_key: str = "lru64",
                       lat: LatencyParams = PAPER_LATENCIES,
                       ) -> dict[str, float]:
    """Each scheme's slowdown over the insecure baseline for one scenario
    run (the baseline pays the same compute and misses but no SNC or
    switch costs)."""
    base = _baseline(events, lat)
    out = {}
    for scheme in schemes:
        pricer = _pricer(scheme, scheme_config_key(scheme, snc_key))
        out[scheme] = slowdown_pct(pricer(events, lat), base)
    return out


# --------------------------------------------------------------- integrity

#: The integrity experiment's defaults: the paper's SNC geometry, and a
#: node-cache sweep bracketing Gassend et al.'s useful range.
INTEGRITY_SNC_KEY = "lru64"
INTEGRITY_NODE_CACHE_SIZES = (64, 256, 1024)
#: Representative workloads: SNC-friendly / SNC-hostile / in between.
INTEGRITY_WORKLOADS = ("art", "mcf", "equake")


def integrity_model_specs(
    node_cache_sizes: Sequence[int] = INTEGRITY_NODE_CACHE_SIZES,
) -> tuple[IntegrityModelSpec, ...]:
    """One spec per integrity column: MAC, the uncached tree, and one
    cached tree per node-cache size — all simulated in a single trace
    pass per workload."""
    specs = [
        IntegrityModelSpec(key="mac", provider="mac"),
        IntegrityModelSpec(key="tree", provider="hash_tree"),
    ]
    specs.extend(
        IntegrityModelSpec(
            key=f"tree_nc{entries}", provider="hash_tree_cached",
            node_cache_entries=entries,
        )
        for entries in node_cache_sizes
    )
    return tuple(specs)


def integrity_table_keys(
    node_cache_sizes: Sequence[int] = INTEGRITY_NODE_CACHE_SIZES,
) -> tuple[str, ...]:
    """The table's column order: the paper's configuration first, then
    MAC, then trees from most to least expensive."""
    return ("none", "mac", "tree") + tuple(
        f"tree_nc{entries}" for entries in node_cache_sizes
    )


def integrity_jobs(workloads: Sequence[str] = INTEGRITY_WORKLOADS,
                   node_cache_sizes: Sequence[int]
                   = INTEGRITY_NODE_CACHE_SIZES,
                   scale: SimulationScale | None = None,
                   seed: int = 1,
                   scheme: str = "otp",
                   snc_key: str = INTEGRITY_SNC_KEY) -> list[ExperimentJob]:
    """The slowdown-vs-node-cache-size experiment: one job per workload,
    declaring every integrity column over one SNC geometry.  Scheduled,
    merged and cached exactly like figure jobs."""
    specs = standard_snc_specs()
    scale = scale or SimulationScale()
    return [
        ExperimentJob(
            figure="integrity",
            schemes=(scheme,),
            workload=name,
            snc_configs=(specs[snc_key],),
            scale=scale,
            seed=seed,
            integrity=integrity_model_specs(node_cache_sizes),
        )
        for name in workloads
    ]


def run_integrity_sweep(workloads: Sequence[str] = INTEGRITY_WORKLOADS,
                        node_cache_sizes: Sequence[int]
                        = INTEGRITY_NODE_CACHE_SIZES,
                        scale: SimulationScale | None = None,
                        seed: int = 1, n_jobs: int = 1,
                        cache: ResultCache | None = None,
                        progress: Progress | None = None,
                        backend: str = "fused",
                        trace_store: TraceStore | None = None,
                        pool: str = "persistent",
                        ) -> dict[str, BenchmarkEvents]:
    """Declare, schedule and index the integrity experiment's events."""
    return run_jobs(
        integrity_jobs(workloads, node_cache_sizes, scale=scale,
                       seed=seed),
        n_jobs=n_jobs, cache=cache, progress=progress, backend=backend,
        trace_store=trace_store, pool=pool,
    )


def integrity_slowdowns(events: BenchmarkEvents,
                        keys: Iterable[str] | None = None,
                        scheme: str = "otp",
                        snc_key: str = INTEGRITY_SNC_KEY,
                        lat: LatencyParams = PAPER_LATENCIES,
                        ) -> dict[str, float]:
    """Slowdown over the insecure baseline for each integrity column of
    one workload's events (``"none"`` = the scheme with no verification,
    i.e. the paper's own number)."""
    base = _baseline(events, lat)
    if keys is None:
        keys = ("none", *sorted(events.integrity))
    out = {}
    for key in keys:
        pricer = _pricer(scheme, snc_key,
                         integrity_key=None if key == "none" else key)
        out[key] = slowdown_pct(pricer(events, lat), base)
    return out


ALL_FIGURES = (figure3, figure5, figure6, figure7, figure8, figure9,
               figure10)

FIGURES_BY_ID = {figure.__name__: figure for figure in ALL_FIGURES}


def run_everything(scale: SimulationScale | None = None,
                   seed: int = 1, n_jobs: int = 1,
                   cache: ResultCache | None = None,
                   backend: str = "fused",
                   trace_store: TraceStore | None = None,
                   pool: str = "persistent",
                   ) -> list[FigureResult]:
    """Simulate once, regenerate every figure."""
    events = run_all_benchmarks(scale=scale, seed=seed, n_jobs=n_jobs,
                                cache=cache, backend=backend,
                                trace_store=trace_store, pool=pool)
    return [figure(events) for figure in ALL_FIGURES]

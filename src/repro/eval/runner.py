"""Command-line entry point: regenerate the paper's figures.

Examples::

    python -m repro.eval                      # all figures, full scale
    python -m repro.eval --figures 5 10       # just Figures 5 and 10
    python -m repro.eval --scale quick        # fast smoke (short traces)
    python -m repro.eval --scale 100000:150000 --charts
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.charts import render_averages, render_chart
from repro.eval.experiments import (
    ALL_FIGURES,
    run_all_benchmarks,
)
from repro.eval.pipeline import QUICK_SCALE, SimulationScale
from repro.eval.report import format_figure, format_summary

_FIGURES_BY_NUMBER = {
    figure.__name__.removeprefix("figure"): figure for figure in ALL_FIGURES
}


def parse_scale(text: str) -> SimulationScale:
    if text == "full":
        return SimulationScale()
    if text == "quick":
        return QUICK_SCALE
    try:
        warmup, measure = (int(part) for part in text.split(":"))
        return SimulationScale(warmup_refs=warmup, measure_refs=measure)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"scale must be 'full', 'quick' or 'warmup:measure', got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description=(
            "Regenerate the evaluation figures of 'Fast Secure Processor "
            "for Inhibiting Software Piracy and Tampering' (MICRO-36 2003) "
            "and print paper-vs-measured tables."
        ),
    )
    parser.add_argument(
        "--figures", nargs="*", default=sorted(_FIGURES_BY_NUMBER),
        choices=sorted(_FIGURES_BY_NUMBER), metavar="N",
        help="which figures to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale", type=parse_scale, default=SimulationScale(),
        help="'full' (default), 'quick', or 'warmup:measure' reference "
             "counts",
    )
    parser.add_argument(
        "--charts", action="store_true",
        help="render ASCII bar charts in addition to the tables",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload seed (default 1)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    started = time.time()
    print(
        f"simulating 11 benchmarks "
        f"({args.scale.warmup_refs} warmup + {args.scale.measure_refs} "
        f"measured refs each)...",
        file=sys.stderr,
    )
    events = run_all_benchmarks(scale=args.scale, seed=args.seed)
    print(f"done in {time.time() - started:.1f}s\n", file=sys.stderr)
    results = []
    for number in args.figures:
        result = _FIGURES_BY_NUMBER[number](events)
        results.append(result)
        print(format_figure(result))
        print()
        if args.charts:
            print(render_averages(result))
            print()
    print(format_summary(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

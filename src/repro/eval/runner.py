"""Command-line entry point: regenerate the paper's figures.

Examples::

    python -m repro.eval                      # all figures, full scale
    python -m repro.eval --figures 5 10       # just Figures 5 and 10
    python -m repro.eval --scale quick        # fast smoke (short traces)
    python -m repro.eval --scale quick --jobs 4   # fan out 4 processes
    python -m repro.eval --jobs auto          # one worker per CPU,
                                              # capped by total lanes
    python -m repro.eval --pool spawn         # fresh pool per run
    python -m repro.eval --no-cache           # force re-simulation
    python -m repro.eval --backend fused      # the reference single-pass
    python -m repro.eval --no-trace-cache     # re-record event streams
    python -m repro.eval --scale 100000:150000 --charts
    python -m repro.eval serve --port 7203    # evaluation service daemon
    python -m repro.eval --server localhost:7203 --figures 5 10
                                              # run on the daemon's warm
                                              # pool and caches
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.eval.cache import ResultCache, default_cache_dir
from repro.eval.charts import render_averages
from repro.eval.client import EvalClient, parse_address
from repro.eval.experiments import (
    FIGURES_BY_ID,
    plan_jobs,
)
from repro.eval.jobs import merge_jobs
from repro.eval.pipeline import QUICK_SCALE, SimulationScale
from repro.eval.pool import pool_stats
from repro.eval.report import (
    format_client_stats,
    format_figure,
    format_pool_stats,
    format_run_stats,
    format_summary,
    format_trace_stats,
)
from repro.eval.scheduler import BACKENDS, POOLS, auto_jobs, run_tasks
from repro.eval.trace_store import TraceStore, default_trace_dir

_FIGURES_BY_NUMBER = {
    figure_id.removeprefix("figure"): figure
    for figure_id, figure in FIGURES_BY_ID.items()
}


def parse_scale(text: str) -> SimulationScale:
    if text == "full":
        return SimulationScale()
    if text == "quick":
        return QUICK_SCALE
    try:
        warmup, measure = (int(part) for part in text.split(":"))
        return SimulationScale(warmup_refs=warmup, measure_refs=measure)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"scale must be 'full', 'quick' or 'warmup:measure', got {text!r}"
        ) from None


#: What each backend does, for the ``--backend`` error message.
_BACKEND_SUMMARIES = {
    "fused": "reference single-pass simulation",
    "replay": "record once, batch-price all configs event-major",
    "replay-perevent": "record once, replay each task one event at "
                       "a time",
}


def parse_backend(text: str) -> str:
    """A ``--backend`` value, rejected with a menu rather than a bare
    'invalid choice' when it names no backend."""
    if text in BACKENDS:
        return text
    menu = "; ".join(
        f"'{name}' ({_BACKEND_SUMMARIES[name]})" for name in BACKENDS
    )
    raise argparse.ArgumentTypeError(
        f"unknown backend {text!r} — pick one of {menu}; all three "
        "produce byte-identical tables"
    )


def parse_jobs(text: str) -> int:
    """A ``--jobs`` value: a worker count, or ``auto`` — rejected with
    a menu rather than a bare 'invalid int'.  ``auto`` parses to the
    sentinel ``0``: the real count depends on the planned tasks (one
    worker per CPU, capped by their total lane count —
    :func:`repro.eval.scheduler.auto_jobs`), so :func:`main` resolves
    it once the task list exists."""
    if text == "auto":
        return 0
    try:
        jobs = int(text)
    except ValueError:
        jobs = 0
    if jobs >= 1:
        return jobs
    raise argparse.ArgumentTypeError(
        f"invalid --jobs value {text!r} — pick a worker count >= 1, or "
        f"'auto' (one worker per CPU, up to {os.cpu_count() or 1} here, "
        "never more than the run's total pricing lanes)"
    )


#: What each pool mode does, for the ``--pool`` error message.
_POOL_SUMMARIES = {
    "persistent": "warm process-wide workers reused across runs, "
                  "shared-memory recording shipping",
    "spawn": "a fresh pool per run (the historical baseline)",
}


def parse_pool(text: str) -> str:
    """A ``--pool`` value, rejected with a menu rather than a bare
    'invalid choice' when it names no pool mode."""
    if text in POOLS:
        return text
    menu = "; ".join(
        f"'{name}' ({_POOL_SUMMARIES[name]})" for name in POOLS
    )
    raise argparse.ArgumentTypeError(
        f"unknown pool {text!r} — pick one of {menu}; both produce "
        "byte-identical tables"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description=(
            "Regenerate the evaluation figures of 'Fast Secure Processor "
            "for Inhibiting Software Piracy and Tampering' (MICRO-36 2003) "
            "and print paper-vs-measured tables."
        ),
    )
    parser.add_argument(
        "--figures", nargs="*", default=sorted(_FIGURES_BY_NUMBER),
        choices=sorted(_FIGURES_BY_NUMBER), metavar="N",
        help="which figures to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale", type=parse_scale, default=SimulationScale(),
        help="'full' (default), 'quick', or 'warmup:measure' reference "
             "counts",
    )
    parser.add_argument(
        "--jobs", type=parse_jobs, default=1, metavar="N|auto",
        help="worker processes for the simulation fan-out (default 1: "
             "serial, bit-identical to the historical path; 'auto' "
             "uses one worker per CPU, capped by the run's total "
             "pricing-lane count)",
    )
    parser.add_argument(
        "--pool", type=parse_pool, default="persistent",
        metavar="|".join(POOLS),
        help="how parallel workers are hosted: 'persistent' (default) "
             "reuses warm process-wide workers and ships recordings "
             "through shared memory; 'spawn' builds a fresh pool per "
             "run (both byte-identical; ignored when --jobs is 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the on-disk result cache and re-simulate everything",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help=f"result cache location (default {default_cache_dir()})",
    )
    parser.add_argument(
        "--backend", type=parse_backend, default="replay",
        metavar="|".join(BACKENDS),
        help="how events are produced: 'replay' (default) records each "
             "workload's L2 event stream once and batch-prices every "
             "configuration in one event-major pass; 'replay-perevent' "
             "replays the stream per task through the reference "
             "per-event loop; 'fused' is the reference single-pass "
             "path (all three produce byte-identical tables)",
    )
    parser.add_argument(
        "--no-trace-cache", action="store_true",
        help="ignore the on-disk recorded-stream store and re-record "
             "(replay backends only)",
    )
    parser.add_argument(
        "--trace-cache-dir", type=Path, default=None, metavar="DIR",
        help=f"recorded-stream store location "
             f"(default {default_trace_dir()})",
    )
    parser.add_argument(
        "--server", type=parse_address, default=None,
        metavar="HOST[:PORT]",
        help="run the tasks on a 'python -m repro.eval serve' daemon "
             "instead of locally (byte-identical tables; the daemon "
             "owns the caches and the worker pool, so --jobs, --pool, "
             "--backend and the cache flags are ignored)",
    )
    parser.add_argument(
        "--charts", action="store_true",
        help="render ASCII bar charts in addition to the tables",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="workload seed (default 1)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    figure_ids = [f"figure{number}" for number in args.figures]
    jobs = plan_jobs(figure_ids, scale=args.scale, seed=args.seed)
    tasks = merge_jobs(jobs)

    started = time.time()

    def progress(line: str) -> None:
        print(f"  {line}", file=sys.stderr)

    if args.server is not None:
        # The daemon owns the execution substrate; the runner only
        # ships tasks and renders — the tables below are byte-identical
        # to a local run because events round-trip the cache wire form.
        host, port = args.server
        print(
            f"{len(jobs)} figure jobs -> {len(tasks)} simulation tasks "
            f"({args.scale.warmup_refs} warmup + "
            f"{args.scale.measure_refs} measured refs each) "
            f"-> server {host}:{port}...",
            file=sys.stderr,
        )
        with EvalClient((host, port)) as client:
            task_results = client.run_tasks(tasks, progress=progress)
            summary = client.last_request
        print(
            f"{format_run_stats(task_results)} "
            f"(wall {time.time() - started:.1f}s)",
            file=sys.stderr,
        )
        print(format_client_stats(summary, f"{host}:{port}"),
              file=sys.stderr)
        print(file=sys.stderr)
    else:
        # ``--jobs auto`` parses to 0; resolve it now that the tasks
        # (and so the total lane count the pool can use) are known.
        n_jobs = args.jobs or auto_jobs(tasks)
        cache = None
        if not args.no_cache:
            cache = ResultCache(args.cache_dir)
        trace_store = None
        if args.backend.startswith("replay") and not args.no_trace_cache:
            trace_store = TraceStore(args.trace_cache_dir)

        print(
            f"{len(jobs)} figure jobs -> {len(tasks)} simulation tasks "
            f"({args.scale.warmup_refs} warmup + "
            f"{args.scale.measure_refs} "
            f"measured refs each, {n_jobs} worker"
            f"{'s' if n_jobs != 1 else ''}, {args.backend} backend"
            f"{f', {args.pool} pool' if n_jobs > 1 else ''})...",
            file=sys.stderr,
        )
        task_results = run_tasks(
            tasks, n_jobs=n_jobs, cache=cache, progress=progress,
            backend=args.backend, trace_store=trace_store,
            pool=args.pool,
        )
        print(
            f"{format_run_stats(task_results)} "
            f"(wall {time.time() - started:.1f}s)",
            file=sys.stderr,
        )
        if trace_store is not None:
            print(format_trace_stats(trace_store), file=sys.stderr)
        if args.pool == "persistent" and n_jobs > 1:
            print(format_pool_stats(pool_stats()), file=sys.stderr)
        print(file=sys.stderr)
    events = {result.task.workload: result.events
              for result in task_results}

    results = []
    for number in args.figures:
        result = _FIGURES_BY_NUMBER[number](events)
        results.append(result)
        print(format_figure(result))
        print()
        if args.charts:
            print(render_averages(result))
            print()
    print(format_summary(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""``python -m repro.eval`` — regenerate the paper's figures."""

from repro.eval.runner import main

raise SystemExit(main())

"""``python -m repro.eval`` — regenerate the paper's figures;
``python -m repro.eval serve`` — run the evaluation service daemon."""

import sys

if len(sys.argv) > 1 and sys.argv[1] == "serve":
    from repro.eval.server import main as serve_main

    raise SystemExit(serve_main(sys.argv[2:]))

from repro.eval.runner import main

raise SystemExit(main())

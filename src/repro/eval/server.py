"""Evaluation-as-a-service: ``python -m repro.eval serve``.

A long-running asyncio socket daemon that owns the warm execution
substrate — one process-wide :class:`~repro.eval.pool.WorkerPool`, the
:class:`~repro.eval.trace_store.TraceStore` and
:class:`~repro.eval.cache.ResultCache`, plus an in-memory hot-result
LRU — and serves figure/scenario/integrity/design-space tasks to many
concurrent clients.  The protocol is newline-delimited JSON, one frame
per line (full reference in ``docs/serve.md``):

``hello`` / ``stats`` / ``submit`` / ``shutdown``
    client → server requests.
``hello`` / ``stats`` / ``progress`` / ``result`` / ``error`` /
``shutdown``
    server → client replies; ``progress`` streams once per completed
    task, ``error`` answers one bad request without closing the
    connection.

Identical tasks are **single-flight across clients**: a submit first
consults the hot LRU, then joins any in-flight future for the same
``config_hash`` (one simulation, N subscribers — the task-level
extension of the pool's claim/wait record dedupe), and only then
enqueues work.  Batches run one at a time on an executor thread through
the unchanged :func:`~repro.eval.scheduler.run_tasks`, so every event
set a client receives is byte-identical to a local run.

Degradation is per-request: malformed JSON, unknown frame types and
invalid tasks are answered with ``error`` frames while the connection
(and every other client) keeps being served; oversized frames and idle
connections are closed after a final ``error`` frame.  ``shutdown``
(and SIGTERM/SIGINT) drains in-flight work, then stops the listener and
calls :func:`~repro.eval.pool.shutdown_worker_pool`, unlinking every
cached shm segment.

Deployment knobs (flags override environment, environment overrides
defaults): ``REPRO_SERVE_MAX_REQUEST_BYTES`` (frame size limit, default
32 MiB), ``REPRO_SERVE_IDLE_TIMEOUT`` (seconds before an idle
connection is dropped, default 300, ``0`` disables),
``REPRO_SERVE_HOT_RESULTS`` (hot-LRU entries, default 512, ``0``
disables).  ``_REPRO_SERVE_STALL`` (seconds) delays batch execution —
test-only, so concurrency tests can join in-flight tasks
deterministically.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.eval.cache import (
    ResultCache,
    default_cache_dir,
    events_to_dict,
)
from repro.eval.client import DEFAULT_PORT, PROTOCOL_VERSION
from repro.eval.jobs import AnyTask, task_from_wire
from repro.eval.pool import (
    pool_stats_dict,
    pool_worker_pids,
    shutdown_worker_pool,
)
from repro.eval.scheduler import (
    TaskResult,
    auto_jobs,
    run_tasks,
)
from repro.eval.trace_store import TraceStore, default_trace_dir

SERVER_NAME = "repro-eval-serve"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


@dataclass
class ServeStats:
    """Live daemon counters; the ``stats`` frame serializes them."""

    connections: int = 0
    requests: int = 0
    tasks_requested: int = 0
    #: Tasks this daemon actually enqueued for execution.
    tasks_executed: int = 0
    #: Tasks answered from the in-memory hot-result LRU.
    tasks_hot: int = 0
    #: Tasks that subscribed to an identical in-flight execution.
    tasks_joined: int = 0
    #: Frames rejected before reaching a handler (bad JSON, limits).
    protocol_errors: int = 0
    #: Well-formed requests answered with an error frame.
    request_errors: int = 0
    started: float = field(default_factory=time.time)


class EvalServer:
    """The daemon: one listener, one execution pump, shared warm state.

    ``n_jobs=0`` resolves ``auto`` per batch (one worker per CPU capped
    by the batch's lane count).  Construct, ``await start()``, then
    ``await serve_until_stopped()``; tests use
    :func:`start_server_thread` to run the whole lifecycle on a
    background thread.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 n_jobs: int = 1, backend: str = "replay",
                 pool: str = "persistent",
                 cache: ResultCache | None = None,
                 trace_store: TraceStore | None = None,
                 hot_results: int | None = None,
                 max_request_bytes: int | None = None,
                 idle_timeout: float | None = None) -> None:
        self.host = host
        self.port = port
        self.n_jobs = n_jobs
        self.backend = backend
        self.pool = pool
        self.cache = cache
        self.trace_store = trace_store
        self.hot_capacity = (
            _env_int("REPRO_SERVE_HOT_RESULTS", 512)
            if hot_results is None else hot_results
        )
        self.max_request_bytes = (
            _env_int("REPRO_SERVE_MAX_REQUEST_BYTES", 32 * 1024 * 1024)
            if max_request_bytes is None else max_request_bytes
        )
        self.idle_timeout = (
            _env_float("REPRO_SERVE_IDLE_TIMEOUT", 300.0)
            if idle_timeout is None else idle_timeout
        )
        self.stats = ServeStats()
        self._hot: OrderedDict[str, TaskResult] = OrderedDict()
        self._inflight: dict[str, asyncio.Future] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue | None = None
        self._pump_task: asyncio.Task | None = None
        self._stop_event: asyncio.Event | None = None
        self._draining = False
        #: Submit handlers currently streaming a response; shutdown
        #: waits for them so every subscriber gets its result frame.
        self._busy = 0

    # --------------------------------------------------------- lifecycle

    async def start(self) -> EvalServer:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop_event = asyncio.Event()
        self._pump_task = asyncio.create_task(self._pump())
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=self.max_request_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_stopped(self) -> None:
        """Serve until ``shutdown`` (or SIGTERM/SIGINT) drains and
        stops the daemon, then tear down the pool and its shm."""
        assert self._loop is not None and self._stop_event is not None
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread (tests) or unsupported platform
        await self._stop_event.wait()
        self._server.close()
        await self._server.wait_closed()
        await self._queue.put(None)
        await self._pump_task
        shutdown_worker_pool()

    def request_shutdown(self) -> None:
        """Signal-safe graceful stop: drain in-flight work, then exit.
        Must run on the event loop (signal handlers installed by
        :meth:`serve_until_stopped` do)."""
        if self._draining:
            return
        self._draining = True
        asyncio.ensure_future(self._drain_and_stop(), loop=self._loop)

    async def _drain_and_stop(self) -> None:
        await self._drain()
        self._stop_event.set()

    async def _drain(self) -> None:
        """Wait until queued batches ran, every in-flight future
        resolved, and every submit handler finished responding."""
        await self._queue.join()
        while self._inflight:
            await asyncio.wait(list(self._inflight.values()))
            await asyncio.sleep(0)
        deadline = self._loop.time() + 10.0
        while self._busy and self._loop.time() < deadline:
            await asyncio.sleep(0.01)

    # -------------------------------------------------- batch execution

    async def _pump(self) -> None:
        """The single execution pump: batches run one at a time on an
        executor thread, so concurrent submits never interleave on the
        pool's worker pipes."""
        while True:
            batch = await self._queue.get()
            if batch is None:
                self._queue.task_done()
                return
            try:
                await asyncio.to_thread(self._run_batch, batch)
            except BaseException as err:
                self._fail_batch(batch, err)
            else:
                self._fail_batch(batch, RuntimeError(
                    "task produced no result"
                ))
            finally:
                self._queue.task_done()

    def _run_batch(self, batch: list[AnyTask]) -> None:
        stall = _env_float("_REPRO_SERVE_STALL", 0.0)
        if stall > 0:
            time.sleep(stall)
        n_jobs = self.n_jobs or auto_jobs(batch)
        run_tasks(
            batch, n_jobs=n_jobs, cache=self.cache,
            backend=self.backend, trace_store=self.trace_store,
            pool=self.pool, on_result=self._resolve_from_thread,
        )

    def _resolve_from_thread(self, index: int, result: TaskResult
                             ) -> None:
        # run_tasks calls this on the executor thread; futures must be
        # touched on the loop.
        self._loop.call_soon_threadsafe(self._resolve, result)

    def _resolve(self, result: TaskResult) -> None:
        key = result.task.config_hash()
        self._remember(key, result)
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(result)

    def _fail_batch(self, batch: list[AnyTask],
                    err: BaseException) -> None:
        """Fail whatever futures of this batch are still unresolved
        (on success that is none — every task emitted a result)."""
        for task in batch:
            future = self._inflight.pop(task.config_hash(), None)
            if future is not None and not future.done():
                future.set_exception(err)

    def _remember(self, key: str, result: TaskResult) -> None:
        if self.hot_capacity <= 0:
            return
        self._hot[key] = result
        self._hot.move_to_end(key)
        while len(self._hot) > self.hot_capacity:
            self._hot.popitem(last=False)

    # ------------------------------------------------------ connections

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        try:
            await self._serve_frames(reader, writer)
        except asyncio.CancelledError:
            pass  # loop teardown while blocked on a read: clean close
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_frames(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                if self.idle_timeout > 0:
                    line = await asyncio.wait_for(
                        reader.readline(), self.idle_timeout
                    )
                else:
                    line = await reader.readline()
            except TimeoutError:
                self.stats.protocol_errors += 1
                await self._send(writer, {
                    "type": "error", "code": "idle-timeout",
                    "error": f"no frame in {self.idle_timeout:.0f}s"
                             f", closing",
                })
                break
            except ValueError:
                # The frame outgrew the stream limit; the tail is
                # unrecoverable, so answer and close.
                self.stats.protocol_errors += 1
                await self._send(writer, {
                    "type": "error", "code": "frame-too-large",
                    "error": f"frame exceeds "
                             f"{self.max_request_bytes} bytes",
                })
                break
            except (ConnectionError, OSError):
                break
            if not line:
                break  # clean EOF
            if not line.strip():
                continue
            try:
                frame = json.loads(line)
                if not isinstance(frame, dict):
                    raise ValueError("frame must be a JSON object")
            except ValueError as err:
                self.stats.protocol_errors += 1
                if not await self._send(writer, {
                    "type": "error", "code": "bad-json",
                    "error": f"unparseable frame: {err}",
                }):
                    break
                continue
            if not await self._handle_frame(frame, writer):
                break

    async def _send(self, writer: asyncio.StreamWriter,
                    frame: dict) -> bool:
        """Write one frame; ``False`` when the client is gone (callers
        stop streaming but never cancel shared work)."""
        try:
            data = json.dumps(frame, separators=(",", ":")).encode()
            writer.write(data + b"\n")
            await writer.drain()
            return True
        except (ConnectionError, OSError, RuntimeError):
            return False

    async def _handle_frame(self, frame: dict,
                            writer: asyncio.StreamWriter) -> bool:
        """Dispatch one well-formed frame; ``False`` closes the
        connection."""
        kind = frame.get("type")
        if kind == "hello":
            return await self._send(writer, {
                "type": "hello",
                "server": SERVER_NAME,
                "protocol": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "backend": self.backend,
                "pool": self.pool,
                "jobs": self.n_jobs or "auto",
            })
        if kind == "stats":
            return await self._send(
                writer, {"type": "stats", **self._stats_payload()}
            )
        if kind == "submit":
            self._busy += 1
            try:
                await self._handle_submit(frame, writer)
            finally:
                self._busy -= 1
            return True
        if kind == "shutdown":
            self._draining = True
            await self._drain()
            await self._send(writer, {
                "type": "shutdown", "ok": True,
                **self._stats_payload(),
            })
            self._stop_event.set()
            return False
        self.stats.protocol_errors += 1
        return await self._send(writer, {
            "type": "error", "code": "unknown-type",
            "id": frame.get("id"),
            "error": f"unknown frame type {kind!r} "
                     f"(hello, submit, stats, shutdown)",
        })

    # ------------------------------------------------------------ submit

    async def _handle_submit(self, frame: dict,
                             writer: asyncio.StreamWriter) -> None:
        rid = frame.get("id")
        self.stats.requests += 1
        started = self._loop.time()

        def error(code: str, message: str) -> dict:
            self.stats.request_errors += 1
            return {"type": "error", "code": code, "id": rid,
                    "error": message}

        if self._draining:
            await self._send(writer, error(
                "shutting-down", "server is draining for shutdown"
            ))
            return
        raw_tasks = frame.get("tasks")
        if not isinstance(raw_tasks, list) or not raw_tasks:
            await self._send(writer, error(
                "bad-submit", "submit needs a non-empty 'tasks' list"
            ))
            return
        try:
            tasks = [task_from_wire(wire) for wire in raw_tasks]
        except ConfigurationError as err:
            await self._send(writer, error("bad-task", str(err)))
            return

        # Triage synchronously on the loop: this block never awaits, so
        # two concurrent submits of the same task cannot both enqueue it
        # — single-flight is a property of the protocol, not a race.
        self.stats.tasks_requested += len(tasks)
        counts = {"executed": 0, "hot": 0, "joined": 0}
        entries: list[tuple[AnyTask, str, object]] = []
        to_run: list[AnyTask] = []
        for task in tasks:
            key = task.config_hash()
            hot = self._hot.get(key) if self.hot_capacity > 0 else None
            if hot is not None:
                self._hot.move_to_end(key)
                self.stats.tasks_hot += 1
                counts["hot"] += 1
                entries.append((task, "hot", hot))
                continue
            future = self._inflight.get(key)
            if future is not None:
                self.stats.tasks_joined += 1
                counts["joined"] += 1
                entries.append((task, "joined", future))
                continue
            future = self._loop.create_future()
            # Results outlive subscribers: a disconnected client must
            # not surface "exception never retrieved" for shared work.
            future.add_done_callback(
                lambda f: f.cancelled() or f.exception()
            )
            self._inflight[key] = future
            self.stats.tasks_executed += 1
            counts["executed"] += 1
            entries.append((task, "executed", future))
            to_run.append(task)
        if to_run:
            self._queue.put_nowait(to_run)

        # Stream progress in completion order, then the result frame in
        # task order.  Shared futures are awaited, never cancelled — a
        # client disconnecting mid-stream only stops its own frames.
        total = len(entries)
        done = 0
        streaming = True
        results: list[TaskResult | None] = [None] * total
        waiting: dict[asyncio.Future, list[int]] = {}
        for position, (task, how, payload) in enumerate(entries):
            if how == "hot":
                results[position] = payload
                done += 1
                if streaming:
                    streaming = await self._send(writer, {
                        "type": "progress", "id": rid,
                        "done": done, "total": total,
                        "task": task.describe(), "how": "hot",
                        "seconds": payload.seconds,
                    })
            else:
                waiting.setdefault(payload, []).append(position)
        failures: list[str] = []
        pending = set(waiting)
        while pending:
            finished, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for future in finished:
                err = future.exception()
                for position in waiting[future]:
                    task, how, _payload = entries[position]
                    done += 1
                    if err is not None:
                        failures.append(
                            f"{task.describe()}: {err}"
                        )
                        how = "failed"
                        seconds = 0.0
                    else:
                        result = future.result()
                        results[position] = result
                        if how == "executed":
                            how = ("cached" if result.cached
                                   else "simulated")
                        seconds = result.seconds
                    if streaming:
                        streaming = await self._send(writer, {
                            "type": "progress", "id": rid,
                            "done": done, "total": total,
                            "task": task.describe(), "how": how,
                            "seconds": seconds,
                        })
        if failures:
            await self._send(writer, error(
                "task-failed",
                f"{len(failures)} of {total} tasks failed: "
                + "; ".join(failures[:3])
            ))
            return
        await self._send(writer, {
            "type": "result", "id": rid,
            "results": [
                {
                    "events": events_to_dict(result.events),
                    "seconds": result.seconds,
                    "cached": result.cached or how == "hot",
                }
                for result, (_task, how, _payload)
                in zip(results, entries)
            ],
            "counts": counts,
            "seconds": self._loop.time() - started,
        })

    # ------------------------------------------------------------- stats

    def _stats_payload(self) -> dict:
        payload = asdict(self.stats)
        payload["uptime_seconds"] = time.time() - payload.pop("started")
        payload.update(
            pid=os.getpid(),
            backend=self.backend,
            pool=self.pool,
            jobs=self.n_jobs or "auto",
            hot_entries=len(self._hot),
            inflight=len(self._inflight),
            pool_counters=pool_stats_dict(),
            worker_pids=pool_worker_pids(),
        )
        if self.cache is not None:
            payload["result_cache"] = {
                "hits": self.cache.hits, "misses": self.cache.misses,
            }
        if self.trace_store is not None:
            payload["trace_store"] = {
                "hits": self.trace_store.hits,
                "misses": self.trace_store.misses,
            }
        return payload


# ------------------------------------------------------- thread harness


class ServerHandle:
    """A daemon running on a background thread (tests use this)."""

    def __init__(self, server: EvalServer,
                 thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def address(self) -> str:
        return f"{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain-and-stop; idempotent."""
        loop = self.server._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.request_shutdown)
        self.thread.join(timeout=timeout)

    def __enter__(self) -> ServerHandle:
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_thread(**kwargs) -> ServerHandle:
    """Start an :class:`EvalServer` (ephemeral port by default) on a
    daemon thread and return once it is accepting connections."""
    started = threading.Event()
    holder: dict = {}

    def run() -> None:
        async def main() -> None:
            server = EvalServer(**kwargs)
            try:
                await server.start()
            except BaseException as err:
                holder["error"] = err
                started.set()
                raise
            holder["server"] = server
            started.set()
            await server.serve_until_stopped()

        asyncio.run(main())

    thread = threading.Thread(
        target=run, name=SERVER_NAME, daemon=True
    )
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("serve daemon did not start in 30s")
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(holder["server"], thread)


# ---------------------------------------------------------------- CLI


def build_parser() -> argparse.ArgumentParser:
    from repro.eval.runner import parse_backend, parse_jobs, parse_pool

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval serve",
        description=(
            "Run the evaluation service daemon: a newline-delimited "
            "JSON socket server owning the warm worker pool, the "
            "trace/result stores and a hot-result LRU, serving "
            "concurrent clients with cross-client single-flight task "
            "dedupe (see docs/serve.md)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, metavar="N",
        help=f"TCP port (default {DEFAULT_PORT}; 0 picks an ephemeral "
             f"port, announced on stderr)",
    )
    parser.add_argument(
        "--jobs", type=parse_jobs, default=1, metavar="N|auto",
        help="worker processes per batch (default 1; 'auto' resolves "
             "per batch: one per CPU, capped by the batch's lanes)",
    )
    parser.add_argument(
        "--backend", type=parse_backend, default="replay",
        metavar="NAME", help="execution backend (default replay)",
    )
    parser.add_argument(
        "--pool", type=parse_pool, default="persistent",
        metavar="NAME", help="worker pool mode (default persistent)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="serve without the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help=f"result cache location (default {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-trace-cache", action="store_true",
        help="serve without the on-disk recorded-stream store",
    )
    parser.add_argument(
        "--trace-cache-dir", type=Path, default=None, metavar="DIR",
        help=f"recorded-stream store location "
             f"(default {default_trace_dir()})",
    )
    parser.add_argument(
        "--hot-results", type=int, default=None, metavar="N",
        help="in-memory hot-result LRU capacity (default "
             "$REPRO_SERVE_HOT_RESULTS or 512; 0 disables)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="drop connections idle this long (default "
             "$REPRO_SERVE_IDLE_TIMEOUT or 300; 0 disables)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.eval.report import format_server_stats

    args = build_parser().parse_args(argv)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    trace_store = None
    if args.backend.startswith("replay") and not args.no_trace_cache:
        trace_store = TraceStore(args.trace_cache_dir)

    async def amain() -> dict:
        server = EvalServer(
            args.host, args.port, n_jobs=args.jobs,
            backend=args.backend, pool=args.pool, cache=cache,
            trace_store=trace_store, hot_results=args.hot_results,
            idle_timeout=args.idle_timeout,
        )
        await server.start()
        print(
            f"{SERVER_NAME} listening on {server.host}:{server.port} "
            f"(pid {os.getpid()}, {args.backend} backend, "
            f"{args.pool} pool, jobs {args.jobs or 'auto'})",
            file=sys.stderr, flush=True,
        )
        await server.serve_until_stopped()
        return server._stats_payload()

    payload = asyncio.run(amain())
    print(format_server_stats(payload), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

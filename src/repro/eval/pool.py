"""Persistent warm worker pool with zero-copy recording shipping.

The spawn-context ``multiprocessing.Pool`` the scheduler historically
built for every :func:`~repro.eval.scheduler.run_tasks` call is pure
critical-path overhead: each call pays N interpreter starts, each worker
cold-imports :mod:`repro`, and every batch group ships its recording as
pickled gzip bytes that every worker re-decodes.  The paper's own thesis
is that security gets cheap once the expensive work moves off the
critical path and stays warm — this module applies the same discipline
to the evaluation engine:

* :class:`WorkerPool` — spawn-context workers created **once per
  process** (:func:`get_worker_pool`) and reused across every
  ``run_tasks`` / ``run_jobs`` / figure invocation: workers import
  :mod:`repro` exactly once, so a seven-figure sweep stops paying seven
  pool cold-starts.  A crashed worker is buried, respawned, and its
  task retried (once) inline in the parent, so one bad fork no longer
  kills a whole sweep.
* **Zero-copy recording shipping** — :meth:`WorkerPool.ship_recording`
  publishes a recording's packed ``TRACE_FORMAT`` columns in a
  ``multiprocessing.shared_memory`` segment; workers map the
  kinds/lines/aux planes straight out of the segment
  (:func:`resolve_recording_ref`) instead of receiving pickled gzip
  bytes through the task pipe.  Shipments are cached across runs
  (recordings are immutable per key), bounded by
  ``REPRO_POOL_SHM_CACHE_MB`` and unlinked on eviction or shutdown —
  so a warm sweep over the same recordings ships nothing at all.  When
  shared memory is unavailable (or ``REPRO_POOL_NO_SHM=1``) shipping
  degrades transparently to the bytes-pipe form; results are identical
  either way.
* **Per-worker decoded-recording LRU** — workers keep the last few
  decoded :class:`~repro.eval.record.Recording` objects keyed by record
  task, so a recording fanned out to K groups decodes once per worker,
  not K times (``REPRO_POOL_LRU_RECORDINGS`` sizes it).
* **In-flight record dedupe** — :func:`claim_record` serializes
  concurrent resolvers of the same record task: the first caller
  becomes the owner and records; everyone else blocks on the claim and
  reuses the owner's payload, so concurrent sweeps never record the
  same (source, scale, seed) twice.

Every interesting event is counted in a process-wide :class:`PoolStats`
(:func:`pool_stats`); the runner prints it via
:func:`repro.eval.report.format_pool_stats`.  The pool is an internal
engine — callers go through ``run_tasks(pool="persistent")`` — but the
service daemon and distributed backend on the ROADMAP build directly on
these pieces.
"""

from __future__ import annotations

import atexit
import importlib
import itertools
import multiprocessing
import os
import threading
import traceback
from collections import OrderedDict, deque
from dataclasses import asdict, dataclass
from multiprocessing import connection

try:
    from multiprocessing import shared_memory
except ImportError:  # platform without shm support: pipe fallback only
    shared_memory = None  # type: ignore[assignment]

from repro.eval.record import Recording
from repro.eval.trace_store import (
    raw_from_wire,
    recording_from_bytes,
    recording_from_raw,
    recording_to_bytes,
    recording_to_raw,
)

#: How long a claim waiter blocks before giving up and re-recording
#: itself (safety valve — the owner's ``finally`` normally resolves it).
CLAIM_TIMEOUT_SECONDS = 600.0


@dataclass
class PoolStats:
    """Process-wide counters for everything the pool engine does.

    One object per process (:func:`pool_stats`), cumulative across every
    pool and every run — the runner's summary line and the pool
    benchmark's invariants read these fields.
    """

    pools_created: int = 0
    workers_spawned: int = 0
    workers_respawned: int = 0
    tasks_dispatched: int = 0
    tasks_retried: int = 0
    #: Recording shipments that went through shared memory (zero-copy).
    shm_shipments: int = 0
    shm_bytes: int = 0
    #: Shipments that fell back to pickled payload bytes in the pipe.
    pipe_shipments: int = 0
    pipe_bytes: int = 0
    #: Record passes avoided because an identical one was in flight.
    records_deduped: int = 0
    #: Lane shards priced concurrently (counted only for groups the
    #: scheduler actually split — an unsharded batch pass adds none).
    lane_shards: int = 0
    #: Wall time summed over those shard passes.
    shard_seconds: float = 0.0


_STATS = PoolStats()


def pool_stats() -> PoolStats:
    """The process-wide pool counters (cumulative; never reset by runs)."""
    return _STATS


def reset_pool_stats() -> None:
    """Zero the counters in place (tests and benchmarks snapshot runs)."""
    for name in PoolStats.__dataclass_fields__:
        setattr(_STATS, name, 0)


def pool_stats_dict() -> dict:
    """JSON-ready snapshot of the process-wide counters — what the
    serve daemon's ``stats`` frame and the benchmarks embed."""
    return asdict(_STATS)


def pool_worker_pids() -> list[int]:
    """PIDs of the live process-wide pool's workers (``[]`` when no
    pool exists).  The serve shutdown tests assert these are dead once
    the daemon exits."""
    with _POOL_LOCK:
        pool = _POOL
    if pool is None:
        return []
    with pool._lock:
        return [worker.process.pid for worker in pool._workers]


# ----------------------------------------------------------- recording LRU


def _lru_capacity() -> int:
    """Sized so one full figure sweep's recordings (11 workloads) stay
    decoded across invocations; shrink via ``REPRO_POOL_LRU_RECORDINGS``
    on memory-constrained hosts (a full-scale recording is a few MB of
    arrays per worker)."""
    raw = os.environ.get("REPRO_POOL_LRU_RECORDINGS", "16")
    try:
        return max(1, int(raw))
    except ValueError:
        return 16


def _shm_cache_budget_bytes() -> int:
    """How many bytes of published segments a pool keeps across runs
    (``REPRO_POOL_SHM_CACHE_MB``, default 256 — a full-scale figure
    sweep's recordings fit several times over)."""
    raw = os.environ.get("REPRO_POOL_SHM_CACHE_MB", "256")
    try:
        return max(0, int(raw)) * 1024 * 1024
    except ValueError:
        return 256 * 1024 * 1024


#: Decoded recordings keyed by record-task hash — per *process*: in a
#: pool worker this is the per-worker LRU; in the parent it memoizes
#: inline retries.
_RECORDING_LRU: OrderedDict[str, Recording] = OrderedDict()


def remember_recording(key: str, recording: Recording) -> None:
    """Insert a decoded recording into this process's LRU (a worker
    that just recorded keeps the object, so its later replay/batch
    tasks on the same recording skip the decode entirely)."""
    _RECORDING_LRU[key] = recording
    _RECORDING_LRU.move_to_end(key)
    while len(_RECORDING_LRU) > _lru_capacity():
        _RECORDING_LRU.popitem(last=False)


def resolve_recording_ref(ref: dict) -> Recording:
    """A shipped recording reference back to the decoded object.

    Reference forms (built by :meth:`WorkerPool.ship_recording` or the
    spawn path's payload refs):

    * ``{"key", "shm", "size"}`` — map the named shared-memory segment
      and decode the raw columns straight out of it;
    * ``{"key", "payload"}`` — parse the gzip wire payload.

    Either way the decoded recording lands in the per-process LRU, so a
    recording fanned out K times decodes once per worker.
    """
    key = ref["key"]
    recording = _RECORDING_LRU.get(key)
    if recording is not None:
        _RECORDING_LRU.move_to_end(key)
        return recording
    name = ref.get("shm")
    if name is not None:
        pool = _POOL
        if pool is not None and key in pool._segments:
            # Parent-side resolution (inline retry after a worker
            # death): read the segment we published, no re-attach.
            segment = pool._segments[key]
            recording = recording_from_raw(
                memoryview(segment.buf)[:ref["size"]]
            )
        else:
            segment = shared_memory.SharedMemory(name=name)
            try:
                recording = recording_from_raw(
                    memoryview(segment.buf)[:ref["size"]]
                )
            finally:
                segment.close()
    else:
        recording = recording_from_bytes(ref["payload"])
    remember_recording(key, recording)
    return recording


# ------------------------------------------------------ in-flight dedupe


class RecordClaim:
    """One in-flight record pass: the owner records and publishes, every
    concurrent claimant of the same key blocks on :meth:`wait`."""

    def __init__(self, key: str) -> None:
        self.key = key
        self._done = threading.Event()
        self._payload: bytes | None = None
        self._recording: Recording | None = None
        self._failed = False

    def publish(self, payload: bytes | None = None,
                recording: Recording | None = None) -> None:
        """Owner side: hand the result to every waiter and retire the
        claim from the in-flight registry."""
        self._payload = payload
        self._recording = recording
        _retire_claim(self)
        self._done.set()

    def fail(self) -> None:
        """Owner side: the record pass died — release waiters so they
        fall back to recording on their own."""
        self._failed = True
        _retire_claim(self)
        self._done.set()

    def wait(self, timeout: float = CLAIM_TIMEOUT_SECONDS,
             ) -> tuple[bytes | None, Recording | None] | None:
        """Waiter side: the owner's (payload, recording) — either may be
        ``None`` individually — or ``None`` if the owner failed or the
        wait timed out (the caller then records itself)."""
        if not self._done.wait(timeout) or self._failed:
            return None
        if self._payload is None and self._recording is None:
            return None
        return self._payload, self._recording


_INFLIGHT: dict[str, RecordClaim] = {}
_INFLIGHT_LOCK = threading.Lock()


def claim_record(key: str) -> tuple[RecordClaim, bool]:
    """Claim (or join) the in-flight record pass for ``key``.

    Returns ``(claim, True)`` when the caller is the owner and must
    record then :meth:`~RecordClaim.publish` (or
    :meth:`~RecordClaim.fail`) the claim, ``(claim, False)`` when an
    identical pass is already in flight and the caller should
    :meth:`~RecordClaim.wait` instead.
    """
    with _INFLIGHT_LOCK:
        claim = _INFLIGHT.get(key)
        if claim is not None:
            _STATS.records_deduped += 1
            return claim, False
        claim = RecordClaim(key)
        _INFLIGHT[key] = claim
        return claim, True


def _retire_claim(claim: RecordClaim) -> None:
    with _INFLIGHT_LOCK:
        if _INFLIGHT.get(claim.key) is claim:
            del _INFLIGHT[claim.key]


# ------------------------------------------------------------ the workers


def _worker_main(conn) -> None:
    """The persistent worker loop: resolve a task function once per
    name, run items as they arrive, reply with results or tracebacks.

    ``_REPRO_POOL_FAULT`` (set before the pool spawns; inherited through
    the spawn environment) injects a failure into matching task kinds —
    the lifecycle tests use it to pin the parent's cleanup paths.
    """
    fault = os.environ.get("_REPRO_POOL_FAULT", "")
    resolved: dict[str, object] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message[0] == "stop":
            break
        _, spec, item = message
        try:
            fn = resolved.get(spec)
            if fn is None:
                module_name, _, qualname = spec.partition(":")
                fn = getattr(importlib.import_module(module_name),
                             qualname)
                resolved[spec] = fn
            if fault and spec.endswith(fault):
                raise RuntimeError(f"injected worker fault: {fault}")
            reply = ("ok", fn(item))
        except KeyboardInterrupt:
            break
        except BaseException:
            reply = ("err", f"{spec}: {traceback.format_exc()}")
        try:
            conn.send(reply)
        except (OSError, ValueError):
            break
    try:
        conn.close()
    except OSError:
        pass


def _warm_worker(index: int) -> tuple[int]:
    """Pre-pay the import cost every task kind needs (the scheduler
    pulls in the pipeline, timing and workload layers transitively)."""
    import repro.eval.scheduler  # noqa: F401

    return (index,)


class _Worker:
    """One live worker process and the parent's end of its task pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class WorkerPool:
    """A persistent spawn-context worker pool with per-worker task
    pipes, worker-death recovery, and shared-memory recording shipping.

    Use :func:`get_worker_pool` for the process-wide instance the
    scheduler reuses; constructing directly is for tests and embedders
    that want an isolated lifecycle (call :meth:`shutdown`).
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._context = multiprocessing.get_context("spawn")
        self._lock = threading.RLock()
        #: Serializes :meth:`run`: the worker pipes are single-reader,
        #: so concurrent runs from different threads (the serve daemon's
        #: executor is one) queue up rather than interleave on them.
        self._run_lock = threading.Lock()
        self._workers: list[_Worker] = []
        self._segments: dict[str, object] = {}
        #: Shipment cache, insertion-ordered for LRU eviction.  Entries
        #: live across runs (that is the warm-pool payoff: a recording
        #: shared by several figure invocations ships once), bounded by
        #: ``REPRO_POOL_SHM_CACHE_MB`` and unlinked on eviction or
        #: :meth:`shutdown`.
        self._shipped_refs: OrderedDict[str, dict] = OrderedDict()
        self._ref_epoch: dict[str, int] = {}
        self._ref_bytes: dict[str, int] = {}
        self._shipped_bytes = 0
        self._epoch = 0
        self._segment_seq = itertools.count()
        self._closed = False
        _STATS.pools_created += 1
        self.grow(n_workers)

    # -- lifecycle ----------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name="repro-pool-worker",
        )
        process.start()
        child_conn.close()
        _STATS.workers_spawned += 1
        return _Worker(process, parent_conn)

    def grow(self, n_workers: int) -> None:
        """Ensure at least ``n_workers`` live workers (never shrinks —
        an idle warm worker is the asset, not the cost)."""
        with self._lock:
            while len(self._workers) < n_workers:
                self._workers.append(self._spawn_worker())

    def warm(self) -> None:
        """Make every worker pay its one-time :mod:`repro` import now,
        so the first real task measures work, not cold starts."""
        self.run(_warm_worker, list(range(self.n_workers)),
                 lambda _index: None)

    def _bury(self, worker: _Worker) -> _Worker:
        """Replace a dead worker in place with a fresh one."""
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=5)
        replacement = self._spawn_worker()
        with self._lock:
            slot = self._workers.index(worker)
            self._workers[slot] = replacement
        _STATS.workers_respawned += 1
        return replacement

    def shutdown(self) -> None:
        """Stop every worker and unlink any leftover shipments."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:
                pass
        self.release_shipments()

    # -- zero-copy shipping -------------------------------------------

    def _shm_enabled(self) -> bool:
        return (shared_memory is not None
                and os.environ.get("REPRO_POOL_NO_SHM", "") != "1")

    def ship_recording(self, key: str,
                       recording: Recording | None = None,
                       payload: bytes | None = None) -> dict:
        """Publish one recording for the pool's workers, returning the
        reference to embed in task items.

        Preferred form: the packed ``TRACE_FORMAT`` columns in a shared
        memory segment (workers map the planes directly — nothing but
        the tiny reference dict crosses the pickle pipe).  Fallback (no
        shm support, creation failure, or ``REPRO_POOL_NO_SHM=1``): the
        gzip wire payload rides in the reference itself.

        Shipments outlive the run that made them: recordings are
        immutable per key, so a later run over the same recordings
        reuses the published segments instead of re-packing and
        re-publishing (the ``ship x0`` half of the warm-pool win).  The
        cache is bounded by ``REPRO_POOL_SHM_CACHE_MB`` — least recently
        shipped entries are unlinked first, but never ones touched
        within the last two runs (they may still be referenced by
        in-flight items).  :meth:`shutdown` unlinks whatever remains.
        """
        with self._lock:
            ref = self._shipped_refs.get(key)
            if ref is not None:
                # Touch: refresh recency and pin for the upcoming run.
                self._shipped_refs.move_to_end(key)
                self._ref_epoch[key] = self._epoch
                return ref
        if self._shm_enabled():
            try:
                # The wire payload, when on hand, is cheaper to
                # repackage (one gunzip) than re-packing the column
                # arrays out of the decoded object.
                raw = (raw_from_wire(payload)
                       if payload is not None
                       else recording_to_raw(recording))
                segment = shared_memory.SharedMemory(
                    create=True, size=len(raw),
                    name=f"repro_pool_{os.getpid()}_"
                         f"{next(self._segment_seq)}",
                )
                segment.buf[:len(raw)] = raw
            except (OSError, ValueError):
                pass  # degrade to the pipe form below
            else:
                ref = {"key": key, "shm": segment.name,
                       "size": len(raw)}
                self._store_ref(key, ref, len(raw), segment)
                _STATS.shm_shipments += 1
                _STATS.shm_bytes += len(raw)
                return ref
        if payload is None:
            payload = recording_to_bytes(recording)
        ref = {"key": key, "payload": payload}
        self._store_ref(key, ref, len(payload), None)
        _STATS.pipe_shipments += 1
        _STATS.pipe_bytes += len(payload)
        return ref

    def _store_ref(self, key: str, ref: dict, n_bytes: int,
                   segment) -> None:
        """Cache a shipment and evict over-budget entries (oldest
        first, skipping any touched within the last two runs)."""
        evicted = []
        with self._lock:
            if segment is not None:
                self._segments[key] = segment
            self._shipped_refs[key] = ref
            self._ref_epoch[key] = self._epoch
            self._ref_bytes[key] = n_bytes
            self._shipped_bytes += n_bytes
            budget = _shm_cache_budget_bytes()
            for old_key in list(self._shipped_refs):
                if self._shipped_bytes <= budget:
                    break
                if self._ref_epoch[old_key] > self._epoch - 2:
                    continue
                del self._shipped_refs[old_key]
                del self._ref_epoch[old_key]
                self._shipped_bytes -= self._ref_bytes.pop(old_key)
                old_segment = self._segments.pop(old_key, None)
                if old_segment is not None:
                    evicted.append(old_segment)
        for old_segment in evicted:
            try:
                old_segment.close()
                old_segment.unlink()
            except (OSError, FileNotFoundError):
                pass

    def release_shipments(self) -> None:
        """Unlink every published segment and drop the shipment cache
        (:meth:`shutdown` ends with this — segments must never outlive
        the pool)."""
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
            self._shipped_refs.clear()
            self._ref_epoch.clear()
            self._ref_bytes.clear()
            self._shipped_bytes = 0
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except (OSError, FileNotFoundError):
                pass

    # -- running work -------------------------------------------------

    def run(self, worker_fn, items, on_result,
            max_workers: int | None = None) -> None:
        """Fan indexed work items over the warm workers.

        ``worker_fn`` must be an importable module-level function (it is
        shipped by name and resolved once per worker); each result tuple
        is handed to ``on_result(*result)`` as it completes, exactly
        like the spawn path.  A worker that dies mid-task is respawned
        and its task retried once inline; a task that *raises* in a
        worker fails the run (after draining, so the pool stays usable).
        Concurrent calls from different threads serialize on the pool's
        run lock — each run owns every worker pipe exclusively.
        """
        if not items:
            return
        with self._run_lock:
            if self._closed:
                raise RuntimeError("worker pool is shut down")
            spec = f"{worker_fn.__module__}:{worker_fn.__qualname__}"
            limit = min(max_workers or self.n_workers, self.n_workers,
                        len(items))
            queue = deque(items)
            idle = list(self._workers[:limit])
            active: dict[_Worker, object] = {}
            try:
                self._run_loop(worker_fn, spec, queue, idle, active,
                               on_result)
            finally:
                # Shipments touched before this run stay pinned against
                # eviction until two more runs complete (in-flight items
                # may still reference them).
                with self._lock:
                    self._epoch += 1

    def _run_loop(self, worker_fn, spec, queue, idle, active,
                  on_result) -> None:
        failure: BaseException | None = None

        def retry_inline(item) -> None:
            nonlocal failure
            _STATS.tasks_retried += 1
            try:
                result = worker_fn(item)
            except BaseException as err:  # genuinely-bad task: surface
                failure = failure or err
            else:
                on_result(*result)

        while queue or active:
            while queue and idle and failure is None:
                worker = idle.pop()
                item = queue.popleft()
                try:
                    worker.conn.send(("task", spec, item))
                except (OSError, ValueError):
                    # Died while idle: replace it and put the task back
                    # (nothing was lost — it never started).
                    idle.append(self._bury(worker))
                    queue.appendleft(item)
                    continue
                active[worker] = item
                _STATS.tasks_dispatched += 1
            if not active:
                if failure is not None:
                    break
                continue
            ready = set(connection.wait(
                [worker.conn for worker in active]
                + [worker.process.sentinel for worker in active]
            ))
            for worker in list(active):
                if worker.conn in ready:
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        message = None
                    item = active.pop(worker)
                    if message is None:
                        # Pipe broke mid-reply: treat as a death.
                        replacement = self._bury(worker)
                        idle.append(replacement)
                        if failure is None:
                            retry_inline(item)
                    else:
                        idle.append(worker)
                        if message[0] == "ok":
                            if failure is None:
                                on_result(*message[1])
                        elif failure is None:
                            failure = RuntimeError(
                                f"pool worker failed: {message[1]}"
                            )
                elif (worker.process.sentinel in ready
                      and not worker.process.is_alive()
                      and not worker.conn.poll()):
                    # Dead with no buffered reply: bury, respawn, and
                    # retry the task once inline.  (A buffered reply
                    # means the result survived the crash — the next
                    # wait() round collects it from the pipe.)
                    item = active.pop(worker)
                    idle.append(self._bury(worker))
                    if failure is None:
                        retry_inline(item)
        if failure is not None:
            raise failure


# ------------------------------------------------- the process-wide pool

_POOL: WorkerPool | None = None
_POOL_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def get_worker_pool(n_workers: int) -> WorkerPool:
    """The process-wide persistent pool, created on first use and grown
    (never shrunk) to the largest ``n_workers`` any caller asked for.
    ``run(..., max_workers=n)`` still bounds each run's concurrency."""
    global _POOL, _ATEXIT_REGISTERED
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = WorkerPool(n_workers)
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_worker_pool)
                _ATEXIT_REGISTERED = True
        elif _POOL.n_workers < n_workers:
            _POOL.grow(n_workers)
        return _POOL


def shutdown_worker_pool() -> None:
    """Stop the process-wide pool (if any); the next
    :func:`get_worker_pool` starts a fresh one."""
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown()

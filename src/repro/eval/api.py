"""The stable public surface of the evaluation harness.

Everything a benchmark, example, or downstream script needs lives here
under one import::

    from repro.eval.api import run_figures, format_figure

The modules behind this facade (:mod:`~repro.eval.experiments`,
:mod:`~repro.eval.jobs`, :mod:`~repro.eval.scheduler`, ...) are
internals: their layout moves when the engine does — per-event replay
became columnar batch pricing without this surface changing.  What the
facade promises:

**Recording** (phase 1 of the replay engine)
    :func:`record` turns one (source, scale, seed) into a
    :class:`Recording` of typed event columns; :class:`RecordTask` /
    :func:`record_task_for` name the pass a task depends on, and
    :class:`TraceStore` persists the wire form across runs.

**Replay** (phase 2)
    ``recording.replay(...)`` prices one configuration set through the
    per-event reference loop; ``recording.replay_batch(...)`` prices
    many :class:`ReplayRequest` sets in a single event-major pass.
    :func:`price_batch` is the task-level spelling the scheduler uses.

**Running experiments**
    :func:`run_figures` (figures by number), :func:`run_scenarios` /
    :func:`run_scenario_tasks` (§4.3 switch strategies),
    :func:`run_integrity_sweep` (memory integrity),
    :func:`run_all_benchmarks` / :func:`run_everything`, and the
    lower-level :func:`run_tasks` / :func:`run_jobs`.  All take
    ``backend=`` (one of :data:`BACKENDS`: ``"fused"``, ``"replay"``,
    ``"replay-perevent"``) plus ``cache=`` / ``trace_store=`` and
    produce byte-identical events either way.

**The execution engine**
    Parallel runs (``n_jobs > 1``) are hosted by one of :data:`POOLS`:
    ``pool="persistent"`` (default) reuses the process-wide warm
    :class:`WorkerPool` (:func:`get_worker_pool` /
    :func:`shutdown_worker_pool`) with shared-memory recording
    shipping; ``pool="spawn"`` builds a fresh pool per call.
    :func:`pool_stats` exposes the engine's counters and
    :func:`format_pool_stats` renders them as the runner's summary
    line.  When recordings alone cannot fill the workers, batch passes
    are lane-sharded across them (:func:`plan_lane_shards` plans the
    split, :func:`merge_shard_events` reassembles each task).  All of
    it is byte-identical to ``n_jobs=1``.

**Serving**
    :class:`EvalServer` is the evaluation service daemon
    (``python -m repro.eval serve``): one warm pool + caches + a
    hot-result LRU behind a newline-delimited JSON socket protocol,
    with cross-client single-flight task dedupe.  :class:`EvalClient`
    is the blocking client the runner's ``--server`` uses
    (:func:`task_to_wire` / :func:`task_from_wire` are the task wire
    form); :func:`start_server_thread` hosts a daemon on a background
    thread for tests and embedders.  Tables rendered from a server run
    are byte-identical to local ones — see ``docs/serve.md``.

**Formatting**
    :func:`format_figure`, :func:`format_summary`,
    :func:`format_scenario_table`, :func:`format_integrity_table`,
    :func:`format_run_stats`, :func:`format_trace_stats`; plus
    :func:`events_to_dict` / :func:`events_from_dict`, the result
    cache's JSON wire form — the canonical byte-parity fingerprint the
    benchmarks and parity tests serialize events through.
"""

from __future__ import annotations

from repro.eval.cache import (
    ResultCache,
    default_cache_dir,
    events_from_dict,
    events_to_dict,
)
from repro.eval.experiments import (
    ALL_FIGURES,
    FIGURES_BY_ID,
    FigureResult,
    INTEGRITY_NODE_CACHE_SIZES,
    INTEGRITY_SNC_KEY,
    INTEGRITY_WORKLOADS,
    PAPER_LATENCIES,
    SCENARIO_SCHEMES,
    SCENARIO_STRATEGIES,
    SLOW_CRYPTO_LATENCIES,
    Series,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    index_scenario_results,
    integrity_slowdowns,
    integrity_table_keys,
    plan_jobs,
    run_all_benchmarks,
    run_everything,
    run_integrity_sweep,
    run_scenario_tasks,
    run_scenarios,
    scenario_jobs,
    scenario_slowdowns,
    scenario_snc_specs,
    scheme_config_key,
)
from repro.eval.client import (
    DEFAULT_PORT,
    EvalClient,
    PROTOCOL_VERSION,
    ServerError,
    parse_address,
)
from repro.eval.jobs import (
    AnyTask,
    ExperimentJob,
    IntegrityModelSpec,
    RecordTask,
    ScenarioJob,
    ScenarioTask,
    SNCSpec,
    SimulationTask,
    SourceSpec,
    execute_record as record,
    merge_jobs,
    merge_scenario_jobs,
    merge_shard_events,
    price_batch,
    record_task_for,
    standard_snc_specs,
    task_from_wire,
    task_lanes,
    task_to_wire,
    total_lane_count,
)
from repro.eval.pipeline import (
    BenchmarkEvents,
    QUICK_SCALE,
    SimulationScale,
    simulate_benchmark,
    simulate_scenario,
    standard_snc_configs,
)
from repro.eval.pool import (
    PoolStats,
    WorkerPool,
    get_worker_pool,
    pool_stats,
    pool_stats_dict,
    pool_worker_pids,
    reset_pool_stats,
    shutdown_worker_pool,
)
from repro.eval.record import (
    Recording,
    ReplayRequest,
    record_source,
    record_source_reference,
)
from repro.eval.report import (
    format_client_stats,
    format_figure,
    format_integrity_table,
    format_pool_stats,
    format_run_stats,
    format_scenario_table,
    format_server_stats,
    format_summary,
    format_trace_stats,
)
from repro.eval.scheduler import (
    BACKENDS,
    POOLS,
    TaskResult,
    auto_jobs,
    plan_lane_shards,
    run_jobs,
    run_tasks,
)
from repro.eval.server import (
    EvalServer,
    ServeStats,
    ServerHandle,
    start_server_thread,
)
from repro.eval.trace_store import TraceStore, default_trace_dir
from repro.eval.runner import parse_scale


def run_figures(figure_ids=None, *, scale: SimulationScale | None = None,
                seed: int = 1, n_jobs: int = 1,
                cache: ResultCache | None = None,
                progress=None, backend: str = "replay",
                trace_store: TraceStore | None = None,
                pool: str = "persistent",
                ) -> list[FigureResult]:
    """Simulate and price the selected figures (default: all seven).

    The one-call spelling of what ``python -m repro.eval`` does:
    declare the figures' jobs, run them through ``backend``, and return
    one :class:`FigureResult` per requested figure, in request order.
    ``figure_ids`` accepts ``"figure5"`` / ``"5"`` / ``5`` spellings.
    """
    if figure_ids is None:
        names = list(FIGURES_BY_ID)
    else:
        names = []
        for figure_id in figure_ids:
            name = str(figure_id)
            if not name.startswith("figure"):
                name = f"figure{name}"
            if name not in FIGURES_BY_ID:
                known = ", ".join(sorted(FIGURES_BY_ID))
                raise KeyError(
                    f"unknown figure {figure_id!r} (known: {known})"
                )
            names.append(name)
    events = run_jobs(plan_jobs(names, scale=scale, seed=seed),
                      n_jobs=n_jobs, cache=cache, progress=progress,
                      backend=backend, trace_store=trace_store,
                      pool=pool)
    return [FIGURES_BY_ID[name](events) for name in names]


__all__ = [
    "ALL_FIGURES",
    "AnyTask",
    "BACKENDS",
    "BenchmarkEvents",
    "DEFAULT_PORT",
    "EvalClient",
    "EvalServer",
    "ExperimentJob",
    "FIGURES_BY_ID",
    "FigureResult",
    "INTEGRITY_NODE_CACHE_SIZES",
    "INTEGRITY_SNC_KEY",
    "INTEGRITY_WORKLOADS",
    "IntegrityModelSpec",
    "PAPER_LATENCIES",
    "POOLS",
    "PROTOCOL_VERSION",
    "PoolStats",
    "QUICK_SCALE",
    "RecordTask",
    "Recording",
    "ReplayRequest",
    "ResultCache",
    "SCENARIO_SCHEMES",
    "SCENARIO_STRATEGIES",
    "SLOW_CRYPTO_LATENCIES",
    "SNCSpec",
    "ScenarioJob",
    "ScenarioTask",
    "Series",
    "ServeStats",
    "ServerError",
    "ServerHandle",
    "SimulationScale",
    "SimulationTask",
    "SourceSpec",
    "TaskResult",
    "TraceStore",
    "WorkerPool",
    "auto_jobs",
    "default_cache_dir",
    "default_trace_dir",
    "events_from_dict",
    "events_to_dict",
    "figure3",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "format_client_stats",
    "format_figure",
    "format_integrity_table",
    "format_pool_stats",
    "format_run_stats",
    "format_scenario_table",
    "format_server_stats",
    "format_summary",
    "format_trace_stats",
    "get_worker_pool",
    "index_scenario_results",
    "integrity_slowdowns",
    "integrity_table_keys",
    "merge_jobs",
    "merge_scenario_jobs",
    "merge_shard_events",
    "parse_address",
    "parse_scale",
    "plan_jobs",
    "plan_lane_shards",
    "pool_stats",
    "pool_stats_dict",
    "pool_worker_pids",
    "price_batch",
    "record",
    "record_source",
    "record_source_reference",
    "record_task_for",
    "reset_pool_stats",
    "run_all_benchmarks",
    "run_everything",
    "run_figures",
    "run_integrity_sweep",
    "run_jobs",
    "run_scenario_tasks",
    "run_scenarios",
    "run_tasks",
    "scenario_jobs",
    "scenario_slowdowns",
    "scenario_snc_specs",
    "scheme_config_key",
    "shutdown_worker_pool",
    "simulate_benchmark",
    "simulate_scenario",
    "standard_snc_configs",
    "standard_snc_specs",
    "start_server_thread",
    "task_from_wire",
    "task_lanes",
    "task_to_wire",
    "total_lane_count",
]

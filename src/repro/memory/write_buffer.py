"""The write buffer between L2 and memory (paper Figures 2 and 4).

Dirty L2 victims park here while they are encrypted and until the bus is
idle; the paper leans on this to argue writes are off the critical path
(§3.4: "most processors are equipped with write buffers which can steal
idle bus cycles efficiently").  The functional model preserves the ordering
property that matters for correctness: a read that hits a buffered line must
see the buffered (newest) data, not stale memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError


@dataclass
class WriteBufferStats:
    enqueued: int = 0
    drained: int = 0
    forwarded_reads: int = 0
    forced_drains: int = 0  # full buffer forced a synchronous drain


class WriteBuffer:
    """A FIFO of pending line writebacks with read forwarding.

    ``drain_action`` performs the actual (encrypt +) memory write; it is
    supplied by the secure engine so the buffer itself stays policy-free.
    """

    def __init__(self, capacity: int,
                 drain_action: Callable[[int, bytes], None]):
        if capacity <= 0:
            raise ConfigurationError("write buffer capacity must be positive")
        self.capacity = capacity
        self._drain_action = drain_action
        self._entries: OrderedDict[int, bytes] = OrderedDict()
        self.stats = WriteBufferStats()

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, line_addr: int, data: bytes) -> None:
        """Queue a writeback; coalesces with a pending write to the same line."""
        if line_addr in self._entries:
            self._entries.move_to_end(line_addr)
        else:
            if len(self._entries) >= self.capacity:
                self.stats.forced_drains += 1
                self.drain_one()
        self._entries[line_addr] = bytes(data)
        self.stats.enqueued += 1

    def forward(self, line_addr: int) -> bytes | None:
        """Return buffered data for a read of ``line_addr``, if pending."""
        data = self._entries.get(line_addr)
        if data is not None:
            self.stats.forwarded_reads += 1
        return data

    def drain_one(self) -> bool:
        """Write the oldest entry to memory; False if the buffer was empty."""
        if not self._entries:
            return False
        line_addr, data = self._entries.popitem(last=False)
        self._drain_action(line_addr, data)
        self.stats.drained += 1
        return True

    def drain_all(self) -> int:
        """Flush everything (program exit, context switch); returns count."""
        drained = 0
        while self.drain_one():
            drained += 1
        return drained

"""The on-chip memory hierarchy: split L1 I/D over a unified write-back L2.

Geometry follows the paper's baseline: 32KB 4-way separate L1 instruction
and data caches and a 256KB 4-way unified L2 with 128-byte lines, with a
write buffer between L2 and memory.

Everything *above* the engine is inside the security boundary and holds
plaintext; the pluggable :class:`LineEngine` decides what actually crosses
the chip edge (nothing for the insecure baseline, ciphertext for XOM/OTP).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigurationError, MemoryFault
from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.write_buffer import WriteBuffer


class LineKind(enum.Enum):
    """Instruction lines are read-only; data lines are versioned (§3.4)."""

    INSTRUCTION = "instruction"
    DATA = "data"


class LineEngine(Protocol):
    """What the hierarchy needs from a memory-encryption engine."""

    def read_line(self, line_addr: int, kind: LineKind) -> tuple[bytes, int]:
        """Fetch + decrypt a line; return (plaintext, critical-path cycles)."""
        ...

    def write_line(self, line_addr: int, plaintext: bytes) -> int:
        """Encrypt + write back a line; return critical-path cycles (~0)."""
        ...


@dataclass
class HierarchyStats:
    """Cycle and event accounting for a functional run."""

    l1i_hit_cycles: int = 1
    l1d_hit_cycles: int = 1
    l2_hit_cycles: int = 10
    stall_cycles: int = 0
    loads: int = 0
    stores: int = 0
    fetches: int = 0


def default_l1_config(name: str) -> CacheConfig:
    return CacheConfig(size_bytes=32 * 1024, assoc=4, line_bytes=32, name=name)


def default_l2_config() -> CacheConfig:
    return CacheConfig(size_bytes=256 * 1024, assoc=4, line_bytes=128, name="L2")


class MemoryHierarchy:
    """Functional two-level cache hierarchy over a line engine."""

    engine: LineEngine

    def __init__(self, engine: LineEngine,
                 l1i_config: CacheConfig | None = None,
                 l1d_config: CacheConfig | None = None,
                 l2_config: CacheConfig | None = None,
                 write_buffer_capacity: int = 8):
        self.engine = engine
        self.l1i = SetAssociativeCache(l1i_config or default_l1_config("L1I"))
        self.l1d = SetAssociativeCache(l1d_config or default_l1_config("L1D"))
        self.l2 = SetAssociativeCache(l2_config or default_l2_config())
        if self.l2.config.line_bytes < self.l1d.config.line_bytes:
            raise ConfigurationError("L2 lines must not be smaller than L1's")
        self.write_buffer = WriteBuffer(
            write_buffer_capacity,
            drain_action=self._drain_to_engine,
        )
        self.stats = HierarchyStats()

    # -- public CPU-facing operations ---------------------------------------

    def fetch(self, addr: int, size: int) -> bytes:
        """Instruction fetch through L1I."""
        self.stats.fetches += 1
        self.stats.stall_cycles += self.stats.l1i_hit_cycles
        return self._l1_read(self.l1i, addr, size, LineKind.INSTRUCTION)

    def load(self, addr: int, size: int) -> bytes:
        """Data load through L1D."""
        self.stats.loads += 1
        self.stats.stall_cycles += self.stats.l1d_hit_cycles
        return self._l1_read(self.l1d, addr, size, LineKind.DATA)

    def store(self, addr: int, data: bytes) -> None:
        """Data store through L1D (write-allocate, write-back)."""
        self.stats.stores += 1
        self.stats.stall_cycles += self.stats.l1d_hit_cycles
        line = self._l1_line(self.l1d, addr, LineKind.DATA)
        offset = addr - line.line_addr
        self._check_within_line(self.l1d.config, addr, len(data))
        line.data[offset : offset + len(data)] = data
        line.dirty = True

    def flush(self) -> None:
        """Write every dirty line down to memory (program exit / interrupt)."""
        for l1 in (self.l1i, self.l1d):
            for line in l1.drain_dirty():
                self._store_into_l2(line.line_addr, bytes(line.data))
        for line in self.l2.drain_dirty():
            self.write_buffer.push(line.line_addr, bytes(line.data))
        self.write_buffer.drain_all()

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _check_within_line(config: CacheConfig, addr: int, size: int) -> None:
        line_addr = addr & ~(config.line_bytes - 1)
        if addr + size > line_addr + config.line_bytes:
            raise MemoryFault(
                f"access at {addr:#x} size {size} crosses a "
                f"{config.line_bytes}-byte line boundary"
            )

    def _l1_read(self, l1: SetAssociativeCache, addr: int, size: int,
                 kind: LineKind) -> bytes:
        line = self._l1_line(l1, addr, kind)
        offset = addr - line.line_addr
        self._check_within_line(l1.config, addr, size)
        return bytes(line.data[offset : offset + size])

    def _l1_line(self, l1: SetAssociativeCache, addr: int, kind: LineKind):
        line = l1.lookup(addr)
        if line is not None:
            return line
        l1_line_bytes = l1.config.line_bytes
        line_addr = addr & ~(l1_line_bytes - 1)
        data = self._read_from_l2(line_addr, l1_line_bytes, kind)
        victim = l1.fill(line_addr, bytearray(data))
        if victim is not None and victim.dirty:
            self._store_into_l2(victim.line_addr, bytes(victim.data))
        return l1.probe(line_addr)

    def _read_from_l2(self, addr: int, size: int, kind: LineKind) -> bytes:
        line = self._l2_line(addr, kind)
        offset = addr - line.line_addr
        return bytes(line.data[offset : offset + size])

    def _store_into_l2(self, addr: int, data: bytes) -> None:
        """Accept an L1 dirty victim (data path only — code is read-only)."""
        line = self._l2_line(addr, LineKind.DATA)
        offset = addr - line.line_addr
        line.data[offset : offset + len(data)] = data
        line.dirty = True

    def _l2_line(self, addr: int, kind: LineKind):
        line = self.l2.lookup(addr)
        if line is not None:
            self.stats.stall_cycles += self.stats.l2_hit_cycles
            return line
        l2_line_bytes = self.l2.config.line_bytes
        line_addr = addr & ~(l2_line_bytes - 1)
        # A read may race a pending (not yet drained) writeback of the same
        # line; the buffered copy is the newest data.
        buffered = self.write_buffer.forward(line_addr)
        if buffered is not None:
            plaintext, cycles = buffered, self.stats.l2_hit_cycles
        else:
            plaintext, cycles = self.engine.read_line(line_addr, kind)
        self.stats.stall_cycles += cycles
        victim = self.l2.fill(
            line_addr, bytearray(plaintext), meta={"va": line_addr, "kind": kind}
        )
        if victim is not None:
            # Enforce inclusion: recall any L1 copies of the evicted line,
            # merging their (possibly newer, dirty) bytes into the victim.
            self._back_invalidate(victim)
            if victim.dirty:
                # Evicted dirty lines park in the write buffer; the engine
                # encrypts them off the critical path (paper §4.2, update hit).
                self.write_buffer.push(victim.line_addr, bytes(victim.data))
        return self.l2.probe(line_addr)

    def _back_invalidate(self, victim) -> None:
        l2_line_bytes = self.l2.config.line_bytes
        for l1 in (self.l1i, self.l1d):
            step = l1.config.line_bytes
            for sub_addr in range(
                victim.line_addr, victim.line_addr + l2_line_bytes, step
            ):
                recalled = l1.invalidate(sub_addr)
                if recalled is not None and recalled.dirty:
                    offset = sub_addr - victim.line_addr
                    victim.data[offset : offset + step] = recalled.data
                    victim.dirty = True

    def _drain_to_engine(self, line_addr: int, data: bytes) -> None:
        self.engine.write_line(line_addr, data)

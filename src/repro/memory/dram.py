"""Untrusted main memory.

Everything stored here is outside the security boundary (paper Figure 4):
the adversary can read it, rewrite it, and replay old values.  The secure
engines therefore only ever hand this module ciphertext (or data from
explicitly-plaintext regions, §4.3).

The store is sparse — a dict of line-index to ``bytes`` — so simulating a
1 GB address space costs only what is actually touched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.intmath import is_power_of_two


@dataclass
class DRAMStats:
    """Access counters, in line-sized transactions."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class DRAM:
    """A byte-addressable main memory accessed in whole lines.

    ``latency`` is the access time in CPU cycles (the paper's typical value
    is 100); the functional simulator charges it per line transaction.
    """

    def __init__(self, line_bytes: int = 128, latency: int = 100,
                 fill_byte: int = 0):
        if not is_power_of_two(line_bytes):
            raise ConfigurationError(f"line size {line_bytes} not a power of 2")
        if latency < 0:
            raise ConfigurationError("latency must be non-negative")
        self.line_bytes = line_bytes
        self.latency = latency
        self.fill_byte = fill_byte
        self.stats = DRAMStats()
        self._lines: dict[int, bytes] = {}

    def _line_index(self, addr: int) -> int:
        if addr % self.line_bytes:
            raise ConfigurationError(
                f"address {addr:#x} is not aligned to the "
                f"{self.line_bytes}-byte line size"
            )
        return addr // self.line_bytes

    def read_line(self, addr: int) -> bytes:
        """Read the line starting at the aligned address ``addr``."""
        index = self._line_index(addr)
        self.stats.reads += 1
        return self._lines.get(index, bytes([self.fill_byte]) * self.line_bytes)

    def write_line(self, addr: int, data: bytes) -> None:
        """Write one full line at the aligned address ``addr``."""
        if len(data) != self.line_bytes:
            raise ConfigurationError(
                f"line write of {len(data)} bytes, expected {self.line_bytes}"
            )
        index = self._line_index(addr)
        self.stats.writes += 1
        self._lines[index] = bytes(data)

    # -- raw access for loaders and adversaries (not on the timed path) ----

    def peek(self, addr: int, size: int) -> bytes:
        """Read raw bytes without touching counters (adversary/test access)."""
        out = bytearray()
        while size:
            base = (addr // self.line_bytes) * self.line_bytes
            line = self._lines.get(
                base // self.line_bytes,
                bytes([self.fill_byte]) * self.line_bytes,
            )
            offset = addr - base
            take = min(size, self.line_bytes - offset)
            out.extend(line[offset : offset + take])
            addr += take
            size -= take
        return bytes(out)

    def poke(self, addr: int, data: bytes) -> None:
        """Write raw bytes without touching counters (loader/adversary)."""
        position = 0
        while position < len(data):
            base = (addr // self.line_bytes) * self.line_bytes
            index = base // self.line_bytes
            line = bytearray(
                self._lines.get(
                    index, bytes([self.fill_byte]) * self.line_bytes
                )
            )
            offset = addr - base
            take = min(len(data) - position, self.line_bytes - offset)
            line[offset : offset + take] = data[position : position + take]
            self._lines[index] = bytes(line)
            addr += take
            position += take

    @property
    def resident_lines(self) -> int:
        """Number of distinct lines ever written (sparse footprint)."""
        return len(self._lines)

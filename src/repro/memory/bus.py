"""The processor -> memory bus: the attack surface.

Every transaction that crosses the chip boundary goes through here, which
gives us two things:

* traffic accounting (Figure 9 measures SNC-induced extra traffic as a
  percentage of L2<->memory traffic), and
* a tap point for :mod:`repro.attacks` — the paper's adversary "taps the
  communication channel such as the system bus", so attack code subscribes
  to the bus rather than reaching into simulator internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable


class TransactionKind(enum.Enum):
    """What a bus transaction carries, for traffic attribution."""

    INSTRUCTION_READ = "ifetch"
    DATA_READ = "read"
    DATA_WRITE = "write"
    SEQNUM_READ = "seqnum_read"
    SEQNUM_WRITE = "seqnum_write"
    MAC_READ = "mac_read"
    MAC_WRITE = "mac_write"


@dataclass(frozen=True)
class BusTransaction:
    """One line-sized transfer as seen on the external bus."""

    kind: TransactionKind
    addr: int
    payload: bytes

    @property
    def is_write(self) -> bool:
        return self.kind in (
            TransactionKind.DATA_WRITE,
            TransactionKind.SEQNUM_WRITE,
            TransactionKind.MAC_WRITE,
        )


BusObserver = Callable[[BusTransaction], None]


class MemoryBus:
    """Records and publishes every off-chip transaction."""

    def __init__(self) -> None:
        self._observers: list[BusObserver] = []
        self.counts: dict[TransactionKind, int] = {
            kind: 0 for kind in TransactionKind
        }
        self.bytes_moved: dict[TransactionKind, int] = {
            kind: 0 for kind in TransactionKind
        }

    def attach(self, observer: BusObserver) -> None:
        """Subscribe to all future transactions (adversary tap, loggers)."""
        self._observers.append(observer)

    def detach(self, observer: BusObserver) -> None:
        self._observers.remove(observer)

    def record(self, kind: TransactionKind, addr: int, payload: bytes) -> None:
        """Log one transaction and publish it to observers."""
        self.counts[kind] += 1
        self.bytes_moved[kind] += len(payload)
        if self._observers:
            transaction = BusTransaction(kind, addr, payload)
            for observer in self._observers:
                observer(transaction)

    # -- traffic summaries used by the Figure 9 experiment ------------------

    @property
    def program_transactions(self) -> int:
        """L2<->memory traffic for program lines (the Figure 9 denominator)."""
        return (
            self.counts[TransactionKind.INSTRUCTION_READ]
            + self.counts[TransactionKind.DATA_READ]
            + self.counts[TransactionKind.DATA_WRITE]
        )

    @property
    def seqnum_transactions(self) -> int:
        """SNC spill/fill traffic (the Figure 9 numerator)."""
        return (
            self.counts[TransactionKind.SEQNUM_READ]
            + self.counts[TransactionKind.SEQNUM_WRITE]
        )

    @property
    def total_transactions(self) -> int:
        return sum(self.counts.values())

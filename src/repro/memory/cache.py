"""A generic set-associative write-back cache with true LRU.

Used three ways in this repo:

* functionally, holding real line bytes, for the L1/L2 of the
  :class:`~repro.secure.processor.SecureProcessor`;
* tag-only, for the fast trace-driven L2 used by the evaluation harness
  (:class:`TagOnlyCache`, array-based for speed);
* as the backing structure the paper requires for keeping each L2 line's
  *virtual* address alongside its tag (§4: "the VA of each L2 cache line
  should be kept within the L2 cache"), carried here in ``CacheLine.meta``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.utils.intmath import is_power_of_two, log2_exact


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    name: str = "cache"

    def __post_init__(self) -> None:
        for attr in ("size_bytes", "assoc", "line_bytes"):
            value = getattr(self, attr)
            if value <= 0 or not is_power_of_two(value):
                raise ConfigurationError(
                    f"{self.name}: {attr}={value} must be a positive power of 2"
                )
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.assoc

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.line_bytes)

    @property
    def index_bits(self) -> int:
        return log2_exact(self.n_sets)


@dataclass
class CacheLine:
    """One resident line: tag plus optional payload and metadata."""

    line_addr: int
    data: bytearray | None = None
    dirty: bool = False
    meta: dict[str, Any] = field(default_factory=dict)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Set-associative cache with per-set true-LRU replacement.

    The cache stores *lines*; callers address it by any byte address and the
    cache masks off the offset.  It does not fetch on miss — the memory
    hierarchy orchestrates the miss path — it only answers lookups and
    accepts fills, returning the victim on eviction.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        # Each set is an LRU-ordered list (index 0 = LRU, last = MRU).
        self._sets: list[list[CacheLine]] = [
            [] for _ in range(config.n_sets)
        ]

    def _line_addr(self, addr: int) -> int:
        return addr & ~(self.config.line_bytes - 1)

    def _set_for(self, line_addr: int) -> list[CacheLine]:
        index = (line_addr >> self.config.offset_bits) % self.config.n_sets
        return self._sets[index]

    def lookup(self, addr: int) -> CacheLine | None:
        """Return the resident line (promoting it to MRU), or None on miss."""
        line_addr = self._line_addr(addr)
        cache_set = self._set_for(line_addr)
        for position, line in enumerate(cache_set):
            if line.line_addr == line_addr:
                self.stats.hits += 1
                cache_set.append(cache_set.pop(position))
                return line
        self.stats.misses += 1
        return None

    def probe(self, addr: int) -> CacheLine | None:
        """Like lookup but with no LRU update and no stats (for tests/tools)."""
        line_addr = self._line_addr(addr)
        for line in self._set_for(line_addr):
            if line.line_addr == line_addr:
                return line
        return None

    def fill(self, addr: int, data: bytearray | None = None,
             dirty: bool = False, meta: dict[str, Any] | None = None
             ) -> CacheLine | None:
        """Insert a line (as MRU); return the evicted victim if the set was full.

        The caller must not fill an address that is already resident — that
        would create duplicates; use lookup first.
        """
        line_addr = self._line_addr(addr)
        cache_set = self._set_for(line_addr)
        victim = None
        if len(cache_set) >= self.config.assoc:
            victim = cache_set.pop(0)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
        cache_set.append(
            CacheLine(line_addr, data, dirty, dict(meta or {}))
        )
        return victim

    def invalidate(self, addr: int) -> CacheLine | None:
        """Drop a line without writing it back; return it if it was present."""
        line_addr = self._line_addr(addr)
        cache_set = self._set_for(line_addr)
        for position, line in enumerate(cache_set):
            if line.line_addr == line_addr:
                return cache_set.pop(position)
        return None

    def drain_dirty(self) -> list[CacheLine]:
        """Remove and return every dirty line (cache flush on context switch)."""
        drained = []
        for cache_set in self._sets:
            keep = []
            for line in cache_set:
                if line.dirty:
                    drained.append(line)
                else:
                    keep.append(line)
            cache_set[:] = keep
        return drained

    def resident_lines(self) -> list[CacheLine]:
        """All resident lines, LRU order within each set (diagnostics)."""
        return [line for cache_set in self._sets for line in cache_set]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)


class TagOnlyCache:
    """A fast tag-only cache for trace-driven evaluation.

    Same geometry and LRU policy as :class:`SetAssociativeCache` but holds
    only line indices and dirty bits, with the hot path written as plain
    list operations so the Figure-3..10 sweeps (millions of references)
    stay cheap in pure Python.

    Addresses are given as *line indices*, not byte addresses.
    """

    __slots__ = ("n_sets", "assoc", "_tags", "_dirty", "hits", "misses",
                 "evictions", "writebacks")

    def __init__(self, n_lines: int, assoc: int):
        if n_lines <= 0 or assoc <= 0 or n_lines % assoc:
            raise ConfigurationError("assoc must divide the line count")
        if not is_power_of_two(n_lines // assoc):
            # The set count must be a power of two for modulo indexing to
            # model real index bits; the line count itself may be odd-sized
            # (the paper's 384KB 6-way L2 is 3072 lines over 512 sets).
            raise ConfigurationError("the set count must be a power of 2")
        self.n_sets = n_lines // assoc
        self.assoc = assoc
        self._tags: list[list[int]] = [[] for _ in range(self.n_sets)]
        self._dirty: list[set[int]] = [set() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def access(self, line_index: int, is_write: bool
               ) -> tuple[bool, int | None]:
        """Touch ``line_index``; return ``(hit, dirty_victim_line_or_None)``.

        Miss handling is fetch-on-miss with write-allocate, matching the
        functional hierarchy.
        """
        set_index = line_index % self.n_sets
        tags = self._tags[set_index]
        try:
            position = tags.index(line_index)
        except ValueError:
            position = -1
        if position >= 0:
            self.hits += 1
            if position != len(tags) - 1:
                tags.append(tags.pop(position))
            if is_write:
                self._dirty[set_index].add(line_index)
            return True, None
        self.misses += 1
        victim_dirty: int | None = None
        if len(tags) >= self.assoc:
            victim = tags.pop(0)
            self.evictions += 1
            if victim in self._dirty[set_index]:
                self._dirty[set_index].discard(victim)
                self.writebacks += 1
                victim_dirty = victim
        tags.append(line_index)
        if is_write:
            self._dirty[set_index].add(line_index)
        return False, victim_dirty

    def access_block(self, lines, writes, out_kinds, out_lines, out_aux,
                     kind_read: int, kind_alloc: int, kind_writeback: int,
                     current_task: int = 0,
                     line_owner: dict[int, int] | None = None,
                     ) -> tuple[int, int, int]:
        """Touch a whole block of references in one call, appending the
        miss/writeback events straight into the caller's output columns.

        ``lines``/``writes`` are parallel columns (any int sequences; in
        practice the typed arrays a
        :meth:`~repro.workloads.sources.WorkloadSource.stream_blocks`
        block carries).  For every reference this performs exactly the
        state transitions :meth:`access` would, and appends exactly the
        events the record loop would emit for it — a read or allocate
        miss event ``(kind, line, 0)`` followed, when the fill evicted a
        dirty victim, by ``(kind_writeback, victim, owner)`` — with every
        attribute lookup hoisted out of the loop and no per-event tuples.

        ``line_owner`` resolves each victim's owner tag (``pop(victim,
        current_task)``) and records ``current_task`` as the owner of
        every filled line, exactly like the scenario record loop; pass
        ``None`` for single-task streams, where the owner is always
        ``current_task`` and the map would be pure overhead.  The caller
        guarantees a block never spans a context switch, so one
        ``current_task`` covers the whole call.

        Returns ``(read_misses, allocate_misses, writebacks)`` for the
        block, so the caller can attribute them to the measurement
        window (a block never spans the warmup boundary either; the
        recorder splits it there).  Instance counters are updated in
        bulk at the end.
        """
        n_sets = self.n_sets
        assoc = self.assoc
        all_tags = self._tags
        all_dirty = self._dirty
        append_kind = out_kinds.append
        append_line = out_lines.append
        append_aux = out_aux.append
        hits = misses = evictions = 0
        read_misses = allocate_misses = writebacks = 0
        owned = line_owner is not None
        for line, is_write in zip(lines, writes):
            set_index = line % n_sets
            tags = all_tags[set_index]
            # `in`-first beats try/except index(): misses dominate these
            # streams (init phases are all-miss) and raising ValueError
            # per miss costs more than a second short-list scan per hit.
            if line in tags:
                hits += 1
                if tags[-1] != line:
                    tags.remove(line)
                    tags.append(line)
                if is_write:
                    all_dirty[set_index].add(line)
                continue
            misses += 1
            victim_event = -1
            if len(tags) >= assoc:
                victim = tags.pop(0)
                evictions += 1
                dirty = all_dirty[set_index]
                if victim in dirty:
                    dirty.remove(victim)
                    writebacks += 1
                    victim_event = victim
            tags.append(line)
            if owned:
                line_owner[line] = current_task
            if is_write:
                all_dirty[set_index].add(line)
                allocate_misses += 1
                append_kind(kind_alloc)
            else:
                read_misses += 1
                append_kind(kind_read)
            append_line(line)
            append_aux(0)
            if victim_event >= 0:
                append_kind(kind_writeback)
                append_line(victim_event)
                append_aux(
                    line_owner.pop(victim_event, current_task)
                    if owned else current_task
                )
        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        self.writebacks += writebacks
        return read_misses, allocate_misses, writebacks

    def access_block_counts(self, lines, writes) -> tuple[int, int]:
        """Like :meth:`access_block` but for a cache whose *events* nobody
        consumes (the Figure 8 alternate L2: only its measured miss counts
        are recorded).  Skips dirty-bit bookkeeping entirely — dirty state
        never influences hits, misses or LRU order, only writeback events,
        which this path does not emit — so ``writebacks`` stays 0 here.

        Returns ``(read_misses, allocate_misses)`` for the block.
        """
        n_sets = self.n_sets
        assoc = self.assoc
        all_tags = self._tags
        hits = misses = evictions = 0
        read_misses = allocate_misses = 0
        for line, is_write in zip(lines, writes):
            tags = all_tags[line % n_sets]
            if line in tags:
                hits += 1
                if tags[-1] != line:
                    tags.remove(line)
                    tags.append(line)
                continue
            misses += 1
            if len(tags) >= assoc:
                del tags[0]
                evictions += 1
            tags.append(line)
            if is_write:
                allocate_misses += 1
            else:
                read_misses += 1
        self.hits += hits
        self.misses += misses
        self.evictions += evictions
        return read_misses, allocate_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

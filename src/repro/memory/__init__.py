"""Memory-system substrate: DRAM, caches, write buffer, and the bus."""

from repro.memory.bus import (
    BusTransaction,
    MemoryBus,
    TransactionKind,
)
from repro.memory.cache import (
    CacheConfig,
    CacheLine,
    CacheStats,
    SetAssociativeCache,
    TagOnlyCache,
)
from repro.memory.dram import DRAM, DRAMStats
from repro.memory.hierarchy import (
    HierarchyStats,
    LineEngine,
    LineKind,
    MemoryHierarchy,
    default_l1_config,
    default_l2_config,
)
from repro.memory.write_buffer import WriteBuffer, WriteBufferStats

__all__ = [
    "BusTransaction",
    "CacheConfig",
    "CacheLine",
    "CacheStats",
    "DRAM",
    "DRAMStats",
    "HierarchyStats",
    "LineEngine",
    "LineKind",
    "MemoryBus",
    "MemoryHierarchy",
    "SetAssociativeCache",
    "TagOnlyCache",
    "TransactionKind",
    "WriteBuffer",
    "WriteBufferStats",
    "default_l1_config",
    "default_l2_config",
]

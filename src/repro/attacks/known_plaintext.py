"""The constant-seed leak — §3.4's 'Disadvantage', demonstrated.

If the pad for a location never changes, two ciphertexts of that location
leak the XOR of their plaintexts without touching the key::

    C1 = D1 xor E_K(seed)
    C2 = D2 xor E_K(seed)
    C1 xor C2 == D1 xor D2

Against low-entropy data (counters, flags, ASCII) this is devastating: the
paper's example is a location holding 0, 1, 2, ... whose ciphertext stream
is ``E xor 0, E xor 1, E xor 2`` for a constant ``E`` — "with little
effort, the ciphertexts stored in memory can be cracked".

The attack functions here are what the sequence-number machinery defeats:
:func:`xor_leak` works against a constant-seed engine and returns garbage
against the real OTP engine, which is exactly what the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitops import xor_bytes


def xor_leak(ciphertext_1: bytes, ciphertext_2: bytes) -> bytes:
    """The pad cancels: returns D1 xor D2 if the two ciphertexts were
    encrypted with the same pad."""
    return xor_bytes(ciphertext_1, ciphertext_2)


@dataclass(frozen=True)
class CounterRecovery:
    """Result of :func:`recover_counter_steps`."""

    steps: list[int]
    consistent: bool  # True if the stream matched the counter hypothesis


def recover_counter_steps(ciphertexts: list[bytes],
                          word_bytes: int = 4) -> CounterRecovery:
    """Try to read a counter through constant-pad encryption.

    Given successive ciphertexts of a location suspected to hold a small
    counter, the XOR of consecutive snapshots equals ``n xor (n+step)``;
    for small values this is recognisable without any key material.  The
    function reports the inferred steps and whether the whole stream is
    consistent with a monotonically increasing counter starting anywhere
    in [0, 2^16).
    """
    if len(ciphertexts) < 2:
        raise ValueError("need at least two snapshots")
    word_masks = []
    for earlier, later in zip(ciphertexts, ciphertexts[1:]):
        delta = xor_bytes(earlier[:word_bytes], later[:word_bytes])
        word_masks.append(int.from_bytes(delta, "big"))
    # Hypothesis search: a start value whose increments produce the masks.
    for start in range(1 << 16):
        value = start
        steps = []
        for mask in word_masks:
            # n xor (n+s) == mask  for some small positive s?
            for step in range(1, 9):
                if (value ^ (value + step)) == mask:
                    steps.append(step)
                    value += step
                    break
            else:
                break
        if len(steps) == len(word_masks):
            return CounterRecovery(steps=steps, consistent=True)
    return CounterRecovery(steps=[], consistent=False)

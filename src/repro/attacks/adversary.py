"""The adversary of the paper's threat model (§1): everything outside the
processor die is theirs.

They can tap the bus (:class:`BusTap`), and read, rewrite, and replay main
memory at will (:class:`MemoryAdversary`).  What they cannot do is see
inside the chip — so every attack in this package works only with bus
transactions and DRAM contents, never with simulator internals that map to
on-chip state.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.memory.bus import BusTransaction, MemoryBus, TransactionKind
from repro.memory.dram import DRAM


class BusTap:
    """A passive wiretap on the processor-memory bus."""

    def __init__(self, bus: MemoryBus):
        self.transactions: list[BusTransaction] = []
        bus.attach(self.transactions.append)

    def payloads(self, kind: TransactionKind | None = None) -> list[bytes]:
        return [
            t.payload for t in self.transactions
            if kind is None or t.kind is kind
        ]

    def contains(self, needle: bytes) -> bool:
        """Did ``needle`` ever cross the bus inside any payload?"""
        return any(needle in t.payload for t in self.transactions)

    def writes_to(self, addr: int) -> list[bytes]:
        """Every payload written to one address, oldest first."""
        return [
            t.payload for t in self.transactions
            if t.is_write and t.addr == addr
        ]

    def repeated_payloads(self) -> dict[bytes, int]:
        """Payloads observed more than once — the raw material of
        pattern analysis (paper §3.4)."""
        counts = Counter(t.payload for t in self.transactions)
        return {
            payload: count for payload, count in counts.items() if count > 1
        }


@dataclass
class Snapshot:
    """A recorded (address, line) pair, for replay."""

    addr: int
    line: bytes


class MemoryAdversary:
    """Active control over untrusted memory."""

    def __init__(self, dram: DRAM):
        self.dram = dram
        self._snapshots: dict[int, Snapshot] = {}

    def record(self, addr: int) -> Snapshot:
        """Save the current ciphertext at ``addr`` for later replay."""
        snapshot = Snapshot(addr, self.dram.read_line(addr))
        self._snapshots[addr] = snapshot
        return snapshot

    def replay(self, addr: int) -> None:
        """Restore the previously recorded line — the replay attack."""
        snapshot = self._snapshots[addr]
        self.dram.write_line(addr, snapshot.line)

    def splice(self, source_addr: int, target_addr: int) -> None:
        """Copy a valid ciphertext line to a different address — the
        splicing attack."""
        self.dram.write_line(target_addr, self.dram.read_line(source_addr))

    def corrupt(self, addr: int, byte_offset: int = 0) -> None:
        """Flip one bit — the spoofing/tamper attack."""
        line = bytearray(self.dram.read_line(addr))
        line[byte_offset] ^= 0x01
        self.dram.write_line(addr, bytes(line))

    def read(self, addr: int, size: int) -> bytes:
        """Read raw memory (always possible for the adversary)."""
        return self.dram.peek(addr, size)

"""Ciphertext pattern analysis — the §3.4 'Advantage' argument as code.

Memory is full of repeated values (the paper cites the frequent-value
literature).  Under XOM's direct (ECB-style) encryption, equal plaintext
blocks at *different* addresses produce equal ciphertext blocks, so the
repetition structure of memory survives encryption and is visible to a bus
or memory adversary.  Under one-time-pad encryption with address-derived
seeds, every location's pad differs, and the structure vanishes.

These functions quantify that: given a memory image, how much block-level
repetition is visible?
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass


@dataclass(frozen=True)
class PatternReport:
    """Repetition statistics of a ciphertext image."""

    total_blocks: int
    distinct_blocks: int
    repeated_blocks: int  # blocks appearing more than once, counted once
    repetition_fraction: float  # fraction of blocks that are non-unique
    entropy_bits_per_block: float  # Shannon entropy of the block histogram

    @property
    def looks_random(self) -> bool:
        """A healthy ciphertext image has (almost) no repeated blocks.

        A tiny tolerance allows birthday-bound collisions on small blocks.
        """
        return self.repetition_fraction < 0.01


def analyze_blocks(image: bytes, block_size: int = 8) -> PatternReport:
    """Histogram the image's cipher blocks and report repetition."""
    if block_size <= 0 or len(image) % block_size:
        raise ValueError(
            f"image of {len(image)} bytes is not whole {block_size}B blocks"
        )
    blocks = [
        image[i : i + block_size] for i in range(0, len(image), block_size)
    ]
    counts = Counter(blocks)
    total = len(blocks)
    repeated = sum(1 for c in counts.values() if c > 1)
    non_unique = sum(c for c in counts.values() if c > 1)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return PatternReport(
        total_blocks=total,
        distinct_blocks=len(counts),
        repeated_blocks=repeated,
        repetition_fraction=non_unique / total if total else 0.0,
        entropy_bits_per_block=entropy,
    )


def matching_lines(image_a: bytes, image_b: bytes,
                   line_bytes: int = 128) -> int:
    """How many line positions hold identical ciphertext across two images.

    Used to show that writing the same plaintext twice (or at two places)
    is visible under direct encryption and invisible under OTP."""
    if len(image_a) != len(image_b):
        raise ValueError("images must be the same length")
    return sum(
        1
        for offset in range(0, len(image_a), line_bytes)
        if image_a[offset : offset + line_bytes]
        == image_b[offset : offset + line_bytes]
    )

"""Adversary models and the attacks of the XOM threat model.

Everything here works strictly from outside the security boundary: bus
transactions and untrusted memory.  The test suite runs each attack twice —
against the configuration it defeats and against the one that stops it."""

from repro.attacks.adversary import BusTap, MemoryAdversary, Snapshot
from repro.attacks.known_plaintext import (
    CounterRecovery,
    recover_counter_steps,
    xor_leak,
)
from repro.attacks.pattern import (
    PatternReport,
    analyze_blocks,
    matching_lines,
)

__all__ = [
    "BusTap",
    "CounterRecovery",
    "MemoryAdversary",
    "PatternReport",
    "Snapshot",
    "analyze_blocks",
    "matching_lines",
    "recover_counter_steps",
    "xor_leak",
]

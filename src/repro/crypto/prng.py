"""Deterministic pseudo-random generators.

Two flavours:

* :class:`HashDRBG` — a SHA-256 counter DRBG used wherever "randomness" has
  security meaning inside the simulation (RSA key generation, session keys,
  interrupt mutation values).  Deterministic given its seed, so every test
  and experiment is exactly reproducible.
* :func:`simulation_rng` — a convenience constructor for plain
  ``random.Random`` used by workload generators, where only statistical
  properties matter.
"""

from __future__ import annotations

import random

from repro.crypto.sha import sha256


class HashDRBG:
    """A minimal SHA-256 counter DRBG (deterministic random bit generator)."""

    def __init__(self, seed: bytes | str | int):
        if isinstance(seed, str):
            seed = seed.encode()
        elif isinstance(seed, int):
            seed = seed.to_bytes(16, "big", signed=False)
        self._key = sha256(b"repro-drbg-init" + seed)
        self._counter = 0

    def random_bytes(self, length: int) -> bytes:
        """Return ``length`` pseudo-random bytes."""
        out = bytearray()
        while len(out) < length:
            block = sha256(self._key + self._counter.to_bytes(8, "big"))
            self._counter += 1
            out.extend(block)
        return bytes(out[:length])

    def random_int(self, bits: int) -> int:
        """Return a uniform integer in ``[0, 2**bits)``."""
        length = (bits + 7) // 8
        value = int.from_bytes(self.random_bytes(length), "big")
        return value >> (8 * length - bits)

    def random_odd_int(self, bits: int) -> int:
        """Return an odd integer with the top bit set — a prime candidate."""
        value = self.random_int(bits)
        return value | (1 << (bits - 1)) | 1

    def random_below(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` by rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        bits = bound.bit_length()
        while True:
            candidate = self.random_int(bits)
            if candidate < bound:
                return candidate


def simulation_rng(seed: int) -> random.Random:
    """A seeded ``random.Random`` for workload generation (non-security)."""
    return random.Random(seed)

"""From-scratch cryptographic substrate for the secure-processor simulator.

Everything the paper's trust model needs, with no external dependencies:
block ciphers (DES/3DES/AES), hashes (SHA-1/SHA-256), MACs, modes of
operation including the one-time-pad/counter mode that is the paper's
contribution, textbook RSA for vendor key exchange, and deterministic DRBGs
so simulations are reproducible.
"""

from repro.crypto.aes import AES
from repro.crypto.blockcipher import BlockCipher, IdentityCipher
from repro.crypto.des import DES, TripleDES
from repro.crypto.keys import CipherSuite, SymmetricKey
from repro.crypto.mac import cbc_mac, constant_time_equal, hmac_sha256
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ecb_decrypt,
    ecb_encrypt,
    otp_transform,
)
from repro.crypto.otp import PadStream, pad_for_seed
from repro.crypto.prng import HashDRBG, simulation_rng
from repro.crypto.rsa import (
    RSAKeyPair,
    RSAPrivateKey,
    RSAPublicKey,
    unwrap_key,
    wrap_key,
)
from repro.crypto.sha import sha1, sha256

__all__ = [
    "AES",
    "BlockCipher",
    "CipherSuite",
    "DES",
    "HashDRBG",
    "IdentityCipher",
    "PadStream",
    "RSAKeyPair",
    "RSAPrivateKey",
    "RSAPublicKey",
    "SymmetricKey",
    "TripleDES",
    "cbc_decrypt",
    "cbc_encrypt",
    "cbc_mac",
    "constant_time_equal",
    "ecb_decrypt",
    "ecb_encrypt",
    "hmac_sha256",
    "otp_transform",
    "pad_for_seed",
    "sha1",
    "sha256",
    "simulation_rng",
    "unwrap_key",
    "wrap_key",
]

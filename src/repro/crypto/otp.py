"""One-time-pad (counter-mode) keystream generation — the paper's equation 2/3.

The pad for a cache line is produced by encrypting a *seed* rather than the
data itself::

    pad_j = E_K(seed + j)          for the j-th cipher block of the line
    C     = D xor pad
    D     = C xor pad

Because the seed is known before (instruction fetch) or independently of
(data fetch, given the sequence number) the memory contents, pad generation
overlaps the DRAM access; only the final XOR sits on the critical path.

Seed *construction* — how virtual addresses and sequence numbers combine
into a unique integer per (line, version, chunk) — is the secure layer's
responsibility (:mod:`repro.secure.seeds`).  This module only turns a seed
into keystream bytes.
"""

from __future__ import annotations

from repro.crypto.blockcipher import BlockCipher
from repro.errors import CryptoError


def pad_for_seed(cipher: BlockCipher, seed: int, length: int) -> bytes:
    """Generate ``length`` keystream bytes from ``seed``.

    Block *j* of the stream is ``E_K(seed + j)``; ``length`` must be a whole
    number of cipher blocks, which is always true for cache lines.
    """
    size = cipher.block_size
    if length % size:
        raise CryptoError(
            f"pad length {length} is not a multiple of the {size}-byte block"
        )
    if seed < 0:
        raise CryptoError("seed must be non-negative")
    mask = (1 << (8 * size)) - 1
    blocks = []
    for j in range(length // size):
        block_seed = (seed + j) & mask
        blocks.append(cipher.encrypt_block(block_seed.to_bytes(size, "big")))
    return b"".join(blocks)


class PadStream:
    """An incremental pad generator for streaming uses (register spill areas).

    Keeps a block counter so successive calls never reuse keystream — the
    cardinal one-time-pad rule.
    """

    def __init__(self, cipher: BlockCipher, seed: int):
        self._cipher = cipher
        self._seed = seed
        self._next_block = 0

    @property
    def blocks_consumed(self) -> int:
        """How many cipher blocks of keystream have been emitted so far."""
        return self._next_block

    def take(self, length: int) -> bytes:
        """Return the next ``length`` keystream bytes (whole blocks only)."""
        size = self._cipher.block_size
        if length % size:
            raise CryptoError(
                f"pad length {length} is not a multiple of "
                f"the {size}-byte block"
            )
        start = self._seed + self._next_block
        self._next_block += length // size
        return pad_for_seed(self._cipher, start, length)

"""Message authentication codes for the memory-integrity extension.

The paper itself defers integrity verification to Gassend et al. (§2.2) and
only accelerates privacy; :mod:`repro.secure.integrity` implements the
deferred piece as an extension, built on these MACs.
"""

from __future__ import annotations

from repro.crypto.blockcipher import BlockCipher
from repro.crypto.sha import sha256
from repro.utils.bitops import xor_bytes

_HMAC_BLOCK = 64  # SHA-256 block size in bytes


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """RFC 2104 HMAC over SHA-256."""
    if len(key) > _HMAC_BLOCK:
        key = sha256(key)
    key = key.ljust(_HMAC_BLOCK, b"\x00")
    outer = xor_bytes(key, b"\x5c" * _HMAC_BLOCK)
    inner = xor_bytes(key, b"\x36" * _HMAC_BLOCK)
    return sha256(outer + sha256(inner + message))


def cbc_mac(cipher: BlockCipher, message: bytes) -> bytes:
    """Classic CBC-MAC, one block of output.

    Suitable here because every message is fixed-length (one cache line plus
    its address/version header), which is the setting where plain CBC-MAC is
    sound.
    """
    size = cipher.block_size
    if len(message) % size:
        message = message + b"\x00" * (size - len(message) % size)
    state = b"\x00" * size
    for offset in range(0, len(message), size):
        state = cipher.encrypt_block(
            xor_bytes(state, message[offset : offset + size])
        )
    return state


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two tags without early exit (hygiene for verification code)."""
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0

"""Key material and cipher construction for the secure-processor model.

Roles, following the paper's §2.1:

* The **processor** owns an asymmetric key pair; the private half never
  leaves the die.
* The **vendor** picks a per-program symmetric key, encrypts the program
  with it, and ships the key wrapped under the processor's public key.

:class:`CipherSuite` names the symmetric algorithm so the same program image
can be built for DES (the paper's running example), 3DES, or AES.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.aes import AES
from repro.crypto.blockcipher import BlockCipher
from repro.crypto.des import DES, TripleDES
from repro.crypto.prng import HashDRBG
from repro.errors import CryptoError


class CipherSuite(enum.Enum):
    """Symmetric cipher choices for program/data encryption."""

    DES = "des"
    TRIPLE_DES = "3des"
    AES128 = "aes128"
    AES256 = "aes256"

    @property
    def key_bytes(self) -> int:
        return _KEY_BYTES[self]

    @property
    def block_bytes(self) -> int:
        return 16 if self in (CipherSuite.AES128, CipherSuite.AES256) else 8

    def new_cipher(self, key: bytes) -> BlockCipher:
        """Instantiate the cipher; key length is validated by the cipher."""
        if self is CipherSuite.DES:
            return DES(key)
        if self is CipherSuite.TRIPLE_DES:
            return TripleDES(key)
        if self in (CipherSuite.AES128, CipherSuite.AES256):
            return AES(key)
        raise CryptoError(f"unknown cipher suite {self!r}")


_KEY_BYTES = {
    CipherSuite.DES: 8,
    CipherSuite.TRIPLE_DES: 24,
    CipherSuite.AES128: 16,
    CipherSuite.AES256: 32,
}


@dataclass(frozen=True)
class SymmetricKey:
    """A symmetric key tagged with the suite it belongs to."""

    suite: CipherSuite
    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != self.suite.key_bytes:
            raise CryptoError(
                f"{self.suite.value} needs {self.suite.key_bytes}-byte keys, "
                f"got {len(self.material)}"
            )

    def new_cipher(self) -> BlockCipher:
        return self.suite.new_cipher(self.material)

    @staticmethod
    def generate(suite: CipherSuite, seed: bytes | str | int) -> "SymmetricKey":
        """Deterministically derive a key (vendor-side convenience)."""
        rng = HashDRBG(seed if not isinstance(seed, int) else f"sym-{seed}")
        return SymmetricKey(suite, rng.random_bytes(suite.key_bytes))

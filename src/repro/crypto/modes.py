"""Block cipher modes of operation.

Three modes cover every use in the simulator:

* **ECB** — what XOM's "direct encryption" of a cache line amounts to; its
  value-pattern leakage is exactly the weakness §3.4 of the paper discusses
  and :mod:`repro.attacks.pattern` demonstrates.
* **CBC** — used when the vendor packages non-executable payloads and when
  evicted sequence-number groups are spilled to memory.
* **Counter/OTP** — the paper's contribution; the keystream generator itself
  lives in :mod:`repro.crypto.otp`, this module exposes it with the usual
  encrypt/decrypt signature.
"""

from __future__ import annotations

from repro.crypto.blockcipher import BlockCipher
from repro.crypto.otp import pad_for_seed
from repro.errors import CryptoError
from repro.utils.bitops import xor_bytes


def _check_aligned(cipher: BlockCipher, data: bytes, what: str) -> None:
    if len(data) % cipher.block_size:
        raise CryptoError(
            f"{what} length {len(data)} is not a multiple of the "
            f"{cipher.block_size}-byte block size"
        )


def ecb_encrypt(cipher: BlockCipher, plaintext: bytes) -> bytes:
    """Encrypt block-by-block with no chaining (XOM direct encryption)."""
    _check_aligned(cipher, plaintext, "plaintext")
    size = cipher.block_size
    return b"".join(
        cipher.encrypt_block(plaintext[i : i + size])
        for i in range(0, len(plaintext), size)
    )


def ecb_decrypt(cipher: BlockCipher, ciphertext: bytes) -> bytes:
    """Inverse of :func:`ecb_encrypt`."""
    _check_aligned(cipher, ciphertext, "ciphertext")
    size = cipher.block_size
    return b"".join(
        cipher.decrypt_block(ciphertext[i : i + size])
        for i in range(0, len(ciphertext), size)
    )


def cbc_encrypt(cipher: BlockCipher, iv: bytes, plaintext: bytes) -> bytes:
    """CBC encryption with an explicit IV (caller manages IV uniqueness)."""
    _check_aligned(cipher, plaintext, "plaintext")
    if len(iv) != cipher.block_size:
        raise CryptoError("IV must be exactly one block")
    size = cipher.block_size
    previous = iv
    out = []
    for i in range(0, len(plaintext), size):
        previous = cipher.encrypt_block(
            xor_bytes(previous, plaintext[i : i + size])
        )
        out.append(previous)
    return b"".join(out)


def cbc_decrypt(cipher: BlockCipher, iv: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`cbc_encrypt`."""
    _check_aligned(cipher, ciphertext, "ciphertext")
    if len(iv) != cipher.block_size:
        raise CryptoError("IV must be exactly one block")
    size = cipher.block_size
    previous = iv
    out = []
    for i in range(0, len(ciphertext), size):
        block = ciphertext[i : i + size]
        out.append(xor_bytes(previous, cipher.decrypt_block(block)))
        previous = block
    return b"".join(out)


def otp_transform(cipher: BlockCipher, seed: int, data: bytes) -> bytes:
    """Counter-mode transform: XOR ``data`` with the pad stream for ``seed``.

    Encryption and decryption are the same operation (equations 2 and 3 of
    the paper), which is why a single function suffices.
    """
    pad = pad_for_seed(cipher, seed, len(data))
    return xor_bytes(data, pad)

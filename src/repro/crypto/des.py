"""DES and Triple-DES, implemented from FIPS 46-3.

The paper's running example encrypts with DES: its 64-bit block pairs two
32-bit instructions per ciphertext block (§3.4.1), and the 50-cycle crypto
latency is justified by gigabit DES ASICs.  This implementation transcribes
the FIPS tables verbatim (see :func:`repro.utils.bitops.permute_bits` for the
bit-numbering convention) and then flattens the round function into
precomputed SP-boxes for speed, which is the classic software optimisation.

Verified against the standard known-answer vector
``DES(0x133457799BBCDFF1, 0x0123456789ABCDEF) == 0x85E813540F0AB405``.
"""

from __future__ import annotations

from repro.crypto.blockcipher import BlockCipher
from repro.errors import CryptoError
from repro.utils.bitops import permute_bits

# --- FIPS 46-3 tables (1-based, MSB-first bit numbering) -------------------

_IP = (
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
)

_FP = (
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
)

_PC1 = (
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
)

_PC2 = (
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
)

_SHIFTS = (1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1)

_P = (
    16, 7, 20, 21,
    29, 12, 28, 17,
    1, 15, 23, 26,
    5, 18, 31, 10,
    2, 8, 24, 14,
    32, 27, 3, 9,
    19, 13, 30, 6,
    22, 11, 4, 25,
)

_SBOXES = (
    (
        (14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7),
        (0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8),
        (4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0),
        (15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13),
    ),
    (
        (15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10),
        (3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5),
        (0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15),
        (13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9),
    ),
    (
        (10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8),
        (13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1),
        (13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7),
        (1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12),
    ),
    (
        (7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15),
        (13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9),
        (10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4),
        (3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14),
    ),
    (
        (2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9),
        (14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6),
        (4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14),
        (11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3),
    ),
    (
        (12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11),
        (10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8),
        (9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6),
        (4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13),
    ),
    (
        (4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1),
        (13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6),
        (1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2),
        (6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12),
    ),
    (
        (13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7),
        (1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2),
        (7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8),
        (2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11),
    ),
)


def _build_sp_boxes() -> tuple[tuple[int, ...], ...]:
    """Fuse each S-box with the P permutation into a 6-bit -> 32-bit table."""
    sp_boxes = []
    for box_index, box in enumerate(_SBOXES):
        table = []
        for six_bits in range(64):
            row = ((six_bits >> 4) & 0b10) | (six_bits & 1)
            col = (six_bits >> 1) & 0xF
            nibble = box[row][col]
            # Place the 4-bit output at this S-box's slot in the 32-bit word.
            word = nibble << (28 - 4 * box_index)
            table.append(permute_bits(word, _P, 32))
        sp_boxes.append(tuple(table))
    return tuple(sp_boxes)


_SP = _build_sp_boxes()


def _expand_chunks(r: int) -> tuple[int, ...]:
    """The E expansion, emitted directly as eight 6-bit chunks.

    FIPS E maps the 32-bit half into eight overlapping 6-bit groups; a 34-bit
    window ``R[32] R[1..32] R[1]`` makes each group a plain shift-and-mask.
    """
    window = ((r & 1) << 33) | (r << 1) | (r >> 31)
    return tuple((window >> (28 - 4 * i)) & 0x3F for i in range(8))


class DES(BlockCipher):
    """Single DES with a 64-bit (56 effective bits) key."""

    block_size = 8

    def __init__(self, key: bytes):
        if len(key) != 8:
            raise CryptoError(f"DES key must be 8 bytes, got {len(key)}")
        self.key = key
        self._round_keys = self._key_schedule(int.from_bytes(key, "big"))

    @staticmethod
    def _key_schedule(key: int) -> tuple[tuple[int, ...], ...]:
        """Derive the 16 round keys, each pre-split into eight 6-bit chunks."""
        cd = permute_bits(key, _PC1, 64)
        c, d = cd >> 28, cd & 0x0FFFFFFF
        round_keys = []
        for shift in _SHIFTS:
            c = ((c << shift) | (c >> (28 - shift))) & 0x0FFFFFFF
            d = ((d << shift) | (d >> (28 - shift))) & 0x0FFFFFFF
            k48 = permute_bits((c << 28) | d, _PC2, 56)
            chunks = tuple((k48 >> (42 - 6 * i)) & 0x3F for i in range(8))
            round_keys.append(chunks)
        return tuple(round_keys)

    def _crypt(self, block: int, keys) -> int:
        block = permute_bits(block, _IP, 64)
        left, right = block >> 32, block & 0xFFFFFFFF
        sp = _SP
        for round_key in keys:
            chunks = _expand_chunks(right)
            f = 0
            for i in range(8):
                f |= sp[i][chunks[i] ^ round_key[i]]
            left, right = right, left ^ f
        # Final swap is folded in by emitting (right, left).
        return permute_bits((right << 32) | left, _FP, 64)

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        value = self._crypt(int.from_bytes(block, "big"), self._round_keys)
        return value.to_bytes(8, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        value = self._crypt(
            int.from_bytes(block, "big"), tuple(reversed(self._round_keys))
        )
        return value.to_bytes(8, "big")


class TripleDES(BlockCipher):
    """EDE Triple-DES with a 16- or 24-byte key (two- or three-key variant)."""

    block_size = 8

    def __init__(self, key: bytes):
        if len(key) == 16:
            key = key + key[:8]
        if len(key) != 24:
            raise CryptoError(
                f"TripleDES key must be 16 or 24 bytes, got {len(key)}"
            )
        self._des1 = DES(key[:8])
        self._des2 = DES(key[8:16])
        self._des3 = DES(key[16:24])

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        return self._des3.encrypt_block(
            self._des2.decrypt_block(self._des1.encrypt_block(block))
        )

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        return self._des1.decrypt_block(
            self._des2.encrypt_block(self._des3.decrypt_block(block))
        )

"""SHA-1 and SHA-256 from scratch (FIPS 180-4).

Used by the integrity extension (per-line MACs and the Merkle hash tree of
the Gassend et al. related work) and by the deterministic DRBG that drives
RSA key generation.

The SHA-256 round constants are *derived* rather than transcribed: FIPS
defines them as the first 32 bits of the fractional parts of the cube roots
of the first 64 primes (square roots of the first 8 primes for the initial
hash value).  Deriving them with exact integer arithmetic removes any chance
of a silent table typo; the "abc" known-answer tests then validate the
whole construction.
"""

from __future__ import annotations

from repro.utils.bitops import rotl32, rotr32


def _first_primes(count: int) -> list[int]:
    primes: list[int] = []
    candidate = 2
    while len(primes) < count:
        if all(candidate % p for p in primes if p * p <= candidate):
            primes.append(candidate)
        candidate += 1
    return primes


def _integer_root(value: int, degree: int) -> int:
    """Floor of the ``degree``-th root of ``value`` via Newton iteration."""
    if value == 0:
        return 0
    guess = 1 << (value.bit_length() // degree + 1)
    while True:
        better = ((degree - 1) * guess + value // guess ** (degree - 1)) // degree
        if better >= guess:
            return guess
        guess = better


def _fractional_root_bits(prime: int, degree: int) -> int:
    """First 32 fractional bits of ``prime ** (1/degree)``, exactly."""
    scaled_root = _integer_root(prime << (degree * 32), degree)
    return scaled_root & 0xFFFFFFFF


_SHA256_H0 = tuple(_fractional_root_bits(p, 2) for p in _first_primes(8))
_SHA256_K = tuple(_fractional_root_bits(p, 3) for p in _first_primes(64))

_MASK32 = 0xFFFFFFFF


def _pad_message(message: bytes) -> bytes:
    """Merkle–Damgard strengthening shared by SHA-1 and SHA-256."""
    bit_length = len(message) * 8
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded)) % 64)
    return padded + bit_length.to_bytes(8, "big")


def sha256(message: bytes) -> bytes:
    """Return the 32-byte SHA-256 digest of ``message``."""
    h = list(_SHA256_H0)
    padded = _pad_message(message)
    for offset in range(0, len(padded), 64):
        block = padded[offset : offset + 64]
        w = [int.from_bytes(block[i : i + 4], "big") for i in range(0, 64, 4)]
        for t in range(16, 64):
            s0 = rotr32(w[t - 15], 7) ^ rotr32(w[t - 15], 18) ^ (w[t - 15] >> 3)
            s1 = rotr32(w[t - 2], 17) ^ rotr32(w[t - 2], 19) ^ (w[t - 2] >> 10)
            w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)
        a, b, c, d, e, f, g, hh = h
        for t in range(64):
            big_s1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (hh + big_s1 + ch + _SHA256_K[t] + w[t]) & _MASK32
            big_s0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (big_s0 + maj) & _MASK32
            hh, g, f, e = g, f, e, (d + temp1) & _MASK32
            d, c, b, a = c, b, a, (temp1 + temp2) & _MASK32
        h = [(x + y) & _MASK32 for x, y in zip(h, (a, b, c, d, e, f, g, hh))]
    return b"".join(x.to_bytes(4, "big") for x in h)


def sha1(message: bytes) -> bytes:
    """Return the 20-byte SHA-1 digest of ``message``.

    Included for completeness of the substrate (2003-era integrity designs
    used SHA-1); new code in this repo prefers :func:`sha256`.
    """
    h = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    padded = _pad_message(message)
    for offset in range(0, len(padded), 64):
        block = padded[offset : offset + 64]
        w = [int.from_bytes(block[i : i + 4], "big") for i in range(0, 64, 4)]
        for t in range(16, 80):
            w.append(rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = h
        for t in range(80):
            if t < 20:
                f, k = (b & c) | (~b & d), 0x5A827999
            elif t < 40:
                f, k = b ^ c ^ d, 0x6ED9EBA1
            elif t < 60:
                f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
            else:
                f, k = b ^ c ^ d, 0xCA62C1D6
            temp = (rotl32(a, 5) + f + e + k + w[t]) & _MASK32
            e, d, c, b, a = d, c, rotl32(b, 30), a, temp
        h = [(x + y) & _MASK32 for x, y in zip(h, (a, b, c, d, e))]
    return b"".join(x.to_bytes(4, "big") for x in h)

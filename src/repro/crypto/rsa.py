"""Textbook RSA for the vendor -> processor key-exchange protocol (§2.1).

The XOM distribution model: each processor owns an asymmetric key pair; the
vendor encrypts the program under a fast symmetric key ``Ks`` and ships
``Ks`` wrapped under the processor's public key.  The processor unwraps
``Ks`` exactly once at program start (slow) and uses it for every subsequent
line (fast) — the asymmetry the paper's §2.1 describes.

Key sizes here are simulation-scale (default 512 bits): the *protocol shape*
is what matters for the reproduction, and the primitives are still real
(Miller–Rabin primality, modular inverse via extended Euclid, random
non-zero padding for the wrap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prng import HashDRBG
from repro.errors import CryptoError, KeyExchangeError

_MILLER_RABIN_ROUNDS = 40


def _is_probable_prime(n: int, rng: HashDRBG) -> bool:
    """Miller–Rabin with random bases (plus a small-prime prefilter)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = 2 + rng.random_below(n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: HashDRBG) -> int:
    while True:
        candidate = rng.random_odd_int(bits)
        if _is_probable_prime(candidate, rng):
            return candidate


def _modinv(a: int, m: int) -> int:
    """Modular inverse by extended Euclid."""
    old_r, r = a % m, m
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    if old_r != 1:
        raise CryptoError("modular inverse does not exist")
    return old_s % m


@dataclass(frozen=True)
class RSAPublicKey:
    """The processor's public key, printed on the box (conceptually)."""

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def encrypt_int(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise CryptoError("message out of range for this modulus")
        return pow(m, self.e, self.n)


@dataclass(frozen=True)
class RSAPrivateKey:
    """The private half, burned into the processor die."""

    n: int
    d: int

    def decrypt_int(self, c: int) -> int:
        if not 0 <= c < self.n:
            raise CryptoError("ciphertext out of range for this modulus")
        return pow(c, self.d, self.n)


@dataclass(frozen=True)
class RSAKeyPair:
    public: RSAPublicKey
    private: RSAPrivateKey

    @staticmethod
    def generate(bits: int = 512, seed: bytes | str | int = 0) -> "RSAKeyPair":
        """Generate a deterministic key pair from ``seed``.

        Determinism lets every test and example reconstruct "the processor's
        burned-in key" without shipping key material in the repo.
        """
        if bits < 64:
            raise CryptoError("modulus below 64 bits cannot wrap a DES key")
        rng = HashDRBG(seed if not isinstance(seed, int) else f"rsa-{seed}-{bits}")
        e = 65537
        while True:
            p = _generate_prime(bits // 2, rng)
            q = _generate_prime(bits - bits // 2, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % e == 0:
                continue
            if n.bit_length() != bits:
                continue
            d = _modinv(e, phi)
            return RSAKeyPair(RSAPublicKey(n, e), RSAPrivateKey(n, d))


def wrap_key(public: RSAPublicKey, symmetric_key: bytes,
             rng: HashDRBG | None = None) -> int:
    """Encrypt a symmetric key under ``public`` with random non-zero padding.

    Layout (big-endian): ``0x02 | padding(nonzero) | 0x00 | key``, a
    PKCS#1-v1.5-shaped wrap sized to the modulus.
    """
    rng = rng or HashDRBG("repro-wrap-default")
    k = public.modulus_bytes
    if len(symmetric_key) > k - 11:
        raise KeyExchangeError(
            f"symmetric key of {len(symmetric_key)} bytes does not fit in a "
            f"{k}-byte modulus"
        )
    pad_len = k - 3 - len(symmetric_key)
    padding = bytearray()
    while len(padding) < pad_len:
        byte = rng.random_bytes(1)
        if byte != b"\x00":
            padding.extend(byte)
    blob = b"\x00\x02" + bytes(padding) + b"\x00" + symmetric_key
    return public.encrypt_int(int.from_bytes(blob, "big"))


def unwrap_key(private: RSAPrivateKey, wrapped: int) -> bytes:
    """Recover the symmetric key wrapped by :func:`wrap_key`."""
    k = (private.n.bit_length() + 7) // 8
    blob = private.decrypt_int(wrapped).to_bytes(k, "big")
    if blob[0:2] != b"\x00\x02":
        raise KeyExchangeError("bad wrap header — wrong processor key?")
    try:
        separator = blob.index(b"\x00", 2)
    except ValueError as exc:
        raise KeyExchangeError("malformed key wrap: no separator") from exc
    if separator < 10:
        raise KeyExchangeError("malformed key wrap: padding too short")
    return blob[separator + 1 :]

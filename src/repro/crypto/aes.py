"""AES-128/192/256, implemented from FIPS 197.

The paper's Figure 10 experiment swaps the 50-cycle DES pipeline for a
102-cycle unit representative of stronger ciphers such as AES.  The secure
engines accept any :class:`~repro.crypto.blockcipher.BlockCipher`, so this
module makes that experiment runnable on the functional path too.

Rather than transcribing the 256-entry S-box (an easy place to introduce a
silent typo), we *derive* it from its definition — multiplicative inversion
in GF(2^8) followed by the affine transform — and validate the whole cipher
against the FIPS 197 Appendix C known-answer vectors in the test suite.
"""

from __future__ import annotations

from repro.crypto.blockcipher import BlockCipher
from repro.errors import CryptoError


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES reduction polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
    return result & 0xFF


def _build_sbox() -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Construct the AES S-box and its inverse from first principles."""

    # Multiplicative inverse via log tables over the generator 3.
    log = [0] * 256
    antilog = [0] * 256
    value = 1
    for exponent in range(255):
        antilog[exponent] = value
        log[value] = exponent
        value = _gf_mul(value, 3)

    def inverse(x: int) -> int:
        if x == 0:
            return 0
        # log(1) == 0, so reduce the exponent mod 255 (antilog has period 255).
        return antilog[(255 - log[x]) % 255]

    def affine(x: int) -> int:
        result = 0x63
        for shift in range(5):
            rotated = ((x << shift) | (x >> (8 - shift))) & 0xFF
            result ^= rotated
        return result & 0xFF

    sbox = [affine(inverse(x)) for x in range(256)]
    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return tuple(sbox), tuple(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

_ROUNDS_BY_KEYLEN = {16: 10, 24: 12, 32: 14}


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


# Precomputed GF multiply tables for MixColumns / InvMixColumns.
_MUL2 = tuple(_xtime(x) for x in range(256))
_MUL3 = tuple(_xtime(x) ^ x for x in range(256))
_MUL9 = tuple(_gf_mul(x, 9) for x in range(256))
_MUL11 = tuple(_gf_mul(x, 11) for x in range(256))
_MUL13 = tuple(_gf_mul(x, 13) for x in range(256))
_MUL14 = tuple(_gf_mul(x, 14) for x in range(256))


class AES(BlockCipher):
    """AES with a 16, 24 or 32 byte key (AES-128/192/256)."""

    block_size = 16

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEYLEN:
            raise CryptoError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self.key = key
        self._rounds = _ROUNDS_BY_KEYLEN[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[bytes]:
        """FIPS 197 key expansion, returned as one 16-byte key per round."""
        nk = len(key) // 4
        words = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        rcon = 1
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            word = list(words[i - 1])
            if i % nk == 0:
                word = word[1:] + word[:1]
                word = [_SBOX[b] for b in word]
                word[0] ^= rcon
                rcon = _xtime(rcon)
            elif nk > 6 and i % nk == 4:
                word = [_SBOX[b] for b in word]
            words.append([w ^ p for w, p in zip(word, words[i - nk])])
        flat = bytes(b for word in words for b in word)
        return [flat[16 * r : 16 * r + 16] for r in range(self._rounds + 1)]

    # State layout: FIPS column-major — state[row + 4*col] == input[4*col + row]
    # is avoided by keeping the state as the flat input byte string and doing
    # ShiftRows over byte indices directly.

    @staticmethod
    def _add_round_key(state: list[int], round_key: bytes) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: list[int], box) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # Row r (bytes r, r+4, r+8, r+12 in column-major order) rotates left r.
        state[1], state[5], state[9], state[13] = (
            state[5], state[9], state[13], state[1],
        )
        state[2], state[6], state[10], state[14] = (
            state[10], state[14], state[2], state[6],
        )
        state[3], state[7], state[11], state[15] = (
            state[15], state[3], state[7], state[11],
        )

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        state[5], state[9], state[13], state[1] = (
            state[1], state[5], state[9], state[13],
        )
        state[10], state[14], state[2], state[6] = (
            state[2], state[6], state[10], state[14],
        )
        state[15], state[3], state[7], state[11] = (
            state[3], state[7], state[11], state[15],
        )

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = state[c : c + 4]
            state[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = state[c : c + 4]
            state[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_number in range(1, self._rounds):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_number])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        state = list(block)
        self._add_round_key(state, self._round_keys[self._rounds])
        for round_number in range(self._rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[round_number])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

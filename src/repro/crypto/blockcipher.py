"""Common interface for the from-scratch block ciphers.

The secure-processor engines (:mod:`repro.secure`) are written against this
interface so the encryption algorithm is a configuration choice: the paper
uses DES (64-bit blocks, matching its pairing of two 32-bit instructions per
ciphertext block) but notes that stronger ciphers such as AES apply directly
— at the cost of a longer latency parameter, which is exactly the Figure 10
experiment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import CryptoError


class BlockCipher(ABC):
    """A keyed pseudorandom permutation over fixed-size blocks."""

    #: Block size in bytes; subclasses must override.
    block_size: int = 0

    @abstractmethod
    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one block."""

    @abstractmethod
    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one block."""

    def _check_block(self, block: bytes) -> None:
        if len(block) != self.block_size:
            raise CryptoError(
                f"{type(self).__name__} requires {self.block_size}-byte "
                f"blocks, got {len(block)} bytes"
            )

    def encrypt_int(self, value: int) -> int:
        """Encrypt a block given as an unsigned integer (convenience)."""
        width = self.block_size
        return int.from_bytes(
            self.encrypt_block(value.to_bytes(width, "big")), "big"
        )

    def decrypt_int(self, value: int) -> int:
        """Decrypt a block given as an unsigned integer (convenience)."""
        width = self.block_size
        return int.from_bytes(
            self.decrypt_block(value.to_bytes(width, "big")), "big"
        )


class IdentityCipher(BlockCipher):
    """A no-op 'cipher' for plumbing tests and insecure-baseline plumbing.

    Never used on a secure path; exists so that the baseline processor can
    share the exact same code path as the secure ones with crypto disabled.
    """

    def __init__(self, block_size: int = 8):
        self.block_size = block_size

    def encrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        return block

    def decrypt_block(self, block: bytes) -> bytes:
        self._check_block(block)
        return block

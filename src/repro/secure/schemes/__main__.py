"""Registry completeness check: every registered scheme runs a program.

Run with ``python -m repro.secure.schemes``.  For each registered
:class:`~repro.secure.schemes.SchemeSpec`, a tiny store/load program is
executed end-to-end through :class:`~repro.secure.processor.SecureProcessor`
— vendor packaging, key unwrap, protected execution, writebacks through
the engine — and the output is verified.  Exits non-zero if any scheme
fails, so CI catches a spec whose layers drifted.
"""

from __future__ import annotations

import sys

from repro.cpu.assembler import assemble
from repro.secure.processor import SecureProcessor
from repro.secure.schemes import all_schemes
from repro.secure.software import package_program

#: Writes eight words, reads them back, prints the checksum — enough to
#: exercise instruction fetch, data reads, and dirty writebacks through
#: whatever engine the scheme builds.
_SOURCE = """
main:
    li   s0, 0
    li   t2, 8
    la   t1, buffer
    mov  t3, t1
fill:
    mul  t4, t2, t2
    sw   t4, 0(t3)
    addi t3, t3, 4
    addi t2, t2, -1
    bne  t2, zero, fill
    li   t2, 8
    mov  t3, t1
drain:
    lw   t4, 0(t3)
    add  s0, s0, t4
    addi t3, t3, 4
    addi t2, t2, -1
    bne  t2, zero, drain
    mov  a0, s0
    li   v0, 1
    syscall
    halt
    .data
buffer: .space 32
"""

_EXPECTED = str(sum(i * i for i in range(1, 9)))


def check_scheme(spec, plain) -> str | None:
    """Run one scheme end-to-end; return an error string or None."""
    cpu = SecureProcessor(key_seed="registry-check", engine_kind=spec.key)
    try:
        if spec.protection is None:
            report = cpu.run_plain(plain)
        else:
            program = package_program(
                plain, cpu.public_key, vendor_seed="registry-check",
                scheme=spec.protection,
            )
            report = cpu.run(program)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
        return f"raised {type(exc).__name__}: {exc}"
    if report.output != _EXPECTED:
        return f"output {report.output!r} != expected {_EXPECTED!r}"
    return None


def run_registry_check(verbose: bool = True) -> list[str]:
    """Check every registered scheme; returns the list of failures."""
    plain = assemble(_SOURCE, name="registry-check")
    failures = []
    for spec in all_schemes():
        error = check_scheme(spec, plain)
        if error is None:
            status = "ok"
        else:
            status = f"FAIL ({error})"
            failures.append(f"{spec.key}: {error}")
        if verbose:
            print(f"  {spec.key:<12} {spec.title:<32} {status}")
    return failures


def main() -> int:
    print(f"registry completeness check ({len(all_schemes())} schemes):")
    failures = run_registry_check()
    if failures:
        print(f"{len(failures)} scheme(s) failed", file=sys.stderr)
        return 1
    print("every registered scheme ran end-to-end")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

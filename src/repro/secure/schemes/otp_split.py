"""Scheme spec: the §4.2 split-sequence-number variant — one file, end to
end.

The paper's §4.2 observes that most lines are rewritten few times, so the
SNC need not store full-width sequence numbers: keep only a **small
per-line counter**, and when a line's counter overflows, retire the line
from one-time-pad treatment and fall back to XOM-style **direct
encryption** (the engine already has that path for the no-replacement
policy).  The trade: narrower entries mean more lines covered per SNC
byte, at the cost of a serial read path for the few hot-written lines that
exhaust their counter.

This module is the registry's extensibility proof: the complete scheme —
policy state machine, functional engine factory, timing state machine,
pricing, packaging binding — lives here and **nowhere else**.  It works in
``SecureProcessor.run`` (``engine_kind="otp_split"``), in the trace
pipeline (an :class:`~repro.eval.jobs.SNCSpec` with
``scheme="otp_split"``), and in the design-space tables, with no edits
outside this file.  ``docs/schemes.md`` walks through it line by line.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.secure.otp_engine import OTPEngine
from repro.secure.schemes import EngineContext, SchemeSpec, register
from repro.secure.snc import Evicted, SequenceNumberCache, SNCConfig
from repro.secure.snc_policy import (
    ReadClass,
    ReadDecision,
    SNCPolicyCore,
    SwitchStrategy,
    WriteClass,
    WriteDecision,
)
from repro.secure.software import ProtectionScheme
from repro.timing.model import SNCTimingSim, otp_cycles

#: Width of the per-line counter kept in the SNC.  Eight bits is the
#: paper's suggested split point: 256 rewrites before a line falls back
#: to direct encryption.
COUNTER_BITS = 8


class SplitSequenceCore(SNCPolicyCore):
    """Algorithm 1 with small per-line counters that overflow to direct
    encryption.

    Extends the shared core at its three policy hooks.  A line whose
    counter overflows is removed from the SNC (a stale entry would hand
    out a pad version for a line that is no longer pad-encrypted) and
    recorded in ``direct_lines``; from then on it reads and writes on the
    XOM serial path.
    """

    def __init__(self, snc: SequenceNumberCache, *,
                 counter_bits: int = COUNTER_BITS, **kwargs):
        super().__init__(snc, **kwargs)
        if counter_bits <= 0:
            raise ConfigurationError("counter_bits must be positive")
        self.counter_max = (1 << counter_bits) - 1

    def _read_query_miss(self, line_index: int) -> ReadDecision:
        if line_index in self.direct_lines:
            return ReadDecision(ReadClass.DIRECT, None)
        return super()._read_query_miss(line_index)

    def _write_update_hit(self, line_index: int, seq: int) -> WriteDecision:
        if seq > self.counter_max:
            return self._overflow(line_index)
        return super()._write_update_hit(line_index, seq)

    def _write_update_miss(self, line_index: int) -> WriteDecision:
        if line_index in self.direct_lines:
            # Once retired, always direct: the line's pad history is gone.
            self.snc.note_rejection()
            return WriteDecision(WriteClass.REJECTED, None)
        decision = super()._write_update_miss(line_index)
        if decision.seq is not None and decision.seq > self.counter_max:
            return self._overflow(line_index)
        return decision

    def _write_detached(self, line_index: int) -> WriteDecision:
        # The FLUSH no-residency write path keeps the split semantics: a
        # retired line stays direct, and an increment past the counter
        # width retires it instead of spilling an overflowed value.
        if line_index in self.direct_lines:
            self.snc.note_rejection()
            return WriteDecision(WriteClass.REJECTED, None)
        seq = self._fetch_entry(line_index) + 1
        if seq > self.counter_max:
            self.snc.note_rejection()
            self.direct_lines.add(line_index)
            return WriteDecision(WriteClass.REJECTED, None)
        self._spill_entry(Evicted(line_index, seq, self.xom_id))
        return WriteDecision(WriteClass.UPDATE_MISS, seq)

    def _overflow(self, line_index: int) -> WriteDecision:
        """Retire a line from pad treatment: drop its SNC entry, mark it
        direct, and report the write as rejected (direct encryption)."""
        self.snc.remove(line_index, self.xom_id)
        self.snc.note_rejection()
        self.direct_lines.add(line_index)
        return WriteDecision(WriteClass.REJECTED, None)


def _core_factory(snc: SequenceNumberCache, **kwargs) -> SplitSequenceCore:
    return SplitSequenceCore(snc, counter_bits=COUNTER_BITS, **kwargs)


def _build_engine(ctx: EngineContext) -> OTPEngine:
    return OTPEngine(
        ctx.dram, ctx.cipher,
        snc=SequenceNumberCache(ctx.snc_config),
        bus=ctx.bus, latencies=ctx.latencies, regions=ctx.regions,
        integrity=ctx.integrity,
        core_factory=_core_factory,
    )


def _build_timing_sim(
    config: SNCConfig,
    switch_strategy: SwitchStrategy = SwitchStrategy.TAG,
) -> SNCTimingSim:
    return SNCTimingSim(config, core_factory=_core_factory,
                        switch_strategy=switch_strategy)


SPEC = register(SchemeSpec(
    key="otp_split",
    title="OTP + split sequence numbers",
    summary=(
        "small per-line SNC counters; overflow retires the line to "
        "direct encryption (paper §4.2)"
    ),
    # Images are packaged exactly like plain OTP (version-0 pads); the
    # split behaviour only appears at runtime, after writebacks.
    protection=ProtectionScheme.OTP,
    build_engine=_build_engine,
    price=otp_cycles,  # direct reads price on the serial path already
    build_timing_sim=_build_timing_sim,
))

"""The protection-scheme registry: one declaration per scheme, all layers.

The paper's design space is a *family* of memory-protection schemes —
plaintext baseline, XOM direct encryption, OTP+SNC, and variants (§4.2's
split sequence numbers).  Each scheme used to be implemented two-and-a-half
times: a byte-moving functional engine, a byte-free timing mirror, and
ad-hoc string keys in the evaluation layer.  A :class:`SchemeSpec` declares
each scheme **once**:

* ``build_engine`` — the functional line-engine factory
  (:class:`SecureProcessor <repro.secure.processor.SecureProcessor>`
  resolves through it);
* ``build_timing_sim`` — the timing-event state machine the trace pipeline
  drives (``None`` for schemes without SNC state);
* ``price`` — the cycle-pricing function over
  :class:`~repro.timing.model.TraceEvents` (the figure drivers resolve
  through it);
* ``protection`` — the vendor-packaging binding
  (:class:`~repro.secure.software.ProtectionScheme`), ``None`` for the
  unprotected baseline.

Every module in this package (not starting with ``_``) is auto-imported
and self-registers its spec, so **adding a scheme is adding one file** —
see ``otp_split.py`` for the worked example, and ``docs/schemes.md`` for
the walkthrough.  ``python -m repro.secure.schemes`` runs every registered
scheme end-to-end through :class:`SecureProcessor` as a completeness check.
"""

from __future__ import annotations

import importlib
import pkgutil
from collections.abc import Callable
from dataclasses import dataclass

from repro.crypto.blockcipher import BlockCipher
from repro.errors import ConfigurationError
from repro.memory.bus import MemoryBus
from repro.memory.dram import DRAM
from repro.memory.hierarchy import LineEngine
from repro.secure.engine import LatencyParams
from repro.secure.integrity import IntegrityProvider
from repro.secure.regions import RegionMap
from repro.secure.snc import SNCConfig
from repro.secure.software import ProtectionScheme
from repro.timing.model import TraceEvents


@dataclass(frozen=True)
class EngineContext:
    """Everything a functional engine factory may need.

    Assembled by :class:`~repro.secure.processor.SecureProcessor` per run;
    factories pick the fields their scheme uses (the baseline ignores the
    cipher, XOM ignores the SNC config, ...).
    """

    dram: DRAM
    cipher: BlockCipher | None
    bus: MemoryBus
    regions: RegionMap
    #: The run's functional integrity provider (built through the
    #: :mod:`repro.secure.integrity` registry), ``None`` = unverified.
    integrity: IntegrityProvider | None
    latencies: LatencyParams
    snc_config: SNCConfig


@dataclass(frozen=True)
class SchemeSpec:
    """One protection scheme, declared once for all consuming layers."""

    key: str  # registry key: "baseline", "xom", "otp", ...
    title: str  # human name for tables and docs
    summary: str  # one-line description
    #: Which vendor packaging the scheme executes, ``None`` = unprotected
    #: (such a scheme runs plain programs only).
    protection: ProtectionScheme | None
    #: Functional layer: build the line engine for one protected run.
    build_engine: Callable[[EngineContext], LineEngine]
    #: Evaluation layer: price one benchmark's trace events in cycles.
    price: Callable[[TraceEvents, LatencyParams], float]
    #: Timing layer: build the byte-free SNC state machine the trace
    #: pipeline drives, or ``None`` for schemes without SNC state.
    #: Accepts a keyword ``switch_strategy`` (a
    #: :class:`~repro.secure.snc_policy.SwitchStrategy`) so the scenario
    #: pipeline can select the §4.3 context-switch handling; figure jobs
    #: never switch and use the default.
    build_timing_sim: Callable[..., object] | None = None

    @property
    def uses_snc(self) -> bool:
        """Whether the trace pipeline must simulate an SNC for pricing."""
        return self.build_timing_sim is not None


_REGISTRY: dict[str, SchemeSpec] = {}


def register(spec: SchemeSpec) -> SchemeSpec:
    """Register a scheme; returns the spec so modules can keep a handle."""
    if spec.key in _REGISTRY:
        raise ConfigurationError(
            f"protection scheme {spec.key!r} is already registered"
        )
    _REGISTRY[spec.key] = spec
    return spec


def get_scheme(key: str) -> SchemeSpec:
    """Look up one registered scheme by key."""
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown protection scheme {key!r} (registered: {known})"
        ) from None


def scheme_keys() -> tuple[str, ...]:
    """Every registered scheme key, in registration order."""
    return tuple(_REGISTRY)


def all_schemes() -> tuple[SchemeSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


_SCHEME_MODULES: list[str] = []


def scheme_module_names() -> tuple[str, ...]:
    """Fully-qualified names of the discovered scheme modules.

    The result cache fingerprints exactly these files (plus this one), so
    editing a scheme's spec invalidates the simulation results produced
    through it — and the cache can never drift from the discovery rules.
    """
    return tuple(_SCHEME_MODULES)


def _discover() -> None:
    """Import every scheme module in this package so it self-registers.

    Modules starting with ``_`` (like ``__main__``, the completeness
    check) are skipped — they are tooling, not scheme declarations.
    """
    for info in sorted(pkgutil.iter_modules(__path__),
                       key=lambda info: info.name):
        if info.name.startswith("_"):
            continue
        name = f"{__name__}.{info.name}"
        importlib.import_module(name)
        _SCHEME_MODULES.append(name)


_discover()

__all__ = [
    "EngineContext",
    "SchemeSpec",
    "all_schemes",
    "get_scheme",
    "register",
    "scheme_keys",
    "scheme_module_names",
]

"""Scheme spec: one-time-pad encryption with an SNC — the paper (§3-§4).

Pad generation overlaps the DRAM access when the seed is on chip; the
Sequence Number Cache decides when it is.  The default
:class:`~repro.secure.snc_policy.SNCPolicyCore` implements the paper's
Algorithm 1 for both the LRU (spilling) and no-replacement policies — the
policy itself is a property of the :class:`~repro.secure.snc.SNCConfig`.
"""

from __future__ import annotations

from repro.secure.otp_engine import OTPEngine
from repro.secure.schemes import EngineContext, SchemeSpec, register
from repro.secure.snc import SequenceNumberCache, SNCConfig
from repro.secure.snc_policy import SwitchStrategy
from repro.secure.software import ProtectionScheme
from repro.timing.model import SNCTimingSim, otp_cycles


def _build_engine(ctx: EngineContext) -> OTPEngine:
    return OTPEngine(
        ctx.dram, ctx.cipher,
        snc=SequenceNumberCache(ctx.snc_config),
        bus=ctx.bus, latencies=ctx.latencies, regions=ctx.regions,
        integrity=ctx.integrity,
    )


def _build_timing_sim(
    config: SNCConfig,
    switch_strategy: SwitchStrategy = SwitchStrategy.TAG,
) -> SNCTimingSim:
    return SNCTimingSim(config, switch_strategy=switch_strategy)


SPEC = register(SchemeSpec(
    key="otp",
    title="OTP + SNC",
    summary="one-time pads with a sequence-number cache (the paper)",
    protection=ProtectionScheme.OTP,
    build_engine=_build_engine,
    price=otp_cycles,
    build_timing_sim=_build_timing_sim,
))

"""Scheme spec: the insecure baseline — plaintext on the bus.

The reference point of every figure: no cryptography, a read costs exactly
the memory latency.  ``protection`` is ``None``, so the processor refuses
vendor-packaged images and runs plain programs only (``run_plain``).
"""

from __future__ import annotations

from repro.secure.engine import BaselineEngine
from repro.secure.schemes import EngineContext, SchemeSpec, register
from repro.timing.model import baseline_cycles


def _build_engine(ctx: EngineContext) -> BaselineEngine:
    return BaselineEngine(ctx.dram, ctx.bus, latencies=ctx.latencies)


SPEC = register(SchemeSpec(
    key="baseline",
    title="insecure baseline",
    summary="plaintext on the bus; a read costs one memory latency",
    protection=None,
    build_engine=_build_engine,
    price=baseline_cycles,
))

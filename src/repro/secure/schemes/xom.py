"""Scheme spec: XOM-style direct encryption on the memory path (§2.2).

The baseline the paper improves on: every line is decrypted *after* it
arrives, so a read costs ``memory + crypto`` serially.  No SNC state, so
no timing state machine — pricing needs only the miss counts.
"""

from __future__ import annotations

from repro.secure.schemes import EngineContext, SchemeSpec, register
from repro.secure.software import ProtectionScheme
from repro.secure.xom_engine import XOMEngine
from repro.timing.model import xom_cycles


def _build_engine(ctx: EngineContext) -> XOMEngine:
    return XOMEngine(
        ctx.dram, ctx.cipher, bus=ctx.bus, latencies=ctx.latencies,
        regions=ctx.regions, integrity=ctx.integrity,
    )


SPEC = register(SchemeSpec(
    key="xom",
    title="XOM direct encryption",
    summary="decrypt-after-fetch: every read pays memory + crypto serially",
    protection=ProtectionScheme.DIRECT,
    build_engine=_build_engine,
    price=xom_cycles,
))
